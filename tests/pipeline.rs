//! End-to-end pipeline: kernel → constrained mapping → page schedule →
//! shrink → validate → simulate, across the whole benchmark suite.

use cgra_mt::prelude::*;

#[test]
fn full_pipeline_every_kernel_on_4x4() {
    let cgra = CgraConfig::square(4);
    let opts = MapOptions::default();
    for kernel in cgra_mt::dfg::kernels::all() {
        // Compile under constraints and re-validate independently.
        let mapped = map_constrained(&kernel, &cgra, &opts)
            .unwrap_or_else(|e| panic!("{}: {e}", kernel.name));
        let v = validate_mapping(&mapped.mdfg, &cgra, &mapped.mapping, MapMode::Constrained);
        assert!(v.is_empty(), "{}: {v:?}", kernel.name);

        // Extract and shrink through the whole halving family.
        let paged = PagedSchedule::from_mapping(&mapped, &cgra)
            .unwrap_or_else(|e| panic!("{}: {e}", kernel.name))
            .trimmed();
        let mut m = paged.num_pages;
        loop {
            let plan = transform(&paged, m, Strategy::Auto)
                .unwrap_or_else(|e| panic!("{} M={m}: {e}", kernel.name));
            let tv = validate_plan(&paged, &plan);
            assert!(tv.is_empty(), "{} M={m}: {tv:?}", kernel.name);
            // The transformed rate never beats the page-capacity bound and
            // never exceeds the block bound.
            let occupied = paged.cells.iter().filter(|c| !c.is_empty()).count() as f64;
            assert!(plan.ii_q() + 1e-9 >= occupied / m as f64);
            assert!(
                plan.ii_q() <= (paged.ii * paged.num_pages.div_ceil(m) as u32) as f64 + 1e-9,
                "{} M={m}: ii_q {} above block bound",
                kernel.name,
                plan.ii_q()
            );
            if m == 1 {
                break;
            }
            m /= 2;
        }
    }
}

#[test]
fn shrink_then_expand_recovers_full_rate() {
    // §VII-B.1: expansion re-transforms from the original mapping, so a
    // shrink/expand round-trip restores the original II exactly.
    let cgra = CgraConfig::square(4);
    let kernel = cgra_mt::dfg::kernels::laplace();
    let mapped = map_constrained(&kernel, &cgra, &MapOptions::default()).unwrap();
    let paged = PagedSchedule::from_mapping(&mapped, &cgra)
        .unwrap()
        .trimmed();
    let n = paged.num_pages;
    let shrunk = transform(&paged, 1.max(n / 2), Strategy::Auto).unwrap();
    assert!(shrunk.ii_q() >= mapped.ii() as f64);
    let expanded = transform(&paged, n, Strategy::Auto).unwrap();
    assert_eq!(expanded.ii_q_ceil(), mapped.ii());
}

#[test]
fn fold_to_each_page_of_a_6x6() {
    let cgra = CgraConfig::square(6).with_rf_size(48);
    let kernel = cgra_mt::dfg::kernels::mpeg2();
    let mapped = map_constrained(&kernel, &cgra, &MapOptions::default()).unwrap();
    for target in 0..cgra.layout().num_pages() as u16 {
        let folded = fold_to_page(&mapped, &cgra, PageId(target)).unwrap();
        let v = validate_fold(&mapped, &cgra, &folded);
        assert!(v.is_empty(), "target {target}: {v:?}");
        assert_eq!(folded.ii_q, 9 * mapped.ii() as u64);
    }
}

#[test]
fn extra_kernels_survive_the_full_pipeline() {
    // The extras gallery stresses shapes the paper suite lacks: deep
    // butterflies, wide reductions, select-heavy dataflow.
    let cgra = CgraConfig::square(4).with_rf_size(32);
    let opts = MapOptions::default();
    let iters = 6;
    for kernel in cgra_mt::dfg::kernels::extras::all_extras() {
        let mapped = map_constrained(&kernel, &cgra, &opts)
            .unwrap_or_else(|e| panic!("{}: {e}", kernel.name));
        assert!(
            validate_mapping(&mapped.mdfg, &cgra, &mapped.mapping, MapMode::Constrained).is_empty(),
            "{}",
            kernel.name
        );
        // Shrink.
        let paged = PagedSchedule::from_mapping(&mapped, &cgra)
            .unwrap()
            .trimmed();
        let plan = transform(&paged, 1, Strategy::Auto).unwrap();
        assert!(validate_plan(&paged, &plan).is_empty(), "{}", kernel.name);
        // Execute functionally.
        let inputs = InputStreams::random(&kernel, iters, 0xE57);
        let golden = interpret(&kernel, &inputs, iters).unwrap();
        let out = execute(
            &mapped.mdfg,
            cgra.mesh(),
            &MachineSchedule::from_mapping(&mapped.mapping),
            &inputs,
            iters,
        )
        .unwrap_or_else(|e| panic!("{}: {e}", kernel.name));
        for (store, values) in &golden {
            assert_eq!(out.get(store), Some(values), "{}: n{store}", kernel.name);
        }
        // Encode to a configuration image and back.
        let image =
            cgra_mt::mapper::encode_config(&mapped.mdfg, cgra.mesh(), &mapped.mapping, mapped.mode)
                .unwrap_or_else(|e| panic!("{}: {e}", kernel.name));
        assert!(image.occupancy() > 0.0);
    }
}
