//! Acceptance test for the observability layer: with tracing enabled,
//! the trace oracle passes on every benchmark kernel's compilation, on a
//! simulated run of each kernel, and on a fault-injected multithreaded
//! run — the event streams obey the invariants end-state diffs cannot
//! check (ownership exclusivity, no allocation on dead pages, cycle
//! accounting consistent with the reported makespan).

use cgra_mt::arch::{CgraConfig, FaultKind, FaultSpec};
use cgra_mt::mapper::MapOptions;
use cgra_mt::obs::{check_trace, RingSink, TraceEvent, Tracer};
use cgra_mt::sim::{
    simulate_multithreaded_faulty_traced, KernelLibrary, MtConfig, Segment, ThreadSpec,
};
use std::sync::Arc;

#[test]
fn oracle_passes_on_all_benchmark_kernels_and_a_faulty_run() {
    let sink = Arc::new(RingSink::unbounded());
    let tracer = Tracer::new(sink.clone());
    let cgra = CgraConfig::square(4);

    // Compile all 11 benchmark kernels with full tracing: one
    // MapBegin/MapEnd segment per mapper search (two per kernel —
    // baseline and constrained), plus the halving-chain transforms.
    let lib = KernelLibrary::compile_benchmarks_traced(&cgra, &MapOptions::default(), &tracer)
        .expect("benchmark suite compiles on the 4x4");
    assert_eq!(lib.len(), cgra_mt::dfg::kernels::all().len());

    // One traced single-thread run per kernel.
    for kernel in 0..lib.len() {
        let spec = ThreadSpec {
            segments: vec![Segment::Cgra {
                kernel,
                iterations: 50,
            }],
        };
        simulate_multithreaded_faulty_traced(&lib, &[spec], MtConfig::default(), &[], &tracer)
            .unwrap_or_else(|e| panic!("kernel {kernel}: {e}"));
    }

    // One fault-injected multithreaded run: four threads, two page
    // kills (half the 4-page fabric — never enough to starve anyone).
    let faults = FaultSpec::Mtbf {
        mean: 3_000,
        count: 2,
        seed: 9,
        kind: FaultKind::Kill,
    }
    .schedule(lib.num_pages);
    assert_eq!(faults.len(), 2);
    let threads: Vec<ThreadSpec> = (0..4)
        .map(|t| ThreadSpec {
            segments: vec![
                Segment::Cpu(100 * t as u64),
                Segment::Cgra {
                    kernel: t % lib.len(),
                    iterations: 400,
                },
            ],
        })
        .collect();
    let report =
        simulate_multithreaded_faulty_traced(&lib, &threads, MtConfig::default(), &faults, &tracer)
            .expect("faulty multithreaded run completes");
    assert!(report.faults.pages_killed > 0, "no page ever died");

    // The whole stream — compilations, per-kernel runs, the faulty run —
    // must replay clean through the oracle.
    let events = sink.drain();
    let oracle = check_trace(&events).unwrap_or_else(|e| panic!("oracle violation: {e}"));
    assert_eq!(oracle.runs, lib.len() + 1);
    assert_eq!(oracle.aborted_runs, 0);
    assert!(
        oracle.map_segments >= 2 * lib.len(),
        "expected two mapper segments per kernel, saw {} for {} kernels",
        oracle.map_segments,
        lib.len()
    );
    assert!(oracle.transforms > 0, "no transform was ever traced");
}

#[test]
fn repair_counters_are_consistent_with_the_trace() {
    // FaultStats promises its `repairs` / `reexpansions` counters count
    // exactly the PageRepaired / Reexpanded events the run emitted —
    // the trace is the ground truth the counters summarize. A
    // transient-fault multithreaded run exercises the full shrink →
    // repair → re-expand loop, then the drained event stream is both
    // counted against the report and replayed through the oracle.
    let sink = Arc::new(RingSink::unbounded());
    let tracer = Tracer::new(sink.clone());
    let cgra = CgraConfig::square(4);
    let lib = KernelLibrary::compile_benchmarks(&cgra, &MapOptions::default())
        .expect("benchmark suite compiles on the 4x4");

    let faults = FaultSpec::Mtbf {
        mean: 3_000,
        count: 2,
        seed: 9,
        kind: FaultKind::Transient { repair_after: 500 },
    }
    .schedule(lib.num_pages);
    let threads: Vec<ThreadSpec> = (0..4)
        .map(|t| ThreadSpec {
            segments: vec![
                Segment::Cpu(100 * t as u64),
                Segment::Cgra {
                    kernel: t % lib.len(),
                    iterations: 400,
                },
            ],
        })
        .collect();
    let report =
        simulate_multithreaded_faulty_traced(&lib, &threads, MtConfig::default(), &faults, &tracer)
            .expect("transient multithreaded run completes");
    assert!(report.faults.repairs > 0, "no page ever repaired");

    let events = sink.drain();
    let repaired = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::PageRepaired { .. }))
        .count() as u64;
    let reexpanded = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::Reexpanded { .. }))
        .count() as u64;
    assert_eq!(
        repaired, report.faults.repairs,
        "repairs counter disagrees with the PageRepaired events"
    );
    assert_eq!(
        reexpanded, report.faults.reexpansions,
        "reexpansions counter disagrees with the Reexpanded events"
    );

    let oracle = check_trace(&events).unwrap_or_else(|e| panic!("oracle violation: {e}"));
    assert_eq!(oracle.runs, 1);
    assert_eq!(oracle.aborted_runs, 0);
}

#[test]
fn disabled_tracer_emits_nothing_and_changes_nothing() {
    // The zero-cost-when-off contract, end to end: a run with an off
    // tracer equals a run through the untraced entry point, bit for bit.
    let cgra = CgraConfig::square(4);
    let lib = KernelLibrary::compile_benchmarks(&cgra, &MapOptions::default()).unwrap();
    let spec = || ThreadSpec {
        segments: vec![Segment::Cgra {
            kernel: 0,
            iterations: 200,
        }],
    };
    let plain =
        cgra_mt::sim::simulate_multithreaded(&lib, &[spec(), spec()], MtConfig::default()).unwrap();
    let traced_off = simulate_multithreaded_faulty_traced(
        &lib,
        &[spec(), spec()],
        MtConfig::default(),
        &[],
        &Tracer::off(),
    )
    .unwrap();
    assert_eq!(plain, traced_off);

    // And compiling with an off tracer produces the identical library.
    let relib =
        KernelLibrary::compile_benchmarks_traced(&cgra, &MapOptions::default(), &Tracer::off())
            .unwrap();
    assert_eq!(lib, relib);
}
