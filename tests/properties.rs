//! Cross-crate property tests: random DFGs survive the whole pipeline,
//! and random synthetic page schedules transform validly for every M.

use cgra_mt::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Any generated DFG maps under both disciplines on a 4x4 and both
    /// mappings validate; the constrained II never beats the baseline MII.
    #[test]
    fn random_dfgs_map_and_validate(seed in 0u64..500, recs in 0usize..2) {
        let dfg = cgra_mt::dfg::random::random_dfg(
            seed,
            cgra_mt::dfg::random::RandomDfgParams {
                layers: 4,
                width: (2, 4),
                edge_prob: 0.35,
                recurrences: recs,
                rec_distance: 1,
            },
        );
        let cgra = CgraConfig::square(4);
        let opts = MapOptions::fast();

        let base = map_baseline(&dfg, &cgra, &opts);
        prop_assume!(base.is_ok());
        let base = base.unwrap();
        prop_assert!(validate_mapping(&base.mdfg, &cgra, &base.mapping, MapMode::Baseline).is_empty());

        let cons = map_constrained(&dfg, &cgra, &opts);
        prop_assume!(cons.is_ok());
        let cons = cons.unwrap();
        prop_assert!(validate_mapping(&cons.mdfg, &cgra, &cons.mapping, MapMode::Constrained).is_empty());
        prop_assert!(cons.ii() >= base.ii().min(cgra_mt::dfg::mii(&dfg, 16)));
    }

    /// Every synthetic canonical ring schedule transforms validly onto
    /// every M, with II_q between the capacity bound and the block bound.
    #[test]
    fn synthetic_schedules_transform_validly(n in 2u16..12, ii in 1u32..4, wrap: bool) {
        let p = PagedSchedule::synthetic_canonical(n, ii, wrap);
        for m in 1..=n {
            let plan = transform_pagemaster(&p, m);
            prop_assume!(plan.is_ok());
            let plan = plan.unwrap();
            let v = validate_plan(&p, &plan);
            prop_assert!(v.is_empty(), "N={n} M={m}: {v:?}");
            let bound = (n as f64 * ii as f64) / m as f64;
            prop_assert!(plan.ii_q() + 1e-9 >= bound.min(ii as f64 * (n as f64 / m as f64)));
        }
    }

    /// Mapped kernels' paged schedules shrink validly with the block
    /// strategy for every divisor-chain M.
    #[test]
    fn extracted_schedules_block_transform(seed in 0u64..200) {
        let dfg = cgra_mt::dfg::random::random_dfg(
            seed,
            cgra_mt::dfg::random::RandomDfgParams::default(),
        );
        let cgra = CgraConfig::square(4);
        let cons = map_constrained(&dfg, &cgra, &MapOptions::fast());
        prop_assume!(cons.is_ok());
        let cons = cons.unwrap();
        let paged = PagedSchedule::from_mapping(&cons, &cgra).unwrap().trimmed();
        for m in 1..=paged.num_pages {
            let plan = transform_block(&paged, m).unwrap();
            let v = validate_plan(&paged, &plan);
            prop_assert!(v.is_empty(), "M={m}: {v:?}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Functional equivalence on random DFGs: the cycle-level machine
    /// executing the baseline and constrained mappings reproduces the
    /// golden interpreter's store streams exactly.
    #[test]
    fn random_dfgs_execute_equivalently(seed in 0u64..300, recs in 0usize..2) {
        let dfg = cgra_mt::dfg::random::random_dfg(
            seed ^ 0xE0E0,
            cgra_mt::dfg::random::RandomDfgParams {
                layers: 4,
                width: (2, 4),
                edge_prob: 0.4,
                recurrences: recs,
                rec_distance: 1,
            },
        );
        let cgra = CgraConfig::square(4).with_rf_size(32);
        let opts = MapOptions::fast();
        let iters = 6;
        let inputs = InputStreams::random(&dfg, iters, seed);
        let golden = interpret(&dfg, &inputs, iters);

        for result in [
            map_baseline(&dfg, &cgra, &opts),
            map_constrained(&dfg, &cgra, &opts),
        ] {
            let Ok(mapped) = result else { continue };
            let sched = MachineSchedule::from_mapping(&mapped.mapping);
            let out = execute(&mapped.mdfg, cgra.mesh(), &sched, &inputs, iters);
            prop_assert!(out.is_ok(), "{:?}", out.err());
            let out = out.unwrap();
            for (store, values) in &golden {
                prop_assert_eq!(out.get(store), Some(values), "store n{}", store);
            }
        }
    }
}

/// Simulator cross-properties (deterministic, not proptest: libraries are
/// expensive).
#[test]
fn simulator_agrees_with_hand_computation() {
    let cgra = CgraConfig::square(4);
    let lib = KernelLibrary::compile_benchmarks(&cgra, &MapOptions::default()).unwrap();
    // One thread, one segment: both systems compute exactly.
    let spec = cgra_mt::sim::ThreadSpec {
        segments: vec![cgra_mt::sim::Segment::Cgra {
            kernel: 0,
            iterations: 7,
        }],
    };
    let base = simulate_baseline(&lib, &[spec.clone()]);
    let mt = simulate_multithreaded(&lib, &[spec], MtConfig::default());
    assert_eq!(base.makespan, 7 * lib.profile(0).ii_baseline as u64);
    assert_eq!(mt.makespan, 7 * lib.profile(0).ii_constrained as u64);
}

#[test]
fn multithreaded_never_stalls_forever() {
    // 16 threads on the tiny 4x4: stalls happen, but everything finishes.
    let cgra = CgraConfig::square(4);
    let lib = KernelLibrary::compile_benchmarks(&cgra, &MapOptions::default()).unwrap();
    let w = generate(
        &lib,
        &WorkloadParams {
            threads: 16,
            need: CgraNeed::High,
            work_per_thread: 10_000,
            bursts: 2,
            seed: 5,
        },
    );
    let r = simulate_multithreaded(&lib, &w, MtConfig::default());
    assert_eq!(r.thread_finish.len(), 16);
    assert!(r.thread_finish.iter().all(|&f| f > 0));
}
