//! Cross-crate property tests: random DFGs survive the whole pipeline,
//! random synthetic page schedules transform validly for every M, and
//! random allocator request/release/expand sequences preserve the page
//! accounting invariants.
//!
//! The build environment has no registry access, so instead of `proptest`
//! these are hand-rolled: each property enumerates a deterministic,
//! seeded case set (every case visible in the loop header), and
//! `continue` plays the role of `prop_assume!` — cases that don't satisfy
//! the precondition are skipped, not failed.

use cgra_mt::prelude::*;
use rand::prelude::*;
use rand::rngs::StdRng;
use std::collections::BTreeMap;

/// Any generated DFG maps under both disciplines on a 4x4 and both
/// mappings validate; the constrained II never beats the baseline MII.
#[test]
fn random_dfgs_map_and_validate() {
    for case in 0..24u64 {
        let seed = case * 21; // spread over the old 0..500 range
        let recs = (case % 2) as usize;
        let dfg = cgra_mt::dfg::random::random_dfg(
            seed,
            cgra_mt::dfg::random::RandomDfgParams {
                layers: 4,
                width: (2, 4),
                edge_prob: 0.35,
                recurrences: recs,
                rec_distance: 1,
            },
        );
        let cgra = CgraConfig::square(4);
        let opts = MapOptions::fast();

        let Ok(base) = map_baseline(&dfg, &cgra, &opts) else {
            continue;
        };
        assert!(
            validate_mapping(&base.mdfg, &cgra, &base.mapping, MapMode::Baseline).is_empty(),
            "seed {seed}: baseline mapping invalid"
        );

        let Ok(cons) = map_constrained(&dfg, &cgra, &opts) else {
            continue;
        };
        assert!(
            validate_mapping(&cons.mdfg, &cgra, &cons.mapping, MapMode::Constrained).is_empty(),
            "seed {seed}: constrained mapping invalid"
        );
        assert!(
            cons.ii() >= base.ii().min(cgra_mt::dfg::mii(&dfg, 16)),
            "seed {seed}: constrained II {} beats baseline {}",
            cons.ii(),
            base.ii()
        );
    }
}

/// Every synthetic canonical ring schedule transforms validly onto every
/// M, with II_q between the capacity bound and the block bound.
#[test]
fn synthetic_schedules_transform_validly() {
    for n in 2u16..12 {
        for ii in 1u32..4 {
            for wrap in [false, true] {
                let p = PagedSchedule::synthetic_canonical(n, ii, wrap);
                for m in 1..=n {
                    let Ok(plan) = transform_pagemaster(&p, m) else {
                        continue;
                    };
                    let v = validate_plan(&p, &plan);
                    assert!(v.is_empty(), "N={n} II={ii} wrap={wrap} M={m}: {v:?}");
                    let bound = (n as f64 * ii as f64) / m as f64;
                    assert!(
                        plan.ii_q() + 1e-9 >= bound.min(ii as f64 * (n as f64 / m as f64)),
                        "N={n} II={ii} wrap={wrap} M={m}: II_q {} below bound",
                        plan.ii_q()
                    );
                }
            }
        }
    }
}

/// Mapped kernels' paged schedules shrink validly with the block strategy
/// for every divisor-chain M.
#[test]
fn extracted_schedules_block_transform() {
    for case in 0..24u64 {
        let seed = case * 8; // spread over the old 0..200 range
        let dfg = cgra_mt::dfg::random::random_dfg(
            seed,
            cgra_mt::dfg::random::RandomDfgParams::default(),
        );
        let cgra = CgraConfig::square(4);
        let Ok(cons) = map_constrained(&dfg, &cgra, &MapOptions::fast()) else {
            continue;
        };
        let paged = PagedSchedule::from_mapping(&cons, &cgra).unwrap().trimmed();
        for m in 1..=paged.num_pages {
            let plan = transform_block(&paged, m).unwrap();
            let v = validate_plan(&paged, &plan);
            assert!(v.is_empty(), "seed {seed} M={m}: {v:?}");
        }
    }
}

/// Functional equivalence on random DFGs: the cycle-level machine
/// executing the baseline and constrained mappings reproduces the golden
/// interpreter's store streams exactly.
#[test]
fn random_dfgs_execute_equivalently() {
    for case in 0..16u64 {
        let seed = case * 19; // spread over the old 0..300 range
        let recs = (case % 2) as usize;
        let dfg = cgra_mt::dfg::random::random_dfg(
            seed ^ 0xE0E0,
            cgra_mt::dfg::random::RandomDfgParams {
                layers: 4,
                width: (2, 4),
                edge_prob: 0.4,
                recurrences: recs,
                rec_distance: 1,
            },
        );
        let cgra = CgraConfig::square(4).with_rf_size(32);
        let opts = MapOptions::fast();
        let iters = 6;
        let inputs = InputStreams::random(&dfg, iters, seed);
        let golden = interpret(&dfg, &inputs, iters).unwrap();

        for result in [
            map_baseline(&dfg, &cgra, &opts),
            map_constrained(&dfg, &cgra, &opts),
        ] {
            let Ok(mapped) = result else { continue };
            let sched = MachineSchedule::from_mapping(&mapped.mapping);
            let out = execute(&mapped.mdfg, cgra.mesh(), &sched, &inputs, iters);
            let out = out.unwrap_or_else(|e| panic!("seed {seed}: {e:?}"));
            for (store, values) in &golden {
                assert_eq!(
                    out.get(store),
                    Some(values),
                    "seed {seed}: store n{store} diverges"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Allocator invariants under random request/release/expand sequences.
//
// A shadow model (`owned`) tracks what the allocator has granted each
// thread; after every step the model and the allocator must agree, the
// page counts must conserve (no page counted for two threads, nothing
// beyond N), and every allocation must sit on the halving chain.

struct Shadow {
    n: u16,
    chain: Vec<u16>,
    owned: BTreeMap<usize, u16>,
}

impl Shadow {
    fn check(&self, a: &cgra_mt::sim::Allocator, step: usize) {
        let total: u16 = self.owned.values().sum();
        assert!(
            total <= self.n,
            "step {step}: granted {total} pages of {}",
            self.n
        );
        assert!(a.check_invariant(), "step {step}: allocator invariant");
        assert_eq!(
            a.free_pages(),
            self.n - total,
            "step {step}: free-page conservation (double ownership?)"
        );
        assert_eq!(a.active(), self.owned.len(), "step {step}: active count");
        for (&t, &p) in &self.owned {
            assert_eq!(a.allocation(t), Some(p), "step {step}: thread {t}");
            assert!(
                self.chain.contains(&p),
                "step {step}: thread {t} holds off-chain allocation {p}"
            );
        }
    }
}

#[test]
fn allocator_random_sequences_preserve_invariants() {
    use cgra_mt::sim::{Allocator, ExpandPolicy, RequestOutcome};

    for case in 0..40u64 {
        let n = [2u16, 4, 8, 9, 16][case as usize % 5];
        let chain = cgra_mt::sim::halving_chain(n);
        let mut rng = StdRng::seed_from_u64(0xA110_C000 + case);
        let mut a = Allocator::new(n);
        let mut shadow = Shadow {
            n,
            chain: chain.clone(),
            owned: BTreeMap::new(),
        };
        let mut next_thread = 0usize;

        for step in 0..200 {
            match rng.gen_range(0..4u32) {
                // Request: a new thread asks for a random chain budget.
                0 | 1 => {
                    let want = chain[rng.gen_range(0..chain.len())];
                    let t = next_thread;
                    next_thread += 1;
                    match a.request(t, want).unwrap() {
                        RequestOutcome::Granted { pages } => {
                            assert!(pages <= want, "step {step}: granted beyond want");
                            shadow.owned.insert(t, pages);
                        }
                        RequestOutcome::Shrunk {
                            victim,
                            victim_was,
                            victim_pages,
                            pages,
                        } => {
                            let before = shadow.owned[&victim];
                            assert_eq!(
                                victim_was, before,
                                "step {step}: victim_was disagrees with the shadow"
                            );
                            assert!(
                                victim_pages < before,
                                "step {step}: shrink did not shrink ({before} -> {victim_pages})"
                            );
                            assert!(pages <= want, "step {step}: granted beyond want");
                            shadow.owned.insert(victim, victim_pages);
                            shadow.owned.insert(t, pages);
                        }
                        RequestOutcome::Queued => {
                            // Queued requests must only happen when no
                            // thread can shrink any further.
                            assert!(
                                shadow.owned.values().all(|&p| p == chain[chain.len() - 1])
                                    || shadow.owned.is_empty() && n == 0,
                                "step {step}: queued while a shrink was possible"
                            );
                        }
                    }
                }
                // Release a random active thread; its pages come back.
                2 => {
                    let Some(&t) = shadow
                        .owned
                        .keys()
                        .nth(rng.gen_range(0..shadow.owned.len().max(1)))
                    else {
                        continue;
                    };
                    let freed = a.release(t).unwrap();
                    assert_eq!(freed, shadow.owned.remove(&t).unwrap());
                }
                // Expand under a random policy; growth only, chain only.
                _ => {
                    let policy = [
                        ExpandPolicy::SmallestFirst,
                        ExpandPolicy::LargestFirst,
                        ExpandPolicy::None,
                    ][rng.gen_range(0..3usize)];
                    let grown = a.expand(policy, |_| n).unwrap();
                    assert!(
                        policy != ExpandPolicy::None || grown.is_empty(),
                        "step {step}: ExpandPolicy::None expanded"
                    );
                    for g in grown {
                        let before = shadow.owned[&g.thread];
                        assert_eq!(
                            g.from_pages, before,
                            "step {step}: from_pages disagrees with the shadow"
                        );
                        assert!(
                            g.to_pages > before,
                            "step {step}: expand shrank thread {}",
                            g.thread
                        );
                        shadow.owned.insert(g.thread, g.to_pages);
                    }
                }
            }
            shadow.check(&a, step);
        }

        // Freed pages are reusable: drain everything, then one thread can
        // claim the whole fabric again.
        for t in shadow.owned.keys().copied().collect::<Vec<_>>() {
            a.release(t).unwrap();
            shadow.owned.remove(&t);
        }
        shadow.check(&a, usize::MAX);
        assert_eq!(a.free_pages(), n);
        assert_eq!(
            a.request(next_thread, n).unwrap(),
            RequestOutcome::Granted { pages: n },
            "full fabric not reusable after drain (N={n})"
        );
    }
}

/// Expansion never grants pages beyond the want cap, even with free room.
#[test]
fn allocator_expand_respects_want_caps() {
    use cgra_mt::sim::{Allocator, ExpandPolicy};

    for n in [4u16, 8, 16] {
        let chain = cgra_mt::sim::halving_chain(n);
        for &cap in &chain {
            let mut a = Allocator::new(n);
            a.request(0, chain[chain.len() - 1]).unwrap(); // start at 1 page
            loop {
                let grown = a.expand(ExpandPolicy::SmallestFirst, |_| cap).unwrap();
                if grown.is_empty() {
                    break;
                }
            }
            let got = a.allocation(0).unwrap();
            assert!(got <= cap, "N={n} cap={cap}: expanded to {got}");
            assert!(a.check_invariant());
        }
    }
}

// ---------------------------------------------------------------------
// Simulator cross-properties (deterministic: libraries are expensive).

#[test]
fn simulator_agrees_with_hand_computation() {
    let cgra = CgraConfig::square(4);
    let lib = KernelLibrary::compile_benchmarks(&cgra, &MapOptions::default()).unwrap();
    // One thread, one segment: both systems compute exactly.
    let spec = cgra_mt::sim::ThreadSpec {
        segments: vec![cgra_mt::sim::Segment::Cgra {
            kernel: 0,
            iterations: 7,
        }],
    };
    let base = simulate_baseline(&lib, std::slice::from_ref(&spec));
    let mt = simulate_multithreaded(&lib, &[spec], MtConfig::default()).unwrap();
    assert_eq!(base.makespan, 7 * lib.profile(0).ii_baseline as u64);
    assert_eq!(mt.makespan, 7 * lib.profile(0).ii_constrained as u64);
}

#[test]
fn multithreaded_never_stalls_forever() {
    // 16 threads on the tiny 4x4: stalls happen, but everything finishes.
    let cgra = CgraConfig::square(4);
    let lib = KernelLibrary::compile_benchmarks(&cgra, &MapOptions::default()).unwrap();
    let w = generate(
        &lib,
        &WorkloadParams {
            threads: 16,
            need: CgraNeed::High,
            work_per_thread: 10_000,
            bursts: 2,
            seed: 5,
        },
    );
    let r = simulate_multithreaded(&lib, &w, MtConfig::default()).unwrap();
    assert_eq!(r.thread_finish.len(), 16);
    assert!(r.thread_finish.iter().all(|&f| f > 0));
}
