//! Regression tests pinning the paper's illustrative figures.

use cgra_mt::dfg::transform::unroll;
use cgra_mt::dfg::{kernels, rec_mii};
use cgra_mt::prelude::*;

/// Fig. 2: the MPEG2 kernel has 9 ops (loads 1, 2, 4; store 9) and is
/// recurrence-free, so an ideal fabric reaches II = 1.
#[test]
fn fig2_mpeg2_kernel() {
    let k = kernels::fig2_kernel();
    assert_eq!(k.num_nodes(), 9);
    assert_eq!(k.num_mem_ops(), 4);
    assert_eq!(rec_mii(&k), 1);
}

/// Fig. 3: the recurrence bounds II at 2; unrolling by k multiplies both
/// the work and the bound, leaving the effective II unchanged.
#[test]
fn fig3_unrolling_cannot_beat_recurrence() {
    let k = kernels::fig3_kernel();
    assert_eq!(rec_mii(&k), 2);
    for factor in 2..=4 {
        let u = unroll(&k, factor);
        assert_eq!(rec_mii(&u), 2 * factor, "unroll x{factor}");
    }
}

/// Fig. 5: real constrained mappings satisfy the ring dependence
/// constraint — page n consumes only from pages n and n−1.
#[test]
fn fig5_ring_constraint_holds() {
    let cgra = CgraConfig::square(4);
    let mapped = map_constrained(&kernels::mpeg2(), &cgra, &MapOptions::default()).unwrap();
    let paged = PagedSchedule::from_mapping(&mapped, &cgra).unwrap();
    for d in &paged.deps {
        assert!(d.to_page == d.from_page || d.to_page == d.from_page + 1);
    }
}

/// Fig. 6: a 4-page schedule folds onto one page; the mapping of pages 1,
/// 2, 3 is mirrored (MirrorV / Rot180 / MirrorH for the quadrant ring).
#[test]
fn fig6_fold_with_mirrors() {
    use cgra_mt::arch::Orientation;
    let cgra = CgraConfig::square(4).with_rf_size(32);
    let plan = cgra_mt::core::fold::orientation_plan(&cgra);
    assert_eq!(
        plan,
        vec![
            Orientation::Identity,
            Orientation::MirrorV,
            Orientation::Rot180,
            Orientation::MirrorH
        ]
    );
    let mapped = map_constrained(&kernels::sor(), &cgra, &MapOptions::default()).unwrap();
    let folded = fold_to_page(&mapped, &cgra, PageId(0)).unwrap();
    assert!(validate_fold(&mapped, &cgra, &folded).is_empty());
}

/// Fig. 7: transforming a 6-page ring schedule onto 5 columns packs
/// tighter than the block bound while satisfying every §VI-C constraint.
#[test]
fn fig7_six_pages_onto_five_columns() {
    let p = PagedSchedule::synthetic_canonical(6, 1, true);
    let plan = transform_pagemaster(&p, 5).unwrap();
    assert!(validate_plan(&p, &plan).is_empty());
    assert!(plan.ii_q() >= 1.2 - 1e-9); // capacity bound N/M
    assert!(plan.ii_q() < 2.0); // strictly better than the block bound
}

/// §VI-C objective: the block transform achieves II_q = II_p·N/M exactly
/// whenever M divides N — the optimum under the (corrected) capacity
/// bound; see DESIGN.md on the paper's ⌊⌋/⌈⌉ typo.
#[test]
fn objective_block_is_capacity_optimal_for_dividing_m() {
    for ii in [1u32, 2, 3] {
        let p = PagedSchedule::synthetic_canonical(8, ii, false);
        for m in [1u16, 2, 4, 8] {
            let plan = transform_block(&p, m).unwrap();
            assert_eq!(plan.ii_q(), (ii * 8 / m as u32) as f64);
            assert!(cgra_mt::core::is_slot_optimal(&p, &plan));
        }
    }
}
