//! The paper's *literal* pipeline: the strict 1-step discipline (§VI-C's
//! canonical dependences) feeding the drifting Algorithm 1 — end to end
//! on real kernels, plus functional execution of the strict schedules.

use cgra_mt::prelude::*;

#[test]
fn strict_mappings_feed_algorithm_one() {
    let cgra = CgraConfig::square(4);
    let opts = MapOptions::default();
    let mut covered = 0;
    for kernel in cgra_mt::dfg::kernels::all() {
        // The strict discipline turns every idle wait into a slot-burning
        // self-hop; the widest kernel (swim) does not fit a 4x4 under it.
        // The paper never claims it does — its Fig. 8 uses the relaxed
        // register-file discipline; strict is the Algorithm 1 input form.
        let Ok(mapped) = map_constrained_strict(&kernel, &cgra, &opts) else {
            continue;
        };
        covered += 1;
        let v = validate_mapping(
            &mapped.mdfg,
            &cgra,
            &mapped.mapping,
            MapMode::ConstrainedStrict,
        );
        assert!(v.is_empty(), "{}: {v:?}", kernel.name);

        let paged = PagedSchedule::from_mapping(&mapped, &cgra)
            .unwrap()
            .trimmed();
        assert_eq!(
            paged.discipline,
            cgra_mt::core::Discipline::Canonical,
            "{}",
            kernel.name
        );
        // Every dependence spans exactly one cycle: Algorithm 1's input form.
        assert!(paged.deps.iter().all(|d| d.gap() == 1), "{}", kernel.name);

        for m in 1..=paged.num_pages {
            let plan = transform_pagemaster(&paged, m)
                .unwrap_or_else(|e| panic!("{} M={m}: {e}", kernel.name));
            let tv = validate_plan(&paged, &plan);
            assert!(tv.is_empty(), "{} M={m}: {tv:?}", kernel.name);
        }
    }
    assert!(covered >= 9, "only {covered} kernels mapped strictly");
}

#[test]
fn strict_schedules_execute_correctly() {
    let cgra = CgraConfig::square(4);
    let opts = MapOptions::default();
    let iters = 8;
    for name in ["mpeg2", "sor", "laplace", "compress", "fir"] {
        let kernel = cgra_mt::dfg::kernels::by_name(name).unwrap();
        let mapped =
            map_constrained_strict(&kernel, &cgra, &opts).unwrap_or_else(|e| panic!("{name}: {e}"));
        let inputs = InputStreams::random(&kernel, iters, 0x57);
        let golden = interpret(&kernel, &inputs, iters).unwrap();
        let sched = MachineSchedule::from_mapping(&mapped.mapping);
        let out = execute(&mapped.mdfg, cgra.mesh(), &sched, &inputs, iters)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        for (store, values) in &golden {
            assert_eq!(out.get(store), Some(values), "{name}: store n{store}");
        }
    }
}

#[test]
fn strict_costs_more_than_stable() {
    // The stable-column discipline (RF parking allowed) exists because
    // strict canonical schedules burn PE slots on self-hops; verify the
    // ordering stays as designed.
    let cgra = CgraConfig::square(4);
    let opts = MapOptions::default();
    let mut strict_worse = 0;
    let mut total = 0;
    for kernel in cgra_mt::dfg::kernels::all() {
        let Ok(stable) = map_constrained(&kernel, &cgra, &opts) else {
            continue;
        };
        let Ok(strict) = map_constrained_strict(&kernel, &cgra, &opts) else {
            continue;
        };
        total += 1;
        assert!(
            strict.ii() >= stable.ii(),
            "{}: strict II {} < stable II {}",
            kernel.name,
            strict.ii(),
            stable.ii()
        );
        if strict.ii() > stable.ii() {
            strict_worse += 1;
        }
    }
    assert!(total >= 9);
    assert!(strict_worse >= 3, "strict discipline suspiciously free");
}
