//! Differential tests for the sweep engine's determinism contract: a
//! reduced Fig. 8 / Fig. 9 grid run with `jobs = 1` must produce
//! **byte-identical** reports to the same grid run with `jobs = 4`, with
//! the mapping cache enabled and disabled. `jobs = 1` is the pure-serial
//! reference path (no threads, no locks), so any divergence pins the
//! blame on scheduling- or cache-dependent state.

use cgra_bench::engine::Engine;
use cgra_bench::fig8;
use cgra_bench::fig9::{self, Fig9Params, Fig9Point};
use cgra_bench::libcache::LibCache;
use cgra_bench::mapcache::MapCache;
use cgra_obs::{check_trace, RingSink, Tracer};
use cgra_sim::{CgraNeed, MtConfig};
use std::sync::Arc;

/// The reduced Fig. 8 grid: two page sizes on the 4x4.
fn fig8_reduced(engine: &Engine, cache: &MapCache) -> Vec<fig8::Fig8Point> {
    let mut points = fig8_config(engine, cache, 4, 2);
    points.extend(fig8_config(engine, cache, 4, 8));
    points
}

fn fig8_config(engine: &Engine, cache: &MapCache, dim: u16, page: usize) -> Vec<fig8::Fig8Point> {
    fig8::run_config_with(engine, cache, dim, page)
}

fn quick_params() -> Fig9Params {
    Fig9Params {
        seeds: 2,
        work_per_thread: 20_000,
        bursts: 2,
        mt: MtConfig::default(),
        faults: cgra_arch::FaultSpec::Off,
    }
}

/// The reduced Fig. 9 grid: 4x4 fabric, two page sizes, all needs, three
/// thread counts — driven through the engine like the real sweep.
fn fig9_reduced(engine: &Engine, cache: &LibCache) -> Vec<Fig9Point> {
    let params = quick_params();
    let mut points: Vec<(u16, usize, CgraNeed, usize)> = Vec::new();
    for &s in &[2usize, 4] {
        for need in CgraNeed::ALL {
            for &t in &[1usize, 4, 16] {
                points.push((4, s, need, t));
            }
        }
    }
    engine.run(&points, |&(dim, s, need, t)| {
        fig9::run_point(cache, dim, s, need, t, &params).unwrap()
    })
}

#[test]
fn fig8_is_byte_identical_across_jobs_and_cache_modes() {
    let reference = fig8_reduced(&Engine::with_jobs(1), &MapCache::in_memory());
    let reference_render = fig8::render(&reference, 4);
    let reference_summary = format!("{:?}", fig8::summary(&reference));

    for jobs in [1usize, 4] {
        for cached in [true, false] {
            let cache = if cached {
                MapCache::in_memory()
            } else {
                MapCache::disabled()
            };
            let got = fig8_reduced(&Engine::with_jobs(jobs), &cache);
            assert_eq!(
                got, reference,
                "fig8 points diverge at jobs={jobs} cached={cached}"
            );
            assert_eq!(
                fig8::render(&got, 4),
                reference_render,
                "fig8 rendered table diverges at jobs={jobs} cached={cached}"
            );
            assert_eq!(
                format!("{:?}", fig8::summary(&got)),
                reference_summary,
                "fig8 summary diverges at jobs={jobs} cached={cached}"
            );
        }
    }
}

#[test]
fn fig9_is_byte_identical_across_jobs_and_cache_modes() {
    let reference = fig9_reduced(&Engine::with_jobs(1), &LibCache::new());
    let reference_render = fig9::render(&reference, 4);

    for jobs in [1usize, 4] {
        for cached in [true, false] {
            let cache = if cached {
                LibCache::new()
            } else {
                LibCache::over(MapCache::disabled())
            };
            let got = fig9_reduced(&Engine::with_jobs(jobs), &cache);
            // Fig9Point holds f64 means; PartialEq equality here really is
            // bit-level, which is exactly the contract under test.
            assert_eq!(
                got, reference,
                "fig9 points diverge at jobs={jobs} cached={cached}"
            );
            assert_eq!(
                fig9::render(&got, 4),
                reference_render,
                "fig9 rendered table diverges at jobs={jobs} cached={cached}"
            );
        }
    }
}

#[test]
fn fault_curve_is_identical_across_jobs_and_traces_are_oracle_clean() {
    // The fault-injection path must honour the same contract as the
    // fault-free grid: a degradation curve run serially and with four
    // workers must agree point-for-point, and the trace captured from
    // either run must replay clean through the trace oracle. count=2
    // kills on the 4-page fabric means at most half the fabric dies, so
    // no scale of the curve can starve a thread.
    let base = cgra_arch::FaultSpec::Mtbf {
        mean: 10_000,
        count: 2,
        seed: 1,
        kind: cgra_arch::FaultKind::Kill,
    };
    let params = quick_params();
    let run = |jobs: usize| {
        let sink = Arc::new(RingSink::unbounded());
        let tracer = Tracer::new(sink.clone());
        let cache = LibCache::new();
        let curve = fig9::degradation_curve_traced(
            &Engine::with_jobs(jobs),
            &cache,
            4,
            4,
            base,
            &params,
            &tracer,
        );
        (curve, sink.drain())
    };

    let (reference, serial_trace) = run(1);
    assert!(reference.iter().all(|(_, _, r)| r.is_ok()), "{reference:?}");
    let report = check_trace(&serial_trace).expect("serial fault trace replays clean");
    assert!(report.runs > 0, "traced runs must be recorded");
    assert_eq!(report.aborted_runs, 0);
    // Faults actually struck — the revoke/shrink machinery was exercised.
    let faulted = reference
        .iter()
        .filter_map(|(_, _, r)| r.as_ref().ok())
        .any(|p| p.faults.any());
    assert!(faulted, "no fault ever fired; the curve tests nothing");

    let (parallel, parallel_trace) = run(4);
    // Fig9Point holds f64 means; equality is bit-level — the contract.
    assert_eq!(parallel, reference, "fault curve diverges at jobs=4");
    assert_eq!(
        fig9::render_curve(&parallel),
        fig9::render_curve(&reference),
        "rendered curve diverges at jobs=4"
    );
    let parallel_report = check_trace(&parallel_trace).expect("parallel fault trace replays clean");
    assert_eq!(
        parallel_report.runs, report.runs,
        "jobs=4 must trace the same number of runs as jobs=1"
    );
    assert_eq!(parallel_report.events, report.events);
}

#[test]
fn recovery_curve_is_identical_across_jobs_and_traces_are_oracle_clean() {
    // Same contract for the transient-fault path: the mttr
    // degradation-and-recovery curve (fault-free row, no-repair row,
    // and the descending-mttr rows) must render byte-identically at
    // jobs=1 and jobs=4, and the traces — now carrying PageRepaired and
    // Reexpanded events — must replay clean through the oracle.
    let base = cgra_arch::FaultSpec::Mtbf {
        mean: 10_000,
        count: 2,
        seed: 1,
        kind: cgra_arch::FaultKind::Transient { repair_after: 500 },
    };
    let params = quick_params();
    let run = |jobs: usize| {
        let sink = Arc::new(RingSink::unbounded());
        let tracer = Tracer::new(sink.clone());
        let cache = LibCache::new();
        let curve = fig9::recovery_curve_traced(
            &Engine::with_jobs(jobs),
            &cache,
            4,
            4,
            &base,
            &params,
            &tracer,
        );
        (curve, sink.drain())
    };

    let (reference, serial_trace) = run(1);
    assert!(reference.iter().all(|(_, _, r)| r.is_ok()), "{reference:?}");
    let report = check_trace(&serial_trace).expect("serial recovery trace replays clean");
    assert!(report.runs > 0, "traced runs must be recorded");
    assert_eq!(report.aborted_runs, 0);
    // Repairs actually fired — the revive/re-expand machinery ran.
    let repaired = reference
        .iter()
        .filter_map(|(_, _, r)| r.as_ref().ok())
        .any(|p| p.faults.repairs > 0);
    assert!(repaired, "no page ever repaired; the curve tests nothing");

    let (parallel, parallel_trace) = run(4);
    assert_eq!(parallel, reference, "recovery curve diverges at jobs=4");
    assert_eq!(
        fig9::render_recovery_curve(&parallel),
        fig9::render_recovery_curve(&reference),
        "rendered recovery curve diverges at jobs=4"
    );
    let parallel_report =
        check_trace(&parallel_trace).expect("parallel recovery trace replays clean");
    assert_eq!(
        parallel_report.runs, report.runs,
        "jobs=4 must trace the same number of runs as jobs=1"
    );
    assert_eq!(parallel_report.events, report.events);
}

#[test]
fn disk_cache_round_trip_is_also_identical() {
    // A profile loaded back from target/mapcache JSON must reproduce the
    // freshly computed report bytes too.
    let dir = std::env::temp_dir().join(format!("mapcache-determinism-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let reference = fig8_reduced(&Engine::with_jobs(1), &MapCache::in_memory());

    let writer = MapCache::persistent_at(&dir);
    let first = fig8_reduced(&Engine::with_jobs(4), &writer);
    assert_eq!(first, reference);

    // A fresh cache over the same directory serves from disk.
    let reader = MapCache::persistent_at(&dir);
    let second = fig8_reduced(&Engine::with_jobs(4), &reader);
    assert_eq!(second, reference, "disk-loaded profiles diverge");
    assert!(
        reader.stats().disk_hits > 0,
        "expected disk hits, got {:?}",
        reader.stats()
    );

    let _ = std::fs::remove_dir_all(&dir);
}
