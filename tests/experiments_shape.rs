//! Smoke tests asserting the *shapes* the paper's evaluation reports —
//! small-scale versions of the Figure 8/9 claims, so regressions in the
//! experimental story fail CI, not just eyeballs.

use cgra_bench::fig9::{run_point, Fig9Params};
use cgra_bench::libcache::LibCache;
use cgra_bench::{fig8, fig9};
use cgra_sim::{CgraNeed, MtConfig};

fn quick() -> Fig9Params {
    Fig9Params {
        seeds: 2,
        work_per_thread: 20_000,
        bursts: 2,
        mt: MtConfig::default(),
        faults: cgra_arch::FaultSpec::Off,
    }
}

/// Fig. 8 shape: constraint losses shrink as pages grow, on every fabric.
#[test]
fn fig8_larger_pages_lose_less() {
    for &(dim, sizes) in &cgra_bench::GRID {
        let small = fig8::summary(&fig8::run_config(dim, sizes[0]))[0].2;
        let large = fig8::summary(&fig8::run_config(dim, *sizes.last().unwrap()))[0].2;
        assert!(
            large >= small - 5.0,
            "{dim}x{dim}: page {} geomean {large:.1}% < page {} geomean {small:.1}%",
            sizes.last().unwrap(),
            sizes[0]
        );
    }
}

/// Fig. 8 shape: at the largest page size, losses are modest.
#[test]
fn fig8_large_pages_nearly_lossless() {
    let gm = fig8::summary(&fig8::run_config(4, 8))[0].2;
    assert!(gm > 85.0, "4x4 page-8 geomean {gm:.1}%");
}

/// Fig. 9 shape: improvement grows with the array (paper's headline).
#[test]
fn fig9_improvement_grows_with_array_size() {
    let cache = LibCache::new();
    let p = quick();
    let i4 = run_point(&cache, 4, 4, CgraNeed::High, 16, &p)
        .unwrap()
        .improvement_pct;
    let i6 = run_point(&cache, 6, 4, CgraNeed::High, 16, &p)
        .unwrap()
        .improvement_pct;
    let i8 = run_point(&cache, 8, 4, CgraNeed::High, 16, &p)
        .unwrap()
        .improvement_pct;
    assert!(
        i4 < i6 && i6 < i8,
        "not monotone: {i4:.0}% {i6:.0}% {i8:.0}%"
    );
    assert!(i8 > 100.0, "8x8 at 16 threads only {i8:.0}%");
}

/// Fig. 9 shape: one thread gains nothing (and may pay the constraint
/// cost), matching the paper's negative bars at low thread counts.
#[test]
fn fig9_single_thread_pays_constraint_cost() {
    let cache = LibCache::new();
    let p = run_point(&cache, 6, 2, CgraNeed::High, 1, &quick()).unwrap();
    assert!(p.improvement_pct <= 0.0, "got {:+.1}%", p.improvement_pct);
}

/// Ablation A1 shape: overhead erodes the benefit monotonically-ish but
/// small overheads are indeed negligible (the paper's assumption).
#[test]
fn ablation_overhead_negligible_when_small() {
    let cache = LibCache::new();
    let sweep = fig9::ablation_overhead(&cache, 8, 4);
    let at0 = sweep[0].1;
    let at10 = sweep[1].1;
    assert!(
        (at0 - at10).abs() < 10.0,
        "10-cycle overhead moved the result from {at0:.1}% to {at10:.1}%"
    );
}
