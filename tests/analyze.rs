//! End-to-end analyzer gate: every artifact the pipeline produces for
//! every kernel in the suite must analyze clean, in both the
//! unconstrained baseline mode and the paper's ring-constrained mode.
//! This is the library-level twin of the `cgra-lint` binary.

use cgra_mt::prelude::*;

/// Map every kernel both ways on the paper's default fabric and hand
/// each mapping to the independent analyzer.
#[test]
fn all_kernels_analyze_clean_in_both_modes() {
    let cgra = CgraConfig::square(4);
    let opts = MapOptions::default();
    for dfg in cgra_mt::dfg::kernels::all() {
        let base = map_baseline(&dfg, &cgra, &opts)
            .unwrap_or_else(|e| panic!("{}: baseline map failed: {e}", dfg.name));
        let rep = analyze_mapping(&base.mdfg, &cgra, &base.mapping, base.mode);
        assert!(
            !rep.has_errors(),
            "{} baseline mapping:\n{}",
            dfg.name,
            rep.render()
        );

        let cons = map_constrained(&dfg, &cgra, &opts)
            .unwrap_or_else(|e| panic!("{}: constrained map failed: {e}", dfg.name));
        let rep = analyze_mapping(&cons.mdfg, &cgra, &cons.mapping, cons.mode);
        assert!(
            !rep.has_errors(),
            "{} constrained mapping:\n{}",
            dfg.name,
            rep.render()
        );

        let paged = PagedSchedule::from_mapping(&cons, &cgra)
            .unwrap_or_else(|e| panic!("{}: paged extraction failed: {e}", dfg.name))
            .trimmed();
        let rep = analyze_paged(&paged, cgra.rf().size());
        assert!(
            !rep.has_errors(),
            "{} paged schedule:\n{}",
            dfg.name,
            rep.render()
        );
    }
}

/// Every halving-chain shrink of every kernel must also analyze clean —
/// the transform's output is audited by code that shares none of its
/// logic.
#[test]
fn all_shrink_plans_analyze_clean() {
    let cgra = CgraConfig::square(4);
    let opts = MapOptions::default();
    let n = cgra.layout().num_pages() as u16;
    for dfg in cgra_mt::dfg::kernels::all() {
        let Ok(cons) = map_constrained(&dfg, &cgra, &opts) else {
            continue;
        };
        let Ok(paged) = PagedSchedule::from_mapping(&cons, &cgra) else {
            continue;
        };
        let paged = paged.trimmed();
        for m in cgra_mt::sim::halving_chain(n) {
            if m >= paged.num_pages {
                continue;
            }
            let plan = transform(&paged, m, Strategy::Auto)
                .unwrap_or_else(|e| panic!("{} at M={m}: {e}", dfg.name));
            let rep = analyze_plan(&paged, &plan);
            assert!(
                !rep.has_errors(),
                "{} plan at M={m}:\n{}",
                dfg.name,
                rep.render()
            );
        }
    }
}

/// A seeded mutation must *not* analyze clean — the gate has teeth.
#[test]
fn analyzer_rejects_a_seeded_break() {
    let report = cgra_mt::analyze::mutate::broken_fir_report(7);
    assert!(report.has_errors());
    assert!(report.codes().contains(&Code::A005BadDataflow));
}
