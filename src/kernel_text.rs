//! A small textual format for loop-kernel DFGs, for the `cgra-mt` CLI.
//!
//! ```text
//! # comments start with '#'
//! kernel dotprod
//! node a   load
//! node b   load
//! node m   mul
//! node acc add
//! node out store
//! edge a m
//! edge b m
//! edge m acc
//! edge acc out
//! carried acc acc 1      # loop-carried, distance 1
//! ```
//!
//! Ops: `load store add sub mul shift logic cmp select abs const route`.

use cgra_dfg::graph::{Dfg, NodeId, OpKind};
use cgra_dfg::DfgBuilder;
use std::collections::HashMap;

/// A parse failure, with its line number (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Line the error occurred on.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn parse_op(s: &str) -> Option<OpKind> {
    Some(match s {
        "load" | "ld" => OpKind::Load,
        "store" | "st" => OpKind::Store,
        "add" => OpKind::Add,
        "sub" => OpKind::Sub,
        "mul" => OpKind::Mul,
        "shift" | "shl" => OpKind::Shift,
        "logic" | "xor" | "and" | "or" => OpKind::Logic,
        "cmp" => OpKind::Cmp,
        "select" | "sel" => OpKind::Select,
        "abs" => OpKind::Abs,
        "const" | "cst" => OpKind::Const,
        "route" | "rt" => OpKind::Route,
        _ => return None,
    })
}

/// Parse the kernel text format into a validated [`Dfg`].
pub fn parse(text: &str) -> Result<Dfg, ParseError> {
    let mut name = String::from("kernel");
    let mut builder: Option<DfgBuilder> = None;
    let mut ids: HashMap<String, NodeId> = HashMap::new();
    let mut pending: Vec<(usize, String, String, u32)> = Vec::new();

    let err = |line: usize, message: String| ParseError { line, message };

    for (ln, raw) in text.lines().enumerate() {
        let line = ln + 1;
        let content = raw.split('#').next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        let mut parts = content.split_whitespace();
        let keyword = parts.next().expect("non-empty line has a token");
        match keyword {
            "kernel" | "name" => {
                name = parts
                    .next()
                    .ok_or_else(|| err(line, "missing kernel name".into()))?
                    .to_string();
                builder.get_or_insert_with(|| DfgBuilder::new(name.clone()));
            }
            "node" => {
                let b = builder.get_or_insert_with(|| DfgBuilder::new(name.clone()));
                let id = parts
                    .next()
                    .ok_or_else(|| err(line, "node needs a name".into()))?;
                let op_s = parts
                    .next()
                    .ok_or_else(|| err(line, format!("node {id} needs an op")))?;
                let op = parse_op(op_s).ok_or_else(|| err(line, format!("unknown op '{op_s}'")))?;
                if ids.contains_key(id) {
                    return Err(err(line, format!("duplicate node '{id}'")));
                }
                ids.insert(id.to_string(), b.labeled(op, id));
            }
            "edge" | "carried" => {
                let src = parts
                    .next()
                    .ok_or_else(|| err(line, "edge needs a source".into()))?;
                let dst = parts
                    .next()
                    .ok_or_else(|| err(line, "edge needs a destination".into()))?;
                let dist: u32 = match parts.next() {
                    Some(d) => d
                        .parse()
                        .map_err(|_| err(line, format!("bad distance '{d}'")))?,
                    None if keyword == "carried" => 1,
                    None => 0,
                };
                if keyword == "carried" && dist == 0 {
                    return Err(err(line, "carried edges need distance >= 1".into()));
                }
                pending.push((line, src.to_string(), dst.to_string(), dist));
            }
            other => return Err(err(line, format!("unknown keyword '{other}'"))),
        }
        if parts.next().is_some() && keyword == "node" {
            return Err(err(line, "trailing tokens".into()));
        }
    }

    let mut b = builder.ok_or_else(|| err(0, "empty kernel description".into()))?;
    for (line, src, dst, dist) in pending {
        let s = *ids
            .get(&src)
            .ok_or_else(|| err(line, format!("unknown node '{src}'")))?;
        let d = *ids
            .get(&dst)
            .ok_or_else(|| err(line, format!("unknown node '{dst}'")))?;
        if dist == 0 {
            b.edge(s, d);
        } else {
            b.carried_edge(s, d, dist);
        }
    }
    b.build()
        .map_err(|e| err(0, format!("invalid kernel: {e}")))
}

/// Resolve a kernel argument: `builtin:<name>` for the benchmark suite, a
/// path otherwise.
pub fn load(arg: &str) -> Result<Dfg, String> {
    if let Some(name) = arg.strip_prefix("builtin:") {
        return cgra_dfg::kernels::by_name(name).ok_or_else(|| {
            format!(
                "unknown builtin '{name}'; available: {}",
                cgra_dfg::kernels::NAMES.join(", ")
            )
        });
    }
    let text = std::fs::read_to_string(arg).map_err(|e| format!("{arg}: {e}"))?;
    parse(&text).map_err(|e| format!("{arg}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOTPROD: &str = "
kernel dotprod
node a   load
node b   load
node m   mul
node acc add
node out store
edge a m
edge b m
edge m acc
edge acc out
carried acc acc 1
";

    #[test]
    fn parses_dotprod() {
        let dfg = parse(DOTPROD).unwrap();
        assert_eq!(dfg.name, "dotprod");
        assert_eq!(dfg.num_nodes(), 5);
        assert_eq!(dfg.num_edges(), 5);
        assert!(dfg.has_recurrence());
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let dfg =
            parse("# hi\n\nkernel t\nnode x load # inline\nnode y store\nedge x y\n").unwrap();
        assert_eq!(dfg.num_nodes(), 2);
    }

    #[test]
    fn unknown_op_is_an_error() {
        let e = parse("kernel t\nnode x fancyop\n").unwrap_err();
        assert!(e.message.contains("unknown op"));
        assert_eq!(e.line, 2);
    }

    #[test]
    fn unknown_node_in_edge() {
        let e = parse("kernel t\nnode x load\nedge x ghost\n").unwrap_err();
        assert!(e.message.contains("ghost"));
    }

    #[test]
    fn duplicate_node_rejected() {
        let e = parse("kernel t\nnode x load\nnode x add\n").unwrap_err();
        assert!(e.message.contains("duplicate"));
    }

    #[test]
    fn zero_distance_cycle_rejected() {
        let e = parse("kernel t\nnode a add\nnode b add\nedge a b\nedge b a\n").unwrap_err();
        assert!(e.message.contains("invalid kernel"));
    }

    #[test]
    fn builtin_loading() {
        assert!(load("builtin:mpeg2").is_ok());
        assert!(load("builtin:nope").is_err());
    }

    #[test]
    fn parsed_kernel_maps_and_executes() {
        use cgra_mapper::{map_constrained, MapOptions};
        let dfg = parse(DOTPROD).unwrap();
        let cgra = cgra_arch::CgraConfig::square(4);
        let mapped = map_constrained(&dfg, &cgra, &MapOptions::default()).unwrap();
        let inputs = cgra_exec::InputStreams::random(&dfg, 6, 1);
        let golden = cgra_exec::interpret(&dfg, &inputs, 6).unwrap();
        let out = cgra_exec::execute(
            &mapped.mdfg,
            cgra.mesh(),
            &cgra_exec::MachineSchedule::from_mapping(&mapped.mapping),
            &inputs,
            6,
        )
        .unwrap();
        for (store, values) in &golden {
            assert_eq!(out.get(store), Some(values));
        }
    }
}
