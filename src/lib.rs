//! # cgra-mt — Multithreading on CGRAs
//!
//! A from-scratch reproduction of *"Enabling Multithreading on CGRAs"*
//! (ICPP 2011): paging-constrained modulo scheduling plus the
//! **PageMaster** runtime transformation that shrinks and expands kernel
//! schedules at page granularity so several threads can share one CGRA.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`arch`] — the CGRA fabric model (mesh, rotating RFs, pages,
//!   mirroring).
//! * [`dfg`] — loop-kernel dataflow graphs and the 11-benchmark suite.
//! * [`mapper`] — modulo-scheduling mappers: baseline, simulated
//!   annealing, and the paper's paging-constrained variants.
//! * [`core`] — page-level schedules, the PageMaster transformation, and
//!   its validators (the paper's contribution).
//! * [`sim`] — the discrete-event multithreaded-system simulator behind
//!   the Figure 9 experiments.
//! * [`exec`] — functional execution: a golden DFG interpreter and a
//!   cycle-level machine that prove schedules compute correct values.
//! * [`obs`] — zero-cost-when-off observability: typed trace events from
//!   the mapper/transform/simulator, JSONL sinks, folded metrics, and
//!   the trace-replay oracle.
//! * [`analyze`] — the whole-pipeline static analyzer: coded diagnostics
//!   (`A001`–`A405`) re-deriving every artifact's legality from first
//!   principles, independent of the code that produced it.
//!
//! ## Quick start
//!
//! ```
//! use cgra_mt::prelude::*;
//!
//! // A 4x4 CGRA divided into four 2x2 pages.
//! let cgra = CgraConfig::square(4);
//!
//! // Compile a kernel under the paper's paging constraints...
//! let kernel = cgra_mt::dfg::kernels::mpeg2();
//! let mapped = map_constrained(&kernel, &cgra, &MapOptions::default()).unwrap();
//!
//! // ...and shrink it at "runtime" to half the fabric.
//! let paged = PagedSchedule::from_mapping(&mapped, &cgra).unwrap();
//! let plan = transform(&paged, 2, Strategy::Auto).unwrap();
//! assert!(validate_plan(&paged, &plan).is_empty());
//! assert_eq!(plan.ii_q_ceil(), mapped.ii() * 2);
//! ```

#![warn(missing_docs)]

pub mod kernel_text;

pub use cgra_analyze as analyze;
pub use cgra_arch as arch;
pub use cgra_core as core;
pub use cgra_dfg as dfg;
pub use cgra_exec as exec;
pub use cgra_mapper as mapper;
pub use cgra_obs as obs;
pub use cgra_sim as sim;

/// The commonly-used surface in one import.
pub mod prelude {
    pub use cgra_analyze::{
        analyze_degraded, analyze_fold, analyze_mapping, analyze_paged, analyze_plan,
        analyze_profile, Code, Diagnostic, Report, Severity, Span,
    };
    pub use cgra_arch::{
        CgraConfig, FaultKind, FaultMap, FaultSpec, Mesh, Orientation, PageHealth, PageId, PeId,
    };
    pub use cgra_core::transform::{transform, Strategy};
    pub use cgra_core::{
        fold_to_page, transform_block, transform_degraded, transform_pagemaster, validate_fold,
        validate_plan, DegradedPlan, PagedSchedule, ShrinkPlan,
    };
    pub use cgra_dfg::{Dfg, DfgBuilder, OpKind};
    pub use cgra_exec::{execute, interpret, ExecError, InputStreams, MachineSchedule};
    pub use cgra_mapper::{
        map_anneal, map_baseline, map_constrained, map_constrained_strict, validate_mapping,
        MapMode, MapOptions, MapResult,
    };
    pub use cgra_sim::{
        generate, improvement_percent, simulate_baseline, simulate_multithreaded,
        simulate_multithreaded_faulty, CgraNeed, FaultStats, KernelLibrary, MtConfig, SimError,
        WorkloadParams,
    };
}
