//! The `cgra-mt` command line: analyze, map, shrink, and execute loop
//! kernels on a modelled CGRA.
//!
//! ```console
//! $ cgra-mt analyze builtin:sor --cgra 4
//! $ cgra-mt map builtin:mpeg2 --cgra 4 --page-size 4 --mode constrained
//! $ cgra-mt shrink builtin:laplace --pages 2
//! $ cgra-mt exec my_kernel.dfg --iters 16
//! $ cgra-mt dot builtin:sobel > sobel.dot
//! $ cgra-mt kernels
//! ```
//!
//! Kernel files use the format documented in
//! [`cgra_mt::kernel_text`]; `builtin:<name>` loads a benchmark kernel.

use cgra_mt::kernel_text;
use cgra_mt::prelude::*;

struct Args {
    positional: Vec<String>,
    flags: std::collections::HashMap<String, String>,
}

impl Args {
    fn parse() -> Args {
        let mut positional = Vec::new();
        let mut flags = std::collections::HashMap::new();
        let mut it = std::env::args().skip(1).peekable();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                let value = it
                    .peek()
                    .filter(|v| !v.starts_with("--"))
                    .cloned()
                    .inspect(|_v| {
                        it.next();
                    })
                    .unwrap_or_else(|| "true".into());
                flags.insert(key.to_string(), value);
            } else {
                positional.push(a);
            }
        }
        Args { positional, flags }
    }

    fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.flags
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    fn str(&self, key: &str, default: &str) -> String {
        self.flags
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.into())
    }
}

fn fabric(args: &Args) -> CgraConfig {
    let dim: u16 = args.num("cgra", 4);
    let page: usize = args.num("page-size", 4);
    CgraConfig::square(dim)
        .with_page_size(page)
        .unwrap_or_else(|e| fail(&format!("bad fabric: {e}")))
        .with_rf_size(args.num("rf", 32))
}

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1)
}

fn main() {
    let args = Args::parse();
    let Some(cmd) = args.positional.first().map(String::as_str) else {
        print_usage();
        return;
    };
    match cmd {
        "kernels" => {
            for k in cgra_mt::dfg::kernels::all() {
                println!(
                    "{:>8}: {:>2} ops, {} mem, {}",
                    k.name,
                    k.num_nodes(),
                    k.num_mem_ops(),
                    if k.has_recurrence() {
                        "recurrent"
                    } else {
                        "parallel"
                    }
                );
            }
        }
        "analyze" => {
            let dfg = load(&args);
            let cgra = fabric(&args);
            println!(
                "kernel '{}': {} ops, {} edges, {} memory ops",
                dfg.name,
                dfg.num_nodes(),
                dfg.num_edges(),
                dfg.num_mem_ops()
            );
            println!("RecMII        = {}", cgra_mt::dfg::rec_mii(&dfg));
            println!(
                "ResMII        = {} ({} PEs)",
                cgra_mt::dfg::res_mii(&dfg, cgra.num_pes()),
                cgra.num_pes()
            );
            println!(
                "MII           = {}",
                cgra_mt::dfg::mii(&dfg, cgra.num_pes())
            );
            println!("recurrent     = {}", dfg.has_recurrence());
        }
        "dot" => {
            let dfg = load(&args);
            print!("{}", cgra_mt::dfg::dot::to_dot(&dfg));
        }
        "map" => {
            let dfg = load(&args);
            let cgra = fabric(&args);
            let opts = MapOptions::default();
            let mode = args.str("mode", "constrained");
            let result = match mode.as_str() {
                "baseline" => map_baseline(&dfg, &cgra, &opts),
                "constrained" => map_constrained(&dfg, &cgra, &opts),
                "strict" => map_constrained_strict(&dfg, &cgra, &opts),
                "anneal" => map_anneal(&dfg, &cgra, &opts, &Default::default()),
                other => fail(&format!("unknown mode '{other}'")),
            }
            .unwrap_or_else(|e| fail(&format!("mapping failed: {e}")));
            let violations = validate_mapping(&result.mdfg, &cgra, &result.mapping, result.mode);
            println!(
                "mode {mode}: II = {}, makespan = {}, {} route hops, utilization {:.1}%",
                result.ii(),
                result.mapping.makespan(),
                result.mapping.total_route_hops(),
                result.mapping.utilization(cgra.num_pes()) * 100.0
            );
            println!(
                "validation: {}",
                if violations.is_empty() {
                    "clean".into()
                } else {
                    format!("{} violations", violations.len())
                }
            );
            if args.flags.contains_key("placements") {
                for (i, p) in result.mapping.placements.iter().enumerate() {
                    let node = result.mdfg.dfg.node(cgra_mt::dfg::NodeId(i as u32));
                    println!(
                        "  {:>12} {:>4} @ ({}, t{})",
                        node.label.clone().unwrap_or_else(|| format!("n{i}")),
                        node.op.mnemonic(),
                        p.pe,
                        p.time
                    );
                }
            }
        }
        "shrink" => {
            let dfg = load(&args);
            let cgra = fabric(&args);
            let m: u16 = args.num("pages", 1);
            let mapped = map_constrained(&dfg, &cgra, &MapOptions::default())
                .unwrap_or_else(|e| fail(&format!("mapping failed: {e}")));
            let paged = PagedSchedule::from_mapping(&mapped, &cgra)
                .unwrap_or_else(|e| fail(&format!("extraction failed: {e}")))
                .trimmed();
            println!(
                "compiled: II = {}, occupies {} of {} pages",
                mapped.ii(),
                paged.num_pages,
                cgra.layout().num_pages()
            );
            let target = m.min(paged.num_pages);
            let plan = transform(&paged, target, Strategy::Auto)
                .unwrap_or_else(|e| fail(&format!("transform failed: {e}")));
            let v = validate_plan(&paged, &plan);
            println!(
                "shrunk to {} page(s): II_q = {:.2} (x{:.2}), strategy {:?}, validation {}",
                plan.m,
                plan.ii_q(),
                plan.ii_q() / mapped.ii() as f64,
                plan.strategy,
                if v.is_empty() { "clean" } else { "FAILED" }
            );
        }
        "exec" => {
            let dfg = load(&args);
            let cgra = fabric(&args);
            let iters: usize = args.num("iters", 16);
            let mapped = map_constrained(&dfg, &cgra, &MapOptions::default())
                .unwrap_or_else(|e| fail(&format!("mapping failed: {e}")));
            let inputs = InputStreams::random(&dfg, iters, args.num("seed", 0u64));
            let golden = interpret(&dfg, &inputs, iters)
                .unwrap_or_else(|e| fail(&format!("interpretation failed: {e}")));
            let out = execute(
                &mapped.mdfg,
                cgra.mesh(),
                &MachineSchedule::from_mapping(&mapped.mapping),
                &inputs,
                iters,
            )
            .unwrap_or_else(|e| fail(&format!("execution failed: {e}")));
            let ok = golden
                .iter()
                .all(|(store, values)| out.get(store) == Some(values));
            for (store, values) in &golden {
                println!("store n{store}: {:?}", &values[..values.len().min(8)]);
            }
            println!(
                "machine vs interpreter over {iters} iterations: {}",
                if ok { "MATCH" } else { "MISMATCH" }
            );
            if !ok {
                std::process::exit(1);
            }
        }
        other => {
            eprintln!("unknown command '{other}'\n");
            print_usage();
            std::process::exit(2);
        }
    }
}

fn load(args: &Args) -> cgra_mt::dfg::Dfg {
    let Some(arg) = args.positional.get(1) else {
        fail("missing kernel argument (path or builtin:<name>)");
    };
    kernel_text::load(arg).unwrap_or_else(|e| fail(&e))
}

fn print_usage() {
    println!(
        "cgra-mt — map, shrink and execute loop kernels on a modelled CGRA

USAGE:
  cgra-mt kernels                               list builtin benchmark kernels
  cgra-mt analyze  <kernel> [--cgra N]          II bounds and structure
  cgra-mt dot      <kernel>                     Graphviz dump
  cgra-mt map      <kernel> [--cgra N] [--page-size S]
                   [--mode baseline|constrained|strict|anneal] [--placements]
  cgra-mt shrink   <kernel> --pages M           runtime PageMaster shrink
  cgra-mt exec     <kernel> [--iters K]         functional check vs interpreter

<kernel> is a file in the kernel text format (see docs of
cgra_mt::kernel_text) or builtin:<name>."
    );
}
