//! Figure 6 — shrinking a whole-array schedule to a single page, with the
//! intra-page mappings mirrored across the inter-page dependency
//! directions.
//!
//! Run with: `cargo run --release --example shrink_to_one_page`

use cgra_mt::core::fold::{orientation_plan, page_footprint, peak_rf_requirement};
use cgra_mt::prelude::*;

fn main() {
    let cgra = CgraConfig::square(4).with_rf_size(32);
    let kernel = cgra_mt::dfg::kernels::laplace();
    let mapped = map_constrained(&kernel, &cgra, &MapOptions::default()).expect("maps");
    println!(
        "'{}' constrained to the full 4x4: II = {}, {} pages of 2x2\n",
        kernel.name,
        mapped.ii(),
        cgra.layout().num_pages()
    );

    // The Fig. 6 mirror plan.
    println!("Orientation per source page (Fig. 6's mirroring rule):");
    for (i, o) in orientation_plan(&cgra).iter().enumerate() {
        println!("  page {i}: {o:?}");
    }

    // Fold everything onto page 0.
    let folded = fold_to_page(&mapped, &cgra, PageId(0)).expect("folds");
    let violations = validate_fold(&mapped, &cgra, &folded);
    assert!(violations.is_empty(), "{violations:?}");
    println!(
        "\nFolded onto page 0: II_q = {} = {} pages x II {} — validated at PE level.",
        folded.ii_q,
        cgra.layout().num_pages(),
        mapped.ii()
    );
    println!(
        "Peak rotating-register need: {} (paper's §VI-E claims N = {} suffice —\n\
         fanout parking makes the honest requirement larger; see EXPERIMENTS.md)\n",
        peak_rf_requirement(&mapped, &cgra, &folded),
        cgra.layout().num_pages()
    );

    // Show where each source page's ops land within the folded page.
    for page in 0..cgra.layout().num_pages() as u16 {
        let fp = page_footprint(&folded, &cgra, &mapped, PageId(page));
        if fp.is_empty() {
            continue;
        }
        let cells: Vec<String> = fp
            .iter()
            .map(|(node, pos)| format!("n{node}@{pos}"))
            .collect();
        println!(
            "source page {page} -> folded positions: {}",
            cells.join(" ")
        );
    }

    // Timing of the first iteration: pages execute in dependence order.
    println!("\nFolded timeline (first iteration):");
    let mut by_time: Vec<(u64, usize)> = folded
        .ops
        .iter()
        .enumerate()
        .map(|(i, op)| (op.time, i))
        .collect();
    by_time.sort_unstable();
    for (time, node) in by_time.iter().take(12) {
        let n = mapped.mdfg.dfg.node(cgra_mt::dfg::NodeId(*node as u32));
        println!(
            "  t={time:<3} {} ({})",
            n.label.as_deref().unwrap_or("?"),
            n.op.mnemonic()
        );
    }
}
