//! Figure 7 — the PageMaster transformation from N = 6 pages to M = 5
//! columns: two-hop interleave initialization, tails, and the PlacePage
//! cases, on the paper's fully-symmetric ring input.
//!
//! Run with: `cargo run --release --example six_to_five`

use cgra_mt::prelude::*;

fn main() {
    // The paper's Fig. 7 input: a full ring of 6 pages at II = 1.
    let p = PagedSchedule::synthetic_canonical(6, 1, true);
    println!(
        "Input: N = {} pages, II_p = {}, full ring (wrap dependences)\n",
        p.num_pages, p.ii
    );

    let plan = transform_pagemaster(&p, 5).expect("transforms");
    let violations = validate_plan(&p, &plan);
    assert!(violations.is_empty(), "{violations:?}");

    println!(
        "PageMaster plan: M = {}, steady-state period = {} iteration(s), span = {} cycles",
        plan.m, plan.period, plan.span
    );
    println!(
        "II_q = {:.2} per iteration (capacity bound N/M = {:.2}; block strategy would give {})\n",
        plan.ii_q(),
        6.0 / 5.0,
        2
    );

    // Render the first period as a column x time grid.
    let horizon = plan.span as usize * 2;
    let mut grid = vec![vec!["  .".to_string(); plan.m as usize]; horizon];
    for iter in 0..plan.period as u64 * 2 {
        for page in 0..p.num_pages {
            let c = plan.at(page, 0, iter);
            if (c.time as usize) < horizon {
                grid[c.time as usize][c.col as usize] = format!(" p{page}");
            }
        }
    }
    println!("time | col0 col1 col2 col3 col4");
    for (t, row) in grid.iter().enumerate() {
        println!("{t:>4} | {}", row.join(" "));
    }

    println!("\nEvery dependence lands within one column of its producer and");
    println!("strictly later in time — checked by the §VI-C validator.");

    // Show the whole halving family, like the runtime would use.
    println!("\nShrink family for the same schedule:");
    for m in [6u16, 5, 4, 3, 2, 1] {
        let plan = transform_pagemaster(&p, m).expect("transforms");
        assert!(validate_plan(&p, &plan).is_empty());
        println!(
            "  M={m}: II_q = {:.2} (bound {:.2}), period {}",
            plan.ii_q(),
            6.0 / m as f64,
            plan.period
        );
    }
}
