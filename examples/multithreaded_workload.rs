//! A Figure 9-style experiment in miniature: sweep thread counts on one
//! fabric and watch the multithreaded CGRA pull ahead of the FCFS
//! baseline.
//!
//! Run with: `cargo run --release --example multithreaded_workload [dim]`

use cgra_mt::prelude::*;

fn main() {
    let dim: u16 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(6);
    let cgra = CgraConfig::square(dim);
    println!(
        "Compiling the 11-kernel library for a {dim}x{dim} CGRA ({} pages)...\n",
        cgra.layout().num_pages()
    );
    let lib = KernelLibrary::compile_benchmarks(&cgra, &MapOptions::default()).expect("library");

    println!("kernel    footprint(pages)  II(full)  II(half)  II(1 page)");
    let n = lib.num_pages;
    for p in &lib.profiles {
        println!(
            "{:>8}  {:>16}  {:>8}  {:>8}  {:>10}",
            p.name,
            p.used_pages,
            p.ii_constrained,
            p.ii_at((n / 2).max(1)),
            p.ii_at(1)
        );
    }

    println!("\nthreads | need  | FCFS makespan | MT makespan | improvement | shrinks");
    for &threads in &[1usize, 2, 4, 8, 16] {
        for need in CgraNeed::ALL {
            let workload = generate(
                &lib,
                &WorkloadParams {
                    threads,
                    need,
                    work_per_thread: 60_000,
                    bursts: 4,
                    seed: 11,
                },
            );
            let base = simulate_baseline(&lib, &workload);
            let mt =
                simulate_multithreaded(&lib, &workload, MtConfig::default()).expect("simulates");
            println!(
                "{threads:>7} | {:>5} | {:>13} | {:>11} | {:>+10.1}% | {:>7}",
                need.label(),
                base.makespan,
                mt.makespan,
                improvement_percent(base.makespan, mt.makespan),
                mt.shrinks
            );
        }
    }
    println!(
        "\nLarger fabrics host more co-running kernels: try\n  cargo run --release --example multithreaded_workload 8"
    );
}
