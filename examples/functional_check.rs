//! Functional equivalence, end to end: run every benchmark kernel through
//! (a) direct dataflow interpretation, (b) cycle-level execution of the
//! baseline mapping, (c) the paging-constrained mapping, and (d) the
//! schedule folded onto a single page — and check that all four compute
//! identical store streams.
//!
//! Run with: `cargo run --release --example functional_check`

use cgra_mt::prelude::*;

fn main() {
    let iters = 16;
    let cgra = CgraConfig::square(4).with_rf_size(64);
    let opts = MapOptions::default();
    println!(
        "Executing {iters} iterations of each kernel four ways on a 4x4 CGRA\n\
         (golden interpreter / baseline map / constrained map / 1-page fold):\n"
    );
    println!("kernel     stores  values/stream  baseline  constrained  folded");

    for kernel in cgra_mt::dfg::kernels::all() {
        let inputs = InputStreams::random(&kernel, iters, 0xC0FFEE);
        let golden = interpret(&kernel, &inputs, iters).expect("interprets");

        let base = map_baseline(&kernel, &cgra, &opts).expect("baseline maps");
        let cons = map_constrained(&kernel, &cgra, &opts).expect("constrained maps");
        let folded = fold_to_page(&cons, &cgra, PageId(0)).expect("folds");

        let run = |mdfg: &cgra_mt::mapper::MapDfg, sched: MachineSchedule| -> bool {
            match execute(mdfg, cgra.mesh(), &sched, &inputs, iters) {
                Ok(out) => golden
                    .iter()
                    .all(|(store, values)| out.get(store) == Some(values)),
                Err(e) => {
                    eprintln!("  {}: execution failed: {e}", kernel.name);
                    false
                }
            }
        };
        let ok_base = run(&base.mdfg, MachineSchedule::from_mapping(&base.mapping));
        let ok_cons = run(&cons.mdfg, MachineSchedule::from_mapping(&cons.mapping));
        let ok_fold = run(&cons.mdfg, MachineSchedule::from_fold(&folded));

        println!(
            "{:>8}   {:>5}  {:>13}  {:>8}  {:>11}  {:>6}",
            kernel.name,
            golden.len(),
            iters,
            if ok_base { "match" } else { "FAIL" },
            if ok_cons { "match" } else { "FAIL" },
            if ok_fold { "match" } else { "FAIL" },
        );
        assert!(ok_base && ok_cons && ok_fold, "{} diverged", kernel.name);
    }

    println!(
        "\nAll four execution paths agree on every store of every kernel:\n\
         the paging constraints and the PageMaster fold preserve semantics,\n\
         not just the scheduling invariants."
    );
}
