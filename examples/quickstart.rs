//! Quickstart: compile a kernel for a CGRA, shrink it at runtime, and see
//! what multithreading buys — the paper's pipeline end to end.
//!
//! Run with: `cargo run --release --example quickstart`

use cgra_mt::prelude::*;

fn main() {
    // ------------------------------------------------------------------
    // 1. The fabric: a 4x4 CGRA (Fig. 1), divided into four 2x2 pages.
    // ------------------------------------------------------------------
    let cgra = CgraConfig::square(4);
    println!(
        "CGRA: {}x{} PEs, {} pages of {:?}, rotating RF of {} regs/PE\n",
        cgra.mesh().rows(),
        cgra.mesh().cols(),
        cgra.layout().num_pages(),
        cgra.layout().shape(),
        cgra.rf().size()
    );

    // ------------------------------------------------------------------
    // 2. A kernel: the paper's Fig. 2 MPEG2 loop.
    // ------------------------------------------------------------------
    let kernel = cgra_mt::dfg::kernels::mpeg2();
    println!(
        "Kernel '{}': {} ops ({} memory), RecMII {}, ResMII(16 PEs) {}\n",
        kernel.name,
        kernel.num_nodes(),
        kernel.num_mem_ops(),
        cgra_mt::dfg::rec_mii(&kernel),
        cgra_mt::dfg::res_mii(&kernel, 16),
    );

    // ------------------------------------------------------------------
    // 3. Compile twice: unconstrained baseline vs paging-constrained.
    // ------------------------------------------------------------------
    let opts = MapOptions::default();
    let base = map_baseline(&kernel, &cgra, &opts).expect("baseline mapping");
    let cons = map_constrained(&kernel, &cgra, &opts).expect("constrained mapping");
    assert!(validate_mapping(&cons.mdfg, &cgra, &cons.mapping, MapMode::Constrained).is_empty());
    println!(
        "Baseline II = {}, constrained II = {} (constraint cost: {:.0}%)",
        base.ii(),
        cons.ii(),
        (cons.ii() as f64 / base.ii() as f64 - 1.0) * 100.0
    );

    // ------------------------------------------------------------------
    // 4. Runtime shrink: another thread arrives; give up half the array.
    // ------------------------------------------------------------------
    let paged = PagedSchedule::from_mapping(&cons, &cgra).expect("page schedule");
    println!(
        "Page schedule: {} pages x II {} ({} occupied cells)",
        paged.num_pages,
        paged.ii,
        paged.cells.iter().filter(|c| !c.is_empty()).count()
    );
    for m in [2u16, 1] {
        let plan = transform(
            &paged.trimmed(),
            m.min(paged.trimmed().num_pages),
            Strategy::Auto,
        )
        .expect("transform");
        let violations = validate_plan(&paged.trimmed(), &plan);
        assert!(violations.is_empty(), "{violations:?}");
        println!(
            "  shrink to {} page(s): II_q = {:.1} (x{:.2} slowdown), strategy {:?}, validated",
            plan.m,
            plan.ii_q(),
            plan.ii_q() / cons.ii() as f64,
            plan.strategy
        );
    }

    // ------------------------------------------------------------------
    // 5. System view: 4 threads sharing the CGRA (Fig. 9 in miniature).
    // ------------------------------------------------------------------
    let lib = KernelLibrary::compile_benchmarks(&cgra, &opts).expect("library");
    let workload = generate(
        &lib,
        &WorkloadParams {
            threads: 4,
            need: CgraNeed::High,
            work_per_thread: 40_000,
            bursts: 3,
            seed: 42,
        },
    );
    let fcfs = simulate_baseline(&lib, &workload);
    let mt = simulate_multithreaded(&lib, &workload, MtConfig::default()).expect("simulates");
    println!(
        "\n4 threads, 87.5% CGRA need: FCFS makespan {} vs multithreaded {} ({:+.1}%)",
        fcfs.makespan,
        mt.makespan,
        improvement_percent(fcfs.makespan, mt.makespan)
    );
    println!(
        "  {} shrink / {} expand transformations, zero-stall: {}",
        mt.shrinks,
        mt.expands,
        mt.stall_cycles == 0
    );
}
