//! Figure 3 — recurrences bound the II, and unrolling cannot help: the
//! motivation for multithreading.
//!
//! Run with: `cargo run --release --example recurrence_limit`

use cgra_mt::dfg::transform::unroll;
use cgra_mt::dfg::{kernels, rec_mii};
use cgra_mt::prelude::*;

fn main() {
    let kernel = kernels::fig3_kernel();
    println!(
        "Fig. 3 kernel: {} ops, recurrence a->b->a (distance 1), RecMII = {}\n",
        kernel.num_nodes(),
        rec_mii(&kernel)
    );

    println!("unroll | ops | RecMII | effective II/iter | max utilization of a 4x4");
    for factor in 1..=4u32 {
        let u = unroll(&kernel, factor);
        let rmii = rec_mii(&u);
        let eff = rmii as f64 / factor as f64;
        // Utilization: ops per II window over the whole fabric.
        let util = u.num_nodes() as f64 / (16.0 * rmii as f64) * 100.0;
        println!(
            "  x{factor}   | {:>3} | {:>6} | {:>17.1} | {util:>23.1}%",
            u.num_nodes(),
            rmii,
            eff
        );
    }

    println!();
    // Map the unrolled variants to confirm the schedule agrees with the
    // analysis.
    let cgra = CgraConfig::square(4);
    for factor in [1u32, 2] {
        let u = unroll(&kernel, factor);
        let mapped = map_baseline(&u, &cgra, &MapOptions::default()).expect("maps");
        println!(
            "mapped x{factor}: II = {} => effective II per original iteration = {:.1}",
            mapped.ii(),
            mapped.ii() as f64 / factor as f64
        );
    }
    println!(
        "\nUnrolling never beats the recurrence bound (paper, Fig. 3): the\n\
         fabric idles no matter its size — only multithreading can use it."
    );
}
