//! Figure 2 — the MPEG2 kernel, its DFG, and a modulo schedule on a 4x4.
//!
//! Prints the DFG in DOT, the software-pipelined schedule, and the PE
//! placement grid, mirroring the panels of the paper's Fig. 2.
//!
//! Run with: `cargo run --release --example mpeg2_mapping`

use cgra_mt::prelude::*;

fn main() {
    let cgra = CgraConfig::square(4);
    let kernel = cgra_mt::dfg::kernels::fig2_kernel();

    println!(
        "--- DFG (Graphviz) ---\n{}",
        cgra_mt::dfg::dot::to_dot(&kernel)
    );

    let mapped = map_baseline(&kernel, &cgra, &MapOptions::default()).expect("maps");
    println!(
        "--- Modulo schedule, II = {} (paper's Fig. 2 shows II = 1 on an\n--- idealised fabric; ours charges the row-bus for the 4 memory ops) ---\n",
        mapped.ii()
    );

    // Schedule table: rows = time, columns = ops started.
    let makespan = mapped.mapping.makespan();
    for t in 0..makespan {
        let ops: Vec<String> = mapped
            .mapping
            .placements
            .iter()
            .enumerate()
            .filter(|(_, p)| p.time == t)
            .map(|(i, p)| {
                let node = mapped.mdfg.dfg.node(cgra_mt::dfg::NodeId(i as u32));
                format!(
                    "{}:{} on {}",
                    node.label.as_deref().unwrap_or("?"),
                    node.op.mnemonic(),
                    p.pe
                )
            })
            .collect();
        println!("t={t}: {}", ops.join(", "));
    }

    // Placement grid.
    println!("\n--- PE grid (node labels; '.' = unused) ---");
    let mesh = cgra.mesh();
    for r in 0..mesh.rows() {
        let mut row = String::new();
        for c in 0..mesh.cols() {
            let pe = mesh.pe(cgra_mt::arch::Pos::new(r, c));
            let label = mapped
                .mapping
                .placements
                .iter()
                .enumerate()
                .find(|(_, p)| p.pe == pe)
                .map(|(i, _)| {
                    mapped
                        .mdfg
                        .dfg
                        .node(cgra_mt::dfg::NodeId(i as u32))
                        .label
                        .clone()
                        .unwrap_or_else(|| i.to_string())
                })
                .unwrap_or_else(|| ".".into());
            row.push_str(&format!("{label:>3} "));
        }
        println!("{row}");
    }
    let v = validate_mapping(&mapped.mdfg, &cgra, &mapped.mapping, MapMode::Baseline);
    assert!(v.is_empty());
    println!("\nSchedule validated: every operand routed, no resource conflicts.");
}
