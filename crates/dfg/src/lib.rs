//! # cgra-dfg — data-flow graphs for CGRA loop kernels
//!
//! CGRAs accelerate innermost loops. A loop body is represented as a
//! data-flow graph (DFG): vertices are micro-operations (loads, stores,
//! arithmetic/logic ops) and edges are data dependences, each annotated
//! with a *distance* — the number of loop iterations the dependence spans
//! (0 for intra-iteration dependences, ≥ 1 for loop-carried ones; paper
//! §II and Fig. 2/3).
//!
//! * [`graph`] — the IR: [`Dfg`], [`Node`], [`Edge`], [`OpKind`].
//! * [`builder`] — fluent construction with validation.
//! * [`analysis`] — ResMII/RecMII bounds, ASAP/ALAP under an II, node
//!   heights, strongly connected components.
//! * [`transform`] — loop unrolling (used to reproduce the paper's Fig. 3
//!   argument that unrolling cannot beat the recurrence bound).
//! * [`kernels`] — the paper's benchmark suite, reconstructed.
//! * [`random`] — seeded random DFG generation for property tests.
//! * [`dot`] — Graphviz export.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod analysis;
pub mod builder;
pub mod dot;
pub mod graph;
pub mod kernels;
pub mod random;
pub mod transform;
pub mod validate;

pub use analysis::{mii, rec_mii, res_mii};
pub use builder::DfgBuilder;
pub use graph::{Dfg, Edge, EdgeId, Node, NodeId, OpKind};
