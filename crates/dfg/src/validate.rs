//! DFG invariant checking.

use crate::graph::{Dfg, NodeId};

/// Why a DFG failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// The graph has no nodes.
    Empty,
    /// An edge endpoint is out of range.
    DanglingEdge {
        /// Index of the offending edge.
        edge_index: usize,
    },
    /// A dependence cycle whose edges all have distance 0 — the loop body
    /// would depend on itself within one iteration, which is unschedulable.
    ZeroDistanceCycle {
        /// A node on the cycle.
        witness: NodeId,
    },
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidationError::Empty => write!(f, "DFG has no nodes"),
            ValidationError::DanglingEdge { edge_index } => {
                write!(f, "edge #{edge_index} references a node out of range")
            }
            ValidationError::ZeroDistanceCycle { witness } => {
                write!(f, "zero-distance dependence cycle through {witness}")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// Check all DFG invariants.
pub fn validate(dfg: &Dfg) -> Result<(), ValidationError> {
    if dfg.num_nodes() == 0 {
        return Err(ValidationError::Empty);
    }
    for (i, e) in dfg.edges().enumerate() {
        if e.src.index() >= dfg.num_nodes() || e.dst.index() >= dfg.num_nodes() {
            return Err(ValidationError::DanglingEdge { edge_index: i });
        }
    }
    // Zero-distance cycle detection: DFS over distance-0 edges only.
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Gray,
        Black,
    }
    let mut mark = vec![Mark::White; dfg.num_nodes()];
    // Iterative DFS with an explicit stack to avoid recursion limits on
    // large random graphs.
    for start in dfg.node_ids() {
        if mark[start.index()] != Mark::White {
            continue;
        }
        let mut stack: Vec<(NodeId, bool)> = vec![(start, false)];
        while let Some((n, processed)) = stack.pop() {
            if processed {
                mark[n.index()] = Mark::Black;
                continue;
            }
            if mark[n.index()] == Mark::Black {
                continue;
            }
            if mark[n.index()] == Mark::Gray {
                continue;
            }
            mark[n.index()] = Mark::Gray;
            stack.push((n, true));
            for e in dfg.succ_edges(n) {
                let edge = dfg.edge(e);
                if edge.distance != 0 {
                    continue;
                }
                match mark[edge.dst.index()] {
                    Mark::White => stack.push((edge.dst, false)),
                    Mark::Gray => {
                        return Err(ValidationError::ZeroDistanceCycle { witness: edge.dst })
                    }
                    Mark::Black => {}
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DfgBuilder;
    use crate::graph::OpKind;

    #[test]
    fn valid_chain_passes() {
        let mut b = DfgBuilder::new("chain");
        let a = b.node(OpKind::Load);
        let c = b.apply(OpKind::Add, &[a]);
        b.apply(OpKind::Store, &[c]);
        assert!(b.build().is_ok());
    }

    #[test]
    fn carried_cycle_passes() {
        let mut b = DfgBuilder::new("acc");
        let a = b.node(OpKind::Add);
        b.carried_edge(a, a, 1);
        assert!(b.build().is_ok());
    }

    #[test]
    fn mixed_cycle_with_carried_backedge_passes() {
        let mut b = DfgBuilder::new("rec");
        let a = b.node(OpKind::Add);
        let c = b.node(OpKind::Mul);
        b.edge(a, c);
        b.carried_edge(c, a, 1);
        assert!(b.build().is_ok());
    }

    #[test]
    fn zero_cycle_detected_deep() {
        let mut b = DfgBuilder::new("bad");
        let n0 = b.node(OpKind::Add);
        let n1 = b.node(OpKind::Add);
        let n2 = b.node(OpKind::Add);
        let n3 = b.node(OpKind::Add);
        b.edge(n0, n1);
        b.edge(n1, n2);
        b.edge(n2, n3);
        b.edge(n3, n1); // cycle 1->2->3->1 all distance 0
        match b.build() {
            Err(ValidationError::ZeroDistanceCycle { .. }) => {}
            other => panic!("expected zero-distance cycle, got {other:?}"),
        }
    }

    #[test]
    fn empty_detected() {
        assert_eq!(
            DfgBuilder::new("e").build().unwrap_err(),
            ValidationError::Empty
        );
    }
}
