//! The DFG intermediate representation.

use serde::{Deserialize, Serialize};

/// Identifier of a DFG node (dense index into [`Dfg::nodes`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The raw index as a `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a DFG edge (dense index into [`Dfg::edges`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// The raw index as a `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The micro-operation a node performs.
///
/// Every operation executes in one PE cycle (paper §II: "each PE can
/// execute an arithmetic or logic operation such as addition, shift,
/// multiplication, or load/store every cycle").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Load a word from data memory (uses the row bus).
    Load,
    /// Store a word to data memory (uses the row bus).
    Store,
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Integer multiply.
    Mul,
    /// Shift (left/right; direction is irrelevant to scheduling).
    Shift,
    /// Bitwise and/or/xor.
    Logic,
    /// Comparison producing a flag/predicate.
    Cmp,
    /// Select between two inputs based on a predicate (used for clipping).
    Select,
    /// Absolute value.
    Abs,
    /// Materialise a constant into the datapath.
    Const,
    /// Pure data movement inserted by the mapper (routing PE).
    Route,
}

impl OpKind {
    /// Cycles the operation occupies a PE. Uniformly one in this model.
    #[inline]
    pub fn latency(self) -> u32 {
        1
    }

    /// Whether the operation accesses data memory (contending for the row bus).
    #[inline]
    pub fn is_mem(self) -> bool {
        matches!(self, OpKind::Load | OpKind::Store)
    }

    /// Whether the operation needs the multiplier.
    #[inline]
    pub fn is_mul(self) -> bool {
        matches!(self, OpKind::Mul)
    }

    /// Short mnemonic for display.
    pub fn mnemonic(self) -> &'static str {
        match self {
            OpKind::Load => "ld",
            OpKind::Store => "st",
            OpKind::Add => "add",
            OpKind::Sub => "sub",
            OpKind::Mul => "mul",
            OpKind::Shift => "shl",
            OpKind::Logic => "and",
            OpKind::Cmp => "cmp",
            OpKind::Select => "sel",
            OpKind::Abs => "abs",
            OpKind::Const => "cst",
            OpKind::Route => "rt",
        }
    }
}

/// A DFG vertex: one micro-operation of the loop body.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Node {
    /// What the node computes.
    pub op: OpKind,
    /// Optional human-readable label (e.g. `"gx"`), for DOT dumps.
    pub label: Option<String>,
}

/// A data dependence between two operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Edge {
    /// Producer.
    pub src: NodeId,
    /// Consumer.
    pub dst: NodeId,
    /// Iteration distance: 0 = same iteration, k ≥ 1 = the consumer reads
    /// the value produced k iterations earlier (loop-carried).
    pub distance: u32,
}

/// A data-flow graph for one loop kernel.
///
/// Construct via [`crate::DfgBuilder`], which validates the invariants
/// (edge endpoints in range, no zero-distance cycles).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dfg {
    /// Kernel name (benchmark identifier).
    pub name: String,
    nodes: Vec<Node>,
    edges: Vec<Edge>,
    /// Outgoing edge ids per node.
    succ: Vec<Vec<EdgeId>>,
    /// Incoming edge ids per node.
    pred: Vec<Vec<EdgeId>>,
}

impl Dfg {
    /// Assemble a DFG from raw parts *without* validation. Prefer
    /// [`crate::DfgBuilder`]; this exists for graph rewrites (unrolling,
    /// spilling) that maintain the invariants themselves.
    pub fn from_parts(name: String, nodes: Vec<Node>, edges: Vec<Edge>) -> Self {
        let mut succ = vec![Vec::new(); nodes.len()];
        let mut pred = vec![Vec::new(); nodes.len()];
        for (i, e) in edges.iter().enumerate() {
            succ[e.src.index()].push(EdgeId(i as u32));
            pred[e.dst.index()].push(EdgeId(i as u32));
        }
        Dfg {
            name,
            nodes,
            edges,
            succ,
            pred,
        }
    }

    /// A stable 64-bit structural fingerprint: FNV-1a over the name,
    /// every node's op kind, and every edge's `(src, dst, distance)`.
    /// Mapping caches key on this so a kernel edit (same name, different
    /// body) invalidates stale entries instead of silently reusing them.
    /// Labels are excluded — they are display-only and do not affect
    /// mapping.
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64; // FNV offset basis
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3); // FNV prime
            }
        };
        eat(self.name.as_bytes());
        for n in &self.nodes {
            eat(&[n.op as u8]);
        }
        for e in &self.edges {
            eat(&e.src.0.to_le_bytes());
            eat(&e.dst.0.to_le_bytes());
            eat(&e.distance.to_le_bytes());
        }
        h
    }

    /// Number of operations.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of dependences.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The node with the given id.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// The edge with the given id.
    #[inline]
    pub fn edge(&self, id: EdgeId) -> Edge {
        self.edges[id.index()]
    }

    /// Iterate over node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Iterate over edge ids.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edges.len() as u32).map(EdgeId)
    }

    /// Iterate over all edges.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.edges.iter().copied()
    }

    /// Outgoing edges of a node.
    pub fn succ_edges(&self, n: NodeId) -> impl Iterator<Item = EdgeId> + '_ {
        self.succ[n.index()].iter().copied()
    }

    /// Incoming edges of a node.
    pub fn pred_edges(&self, n: NodeId) -> impl Iterator<Item = EdgeId> + '_ {
        self.pred[n.index()].iter().copied()
    }

    /// Number of memory operations (loads + stores).
    pub fn num_mem_ops(&self) -> usize {
        self.nodes.iter().filter(|n| n.op.is_mem()).count()
    }

    /// Whether the graph has any loop-carried dependence.
    pub fn has_recurrence(&self) -> bool {
        // A recurrence is a *cycle*; a lone distance>0 edge between
        // otherwise-ordered nodes is not. Detect via SCCs of size > 1 or
        // self-loops.
        let sccs = crate::analysis::sccs(self);
        sccs.iter().any(|scc| scc.len() > 1) || self.edges.iter().any(|e| e.src == e.dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DfgBuilder;

    fn diamond() -> Dfg {
        let mut b = DfgBuilder::new("diamond");
        let l = b.node(OpKind::Load);
        let a = b.node(OpKind::Add);
        let m = b.node(OpKind::Mul);
        let s = b.node(OpKind::Store);
        b.edge(l, a);
        b.edge(l, m);
        b.edge(a, s);
        b.edge(m, s);
        b.build().unwrap()
    }

    #[test]
    fn counts() {
        let g = diamond();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.num_mem_ops(), 2);
    }

    #[test]
    fn adjacency_lists_are_consistent() {
        let g = diamond();
        for e in g.edge_ids() {
            let edge = g.edge(e);
            assert!(g.succ_edges(edge.src).any(|x| x == e));
            assert!(g.pred_edges(edge.dst).any(|x| x == e));
        }
    }

    #[test]
    fn diamond_has_no_recurrence() {
        assert!(!diamond().has_recurrence());
    }

    #[test]
    fn cycle_is_a_recurrence() {
        let mut b = DfgBuilder::new("rec");
        let a = b.node(OpKind::Add);
        let c = b.node(OpKind::Add);
        b.edge(a, c);
        b.carried_edge(c, a, 1);
        let g = b.build().unwrap();
        assert!(g.has_recurrence());
    }

    #[test]
    fn self_loop_is_a_recurrence() {
        let mut b = DfgBuilder::new("acc");
        let a = b.node(OpKind::Add);
        b.carried_edge(a, a, 1);
        let g = b.build().unwrap();
        assert!(g.has_recurrence());
    }

    #[test]
    fn lone_carried_edge_is_not_a_recurrence() {
        let mut b = DfgBuilder::new("fwd");
        let a = b.node(OpKind::Load);
        let c = b.node(OpKind::Store);
        b.carried_edge(a, c, 2);
        let g = b.build().unwrap();
        assert!(!g.has_recurrence());
    }

    #[test]
    fn op_kind_properties() {
        assert!(OpKind::Load.is_mem());
        assert!(OpKind::Store.is_mem());
        assert!(!OpKind::Add.is_mem());
        assert!(OpKind::Mul.is_mul());
        assert_eq!(OpKind::Add.latency(), 1);
    }
}
