//! Scheduling-oriented DFG analyses.
//!
//! Modulo-scheduling precedence: if `u → v` has distance `d`, then under
//! initiation interval `II` the start times satisfy
//! `start(v) ≥ start(u) + latency(u) − II·d` (Rau [11]). All analyses here
//! derive from this inequality.

use crate::graph::{Dfg, NodeId};

/// Resource-constrained minimum II: `⌈|V| / num_pes⌉`, optionally refined
/// by a memory-bus bound when `mem_slots_per_cycle` is known.
///
/// # Panics
/// Panics if `num_pes` is zero.
pub fn res_mii(dfg: &Dfg, num_pes: usize) -> u32 {
    assert!(num_pes > 0, "need at least one PE");
    div_ceil(dfg.num_nodes(), num_pes) as u32
}

/// ResMII refined by a second resource class: the row buses serving
/// memory operations. `mem_slots_per_cycle` is `rows × buses_per_row`.
pub fn res_mii_with_mem(dfg: &Dfg, num_pes: usize, mem_slots_per_cycle: usize) -> u32 {
    let pe_bound = res_mii(dfg, num_pes);
    if mem_slots_per_cycle == 0 {
        return pe_bound;
    }
    let mem_bound = div_ceil(dfg.num_mem_ops(), mem_slots_per_cycle) as u32;
    pe_bound.max(mem_bound).max(1)
}

/// Recurrence-constrained minimum II: the smallest `II ≥ 1` for which no
/// dependence cycle has positive weight under `w(e) = latency − II·distance`.
///
/// Equivalently `max over cycles ⌈Σ latency / Σ distance⌉`. Computed by
/// binary search on II with a Bellman–Ford positive-cycle check; validation
/// guarantees every cycle carries distance ≥ 1, so weights are monotone in
/// II and the search is sound.
pub fn rec_mii(dfg: &Dfg) -> u32 {
    // Upper bound: sum of latencies (a cycle visiting every node once with
    // total distance 1).
    let hi: u32 = dfg
        .node_ids()
        .map(|n| dfg.node(n).op.latency())
        .sum::<u32>()
        .max(1);
    if !has_positive_cycle(dfg, 1) {
        return 1;
    }
    let (mut lo, mut hi) = (1u32, hi); // invariant: lo infeasible, hi feasible
    debug_assert!(!has_positive_cycle(dfg, hi));
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if has_positive_cycle(dfg, mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    hi
}

/// The minimum initiation interval: `max(ResMII, RecMII)`.
pub fn mii(dfg: &Dfg, num_pes: usize) -> u32 {
    res_mii(dfg, num_pes).max(rec_mii(dfg))
}

/// Whether some dependence cycle has positive weight at the given II
/// (i.e. the II is recurrence-infeasible).
pub fn has_positive_cycle(dfg: &Dfg, ii: u32) -> bool {
    // Bellman-Ford longest-path relaxation from a virtual source connected
    // to every node with weight 0. If the V-th pass still relaxes, a
    // positive cycle exists.
    let n = dfg.num_nodes();
    let mut dist = vec![0i64; n];
    for pass in 0..=n {
        let mut changed = false;
        for e in dfg.edges() {
            let w = dfg.node(e.src).op.latency() as i64 - ii as i64 * e.distance as i64;
            let cand = dist[e.src.index()] + w;
            if cand > dist[e.dst.index()] {
                dist[e.dst.index()] = cand;
                changed = true;
            }
        }
        if !changed {
            return false;
        }
        if pass == n {
            return true;
        }
    }
    unreachable!("loop always returns")
}

/// ASAP start times under a given (feasible) II: the least fixpoint of the
/// modulo precedence inequalities, with all sources at 0.
///
/// Returns `None` if `ii` is recurrence-infeasible.
pub fn asap(dfg: &Dfg, ii: u32) -> Option<Vec<u32>> {
    if has_positive_cycle(dfg, ii) {
        return None;
    }
    let n = dfg.num_nodes();
    let mut start = vec![0i64; n];
    loop {
        let mut changed = false;
        for e in dfg.edges() {
            let w = dfg.node(e.src).op.latency() as i64 - ii as i64 * e.distance as i64;
            let cand = start[e.src.index()] + w;
            if cand > start[e.dst.index()] {
                start[e.dst.index()] = cand;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // Normalise so the earliest op starts at 0 (carried edges can push
    // starts negative relative to the all-zero seed).
    let min = start.iter().copied().min().unwrap_or(0);
    Some(start.iter().map(|&s| (s - min) as u32).collect())
}

/// ALAP start times under a given II relative to the ASAP makespan:
/// the *latest* start of each op such that every sink keeps its ASAP time
/// (mobility = alap − asap).
///
/// Returns `None` if `ii` is recurrence-infeasible.
pub fn alap(dfg: &Dfg, ii: u32) -> Option<Vec<u32>> {
    let asap = asap(dfg, ii)?;
    let horizon = asap
        .iter()
        .enumerate()
        .map(|(i, &s)| s + dfg.node(NodeId(i as u32)).op.latency())
        .max()
        .unwrap_or(0) as i64;
    let n = dfg.num_nodes();
    let mut start: Vec<i64> = (0..n)
        .map(|i| horizon - dfg.node(NodeId(i as u32)).op.latency() as i64)
        .collect();
    loop {
        let mut changed = false;
        for e in dfg.edges() {
            let w = dfg.node(e.src).op.latency() as i64 - ii as i64 * e.distance as i64;
            let cand = start[e.dst.index()] - w;
            if cand < start[e.src.index()] {
                start[e.src.index()] = cand;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    Some(start.iter().map(|&s| s.max(0) as u32).collect())
}

/// Node *height*: the longest latency-weighted path from the node to any
/// sink, ignoring loop-carried edges. Standard list-scheduling priority
/// (higher = more critical).
pub fn heights(dfg: &Dfg) -> Vec<u32> {
    let n = dfg.num_nodes();
    let mut h = vec![0i64; n];
    loop {
        let mut changed = false;
        for e in dfg.edges() {
            if e.distance != 0 {
                continue;
            }
            let cand = h[e.dst.index()] + dfg.node(e.src).op.latency() as i64;
            if cand > h[e.src.index()] {
                h[e.src.index()] = cand;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    h.iter().map(|&x| x as u32).collect()
}

/// Strongly connected components (Tarjan, iterative), considering *all*
/// edges regardless of distance. Singleton components without self-loops
/// are returned too; callers filter as needed.
pub fn sccs(dfg: &Dfg) -> Vec<Vec<NodeId>> {
    let n = dfg.num_nodes();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut result: Vec<Vec<NodeId>> = Vec::new();

    // Iterative Tarjan: frame = (node, next successor edge position).
    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        let mut call: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&mut (v, ref mut ei)) = call.last_mut() {
            if *ei == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            let succs: Vec<usize> = dfg
                .succ_edges(NodeId(v as u32))
                .map(|e| dfg.edge(e).dst.index())
                .collect();
            if *ei < succs.len() {
                let w = succs[*ei];
                *ei += 1;
                if index[w] == usize::MAX {
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        comp.push(NodeId(w as u32));
                        if w == v {
                            break;
                        }
                    }
                    result.push(comp);
                }
                call.pop();
                if let Some(&mut (parent, _)) = call.last_mut() {
                    low[parent] = low[parent].min(low[v]);
                }
            }
        }
    }
    result
}

fn div_ceil(a: usize, b: usize) -> usize {
    a.div_ceil(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DfgBuilder;
    use crate::graph::OpKind;

    /// a -> b -> c with a carried back-edge c -> a of distance 1:
    /// cycle latency 3, distance 1 => RecMII = 3.
    fn three_cycle() -> Dfg {
        let mut b = DfgBuilder::new("c3");
        let x = b.node(OpKind::Add);
        let y = b.node(OpKind::Add);
        let z = b.node(OpKind::Add);
        b.edge(x, y);
        b.edge(y, z);
        b.carried_edge(z, x, 1);
        b.build().unwrap()
    }

    #[test]
    fn res_mii_rounds_up() {
        let g = three_cycle();
        assert_eq!(res_mii(&g, 16), 1);
        assert_eq!(res_mii(&g, 2), 2);
        assert_eq!(res_mii(&g, 1), 3);
    }

    #[test]
    fn res_mii_with_mem_bound() {
        let mut b = DfgBuilder::new("mem");
        let l1 = b.node(OpKind::Load);
        let l2 = b.node(OpKind::Load);
        let l3 = b.node(OpKind::Load);
        let s = b.apply(OpKind::Add, &[l1, l2, l3]);
        b.apply(OpKind::Store, &[s]);
        let g = b.build().unwrap();
        // 4 mem ops, 2 mem slots/cycle => bound 2, dominating PE bound 1.
        assert_eq!(res_mii_with_mem(&g, 16, 2), 2);
        assert_eq!(res_mii_with_mem(&g, 16, 4), 1);
    }

    #[test]
    fn rec_mii_of_cycle() {
        assert_eq!(rec_mii(&three_cycle()), 3);
    }

    #[test]
    fn rec_mii_distance_divides() {
        // Same 3-cycle but carried distance 3 => RecMII = ceil(3/3) = 1.
        let mut b = DfgBuilder::new("c3d3");
        let x = b.node(OpKind::Add);
        let y = b.node(OpKind::Add);
        let z = b.node(OpKind::Add);
        b.edge(x, y);
        b.edge(y, z);
        b.carried_edge(z, x, 3);
        let g = b.build().unwrap();
        assert_eq!(rec_mii(&g), 1);
    }

    #[test]
    fn rec_mii_acyclic_is_one() {
        let mut b = DfgBuilder::new("lin");
        let x = b.node(OpKind::Load);
        let y = b.apply(OpKind::Add, &[x]);
        b.apply(OpKind::Store, &[y]);
        assert_eq!(rec_mii(&b.build().unwrap()), 1);
    }

    #[test]
    fn rec_mii_takes_max_cycle() {
        // Two cycles: one RecMII 2, one RecMII 4.
        let mut b = DfgBuilder::new("two");
        let a0 = b.node(OpKind::Add);
        let a1 = b.node(OpKind::Add);
        b.edge(a0, a1);
        b.carried_edge(a1, a0, 1); // RecMII 2
        let c0 = b.node(OpKind::Add);
        let c1 = b.node(OpKind::Add);
        let c2 = b.node(OpKind::Add);
        let c3 = b.node(OpKind::Add);
        b.edge(c0, c1);
        b.edge(c1, c2);
        b.edge(c2, c3);
        b.carried_edge(c3, c0, 1); // RecMII 4
        assert_eq!(rec_mii(&b.build().unwrap()), 4);
    }

    #[test]
    fn mii_is_max_of_bounds() {
        let g = three_cycle();
        assert_eq!(mii(&g, 16), 3); // rec-bound
        assert_eq!(mii(&g, 1), 3); // equal
    }

    #[test]
    fn asap_respects_precedence() {
        let g = three_cycle();
        let s = asap(&g, 3).expect("II=3 feasible");
        // a -> b -> c chain.
        assert!(s[1] > s[0]);
        assert!(s[2] > s[1]);
    }

    #[test]
    fn asap_infeasible_ii_is_none() {
        assert!(asap(&three_cycle(), 2).is_none());
        assert!(asap(&three_cycle(), 3).is_some());
    }

    #[test]
    fn alap_not_before_asap() {
        let g = three_cycle();
        let a = asap(&g, 3).unwrap();
        let l = alap(&g, 3).unwrap();
        for i in 0..g.num_nodes() {
            assert!(l[i] >= a[i], "node {i}: alap {} < asap {}", l[i], a[i]);
        }
    }

    #[test]
    fn heights_decrease_along_chains() {
        let mut b = DfgBuilder::new("chain");
        let x = b.node(OpKind::Load);
        let y = b.apply(OpKind::Add, &[x]);
        let z = b.apply(OpKind::Store, &[y]);
        let g = b.build().unwrap();
        let h = heights(&g);
        assert!(h[x.index()] > h[y.index()]);
        assert!(h[y.index()] > h[z.index()]);
        assert_eq!(h[z.index()], 0);
    }

    #[test]
    fn sccs_find_the_cycle() {
        let g = three_cycle();
        let comps = sccs(&g);
        let big: Vec<_> = comps.iter().filter(|c| c.len() > 1).collect();
        assert_eq!(big.len(), 1);
        assert_eq!(big[0].len(), 3);
    }

    #[test]
    fn sccs_partition_nodes() {
        let g = three_cycle();
        let comps = sccs(&g);
        let total: usize = comps.iter().map(|c| c.len()).sum();
        assert_eq!(total, g.num_nodes());
    }

    #[test]
    fn sccs_on_dag_are_singletons() {
        let mut b = DfgBuilder::new("dag");
        let x = b.node(OpKind::Load);
        let y = b.apply(OpKind::Add, &[x]);
        b.apply(OpKind::Store, &[y]);
        let g = b.build().unwrap();
        assert!(sccs(&g).iter().all(|c| c.len() == 1));
    }
}
