//! Seeded random DFG generation for property tests and stress benches.
//!
//! The generator produces *layered* graphs — the shape of real loop-body
//! DFGs (loads feed arithmetic layers feeding stores) — with optional
//! recurrence cycles of configurable length and distance.

use crate::builder::DfgBuilder;
use crate::graph::{Dfg, NodeId, OpKind};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Parameters for random DFG generation.
#[derive(Debug, Clone, Copy)]
pub struct RandomDfgParams {
    /// Number of layers (≥ 2: a load layer and a store layer).
    pub layers: usize,
    /// Nodes per layer, min and max inclusive.
    pub width: (usize, usize),
    /// Probability of an edge from a node to each node of the next layer.
    pub edge_prob: f64,
    /// Number of recurrence cycles to thread through the graph.
    pub recurrences: usize,
    /// Carried distance of each recurrence back-edge.
    pub rec_distance: u32,
}

impl Default for RandomDfgParams {
    fn default() -> Self {
        RandomDfgParams {
            layers: 4,
            width: (2, 5),
            edge_prob: 0.4,
            recurrences: 0,
            rec_distance: 1,
        }
    }
}

/// Generate a random, always-valid DFG from a seed.
///
/// Guarantees:
/// * validates (`validate::validate` passes);
/// * every non-first-layer node has at least one predecessor (no floating
///   arithmetic);
/// * recurrence back-edges have distance ≥ 1, so no zero-distance cycles.
pub fn random_dfg(seed: u64, params: RandomDfgParams) -> Dfg {
    assert!(params.layers >= 2, "need at least load and store layers");
    assert!(params.width.0 >= 1 && params.width.0 <= params.width.1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = DfgBuilder::new(format!("rand{seed}"));
    let mut layers: Vec<Vec<NodeId>> = Vec::with_capacity(params.layers);

    let arith = [
        OpKind::Add,
        OpKind::Sub,
        OpKind::Mul,
        OpKind::Shift,
        OpKind::Logic,
        OpKind::Cmp,
        OpKind::Select,
        OpKind::Abs,
    ];

    for layer in 0..params.layers {
        let w = rng.gen_range(params.width.0..=params.width.1);
        let mut ids = Vec::with_capacity(w);
        for _ in 0..w {
            let op = if layer == 0 {
                OpKind::Load
            } else if layer == params.layers - 1 {
                OpKind::Store
            } else {
                *arith.choose(&mut rng).expect("non-empty op set")
            };
            ids.push(b.node(op));
        }
        layers.push(ids);
    }

    for li in 1..params.layers {
        let (prev, cur) = (layers[li - 1].clone(), layers[li].clone());
        for &dst in &cur {
            let mut has_pred = false;
            for &src in &prev {
                if rng.gen_bool(params.edge_prob) {
                    b.edge(src, dst);
                    has_pred = true;
                }
            }
            if !has_pred {
                let src = *prev.choose(&mut rng).expect("layers non-empty");
                b.edge(src, dst);
            }
        }
    }

    // Thread recurrences: pick a forward chain inside the arithmetic
    // layers and close it with a carried back-edge.
    for _ in 0..params.recurrences {
        if params.layers < 3 {
            break;
        }
        let from_layer = rng.gen_range(1..params.layers - 1);
        let to_layer = rng.gen_range(from_layer..params.layers - 1);
        let head = *layers[from_layer].choose(&mut rng).expect("non-empty");
        let tail = *layers[to_layer].choose(&mut rng).expect("non-empty");
        if from_layer < to_layer {
            b.edge(head, tail);
        }
        b.carried_edge(tail, head, params.rec_distance.max(1));
    }

    b.build().expect("generator maintains validity invariants")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::rec_mii;
    use crate::validate::validate;

    #[test]
    fn deterministic_for_seed() {
        let p = RandomDfgParams::default();
        assert_eq!(random_dfg(42, p), random_dfg(42, p));
    }

    #[test]
    fn different_seeds_differ() {
        let p = RandomDfgParams::default();
        assert_ne!(random_dfg(1, p), random_dfg(2, p));
    }

    #[test]
    fn always_valid_across_seeds() {
        for seed in 0..50 {
            let g = random_dfg(
                seed,
                RandomDfgParams {
                    recurrences: (seed % 3) as usize,
                    ..Default::default()
                },
            );
            assert!(validate(&g).is_ok(), "seed {seed} invalid");
        }
    }

    #[test]
    fn recurrences_raise_rec_mii() {
        let without = random_dfg(7, RandomDfgParams::default());
        assert_eq!(rec_mii(&without), 1);
        let with = random_dfg(
            7,
            RandomDfgParams {
                recurrences: 2,
                ..Default::default()
            },
        );
        assert!(rec_mii(&with) >= 1);
    }

    #[test]
    fn first_layer_is_loads_last_is_stores() {
        let g = random_dfg(3, RandomDfgParams::default());
        // Node 0 is always in the first layer; the last node in the last.
        assert_eq!(g.node(crate::graph::NodeId(0)).op, OpKind::Load);
        let last = crate::graph::NodeId(g.num_nodes() as u32 - 1);
        assert_eq!(g.node(last).op, OpKind::Store);
    }

    #[test]
    fn interior_nodes_have_predecessors() {
        let g = random_dfg(11, RandomDfgParams::default());
        for id in g.node_ids() {
            if g.node(id).op != OpKind::Load {
                assert!(g.pred_edges(id).count() > 0, "{id} has no predecessor");
            }
        }
    }
}
