//! The paper's illustrative figure kernels (Fig. 2 and Fig. 3), exposed
//! for the examples and regression tests.

use crate::builder::DfgBuilder;
use crate::graph::{Dfg, OpKind};

/// Fig. 2's kernel is the MPEG2 benchmark itself.
pub fn fig2_kernel() -> Dfg {
    super::mpeg2()
}

/// Fig. 3's kernel: operations `a` and `b` form a recurrence (`a → b`
/// same-iteration, `b → a` carried, distance 1) and `c` consumes `b`.
/// RecMII = 2, and — the figure's point — unrolling cannot improve the
/// effective II, capping utilization at 3 PEs no matter the fabric size.
pub fn fig3_kernel() -> Dfg {
    let mut bl = DfgBuilder::new("fig3");
    let a = bl.labeled(OpKind::Add, "a");
    let b = bl.labeled(OpKind::Add, "b");
    let c = bl.labeled(OpKind::Store, "c");
    bl.edge(a, b);
    bl.carried_edge(b, a, 1);
    bl.edge(b, c);
    bl.build().expect("fig3 kernel is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::rec_mii;
    use crate::transform::unroll;

    #[test]
    fn fig3_rec_mii_is_two() {
        assert_eq!(rec_mii(&fig3_kernel()), 2);
    }

    #[test]
    fn fig3_unrolled_effective_ii_stays_two() {
        // Fig. 3(b): unrolled x2 on a 4x4 the II becomes 4 for two
        // iterations — effective II still 2.
        let u = unroll(&fig3_kernel(), 2);
        assert_eq!(rec_mii(&u), 4);
    }

    #[test]
    fn fig3_max_utilization_is_three_pes() {
        // 3 ops at II 2 on any fabric: at most 3 PE-slots busy per 2
        // cycles; utilization on N PEs is 3/(2N) — decreasing in N, which
        // is the paper's motivation for multithreading.
        let g = fig3_kernel();
        assert_eq!(g.num_nodes(), 3);
    }
}
