//! Wavelet — one level of the Haar lifting transform over a sample pair:
//! detail `d = odd − even`, smooth `s = even + d/2`, plus the update
//! step feeding the next pair through a carried predict term.

use crate::builder::DfgBuilder;
use crate::graph::{Dfg, OpKind};

/// Build the 12-operation wavelet kernel.
pub fn wavelet() -> Dfg {
    let mut b = DfgBuilder::new("wavelet");
    let even = b.labeled(OpKind::Load, "x[2i]");
    let odd = b.labeled(OpKind::Load, "x[2i+1]");
    let d = b.apply(OpKind::Sub, &[odd, even]);
    let dh = b.apply(OpKind::Shift, &[d]);
    let s = b.apply(OpKind::Add, &[even, dh]);
    b.apply(OpKind::Store, &[d]);
    b.apply(OpKind::Store, &[s]);
    // Boundary-extension predictor: blend with previous pair's smooth
    // output (carried), a cmp/select to handle the edge clamp.
    let blend = b.labeled(OpKind::Add, "blend");
    b.edge(s, blend);
    b.carried_edge(s, blend, 1);
    let cmp = b.apply(OpKind::Cmp, &[blend]);
    let sel = b.apply(OpKind::Select, &[cmp, blend]);
    b.apply(OpKind::Store, &[sel]);
    b.build().expect("wavelet kernel is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::rec_mii;

    #[test]
    fn shape() {
        let g = wavelet();
        assert_eq!(g.num_nodes(), 11);
        assert_eq!(g.num_mem_ops(), 5);
    }

    #[test]
    fn carried_edge_without_cycle_keeps_rec_mii_one() {
        // s feeds blend both same-iteration and carried, but blend never
        // feeds back into s: no cycle.
        let g = wavelet();
        assert!(!g.has_recurrence());
        assert_eq!(rec_mii(&g), 1);
    }
}
