//! Successive over-relaxation (1-D sweep) — a "highly parallel
//! application" in the paper's grouping, but its in-sweep update carries a
//! true recurrence: the new value of `x[i-1]` feeds the update of `x[i]`.
//!
//! `x[i] += ω · (x_new[i−1] + x[i+1] − 2·x[i])`
//!
//! The recurrence cycle (sum → diff → scale → new → sum, carried
//! distance 1) bounds II at 4 regardless of fabric size — exactly the
//! class of kernel Fig. 3 argues cannot fill a CGRA alone.

use crate::builder::DfgBuilder;
use crate::graph::{Dfg, OpKind};

/// Build the 9-operation SOR kernel (RecMII = 4).
pub fn sor() -> Dfg {
    let mut b = DfgBuilder::new("sor");
    let xi = b.labeled(OpKind::Load, "x[i]");
    let xip = b.labeled(OpKind::Load, "x[i+1]");
    let omega = b.labeled(OpKind::Const, "w");
    // x_new[i-1] arrives over the carried edge below.
    let sum = b.labeled(OpKind::Add, "sum");
    b.edge(xip, sum);
    let two_xi = b.apply(OpKind::Shift, &[xi]);
    let diff = b.apply(OpKind::Sub, &[sum, two_xi]);
    let scaled = b.apply(OpKind::Mul, &[diff, omega]);
    let newx = b.apply(OpKind::Add, &[xi, scaled]);
    b.apply(OpKind::Store, &[newx]);
    // The freshly computed x_new[i] is the x_new[i-1] of the next iteration.
    b.carried_edge(newx, sum, 1);
    b.build().expect("sor kernel is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::rec_mii;

    #[test]
    fn shape() {
        let g = sor();
        assert_eq!(g.num_nodes(), 9);
        assert!(g.has_recurrence());
    }

    #[test]
    fn recurrence_bounds_ii_at_four() {
        // Cycle: sum -> diff -> scaled -> newx -> (carried) sum,
        // latency 4, distance 1.
        assert_eq!(rec_mii(&sor()), 4);
    }
}
