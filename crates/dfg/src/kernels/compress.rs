//! Compress — quantise-and-accumulate inner loop (as in the UTDSP/
//! MediaBench `compress` kernels): each sample is scaled, shifted,
//! biased and clipped; a running checksum accumulates the output.
//!
//! The accumulator is a self-recurrence of latency 1 and distance 1, so
//! RecMII stays 1 — the kernel is resource-bound, which is why the paper
//! groups it with the "highly parallel applications".

use crate::builder::DfgBuilder;
use crate::graph::{Dfg, OpKind};

/// Build the 11-operation compress kernel.
pub fn compress() -> Dfg {
    let mut b = DfgBuilder::new("compress");
    let a = b.labeled(OpKind::Load, "a[i]");
    let q = b.labeled(OpKind::Const, "q");
    let bias = b.labeled(OpKind::Const, "bias");
    let t = b.apply(OpKind::Mul, &[a, q]);
    let s = b.apply(OpKind::Shift, &[t]);
    let d = b.apply(OpKind::Sub, &[s, bias]);
    let cmp = b.apply(OpKind::Cmp, &[d]);
    let clipped = b.apply(OpKind::Select, &[cmp, d]);
    b.apply(OpKind::Store, &[clipped]);
    let acc = b.labeled(OpKind::Add, "acc");
    b.edge(clipped, acc);
    b.carried_edge(acc, acc, 1);
    let chk = b.apply(OpKind::Store, &[acc]);
    let _ = chk;
    b.build().expect("compress kernel is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{rec_mii, res_mii};

    #[test]
    fn shape() {
        let g = compress();
        assert_eq!(g.num_nodes(), 11);
        assert!(g.has_recurrence());
    }

    #[test]
    fn accumulator_recurrence_is_harmless() {
        // Self-loop of latency 1, distance 1: RecMII = 1.
        assert_eq!(rec_mii(&compress()), 1);
        assert_eq!(res_mii(&compress(), 16), 1);
    }
}
