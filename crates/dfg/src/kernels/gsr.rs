//! Gauss–Seidel relaxation (the paper's "Gsr" filter): the smoothed value
//! of sample `i` mixes the *already updated* neighbours `i−1` and `i−2`
//! with the raw sample — two loop-carried uses of the kernel's own output.

use crate::builder::DfgBuilder;
use crate::graph::{Dfg, OpKind};

/// Build the 10-operation GSR kernel (RecMII = 3).
pub fn gsr() -> Dfg {
    let mut b = DfgBuilder::new("gsr");
    let x = b.labeled(OpKind::Load, "x[i]");
    let w = b.labeled(OpKind::Const, "w");
    // out[i-1] + out[i-2], both loop-carried from `out` below.
    let nsum = b.labeled(OpKind::Add, "nsum");
    let half = b.apply(OpKind::Shift, &[nsum]);
    let mix = b.apply(OpKind::Sub, &[x, half]);
    let scaled = b.apply(OpKind::Mul, &[mix, w]);
    let out = b.apply(OpKind::Add, &[x, scaled]);
    b.apply(OpKind::Store, &[out]);
    b.carried_edge(out, nsum, 1);
    b.carried_edge(out, nsum, 2);
    // A comparison guard on convergence, outside the cycle.
    let cmp = b.apply(OpKind::Cmp, &[out]);
    b.apply(OpKind::Store, &[cmp]);
    b.build().expect("gsr kernel is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::rec_mii;

    #[test]
    fn shape() {
        let g = gsr();
        assert_eq!(g.num_nodes(), 10);
        assert!(g.has_recurrence());
    }

    #[test]
    fn tightest_cycle_is_distance_one() {
        // Cycle nsum -> half -> mix -> scaled -> out -> nsum: latency 5,
        // distance 1 via the first carried edge => RecMII = 5.
        assert_eq!(rec_mii(&gsr()), 5);
    }
}
