//! YUV → RGB colour-space conversion (video decoding).
//!
//! Per pixel: `r = y + 1.402 v`, `g = y − 0.344 u − 0.714 v`,
//! `b = y + 1.772 u`, each channel clipped to [0, 255] with a
//! compare + select. Fixed-point constants enter through `Const` nodes.
//! Fully parallel across pixels — no recurrence.

use crate::builder::DfgBuilder;
use crate::graph::{Dfg, OpKind};

/// Build the 24-operation yuv2rgb kernel.
pub fn yuv2rgb() -> Dfg {
    let mut b = DfgBuilder::new("yuv2rgb");
    let y = b.labeled(OpKind::Load, "y");
    let u = b.labeled(OpKind::Load, "u");
    let v = b.labeled(OpKind::Load, "v");
    let c_rv = b.labeled(OpKind::Const, "1.402");
    let c_gu = b.labeled(OpKind::Const, "0.344");
    let c_gv = b.labeled(OpKind::Const, "0.714");
    let c_bu = b.labeled(OpKind::Const, "1.772");

    // Red channel.
    let rv = b.apply(OpKind::Mul, &[v, c_rv]);
    let r0 = b.apply(OpKind::Add, &[y, rv]);
    let rcmp = b.apply(OpKind::Cmp, &[r0]);
    let r = b.apply(OpKind::Select, &[rcmp, r0]);
    b.apply(OpKind::Store, &[r]);

    // Green channel.
    let gu = b.apply(OpKind::Mul, &[u, c_gu]);
    let gv = b.apply(OpKind::Mul, &[v, c_gv]);
    let g0 = b.apply(OpKind::Sub, &[y, gu]);
    let g1 = b.apply(OpKind::Sub, &[g0, gv]);
    let gcmp = b.apply(OpKind::Cmp, &[g1]);
    let g = b.apply(OpKind::Select, &[gcmp, g1]);
    b.apply(OpKind::Store, &[g]);

    // Blue channel.
    let bu = b.apply(OpKind::Mul, &[u, c_bu]);
    let b0 = b.apply(OpKind::Add, &[y, bu]);
    let bcmp = b.apply(OpKind::Cmp, &[b0]);
    let bb = b.apply(OpKind::Select, &[bcmp, b0]);
    b.apply(OpKind::Store, &[bb]);

    b.build().expect("yuv2rgb kernel is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{rec_mii, res_mii};

    #[test]
    fn shape() {
        let g = yuv2rgb();
        assert_eq!(g.num_nodes(), 24);
        assert_eq!(g.num_mem_ops(), 6); // 3 loads + 3 stores
        assert!(!g.has_recurrence());
    }

    #[test]
    fn parallel_kernel_is_resource_bound() {
        let g = yuv2rgb();
        assert_eq!(rec_mii(&g), 1);
        assert_eq!(res_mii(&g, 16), 2); // 24 ops on 16 PEs
        assert_eq!(res_mii(&g, 36), 1);
    }
}
