//! The paper's benchmark kernels, reconstructed as DFGs.
//!
//! §VII-A: "We experiment over a set of 11 benchmarks, including video
//! decoding e.g., mpeg, yuv2rgb, highly parallel applications e.g., Sor,
//! Compress, and filters e.g., Gsr, Laplace, Lowpass, Swim, Sobel,
//! Wavelet". The paper names ten; we add `fir` as the eleventh and flag
//! the substitution in DESIGN.md.
//!
//! Each kernel is the DFG of the benchmark's innermost loop, reconstructed
//! from the well-known computation (the authors' extracted DFGs are not
//! published). Node counts sit in the 9–30 range typical of CGRA studies;
//! kernels that genuinely have loop-carried recurrences (sor, gsr,
//! compress, fir) carry them.

pub mod extras;

mod compress;
mod fir;
mod gsr;
mod laplace;
mod lowpass;
mod mpeg2;
mod paper_figs;
mod sobel;
mod sor;
mod swim;
mod wavelet;
mod yuv2rgb;

pub use compress::compress;
pub use fir::fir;
pub use gsr::gsr;
pub use laplace::laplace;
pub use lowpass::lowpass;
pub use mpeg2::mpeg2;
pub use paper_figs::{fig2_kernel, fig3_kernel};
pub use sobel::sobel;
pub use sor::sor;
pub use swim::swim;
pub use wavelet::wavelet;
pub use yuv2rgb::yuv2rgb;

use crate::graph::Dfg;

/// Names of the 11 benchmark kernels, in the paper's order.
pub const NAMES: [&str; 11] = [
    "mpeg2", "yuv2rgb", "sor", "compress", "gsr", "laplace", "lowpass", "swim", "sobel", "wavelet",
    "fir",
];

/// All 11 benchmark kernels.
pub fn all() -> Vec<Dfg> {
    NAMES
        .iter()
        .map(|n| by_name(n).expect("NAMES entries all resolve"))
        .collect()
}

/// Look up a kernel by name.
pub fn by_name(name: &str) -> Option<Dfg> {
    Some(match name {
        "mpeg2" => mpeg2(),
        "yuv2rgb" => yuv2rgb(),
        "sor" => sor(),
        "compress" => compress(),
        "gsr" => gsr(),
        "laplace" => laplace(),
        "lowpass" => lowpass(),
        "swim" => swim(),
        "sobel" => sobel(),
        "wavelet" => wavelet(),
        "fir" => fir(),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{rec_mii, res_mii};
    use crate::validate::validate;

    #[test]
    fn eleven_kernels() {
        assert_eq!(all().len(), 11);
    }

    #[test]
    fn all_kernels_validate() {
        for k in all() {
            assert!(validate(&k).is_ok(), "{} invalid", k.name);
        }
    }

    #[test]
    fn names_match() {
        for (k, name) in all().iter().zip(NAMES) {
            assert_eq!(k.name, name);
        }
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(by_name("quicksort").is_none());
    }

    #[test]
    fn kernel_sizes_are_cgra_scale() {
        for k in all() {
            assert!(
                (8..=40).contains(&k.num_nodes()),
                "{}: {} nodes outside CGRA-kernel range",
                k.name,
                k.num_nodes()
            );
        }
    }

    #[test]
    fn suite_mixes_recurrent_and_parallel_kernels() {
        let recurrent = all().iter().filter(|k| k.has_recurrence()).count();
        assert!(
            (3..=6).contains(&recurrent),
            "expected a few recurrent kernels, got {recurrent}"
        );
    }

    #[test]
    fn every_kernel_fits_an_8x8_at_ii_one_or_more() {
        for k in all() {
            assert!(res_mii(&k, 64) >= 1);
            assert!(rec_mii(&k) >= 1);
        }
    }

    #[test]
    fn every_kernel_has_loads_and_stores() {
        for k in all() {
            assert!(k.num_mem_ops() >= 2, "{} lacks memory traffic", k.name);
        }
    }
}
