//! Swim — the shallow-water finite-difference update (SPEC `swim`'s
//! CALC1-style loop): velocity and pressure stencils combined with
//! physics constants, producing three output fields. Jacobi-style —
//! reads old fields, writes new ones — so no recurrence, but wide:
//! the largest kernel in the suite.

use crate::builder::DfgBuilder;
use crate::graph::{Dfg, OpKind};

/// Build the 33-operation swim kernel.
pub fn swim() -> Dfg {
    let mut b = DfgBuilder::new("swim");
    // Field loads: u, v at two offsets each; p at four offsets.
    let u0 = b.labeled(OpKind::Load, "u[i,j]");
    let u1 = b.labeled(OpKind::Load, "u[i+1,j]");
    let v0 = b.labeled(OpKind::Load, "v[i,j]");
    let v1 = b.labeled(OpKind::Load, "v[i,j+1]");
    let p00 = b.labeled(OpKind::Load, "p[i,j]");
    let p10 = b.labeled(OpKind::Load, "p[i+1,j]");
    let p01 = b.labeled(OpKind::Load, "p[i,j+1]");
    let p11 = b.labeled(OpKind::Load, "p[i+1,j+1]");
    let fsdx = b.labeled(OpKind::Const, "fsdx");
    let fsdy = b.labeled(OpKind::Const, "fsdy");

    // cu = 0.5*(p[i+1,j]+p[i,j])*u
    let psumx = b.apply(OpKind::Add, &[p10, p00]);
    let psumxh = b.apply(OpKind::Shift, &[psumx]);
    let cu = b.apply(OpKind::Mul, &[psumxh, u0]);
    b.apply(OpKind::Store, &[cu]);

    // cv = 0.5*(p[i,j+1]+p[i,j])*v
    let psumy = b.apply(OpKind::Add, &[p01, p00]);
    let psumyh = b.apply(OpKind::Shift, &[psumy]);
    let cv = b.apply(OpKind::Mul, &[psumyh, v0]);
    b.apply(OpKind::Store, &[cv]);

    // z = (fsdx*(v[i,j+1]-v) - fsdy*(u[i+1,j]-u)) / (p-average)
    let dv = b.apply(OpKind::Sub, &[v1, v0]);
    let du = b.apply(OpKind::Sub, &[u1, u0]);
    let zx = b.apply(OpKind::Mul, &[dv, fsdx]);
    let zy = b.apply(OpKind::Mul, &[du, fsdy]);
    let znum = b.apply(OpKind::Sub, &[zx, zy]);
    let pd = b.apply(OpKind::Add, &[p00, p11]);
    let pdh = b.apply(OpKind::Shift, &[pd]);
    let z = b.apply(OpKind::Mul, &[znum, pdh]); // reciprocal folded into pdh
    b.apply(OpKind::Store, &[z]);

    // h = p + 0.25*(u^2-ish + v^2-ish) — kinetic term.
    let uu = b.apply(OpKind::Mul, &[u0, u0]);
    let vv = b.apply(OpKind::Mul, &[v0, v0]);
    let ke = b.apply(OpKind::Add, &[uu, vv]);
    let keq = b.apply(OpKind::Shift, &[ke]);
    let h = b.apply(OpKind::Add, &[p00, keq]);
    b.apply(OpKind::Store, &[h]);

    b.build().expect("swim kernel is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{rec_mii, res_mii};

    #[test]
    fn shape() {
        let g = swim();
        assert_eq!(g.num_nodes(), 33);
        assert_eq!(g.num_mem_ops(), 12);
        assert!(!g.has_recurrence());
    }

    #[test]
    fn widest_kernel_needs_two_rows_of_4x4() {
        assert_eq!(rec_mii(&swim()), 1);
        assert_eq!(res_mii(&swim(), 16), 3);
        assert_eq!(res_mii(&swim(), 36), 1);
    }
}
