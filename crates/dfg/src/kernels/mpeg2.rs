//! MPEG2 motion-compensation kernel — the paper's Fig. 2 example.
//!
//! "A loop kernel from MPEG2 is shown in Figure 2, in which nodes 1, 2,
//! and 4 are load operations, node 9 a store, and the rest arithmetic or
//! logic operations." Nine operations, no loop-carried dependence, so the
//! kernel reaches II = 1 whenever the fabric has ≥ 9 usable PEs.

use crate::builder::DfgBuilder;
use crate::graph::{Dfg, OpKind};

/// Build the 9-operation MPEG2 kernel of Fig. 2.
pub fn mpeg2() -> Dfg {
    let mut b = DfgBuilder::new("mpeg2");
    let n1 = b.labeled(OpKind::Load, "1");
    let n2 = b.labeled(OpKind::Load, "2");
    let n3 = b.labeled(OpKind::Add, "3");
    let n4 = b.labeled(OpKind::Load, "4");
    let n5 = b.labeled(OpKind::Mul, "5");
    let n6 = b.labeled(OpKind::Shift, "6");
    let n7 = b.labeled(OpKind::Const, "7");
    let n8 = b.labeled(OpKind::Add, "8");
    let n9 = b.labeled(OpKind::Store, "9");
    b.edge(n1, n3);
    b.edge(n2, n3);
    b.edge(n3, n5);
    b.edge(n4, n5);
    b.edge(n5, n6);
    b.edge(n6, n8);
    b.edge(n7, n8);
    b.edge(n8, n9);
    b.build().expect("mpeg2 kernel is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{mii, rec_mii};

    #[test]
    fn nine_ops_like_fig2() {
        let g = mpeg2();
        assert_eq!(g.num_nodes(), 9);
        assert_eq!(g.num_mem_ops(), 4); // loads 1,2,4 + store 9
    }

    #[test]
    fn no_recurrence_so_ii_one_on_16_pes() {
        let g = mpeg2();
        assert!(!g.has_recurrence());
        assert_eq!(rec_mii(&g), 1);
        assert_eq!(mii(&g, 16), 1); // the Fig. 2 schedule has II = 1
    }
}
