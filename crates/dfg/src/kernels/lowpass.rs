//! Lowpass — 3×3 box-blur (averaging) filter, computed separably:
//! three column sums are combined and scaled. No recurrence.

use crate::builder::DfgBuilder;
use crate::graph::{Dfg, OpKind};

/// Build the 16-operation lowpass kernel.
pub fn lowpass() -> Dfg {
    let mut b = DfgBuilder::new("lowpass");
    // Three column sums of the 3x3 window (each column pre-summed into a
    // line buffer in the real filter; here each is two adds over loads).
    let mut cols = Vec::new();
    for name in ["l", "m", "r"] {
        let a = b.labeled(OpKind::Load, format!("{name}0"));
        let c = b.labeled(OpKind::Load, format!("{name}1"));
        let s = b.apply(OpKind::Add, &[a, c]);
        cols.push(s);
    }
    let lm = b.apply(OpKind::Add, &[cols[0], cols[1]]);
    let all = b.apply(OpKind::Add, &[lm, cols[2]]);
    let recip = b.labeled(OpKind::Const, "1/9");
    let scaled = b.apply(OpKind::Mul, &[all, recip]);
    let rounded = b.apply(OpKind::Shift, &[scaled]);
    b.apply(OpKind::Store, &[rounded]);
    b.build().expect("lowpass kernel is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{rec_mii, res_mii};

    #[test]
    fn shape() {
        let g = lowpass();
        assert_eq!(g.num_nodes(), 15);
        assert_eq!(g.num_mem_ops(), 7);
        assert!(!g.has_recurrence());
    }

    #[test]
    fn resource_bound_only() {
        assert_eq!(rec_mii(&lowpass()), 1);
        assert_eq!(res_mii(&lowpass(), 16), 1);
        assert_eq!(res_mii(&lowpass(), 8), 2);
    }
}
