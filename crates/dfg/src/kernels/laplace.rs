//! Laplace — 5-point Laplacian edge-detection filter:
//! `out = n + s + e + w − 4·c`. Pure stencil, no recurrence.

use crate::builder::DfgBuilder;
use crate::graph::{Dfg, OpKind};

/// Build the 11-operation Laplace kernel.
pub fn laplace() -> Dfg {
    let mut b = DfgBuilder::new("laplace");
    let n = b.labeled(OpKind::Load, "n");
    let s = b.labeled(OpKind::Load, "s");
    let e = b.labeled(OpKind::Load, "e");
    let w = b.labeled(OpKind::Load, "w");
    let c = b.labeled(OpKind::Load, "c");
    let ns = b.apply(OpKind::Add, &[n, s]);
    let ew = b.apply(OpKind::Add, &[e, w]);
    let ring = b.apply(OpKind::Add, &[ns, ew]);
    let c4 = b.apply(OpKind::Shift, &[c]); // 4·c via << 2
    let d = b.apply(OpKind::Sub, &[ring, c4]);
    b.apply(OpKind::Store, &[d]);
    b.build().expect("laplace kernel is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{rec_mii, res_mii};

    #[test]
    fn shape() {
        let g = laplace();
        assert_eq!(g.num_nodes(), 11);
        assert_eq!(g.num_mem_ops(), 6);
        assert!(!g.has_recurrence());
    }

    #[test]
    fn fits_a_4x4_at_ii_one() {
        assert_eq!(rec_mii(&laplace()), 1);
        assert_eq!(res_mii(&laplace(), 16), 1);
    }
}
