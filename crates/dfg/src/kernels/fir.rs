//! FIR — 4-tap finite impulse response filter, the 11th benchmark (the
//! paper names only ten of its eleven; see DESIGN.md). The delayed
//! samples `x[i−1..3]` are expressed as loop-carried uses of the single
//! load — distance-2 and distance-3 edges exercise multi-iteration
//! rotating-register liveness.

use crate::builder::DfgBuilder;
use crate::graph::{Dfg, OpKind};

/// Build the 13-operation FIR kernel.
pub fn fir() -> Dfg {
    let mut b = DfgBuilder::new("fir");
    let x = b.labeled(OpKind::Load, "x[i]");
    let c0 = b.labeled(OpKind::Const, "c0");
    let c1 = b.labeled(OpKind::Const, "c1");
    let c2 = b.labeled(OpKind::Const, "c2");
    let c3 = b.labeled(OpKind::Const, "c3");
    let m0 = b.apply(OpKind::Mul, &[x, c0]);
    let m1 = b.labeled(OpKind::Mul, "m1");
    b.edge(c1, m1);
    b.carried_edge(x, m1, 1);
    let m2 = b.labeled(OpKind::Mul, "m2");
    b.edge(c2, m2);
    b.carried_edge(x, m2, 2);
    let m3 = b.labeled(OpKind::Mul, "m3");
    b.edge(c3, m3);
    b.carried_edge(x, m3, 3);
    let s0 = b.apply(OpKind::Add, &[m0, m1]);
    let s1 = b.apply(OpKind::Add, &[m2, m3]);
    let y = b.apply(OpKind::Add, &[s0, s1]);
    b.apply(OpKind::Store, &[y]);
    b.build().expect("fir kernel is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{rec_mii, res_mii};

    #[test]
    fn shape() {
        let g = fir();
        assert_eq!(g.num_nodes(), 13);
        assert_eq!(g.num_mem_ops(), 2);
    }

    #[test]
    fn delays_are_not_a_recurrence() {
        let g = fir();
        assert!(!g.has_recurrence());
        assert_eq!(rec_mii(&g), 1);
        assert_eq!(res_mii(&g, 16), 1);
    }

    #[test]
    fn has_multi_distance_edges() {
        let g = fir();
        let max_dist = g.edges().map(|e| e.distance).max().unwrap();
        assert_eq!(max_dist, 3);
    }
}
