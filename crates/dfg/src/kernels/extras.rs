//! Extra kernels beyond the paper's benchmark suite — used to stress the
//! pipeline on shapes the eleven benchmarks do not cover (deep butterfly
//! networks, wide reductions, data-dependent selects, long recurrences).
//! They are *not* part of the Figure 8/9 suites, which stay faithful to
//! §VII-A.

use crate::builder::DfgBuilder;
use crate::graph::{Dfg, OpKind};

/// 8-point one-dimensional IDCT, butterfly structure: three stages of
/// paired add/sub with constant multiplies — deep and wide at once
/// (27 ops, no recurrence).
pub fn idct8() -> Dfg {
    let mut b = DfgBuilder::new("idct8");
    let xs: Vec<_> = (0..8)
        .map(|i| b.labeled(OpKind::Load, format!("x{i}")))
        .collect();
    let c = b.labeled(OpKind::Const, "c");
    // Stage 1: butterflies on (0,4), (1,5), (2,6), (3,7).
    let mut s1 = Vec::new();
    for i in 0..4 {
        let sum = b.apply(OpKind::Add, &[xs[i], xs[i + 4]]);
        let diff = b.apply(OpKind::Sub, &[xs[i], xs[i + 4]]);
        s1.push((sum, diff));
    }
    // Stage 2: cross-combine with a twiddle multiply on the diffs.
    let t0 = b.apply(OpKind::Add, &[s1[0].0, s1[2].0]);
    let t1 = b.apply(OpKind::Sub, &[s1[0].0, s1[2].0]);
    let m0 = b.apply(OpKind::Mul, &[s1[1].1, c]);
    let m1 = b.apply(OpKind::Mul, &[s1[3].1, c]);
    let t2 = b.apply(OpKind::Add, &[m0, m1]);
    let t3 = b.apply(OpKind::Sub, &[s1[1].0, s1[3].0]);
    // Stage 3: outputs.
    let y0 = b.apply(OpKind::Add, &[t0, t2]);
    let y1 = b.apply(OpKind::Sub, &[t0, t2]);
    let y2 = b.apply(OpKind::Add, &[t1, t3]);
    b.apply(OpKind::Store, &[y0]);
    b.apply(OpKind::Store, &[y1]);
    b.apply(OpKind::Store, &[y2]);
    b.build().expect("idct8 kernel is well-formed")
}

/// One row of a matrix–vector product: four multiply-accumulate lanes
/// folded by an adder tree (16 ops, no recurrence).
pub fn matvec4() -> Dfg {
    let mut b = DfgBuilder::new("matvec4");
    let mut prods = Vec::new();
    for i in 0..4 {
        let a = b.labeled(OpKind::Load, format!("a{i}"));
        let x = b.labeled(OpKind::Load, format!("x{i}"));
        prods.push(b.apply(OpKind::Mul, &[a, x]));
    }
    let s0 = b.apply(OpKind::Add, &[prods[0], prods[1]]);
    let s1 = b.apply(OpKind::Add, &[prods[2], prods[3]]);
    let y = b.apply(OpKind::Add, &[s0, s1]);
    b.apply(OpKind::Store, &[y]);
    b.build().expect("matvec4 kernel is well-formed")
}

/// Histogram update: classify a sample into a bin with cmp/select and
/// bump a running counter (self-recurrence of latency 2).
pub fn histogram() -> Dfg {
    let mut b = DfgBuilder::new("histogram");
    let x = b.labeled(OpKind::Load, "x");
    let threshold = b.labeled(OpKind::Const, "th");
    let cmp = b.apply(OpKind::Cmp, &[x, threshold]);
    let bin = b.apply(OpKind::Select, &[cmp, x]);
    // count' = count + bin-indicator; latency-2 recurrence (add + select).
    let count = b.labeled(OpKind::Add, "count");
    b.edge(bin, count);
    b.carried_edge(count, count, 1);
    b.apply(OpKind::Store, &[count]);
    b.apply(OpKind::Store, &[bin]);
    b.build().expect("histogram kernel is well-formed")
}

/// Unsharp-mask sharpening: centre pixel boosted against the local blur
/// (12 ops, no recurrence, multiply-heavy).
pub fn sharpen() -> Dfg {
    let mut b = DfgBuilder::new("sharpen");
    let c = b.labeled(OpKind::Load, "centre");
    let n = b.labeled(OpKind::Load, "n");
    let s = b.labeled(OpKind::Load, "s");
    let e = b.labeled(OpKind::Load, "e");
    let w = b.labeled(OpKind::Load, "w");
    let ns = b.apply(OpKind::Add, &[n, s]);
    let ew = b.apply(OpKind::Add, &[e, w]);
    let blur = b.apply(OpKind::Add, &[ns, ew]);
    let c4 = b.apply(OpKind::Shift, &[c]);
    let hi = b.apply(OpKind::Sub, &[c4, blur]);
    let amount = b.labeled(OpKind::Const, "k");
    let boosted = b.apply(OpKind::Mul, &[hi, amount]);
    let out = b.apply(OpKind::Add, &[c, boosted]);
    b.apply(OpKind::Store, &[out]);
    b.build().expect("sharpen kernel is well-formed")
}

/// All extra kernels.
pub fn all_extras() -> Vec<Dfg> {
    vec![idct8(), matvec4(), histogram(), sharpen()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{rec_mii, res_mii};
    use crate::validate::validate;

    #[test]
    fn extras_validate() {
        for k in all_extras() {
            assert!(validate(&k).is_ok(), "{}", k.name);
        }
    }

    #[test]
    fn idct8_is_deep_and_wide() {
        let k = idct8();
        assert!(k.num_nodes() >= 25);
        assert!(!k.has_recurrence());
        assert_eq!(rec_mii(&k), 1);
        assert!(res_mii(&k, 16) >= 2);
    }

    #[test]
    fn matvec_is_parallel() {
        let k = matvec4();
        assert_eq!(k.num_nodes(), 16);
        assert!(!k.has_recurrence());
    }

    #[test]
    fn histogram_has_accumulator() {
        let k = histogram();
        assert!(k.has_recurrence());
        assert_eq!(rec_mii(&k), 1); // self-loop latency 1
    }

    #[test]
    fn sharpen_shape() {
        let k = sharpen();
        assert_eq!(k.num_mem_ops(), 6);
        assert!(!k.has_recurrence());
    }
}
