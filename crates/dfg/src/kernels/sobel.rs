//! Sobel — 3×3 gradient edge detector. Both direction kernels
//! (Gx and Gy) share the eight boundary loads; the result is
//! `|Gx| + |Gy|` clipped to 8 bits. No recurrence; the suite's second
//! largest kernel and the classic CGRA demo workload.

use crate::builder::DfgBuilder;
use crate::graph::{Dfg, OpKind};

/// Build the 28-operation Sobel kernel.
pub fn sobel() -> Dfg {
    let mut b = DfgBuilder::new("sobel");
    // 3x3 window without the centre.
    let p00 = b.labeled(OpKind::Load, "p00");
    let p01 = b.labeled(OpKind::Load, "p01");
    let p02 = b.labeled(OpKind::Load, "p02");
    let p10 = b.labeled(OpKind::Load, "p10");
    let p12 = b.labeled(OpKind::Load, "p12");
    let p20 = b.labeled(OpKind::Load, "p20");
    let p21 = b.labeled(OpKind::Load, "p21");
    let p22 = b.labeled(OpKind::Load, "p22");

    // Gx = (p02 + 2*p12 + p22) - (p00 + 2*p10 + p20)
    let p12x2 = b.apply(OpKind::Shift, &[p12]);
    let gxr0 = b.apply(OpKind::Add, &[p02, p12x2]);
    let gxr = b.apply(OpKind::Add, &[gxr0, p22]);
    let p10x2 = b.apply(OpKind::Shift, &[p10]);
    let gxl0 = b.apply(OpKind::Add, &[p00, p10x2]);
    let gxl = b.apply(OpKind::Add, &[gxl0, p20]);
    let gx = b.apply(OpKind::Sub, &[gxr, gxl]);

    // Gy = (p20 + 2*p21 + p22) - (p00 + 2*p01 + p02)
    let p21x2 = b.apply(OpKind::Shift, &[p21]);
    let gyb0 = b.apply(OpKind::Add, &[p20, p21x2]);
    let gyb = b.apply(OpKind::Add, &[gyb0, p22]);
    let p01x2 = b.apply(OpKind::Shift, &[p01]);
    let gyt0 = b.apply(OpKind::Add, &[p00, p01x2]);
    let gyt = b.apply(OpKind::Add, &[gyt0, p02]);
    let gy = b.apply(OpKind::Sub, &[gyb, gyt]);

    let ax = b.apply(OpKind::Abs, &[gx]);
    let ay = b.apply(OpKind::Abs, &[gy]);
    let mag = b.apply(OpKind::Add, &[ax, ay]);
    let cmp = b.apply(OpKind::Cmp, &[mag]);
    let clipped = b.apply(OpKind::Select, &[cmp, mag]);
    b.apply(OpKind::Store, &[clipped]);

    b.build().expect("sobel kernel is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{rec_mii, res_mii};

    #[test]
    fn shape() {
        let g = sobel();
        assert_eq!(g.num_nodes(), 28);
        assert_eq!(g.num_mem_ops(), 9);
        assert!(!g.has_recurrence());
    }

    #[test]
    fn resource_bound() {
        assert_eq!(rec_mii(&sobel()), 1);
        assert_eq!(res_mii(&sobel(), 16), 2);
        assert_eq!(res_mii(&sobel(), 64), 1);
    }
}
