//! Fluent, validating construction of [`Dfg`]s.

use crate::graph::{Dfg, Edge, Node, NodeId, OpKind};
use crate::validate::{validate, ValidationError};

/// Builds a [`Dfg`] incrementally.
///
/// ```
/// use cgra_dfg::{DfgBuilder, OpKind};
/// let mut b = DfgBuilder::new("axpy");
/// let x = b.node(OpKind::Load);
/// let a = b.node(OpKind::Const);
/// let m = b.node(OpKind::Mul);
/// let y = b.node(OpKind::Load);
/// let s = b.node(OpKind::Add);
/// let st = b.node(OpKind::Store);
/// b.edge(x, m);
/// b.edge(a, m);
/// b.edge(m, s);
/// b.edge(y, s);
/// b.edge(s, st);
/// let dfg = b.build().unwrap();
/// assert_eq!(dfg.num_nodes(), 6);
/// ```
#[derive(Debug, Clone)]
pub struct DfgBuilder {
    name: String,
    nodes: Vec<Node>,
    edges: Vec<Edge>,
}

impl DfgBuilder {
    /// Start building a kernel DFG with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        DfgBuilder {
            name: name.into(),
            nodes: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Add an operation; returns its id.
    pub fn node(&mut self, op: OpKind) -> NodeId {
        self.nodes.push(Node { op, label: None });
        NodeId(self.nodes.len() as u32 - 1)
    }

    /// Add a labelled operation; returns its id.
    pub fn labeled(&mut self, op: OpKind, label: impl Into<String>) -> NodeId {
        self.nodes.push(Node {
            op,
            label: Some(label.into()),
        });
        NodeId(self.nodes.len() as u32 - 1)
    }

    /// Add an intra-iteration dependence `src → dst`.
    pub fn edge(&mut self, src: NodeId, dst: NodeId) {
        self.edges.push(Edge {
            src,
            dst,
            distance: 0,
        });
    }

    /// Add a loop-carried dependence `src → dst` spanning `distance ≥ 1`
    /// iterations.
    ///
    /// # Panics
    /// Panics if `distance == 0`; use [`DfgBuilder::edge`] for
    /// intra-iteration dependences.
    pub fn carried_edge(&mut self, src: NodeId, dst: NodeId, distance: u32) {
        assert!(distance >= 1, "carried edges need distance >= 1");
        self.edges.push(Edge { src, dst, distance });
    }

    /// Convenience: chain a new `op` consuming the outputs of `inputs`,
    /// returning the new node.
    pub fn apply(&mut self, op: OpKind, inputs: &[NodeId]) -> NodeId {
        let n = self.node(op);
        for &i in inputs {
            self.edge(i, n);
        }
        n
    }

    /// Number of nodes added so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether no nodes have been added.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Finish, validating the graph invariants.
    pub fn build(self) -> Result<Dfg, ValidationError> {
        let dfg = Dfg::from_parts(self.name, self.nodes, self.edges);
        validate(&dfg)?;
        Ok(dfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_wires_all_inputs() {
        let mut b = DfgBuilder::new("t");
        let x = b.node(OpKind::Load);
        let y = b.node(OpKind::Load);
        let s = b.apply(OpKind::Add, &[x, y]);
        let g = b.build().unwrap();
        assert_eq!(g.pred_edges(s).count(), 2);
    }

    #[test]
    fn labels_are_kept() {
        let mut b = DfgBuilder::new("t");
        let x = b.labeled(OpKind::Load, "pixel");
        let g = b.build().unwrap();
        assert_eq!(g.node(x).label.as_deref(), Some("pixel"));
    }

    #[test]
    fn zero_distance_cycle_rejected() {
        let mut b = DfgBuilder::new("bad");
        let a = b.node(OpKind::Add);
        let c = b.node(OpKind::Add);
        b.edge(a, c);
        b.edge(c, a);
        assert!(b.build().is_err());
    }

    #[test]
    #[should_panic(expected = "distance >= 1")]
    fn carried_edge_rejects_zero() {
        let mut b = DfgBuilder::new("bad");
        let a = b.node(OpKind::Add);
        b.carried_edge(a, a, 0);
    }

    #[test]
    fn empty_graph_is_rejected() {
        assert!(DfgBuilder::new("empty").build().is_err());
    }
}
