//! Graphviz (DOT) export for DFGs — handy for inspecting kernels and for
//! documentation figures.

use crate::graph::Dfg;
use std::fmt::Write as _;

/// Render the DFG in Graphviz DOT syntax. Loop-carried edges are dashed
/// and annotated with their distance, matching the usual convention in
/// the modulo-scheduling literature.
pub fn to_dot(dfg: &Dfg) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", dfg.name);
    let _ = writeln!(out, "  rankdir=TB; node [shape=ellipse];");
    for id in dfg.node_ids() {
        let node = dfg.node(id);
        let label = match &node.label {
            Some(l) => format!("{} ({})", l, node.op.mnemonic()),
            None => format!("{} {}", id, node.op.mnemonic()),
        };
        let shape = if node.op.is_mem() { "box" } else { "ellipse" };
        let _ = writeln!(out, "  {} [label=\"{}\", shape={}];", id.0, label, shape);
    }
    for e in dfg.edges() {
        if e.distance == 0 {
            let _ = writeln!(out, "  {} -> {};", e.src.0, e.dst.0);
        } else {
            let _ = writeln!(
                out,
                "  {} -> {} [style=dashed, label=\"{}\"];",
                e.src.0, e.dst.0, e.distance
            );
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DfgBuilder;
    use crate::graph::OpKind;

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let mut b = DfgBuilder::new("t");
        let x = b.labeled(OpKind::Load, "x");
        let y = b.apply(OpKind::Add, &[x]);
        b.carried_edge(y, y, 1);
        let g = b.build().unwrap();
        let dot = to_dot(&g);
        assert!(dot.contains("digraph \"t\""));
        assert!(dot.contains("x (ld)"));
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("0 -> 1"));
    }

    #[test]
    fn mem_ops_are_boxes() {
        let mut b = DfgBuilder::new("m");
        b.node(OpKind::Store);
        let dot = to_dot(&b.build().unwrap());
        assert!(dot.contains("shape=box"));
    }
}
