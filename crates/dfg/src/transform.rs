//! DFG transformations.
//!
//! Currently: loop unrolling, used to reproduce the paper's Fig. 3
//! observation that unrolling cannot beat the recurrence bound (the
//! *effective* II per original iteration is unchanged).

use crate::graph::{Dfg, Edge, Node, NodeId};

/// Unroll a loop body `factor` times.
///
/// Copy `i` of the body corresponds to original iteration `k·j + i` of the
/// new iteration `j`. An original dependence `u → v` with distance `d`
/// becomes, for each copy `i`, an edge from copy `i` of `u` to copy
/// `(i + d) mod factor` of `v` with new distance `(i + d) / factor`.
///
/// # Panics
/// Panics if `factor == 0`.
pub fn unroll(dfg: &Dfg, factor: u32) -> Dfg {
    assert!(factor >= 1, "unroll factor must be >= 1");
    let k = factor as usize;
    let n = dfg.num_nodes();
    let mut nodes: Vec<Node> = Vec::with_capacity(n * k);
    for copy in 0..k {
        for id in dfg.node_ids() {
            let mut node = dfg.node(id).clone();
            if let Some(label) = &node.label {
                node.label = Some(format!("{label}.{copy}"));
            }
            nodes.push(node);
        }
    }
    let mut edges = Vec::with_capacity(dfg.num_edges() * k);
    for e in dfg.edges() {
        for copy in 0..k as u32 {
            let target_copy = (copy + e.distance) % factor;
            let new_distance = (copy + e.distance) / factor;
            edges.push(Edge {
                src: NodeId(copy * n as u32 + e.src.0),
                dst: NodeId(target_copy * n as u32 + e.dst.0),
                distance: new_distance,
            });
        }
    }
    Dfg::from_parts(format!("{}_x{}", dfg.name, factor), nodes, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{rec_mii, res_mii};
    use crate::builder::DfgBuilder;
    use crate::graph::OpKind;

    /// Fig. 3's kernel: a ↔ b recurrence (a→b distance 0, b→a distance 1)
    /// plus a dependent op c. RecMII = 2.
    fn fig3() -> Dfg {
        let mut bl = DfgBuilder::new("fig3");
        let a = bl.labeled(OpKind::Add, "a");
        let b = bl.labeled(OpKind::Add, "b");
        let c = bl.labeled(OpKind::Store, "c");
        bl.edge(a, b);
        bl.carried_edge(b, a, 1);
        bl.edge(b, c);
        bl.build().unwrap()
    }

    #[test]
    fn unroll_by_one_is_identity_shape() {
        let g = fig3();
        let u = unroll(&g, 1);
        assert_eq!(u.num_nodes(), g.num_nodes());
        assert_eq!(u.num_edges(), g.num_edges());
        assert_eq!(rec_mii(&u), rec_mii(&g));
    }

    #[test]
    fn unroll_scales_counts() {
        let g = fig3();
        let u = unroll(&g, 2);
        assert_eq!(u.num_nodes(), 6);
        assert_eq!(u.num_edges(), 6);
    }

    /// The paper's Fig. 3 point: unrolling doubles RecMII alongside the
    /// work per iteration, so the *effective* II per original iteration
    /// (RecMII / factor) never improves.
    #[test]
    fn unrolling_cannot_beat_recurrence_bound() {
        let g = fig3();
        let base = rec_mii(&g); // 2
        assert_eq!(base, 2);
        for k in 2..=4 {
            let u = unroll(&g, k);
            let unrolled = rec_mii(&u);
            assert!(
                unrolled >= base * k,
                "unroll x{k}: rec_mii {unrolled} < {} — effective II improved",
                base * k
            );
        }
    }

    #[test]
    fn unroll_preserves_validity() {
        let g = fig3();
        for k in 1..=4 {
            let u = unroll(&g, k);
            assert!(crate::validate::validate(&u).is_ok(), "unroll x{k} invalid");
        }
    }

    #[test]
    fn unrolled_res_mii_scales() {
        let g = fig3();
        assert_eq!(res_mii(&unroll(&g, 2), 3), 2);
    }

    #[test]
    fn carried_distance_two_unrolled_by_two_becomes_intra_copy_link() {
        // u -> v with distance 2, unrolled x2: copy0 -> copy0 at distance 1,
        // copy1 -> copy1 at distance 1.
        let mut b = DfgBuilder::new("d2");
        let u = b.node(OpKind::Load);
        let v = b.node(OpKind::Store);
        b.carried_edge(u, v, 2);
        let g = b.build().unwrap();
        let un = unroll(&g, 2);
        for e in un.edges() {
            assert_eq!(e.distance, 1);
            // src copy == dst copy
            assert_eq!(e.src.0 / 2, e.dst.0 / 2);
        }
    }
}
