//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this crate
//! reimplements exactly the API surface the workspace uses —
//! `StdRng::seed_from_u64`, `Rng::{gen_range, gen_bool}` over integer,
//! inclusive-integer and `f64` ranges, and `SliceRandom::choose` — over
//! a deterministic xoshiro256\*\* generator seeded by SplitMix64 (the
//! construction the xoshiro authors recommend).
//!
//! The stream of values differs from the real `StdRng` (ChaCha12), which
//! is fine: every consumer in this workspace treats the RNG as an
//! arbitrary-but-deterministic tie-breaker or workload jitter source, and
//! nothing pins concrete draws. Determinism guarantees (same seed → same
//! sequence, forever, on every platform) are what matter, and this
//! implementation is platform-independent pure integer arithmetic.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Core uniform-bit generation, the base of [`Rng`].
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (only the `seed_from_u64` entry point is used in
/// this workspace).
pub trait SeedableRng: Sized {
    /// Derive a full generator state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types [`Rng::gen_range`] can sample uniformly. Mirrors real rand's
/// trait structure (one generic `SampleRange` impl per range kind over a
/// per-type `SampleUniform`) so that integer-literal ranges infer their
/// element type from the call site, exactly like the real crate.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`
    /// (`inclusive = true`). Panics on empty ranges, matching real rand.
    fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let empty = if inclusive { lo > hi } else { lo >= hi };
                assert!(!empty, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        _inclusive: bool,
        rng: &mut R,
    ) -> Self {
        assert!(lo < hi, "cannot sample empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one uniform value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(*self.start(), *self.end(), true, rng)
    }
}

/// The user-facing sampling API, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} not a probability");
        ((self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Random operations on slices (only `choose` is used here).
pub trait SliceRandom {
    /// Element type.
    type Item;
    /// A uniformly chosen element, or `None` for an empty slice.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256\*\* generator (stands in for rand's
    /// `StdRng`; different stream, same contract).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro paper.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// The glob import every call site uses: traits only, like real rand.
pub mod prelude {
    pub use super::{Rng, RngCore, SampleRange, SeedableRng, SliceRandom};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::rngs::StdRng;

    #[test]
    fn determinism() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: i32 = rng.gen_range(-1000..1000);
            assert!((-1000..1000).contains(&v));
            let u: usize = rng.gen_range(2..=5);
            assert!((2..=5).contains(&u));
            let f: f64 = rng.gen_range(0.5..1.5);
            assert!((0.5..1.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes_and_mean() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn choose_covers_slice() {
        let mut rng = StdRng::seed_from_u64(3);
        let xs = [10, 20, 30];
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let mut seen = [false; 3];
        for _ in 0..200 {
            let &v = xs.choose(&mut rng).unwrap();
            seen[(v / 10 - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
