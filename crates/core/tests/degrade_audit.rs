//! Degradation legality, re-derived by the independent analyzer.
//!
//! `transform_degraded`'s structural properties are unit-tested next to
//! the code; *legality* — no op on a dead page, contiguous ascending
//! backing run, inner plan soundness — is audited here by
//! `cgra-analyze`, which shares none of the transform's logic. (An
//! integration test because the analyzer is a dev-dependency cycle: it
//! links this crate's library instance, not the unit-test build.)

use cgra_arch::{FaultMap, PageHealth};
use cgra_core::transform::Strategy;
use cgra_core::{transform_degraded, DegradedPlan, PagedSchedule};

fn assert_clean(p: &PagedSchedule, d: &DegradedPlan, faults: &FaultMap) {
    let rep = cgra_analyze::analyze_degraded(p, d, faults);
    assert!(!rep.has_errors(), "{}", rep.render());
}

#[test]
fn zero_fault_shrink_analyzes_clean() {
    let p = PagedSchedule::synthetic_canonical(8, 2, false);
    let faults = FaultMap::new(8);
    let d = transform_degraded(&p, &faults, 8, Strategy::Auto).unwrap();
    assert_clean(&p, &d, &faults);
}

#[test]
fn dead_middle_page_route_around_analyzes_clean() {
    let p = PagedSchedule::synthetic_canonical(8, 2, false);
    let mut faults = FaultMap::new(8);
    faults.mark_page(2, PageHealth::Dead);
    let d = transform_degraded(&p, &faults, 4, Strategy::Auto).unwrap();
    assert_clean(&p, &d, &faults);
}

#[test]
fn degraded_page_analyzes_with_warning_not_error() {
    let p = PagedSchedule::synthetic_canonical(4, 1, false);
    let mut faults = FaultMap::new(4);
    faults.mark_page(1, PageHealth::Degraded);
    let d = transform_degraded(&p, &faults, 4, Strategy::Auto).unwrap();
    let rep = cgra_analyze::analyze_degraded(&p, &d, &faults);
    assert!(!rep.has_errors(), "{}", rep.render());
    // Running on a degraded page is legal but flagged.
    assert!(
        rep.codes()
            .contains(&cgra_analyze::Code::A306ColumnOnDegradedPage),
        "{}",
        rep.render()
    );
}

#[test]
fn real_kernel_one_dead_page_analyzes_clean() {
    let cgra = cgra_arch::CgraConfig::square(4);
    let k = cgra_dfg::kernels::fir();
    let r = cgra_mapper::map_constrained(&k, &cgra, &cgra_mapper::MapOptions::default())
        .expect("fir maps on 4x4");
    let ps = PagedSchedule::from_mapping(&r, &cgra).expect("paged extraction");
    let mut faults = FaultMap::new(ps.num_pages);
    faults.mark_page(0, PageHealth::Dead);
    let d = transform_degraded(&ps, &faults, ps.num_pages, Strategy::Auto).unwrap();
    assert_clean(&ps, &d, &faults);
}

#[test]
fn hand_broken_degraded_plan_is_rejected() {
    // Point a column at the dead page: the analyzer must refuse what the
    // transform would never produce.
    let p = PagedSchedule::synthetic_canonical(8, 2, false);
    let mut faults = FaultMap::new(8);
    faults.mark_page(2, PageHealth::Dead);
    let mut d = transform_degraded(&p, &faults, 4, Strategy::Auto).unwrap();
    d.column_pages[0] = 2;
    let rep = cgra_analyze::analyze_degraded(&p, &d, &faults);
    assert!(rep.has_errors());
    assert!(rep.codes().contains(&cgra_analyze::Code::A301OpOnDeadPage));
}
