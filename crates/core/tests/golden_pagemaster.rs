//! Golden-file snapshots of the PageMaster transform for one small
//! kernel: the paged schedule before (as extracted from the constrained
//! mapping) and the shrink plan after, rendered to a canonical text form
//! and compared byte-for-byte against committed snapshots in
//! `tests/golden/`.
//!
//! These catch *silent* behaviour changes the invariant-based validators
//! cannot: a plan can stay valid while placing cells differently (and the
//! mapping cache keys such semantic changes only via the `SCHEMA` bump —
//! see `cgra-bench::mapcache`). If a change here is intentional, refresh
//! the snapshots with `UPDATE_GOLDEN=1 cargo test -p cgra-core --test
//! golden_pagemaster` and bump that schema constant in the same commit.
//!
//! Every snapshot is cross-checked with `validate_plan` before
//! comparison, so a stale-but-valid golden file can never mask an invalid
//! transform.

use cgra_arch::{FaultMap, PageHealth};
use cgra_core::degrade::{transform_degraded, DegradedPlan};
use cgra_core::transform::{transform, Strategy};
use cgra_core::{validate_plan, PagedSchedule, ShrinkPlan};
use cgra_mapper::{map_constrained, MapOptions};
use std::fmt::Write as _;
use std::path::PathBuf;

const KERNEL: &str = "fir";

fn paged_fixture() -> PagedSchedule {
    let dfg = cgra_dfg::kernels::by_name(KERNEL).expect("kernel exists");
    let cgra = cgra_arch::CgraConfig::square(4);
    let mapped = map_constrained(&dfg, &cgra, &MapOptions::default()).expect("maps");
    PagedSchedule::from_mapping(&mapped, &cgra)
        .expect("extracts")
        .trimmed()
}

/// Canonical text rendering of a paged schedule (sorted, no HashMap
/// iteration order anywhere).
fn render_schedule(p: &PagedSchedule) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "kernel: {}", p.name);
    let _ = writeln!(out, "pages: {}", p.num_pages);
    let _ = writeln!(out, "ii: {}", p.ii);
    let _ = writeln!(out, "discipline: {:?}", p.discipline);
    for page in 0..p.num_pages {
        for slot in 0..p.ii {
            let cell = &p.cells[(page as u32 * p.ii + slot) as usize];
            let mut ops = cell.compute.clone();
            ops.sort_unstable();
            let _ = writeln!(
                out,
                "cell p{page} s{slot}: compute={ops:?} routes={}",
                cell.routes
            );
        }
    }
    let mut deps: Vec<_> = p
        .deps
        .iter()
        .map(|d| (d.from_page, d.from_time, d.to_page, d.to_time))
        .collect();
    deps.sort_unstable();
    for (fp, ft, tp, tt) in deps {
        let _ = writeln!(out, "dep: p{fp}@{ft} -> p{tp}@{tt}");
    }
    out
}

/// Canonical text rendering of a shrink plan.
fn render_plan(plan: &ShrinkPlan) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "m: {}", plan.m);
    let _ = writeln!(out, "period: {}", plan.period);
    let _ = writeln!(out, "span: {}", plan.span);
    let _ = writeln!(out, "ii_q_ceil: {}", plan.ii_q_ceil());
    let _ = writeln!(out, "strategy: {:?}", plan.strategy);
    for (iter, placements) in plan.placements.iter().enumerate() {
        let mut cells: Vec<_> = placements
            .iter()
            .map(|(&(page, slot), c)| (page, slot, c.col, c.time))
            .collect();
        cells.sort_unstable();
        for (page, slot, col, time) in cells {
            let _ = writeln!(out, "iter {iter}: p{page} s{slot} -> col {col} t{time}");
        }
    }
    out
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); regenerate with UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "snapshot {name} diverged; if intentional, rerun with UPDATE_GOLDEN=1 \
         and bump cgra-bench::mapcache::SCHEMA in the same commit"
    );
}

/// Canonical text rendering of a degraded plan: the fault headline,
/// column-to-physical-page backing, then the inner plan.
fn render_degraded(d: &DegradedPlan) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "effective_pages: {}", d.effective_pages);
    let _ = writeln!(out, "column_pages: {:?}", d.column_pages);
    let _ = writeln!(out, "dead_pages: {:?}", d.dead_pages);
    let _ = writeln!(out, "degraded_pages: {:?}", d.degraded_pages);
    out.push_str(&render_plan(&d.plan));
    out
}

#[test]
fn schedule_before_matches_golden() {
    let paged = paged_fixture();
    check_golden(&format!("{KERNEL}_before.txt"), &render_schedule(&paged));
}

#[test]
fn shrink_plans_match_golden_and_validate() {
    let paged = paged_fixture();
    for m in 1..=paged.num_pages {
        let plan = transform(&paged, m, Strategy::Auto).expect("transforms");
        // The validator is the ground truth; the snapshot only pins the
        // exact placement choice among the valid ones.
        let violations = validate_plan(&paged, &plan);
        assert!(violations.is_empty(), "M={m}: {violations:?}");
        check_golden(&format!("{KERNEL}_after_m{m}.txt"), &render_plan(&plan));
    }
}

#[test]
fn degraded_plan_matches_golden_and_validates() {
    let paged = paged_fixture();
    // Kill the first page of the region: the surviving run is pages
    // 1..N, so the plan shrinks by exactly one column.
    let mut faults = FaultMap::new(paged.num_pages);
    faults.mark_page(0, PageHealth::Dead);
    let degraded = transform_degraded(&paged, &faults, paged.num_pages, Strategy::Auto)
        .expect("survives one dead page");
    assert_eq!(degraded.effective_pages, paged.num_pages - 1);
    let report = cgra_analyze::analyze_degraded(&paged, &degraded, &faults);
    assert!(!report.has_errors(), "{}", report.render());
    check_golden(
        &format!("{KERNEL}_degraded_dead0.txt"),
        &render_degraded(&degraded),
    );
}
