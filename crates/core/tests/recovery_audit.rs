//! Recovery legality, re-derived by the independent analyzer.
//!
//! The shrink → repair → re-expand round trip promised by the
//! fail-recover fabric: a real kernel's schedule is degraded around a
//! dead page, the page heals (Dead → Repairing → Healthy), and
//! [`plan_recovery`] upgrades the degraded plan back to the full-ring
//! schedule. The `A31x` analyzer codes audit what the unit tests cannot
//! prove from structure alone — repaired-page reuse legality (A310),
//! the quarantine window (A311), and iteration conservation across the
//! round trip (A312). (An integration test because the analyzer is a
//! dev-dependency cycle: it links this crate's library instance.)

use cgra_arch::{CgraConfig, FaultMap, PageHealth};
use cgra_core::transform::Strategy;
use cgra_core::{plan_recovery, transform_degraded, PagedSchedule, RepairedPage};
use cgra_mapper::{map_constrained, MapOptions};

const QUARANTINE: u64 = 64;

/// Kill `dead_page`, shrink around it, repair it, re-expand, and audit
/// the whole round trip for one kernel. Returns nothing; panics with
/// the analyzer's rendering on any violation.
fn round_trip(kernel: cgra_dfg::Dfg, dead_page: u16, completed: u64) {
    let cgra = CgraConfig::square(4);
    let name = kernel.name.clone();
    let r = map_constrained(&kernel, &cgra, &MapOptions::default())
        .unwrap_or_else(|e| panic!("{name} maps on 4x4: {e:?}"));
    let ps = PagedSchedule::from_mapping(&r, &cgra).expect("paged extraction");
    assert!(
        dead_page < ps.num_pages,
        "{name}: fixture page {dead_page} outside {} pages",
        ps.num_pages
    );

    // Strike: the page dies, the thread shrinks onto the survivors.
    let mut faults = FaultMap::new(ps.num_pages);
    faults.mark_page(dead_page, PageHealth::Dead);
    let d = transform_degraded(&ps, &faults, ps.num_pages, Strategy::Auto)
        .unwrap_or_else(|e| panic!("{name} degrades: {e:?}"));
    assert!(d.effective_pages < ps.num_pages, "{name}: must shrink");
    let degrade_report = cgra_analyze::analyze_degraded(&ps, &d, &faults);
    assert!(!degrade_report.has_errors(), "{}", degrade_report.render());

    // Repair: Dead → Repairing → Healthy, quarantine respected.
    faults.begin_repair(dead_page);
    faults.complete_repair(dead_page);
    let repaired = [RepairedPage {
        page: dead_page,
        repaired_at: 10_000,
        activated_at: 10_000 + QUARANTINE,
    }];
    let rec = plan_recovery(
        &ps,
        &d,
        &faults,
        &repaired,
        QUARANTINE,
        completed,
        Strategy::Auto,
    )
    .unwrap_or_else(|e| panic!("{name} recovers: {e:?}"));

    // Back on the original page count, zero iterations lost.
    assert!(
        rec.is_full_ring(&ps),
        "{name}: recovered {} of {} pages",
        rec.plan.m,
        ps.num_pages
    );
    assert_eq!(rec.iterations_lost(), 0, "{name}: iterations lost");
    assert_eq!(rec.resume_iteration, completed);

    // The independent analyzer agrees: A310/A311/A312 all pass.
    let rep = cgra_analyze::analyze_recovery(&ps, &rec, &faults);
    assert!(rep.is_clean(), "{name}:\n{}", rep.render());
}

#[test]
fn fir_round_trips_clean() {
    round_trip(cgra_dfg::kernels::fir(), 0, 137);
}

#[test]
fn sobel_round_trips_clean() {
    round_trip(cgra_dfg::kernels::sobel(), 1, 52);
}

#[test]
fn yuv2rgb_round_trips_clean() {
    round_trip(cgra_dfg::kernels::yuv2rgb(), 2, 9_999);
}

#[test]
fn mid_repair_reexpansion_is_flagged_a310() {
    // Cutting the recovery over while the page is still Repairing (the
    // quarantine has not elapsed) must be caught by the analyzer.
    let cgra = CgraConfig::square(4);
    let r = map_constrained(&cgra_dfg::kernels::fir(), &cgra, &MapOptions::default())
        .expect("fir maps on 4x4");
    let ps = PagedSchedule::from_mapping(&r, &cgra).expect("paged extraction");
    let mut faults = FaultMap::new(ps.num_pages);
    faults.mark_page(0, PageHealth::Dead);
    let d = transform_degraded(&ps, &faults, ps.num_pages, Strategy::Auto).unwrap();
    // Heal fully to *build* the plan, then regress the map to Repairing
    // to model a premature cutover.
    let mut healed = faults.clone();
    healed.begin_repair(0);
    healed.complete_repair(0);
    let rec = plan_recovery(&ps, &d, &healed, &[], QUARANTINE, 5, Strategy::Auto).unwrap();
    let mut mid_repair = FaultMap::new(ps.num_pages);
    mid_repair.mark_page(0, PageHealth::Dead);
    mid_repair.begin_repair(0);
    let rep = cgra_analyze::analyze_recovery(&ps, &rec, &mid_repair);
    assert!(
        rep.codes()
            .contains(&cgra_analyze::Code::A310RecoveryOnUnrepairedPage),
        "{}",
        rep.render()
    );
}
