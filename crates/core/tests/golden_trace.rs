//! Golden-trace snapshot: the exact event stream of one small, fully
//! deterministic scenario — the `fir` kernel compiled for a 4×4 fabric
//! and run by two threads with one page dying mid-flight.
//!
//! The snapshot pins *event-level* behaviour that end-state assertions
//! cannot see: the order of queue/start/shrink events, the pages named
//! in each allocation, the timestamps of the fault and its revocation.
//! Any intended change to the mapper search, the PageMaster transform or
//! the simulator's scheduling shows up here as a diff; regenerate with
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test -p cgra-core --test golden_trace
//! ```
//!
//! and review the diff like any other code change.

use cgra_arch::{CgraConfig, FaultEvent, FaultKind};
use cgra_mapper::MapOptions;
use cgra_obs::{check_trace, RingSink, TraceEvent, Tracer};
use cgra_sim::{
    simulate_multithreaded_faulty_traced, KernelLibrary, KernelProfile, MtConfig, Segment,
    ThreadSpec,
};
use std::path::PathBuf;
use std::sync::Arc;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join("fir_trace.jsonl")
}

/// Capture the scenario's full trace: compile `fir` (mapper + transform
/// events), then run two threads with page 0 killed at cycle 2000.
fn capture() -> Vec<TraceEvent> {
    let sink = Arc::new(RingSink::unbounded());
    let tracer = Tracer::new(sink.clone());

    let cgra = CgraConfig::square(4);
    let profile = KernelProfile::compile_traced(
        &cgra_dfg::kernels::fir(),
        &cgra,
        &MapOptions::default(),
        &tracer,
    )
    .expect("fir compiles on the 4x4");
    let lib = KernelLibrary {
        profiles: vec![profile],
        num_pages: cgra.layout().num_pages() as u16,
    };

    let thread = |iterations| ThreadSpec {
        segments: vec![Segment::Cgra {
            kernel: 0,
            iterations,
        }],
    };
    let faults = [FaultEvent {
        time: 2_000,
        page: 0,
        kind: FaultKind::Kill,
    }];
    simulate_multithreaded_faulty_traced(
        &lib,
        &[thread(600), thread(400)],
        MtConfig::default(),
        &faults,
        &tracer,
    )
    .expect("two fir threads survive one page death");
    sink.drain()
}

fn render(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&ev.to_jsonl());
        out.push('\n');
    }
    out
}

#[test]
fn fir_trace_matches_golden() {
    let events = capture();

    // The scenario must actually exercise the interesting machinery
    // before we pin its bytes: a compile segment, a transform, the page
    // death and a consequent shrink or revocation.
    let kinds: Vec<&str> = events.iter().map(|e| e.kind()).collect();
    for required in ["map_begin", "transform_begin", "fault", "sim_end"] {
        assert!(kinds.contains(&required), "no {required} event in trace");
    }
    assert!(
        kinds.contains(&"thread_shrink") || kinds.contains(&"revoke"),
        "page death had no observable effect: {kinds:?}"
    );
    // And it must satisfy the oracle — a golden file enshrining an
    // invariant violation would be worse than no golden at all.
    let report = check_trace(&events).expect("golden scenario replays clean");
    assert_eq!(report.runs, 1);
    assert_eq!(report.aborted_runs, 0);

    let rendered = render(&events);
    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &rendered).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "{}: {e}\nrun `UPDATE_GOLDEN=1 cargo test -p cgra-core --test golden_trace` \
             to (re)generate",
            path.display()
        )
    });
    assert_eq!(
        rendered,
        golden,
        "trace diverges from {}; if the change is intended, regenerate \
         with UPDATE_GOLDEN=1 and review the diff",
        path.display()
    );
}

#[test]
fn golden_file_parses_and_replays_clean() {
    // The checked-in artefact itself must stay loadable and
    // oracle-clean, independent of the capture path above.
    let path = golden_path();
    let Ok(text) = std::fs::read_to_string(&path) else {
        panic!(
            "{} missing; regenerate with UPDATE_GOLDEN=1",
            path.display()
        );
    };
    let events = TraceEvent::parse_jsonl(&text).expect("golden parses");
    assert!(!events.is_empty());
    check_trace(&events).expect("golden replays clean");
}
