//! Re-expansion after repair: undo a [`DegradedPlan`] once pages heal.
//!
//! A transient fault shrinks a thread onto the surviving run of its
//! region ([`transform_degraded`](crate::degrade::transform_degraded));
//! when the dead pages are repaired and their quarantine windows elapse,
//! the supervision policy re-expands the thread. This module produces
//! the typed plan for that *undo*: a full-ring [`ShrinkPlan`] over the
//! recovered region (the same PageMaster machinery that shrank the
//! schedule grows it back), plus the bookkeeping the analyzer needs to
//! prove the recovery legal —
//!
//! * which physical pages back the recovered columns (none may still be
//!   dead or mid-repair — `cgra-analyze` code **A310**),
//! * when each repaired page was repaired vs. when the plan activates
//!   it (the quarantine window must be respected — **A311**),
//! * how many kernel iterations were completed before the fault and at
//!   which iteration the recovered schedule resumes (the round trip
//!   must lose nothing — **A312**).

use crate::degrade::DegradedPlan;
use crate::paged::PagedSchedule;
use crate::transform::{transform, ShrinkPlan, Strategy, TransformError};
use cgra_arch::FaultMap;
use serde::{Deserialize, Serialize};

/// One page that came back from a transient fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RepairedPage {
    /// The physical page index.
    pub page: u16,
    /// Cycle at which the repair committed (the page re-entered the
    /// allocator's free pool).
    pub repaired_at: u64,
    /// Cycle at which the recovery plan first places work on the page.
    pub activated_at: u64,
}

/// The undo of a [`DegradedPlan`]: a schedule re-expanded onto the
/// recovered page region.
///
/// `plan` is an ordinary plan over `column_pages.len()` logical columns
/// — at full recovery `plan.m == ` the source schedule's `num_pages`,
/// i.e. the thread's original full-ring schedule. `column_pages[c]`
/// names the physical page backing column `c` (contiguous and
/// ascending, like the degraded plan it undoes).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecoveryPlan {
    /// The re-expanded plan over the recovered columns.
    pub plan: ShrinkPlan,
    /// Physical page backing each plan column.
    pub column_pages: Vec<u16>,
    /// Pages that were repaired to make this expansion possible, with
    /// their repair/activation cycles.
    pub repaired: Vec<RepairedPage>,
    /// The quarantine window (cycles) each repaired page must sit out
    /// after its repair before the plan may activate it.
    pub quarantine: u64,
    /// Kernel iterations the thread had completed (degraded or not)
    /// when the recovery plan was cut over.
    pub completed_iterations: u64,
    /// Iteration index at which the recovered schedule resumes. Equal
    /// to `completed_iterations` when the round trip loses nothing.
    pub resume_iteration: u64,
    /// Pages of the region still dead (or mid-repair) at recovery time.
    pub dead_pages: Vec<u16>,
}

impl RecoveryPlan {
    /// The physical page executing plan column `col`.
    pub fn physical_page(&self, col: u16) -> u16 {
        self.column_pages[col as usize]
    }

    /// Whether the thread is back to the full ring of its source
    /// schedule (`m` recovered columns out of `m` original pages).
    pub fn is_full_ring(&self, p: &PagedSchedule) -> bool {
        self.plan.m == p.num_pages
    }

    /// Iterations lost across the shrink → repair → expand round trip
    /// (zero for a correct recovery).
    pub fn iterations_lost(&self) -> u64 {
        self.completed_iterations.abs_diff(self.resume_iteration)
    }
}

/// Plan the re-expansion of `p` onto the recovered region of `faults`,
/// undoing `degraded`.
///
/// `faults` describes the thread's page region *after* repair (the
/// pages listed in `repaired` must be usable again); `repaired` carries
/// the repair/activation cycles the analyzer audits against
/// `quarantine`. `completed_iterations` is the thread's progress at
/// cutover; the returned plan resumes exactly there.
///
/// The target size is the longest surviving run of the healed map,
/// capped at the source schedule's page count — if every page healed,
/// the result is the thread's original full-ring schedule.
///
/// # Errors
///
/// [`TransformError::NoHealthyPages`] when the healed map still has no
/// usable run, or whatever the inner [`transform`] reports.
pub fn plan_recovery(
    p: &PagedSchedule,
    degraded: &DegradedPlan,
    faults: &FaultMap,
    repaired: &[RepairedPage],
    quarantine: u64,
    completed_iterations: u64,
    strategy: Strategy,
) -> Result<RecoveryPlan, TransformError> {
    let (start, len) = faults
        .longest_surviving_run()
        .ok_or(TransformError::NoHealthyPages)?;
    let m = len.min(p.num_pages);
    if m == 0 {
        return Err(TransformError::NoHealthyPages);
    }
    debug_assert!(
        m >= degraded.effective_pages,
        "recovery must not shrink below the degraded plan"
    );
    let plan = transform(p, m, strategy)?;
    Ok(RecoveryPlan {
        column_pages: (start..start + m).collect(),
        repaired: repaired.to_vec(),
        quarantine,
        completed_iterations,
        resume_iteration: completed_iterations,
        // `dead_pages()` is every non-usable page, so a page mid-repair
        // (Repairing) counts as dead here — exactly what A310 audits.
        dead_pages: faults.dead_pages(),
        plan,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degrade::transform_degraded;
    use cgra_arch::PageHealth;

    // Like `degrade.rs`: legality auditing lives in the analyzer's
    // fixtures and `tests/recovery_audit.rs` (dev-dependency cycle);
    // unit tests here check structure.

    fn shrink_then_heal(pages: u16, dead: u16) -> (PagedSchedule, DegradedPlan, FaultMap) {
        let p = PagedSchedule::synthetic_canonical(pages, 2, false);
        let mut faults = FaultMap::new(pages);
        faults.mark_page(dead, PageHealth::Dead);
        let d = transform_degraded(&p, &faults, pages, Strategy::Auto).unwrap();
        // The page repairs: Dead → Repairing → Healthy.
        faults.begin_repair(dead);
        faults.complete_repair(dead);
        (p, d, faults)
    }

    #[test]
    fn full_heal_restores_the_full_ring() {
        let (p, d, faults) = shrink_then_heal(8, 2);
        assert_eq!(d.effective_pages, 5, "shrunk onto the right-side run");
        let repaired = [RepairedPage {
            page: 2,
            repaired_at: 1_000,
            activated_at: 1_100,
        }];
        let r = plan_recovery(&p, &d, &faults, &repaired, 100, 42, Strategy::Auto).unwrap();
        assert!(r.is_full_ring(&p));
        assert_eq!(r.plan.m, 8);
        assert_eq!(r.column_pages, (0..8).collect::<Vec<u16>>());
        assert_eq!(r.iterations_lost(), 0);
        assert_eq!(r.resume_iteration, 42);
        assert!(r.dead_pages.is_empty());
    }

    #[test]
    fn partial_heal_grows_to_the_surviving_run() {
        let p = PagedSchedule::synthetic_canonical(8, 2, false);
        let mut faults = FaultMap::new(8);
        faults.mark_page(1, PageHealth::Dead);
        faults.mark_page(6, PageHealth::Dead);
        let d = transform_degraded(&p, &faults, 8, Strategy::Auto).unwrap();
        assert_eq!(d.effective_pages, 4, "run [2,6) wins");
        // Only page 6 heals; page 1 stays dead.
        faults.begin_repair(6);
        faults.complete_repair(6);
        let repaired = [RepairedPage {
            page: 6,
            repaired_at: 500,
            activated_at: 700,
        }];
        let r = plan_recovery(&p, &d, &faults, &repaired, 200, 10, Strategy::Auto).unwrap();
        assert_eq!(r.plan.m, 6, "run [2,8) after the heal");
        assert_eq!(r.column_pages, vec![2, 3, 4, 5, 6, 7]);
        assert!(!r.is_full_ring(&p));
        assert_eq!(r.dead_pages, vec![1]);
    }

    #[test]
    fn mid_repair_pages_are_not_reused() {
        let p = PagedSchedule::synthetic_canonical(4, 1, false);
        let mut faults = FaultMap::new(4);
        faults.mark_page(3, PageHealth::Dead);
        let d = transform_degraded(&p, &faults, 4, Strategy::Auto).unwrap();
        // Repair began but the quarantine has not elapsed: the page is
        // Repairing, still unusable.
        faults.begin_repair(3);
        let r = plan_recovery(&p, &d, &faults, &[], 100, 5, Strategy::Auto).unwrap();
        assert_eq!(r.plan.m, 3, "repairing page must not be re-placed");
        assert_eq!(r.column_pages, vec![0, 1, 2]);
        assert_eq!(r.dead_pages, vec![3], "mid-repair counts as dead");
    }

    #[test]
    fn nothing_healed_still_errors_when_all_dead() {
        let p = PagedSchedule::synthetic_canonical(4, 1, false);
        let mut faults = FaultMap::new(4);
        for page in 0..4 {
            faults.mark_page(page, PageHealth::Dead);
        }
        let d = DegradedPlan {
            plan: transform(&p, 1, Strategy::Auto).unwrap(),
            column_pages: vec![0],
            effective_pages: 1,
            dead_pages: vec![],
            degraded_pages: vec![],
        };
        assert!(matches!(
            plan_recovery(&p, &d, &faults, &[], 0, 0, Strategy::Auto),
            Err(TransformError::NoHealthyPages)
        ));
    }

    #[test]
    fn real_kernel_round_trips_through_shrink_and_recovery() {
        let cgra = cgra_arch::CgraConfig::square(4);
        let k = cgra_dfg::kernels::fir();
        let r = cgra_mapper::map_constrained(&k, &cgra, &cgra_mapper::MapOptions::default())
            .expect("fir maps on 4x4");
        let ps = PagedSchedule::from_mapping(&r, &cgra).expect("paged extraction");
        let mut faults = FaultMap::new(ps.num_pages);
        faults.mark_page(0, PageHealth::Dead);
        let d = transform_degraded(&ps, &faults, ps.num_pages, Strategy::Auto).unwrap();
        assert_eq!(d.effective_pages, ps.num_pages - 1);
        faults.begin_repair(0);
        faults.complete_repair(0);
        let repaired = [RepairedPage {
            page: 0,
            repaired_at: 2_000,
            activated_at: 2_064,
        }];
        let rec = plan_recovery(&ps, &d, &faults, &repaired, 64, 77, Strategy::Auto).unwrap();
        assert!(rec.is_full_ring(&ps));
        assert_eq!(rec.iterations_lost(), 0);
        assert!(
            crate::validate::validate_plan(&ps, &rec.plan).is_empty(),
            "recovered full-ring plan is legal"
        );
    }
}
