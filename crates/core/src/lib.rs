//! # cgra-core — the PageMaster runtime schedule transformation
//!
//! The paper's contribution: take a kernel schedule compiled (under the
//! §VI-B paging constraints) for the *whole* CGRA and reshape it at
//! runtime to occupy fewer — or again more — pages, so kernels from
//! several threads can share the fabric (§V, §VI).
//!
//! * [`paged`] — [`PagedSchedule`]: the `N × II` page-level cell grid
//!   extracted from a constrained mapping, with its dependences.
//! * [`transform`] — [`ShrinkPlan`] and the column-stable *block*
//!   strategy; [`transform()`](transform::transform) dispatches.
//! * [`pagemaster`] — the paper's Algorithm 1: two-hop interleave
//!   initialization, `PlacePage`'s three cases, tails, steady-state
//!   extraction.
//! * [`validate`] — an independent checker for every §VI-C constraint
//!   (slot exclusivity, dependence timing and column adjacency, capacity
//!   bound), plus the dead-page checks for degraded plans.
//! * [`degrade`] — [`DegradedPlan`](degrade::DegradedPlan): shrinking
//!   onto the surviving contiguous run of a faulty page region instead
//!   of panicking when pages die.
//! * [`recovery`] — [`RecoveryPlan`](recovery::RecoveryPlan): the undo,
//!   re-expanding onto repaired pages back toward the full-ring
//!   schedule, with the quarantine/iteration bookkeeping the analyzer
//!   audits (codes A310–A312).
//! * [`fold`] — the PE-level shrink-to-one-page of Fig. 6, with
//!   intra-page mirroring and rotating-register pressure checks.
//!
//! ```
//! use cgra_arch::CgraConfig;
//! use cgra_mapper::{map_constrained, MapOptions};
//! use cgra_core::{PagedSchedule, transform::{transform, Strategy}};
//!
//! let cgra = CgraConfig::square(4);
//! let mapped = map_constrained(&cgra_dfg::kernels::mpeg2(), &cgra,
//!                              &MapOptions::default()).unwrap();
//! let paged = PagedSchedule::from_mapping(&mapped, &cgra).unwrap();
//! // Another thread arrives: shrink from 4 pages to 2.
//! let plan = transform(&paged, 2, Strategy::Auto).unwrap();
//! assert!(cgra_core::validate::validate_plan(&paged, &plan).is_empty());
//! assert_eq!(plan.ii_q_ceil(), 2 * mapped.ii());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod degrade;
pub mod fold;
pub mod paged;
pub mod pagemaster;
pub mod recovery;
pub mod transform;
pub mod validate;

pub use degrade::{transform_degraded, DegradedPlan};
pub use fold::{fold_to_page, validate_fold, FoldedSchedule};
pub use paged::{Discipline, PageDep, PagedSchedule};
pub use pagemaster::{transform_pagemaster, transform_pagemaster_degraded};
pub use recovery::{plan_recovery, RecoveryPlan, RepairedPage};
pub use transform::{transform_block, transform_traced, ShrinkPlan, Strategy, TransformError};
pub use validate::{is_slot_optimal, validate_plan, TransformViolation};
