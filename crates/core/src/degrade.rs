//! Graceful degradation: shrink plans that route around dead pages.
//!
//! The paper treats a shrink as "another thread took some of my pages";
//! a fabric fault is the same event with a different cause — pages
//! disappear at runtime and the thread must keep making progress on
//! whatever survives. This module composes the PageMaster transformation
//! with a [`FaultMap`](cgra_arch::FaultMap):
//!
//! 1. find the **longest surviving contiguous run** of usable pages in
//!    the thread's ring region (ring-path dependences only hop between
//!    physically adjacent pages, so the target region must be contiguous
//!    — a plan scattered over disconnected healthy islands could never
//!    route its inter-page values);
//! 2. shrink the schedule onto `M = min(budget, run length)` columns
//!    with the ordinary [`transform`] machinery;
//! 3. record which *physical* page backs each plan column, so the
//!    validator (and the simulator's allocator) can check that no op
//!    lands on a dead page.
//!
//! The result is a typed [`DegradedPlan`] instead of a panic; a fully
//! dead region reports [`TransformError::NoHealthyPages`].

use crate::paged::PagedSchedule;
use crate::transform::{transform, ShrinkPlan, Strategy, TransformError};
use cgra_arch::FaultMap;
use serde::{Deserialize, Serialize};

/// A [`ShrinkPlan`] remapped onto the surviving pages of a faulty region.
///
/// `plan` is an ordinary shrink plan over `effective_pages` *logical*
/// columns; `column_pages[c]` names the physical page that backs column
/// `c`. The physical pages are contiguous and ascending (the surviving
/// run), so ring adjacency in the plan is physical adjacency on the
/// fabric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegradedPlan {
    /// The shrink plan over the surviving columns.
    pub plan: ShrinkPlan,
    /// Physical page backing each plan column (`column_pages[col]`).
    pub column_pages: Vec<u16>,
    /// The new effective page count (`plan.m`, duplicated for callers
    /// that only need the headline number).
    pub effective_pages: u16,
    /// Dead pages of the fault map at transformation time.
    pub dead_pages: Vec<u16>,
    /// Degraded-but-usable pages at transformation time.
    pub degraded_pages: Vec<u16>,
}

impl DegradedPlan {
    /// The physical page executing plan column `col`.
    pub fn physical_page(&self, col: u16) -> u16 {
        self.column_pages[col as usize]
    }

    /// Whether any plan column sits on a degraded (slow but usable) page.
    pub fn touches_degraded(&self) -> bool {
        self.column_pages
            .iter()
            .any(|p| self.degraded_pages.contains(p))
    }
}

/// Shrink `p` onto the surviving pages of `faults`, using at most
/// `budget` columns.
///
/// `faults` describes the health of the thread's *current* page region
/// (index `i` of the map is the `i`-th page the thread holds); it need
/// not match `p.num_pages` — a thread holding 4 pages can be remapped
/// from its 8-page source schedule just like an ordinary shrink. The
/// target size is `min(budget, longest surviving run, p.num_pages)`.
///
/// # Errors
///
/// [`TransformError::NoHealthyPages`] when no usable page survives (the
/// caller should revoke the region entirely and queue the thread);
/// otherwise whatever the inner [`transform`] reports.
pub fn transform_degraded(
    p: &PagedSchedule,
    faults: &FaultMap,
    budget: u16,
    strategy: Strategy,
) -> Result<DegradedPlan, TransformError> {
    let (start, len) = faults
        .longest_surviving_run()
        .ok_or(TransformError::NoHealthyPages)?;
    let m = budget.min(len).min(p.num_pages);
    if m == 0 {
        return Err(TransformError::NoHealthyPages);
    }
    let plan = transform(p, m, strategy)?;
    Ok(DegradedPlan {
        column_pages: (start..start + m).collect(),
        effective_pages: m,
        dead_pages: faults.dead_pages(),
        degraded_pages: faults.degraded_pages(),
        plan,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgra_arch::PageHealth;

    // Legality auditing lives in `tests/degrade_audit.rs`: the
    // independent analyzer (`cgra-analyze`) is a dev-dependency cycle,
    // so it can only link against this crate's *library* instance —
    // unit tests here check structure, the integration test re-derives
    // legality.

    #[test]
    fn zero_faults_is_plain_shrink() {
        let p = PagedSchedule::synthetic_canonical(8, 2, false);
        let faults = FaultMap::new(8);
        let d = transform_degraded(&p, &faults, 8, Strategy::Auto).unwrap();
        assert_eq!(d.effective_pages, 8);
        assert_eq!(d.column_pages, (0..8).collect::<Vec<u16>>());
        assert!(d.dead_pages.is_empty());
        assert!(!d.touches_degraded());
    }

    #[test]
    fn dead_middle_page_picks_longest_side() {
        let p = PagedSchedule::synthetic_canonical(8, 2, false);
        let mut faults = FaultMap::new(8);
        faults.mark_page(2, PageHealth::Dead);
        // Runs: [0,2) and [3,8) — the right side wins with 5 pages, and
        // the budget caps the shrink at 4 columns.
        let d = transform_degraded(&p, &faults, 4, Strategy::Auto).unwrap();
        assert_eq!(d.effective_pages, 4);
        assert_eq!(d.column_pages, vec![3, 4, 5, 6]);
        assert_eq!(d.dead_pages, vec![2]);
    }

    #[test]
    fn degraded_pages_stay_usable_and_reported() {
        let p = PagedSchedule::synthetic_canonical(4, 1, false);
        let mut faults = FaultMap::new(4);
        faults.mark_page(1, PageHealth::Degraded);
        let d = transform_degraded(&p, &faults, 4, Strategy::Auto).unwrap();
        assert_eq!(d.effective_pages, 4);
        assert_eq!(d.degraded_pages, vec![1]);
        assert!(d.touches_degraded());
    }

    #[test]
    fn all_dead_reports_no_healthy_pages() {
        let p = PagedSchedule::synthetic_canonical(4, 1, false);
        let mut faults = FaultMap::new(4);
        for page in 0..4 {
            faults.mark_page(page, PageHealth::Dead);
        }
        assert!(matches!(
            transform_degraded(&p, &faults, 4, Strategy::Auto),
            Err(TransformError::NoHealthyPages)
        ));
    }

    #[test]
    fn budget_zero_reports_no_healthy_pages() {
        let p = PagedSchedule::synthetic_canonical(4, 1, false);
        let faults = FaultMap::new(4);
        assert!(matches!(
            transform_degraded(&p, &faults, 0, Strategy::Auto),
            Err(TransformError::NoHealthyPages)
        ));
    }

    #[test]
    fn real_kernel_survives_one_dead_page() {
        let cgra = cgra_arch::CgraConfig::square(4);
        let k = cgra_dfg::kernels::fir();
        let r = cgra_mapper::map_constrained(&k, &cgra, &cgra_mapper::MapOptions::default())
            .expect("fir maps on 4x4");
        let ps = PagedSchedule::from_mapping(&r, &cgra).expect("paged extraction");
        let mut faults = FaultMap::new(ps.num_pages);
        faults.mark_page(0, PageHealth::Dead);
        let d = transform_degraded(&ps, &faults, ps.num_pages, Strategy::Auto).unwrap();
        assert_eq!(d.effective_pages, ps.num_pages - 1);
        assert_eq!(d.column_pages.first(), Some(&1));
    }
}
