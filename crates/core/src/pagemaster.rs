//! The PageMaster transformation — the paper's Algorithm 1 (§VI-D).
//!
//! Given an `N`-page canonical schedule, reschedule it onto `M ≤ N` page
//! columns:
//!
//! 1. **Schedule initialization** (§VI-D.1): place the first time-step's
//!    pages along the two-hop interleave — `p_n → col 0`,
//!    `p_{n−1} → col 1`, `p_{n+1} → col 2`, `p_{n−2} → col 3`, … — so
//!    every pair of ring-neighbouring pages sits within two columns of
//!    each other; pages that do not complete a row are stacked as *tails*
//!    in the outermost column.
//! 2. **PlacePage** (Algorithm 1): every later cell is placed from the
//!    columns of its two producers `p(n−1, t−1)` (col `d1`) and
//!    `p(n, t−1)` (col `d2`):
//!    * two hops apart → the middle column;
//!    * one hop apart → the boundary column (0 or M−1);
//!    * zero hops apart → the less-loaded neighbouring column;
//!      in every case at the earliest free time in that column after
//!      both producers have executed.
//! 3. **Steady state**: cells are placed for a warm-up window of
//!    iterations; the transformation succeeds when the column pattern and
//!    inter-iteration time shift become periodic. The periodic tail is
//!    returned as the [`ShrinkPlan`].
//!
//! `placePage` does constant work per cell (`findDependencyColumns` is a
//! table lookup), so the transformation runs in `O(N · II_p)` per
//! iteration — the paper's "low-order polynomial time" claim, measured in
//! `benches/pagemaster_speed.rs`.

use crate::paged::{Discipline, PagedSchedule};
use crate::transform::{CellPlacement, ShrinkPlan, Strategy, TransformError};
use std::collections::{HashMap, HashSet};

/// Iterations simulated before giving up on steady state.
const WARMUP_ITERS: u32 = 512;
/// Longest period searched for. The drifting placement tends to rotate
/// pages around the columns, giving periods up to ~2·M·N in the worst
/// observed cases.
const MAX_PERIOD: u32 = 160;

struct Columns {
    occupied: Vec<HashSet<u64>>,
    count: Vec<u64>,
}

impl Columns {
    fn new(m: u16) -> Self {
        Columns {
            occupied: vec![HashSet::new(); m as usize],
            count: vec![0; m as usize],
        }
    }

    /// Earliest free time in `col` that is `>= min_time`.
    fn place_min(&mut self, col: u16, min_time: u64) -> u64 {
        let occ = &mut self.occupied[col as usize];
        let mut t = min_time;
        while occ.contains(&t) {
            t += 1;
        }
        occ.insert(t);
        self.count[col as usize] += 1;
        t
    }

    fn load(&self, col: u16) -> u64 {
        self.count[col as usize]
    }
}

/// The §VI-D.1 interleave: `[n0, n0−1, n0+1, n0−2, n0+2, …]` mod `N`.
fn interleave_order(n: u16) -> Vec<u16> {
    let mut seq = Vec::with_capacity(n as usize);
    seq.push(0u16);
    let mut step = 1i32;
    while seq.len() < n as usize {
        let lo = (-step).rem_euclid(n as i32) as u16;
        if !seq.contains(&lo) {
            seq.push(lo);
        }
        if seq.len() == n as usize {
            break;
        }
        let hi = step.rem_euclid(n as i32) as u16;
        if !seq.contains(&hi) {
            seq.push(hi);
        }
        step += 1;
    }
    seq
}

/// Transform a canonical schedule with the paper's drifting algorithm.
pub fn transform_pagemaster(p: &PagedSchedule, m: u16) -> Result<ShrinkPlan, TransformError> {
    if m == 0 || m > p.num_pages {
        return Err(TransformError::BadTargetSize { m });
    }
    if p.discipline != Discipline::Canonical {
        return Err(TransformError::NeedsCanonical);
    }
    let n = p.num_pages;
    if m == n {
        // Identity: every page keeps its own column.
        let mut placement = HashMap::new();
        for page in 0..n {
            for slot in 0..p.ii {
                placement.insert(
                    (page, slot),
                    CellPlacement {
                        col: page,
                        time: slot as u64,
                    },
                );
            }
        }
        return Ok(ShrinkPlan {
            m,
            period: 1,
            span: p.ii as u64,
            placements: vec![placement],
            strategy: Strategy::PageMaster,
        });
    }
    if m == 1 {
        return Ok(fold_to_single_column(p));
    }

    let mut cols = Columns::new(m);
    // pos[(page, global_step)] -> (col, time); global_step = iter*ii + slot.
    let mut pos: HashMap<(u16, u64), (u16, u64)> = HashMap::new();

    // --- Phase 1: initialization of (n, step 0). ---
    let seq = interleave_order(n);
    let mut placed = 0usize;
    let mut snake_right = true; // direction of the current row of the line
    while placed < seq.len() {
        let remaining = seq.len() - placed;
        if remaining >= m as usize {
            // A full row of the scheduling line: row r of the snake sits
            // no earlier than time r.
            let row = placed as u64 / m as u64;
            for i in 0..m as usize {
                let col = if snake_right {
                    i as u16
                } else {
                    m - 1 - i as u16
                };
                let page = seq[placed + i];
                let t = cols.place_min(col, row);
                pos.insert((page, 0), (col, t));
            }
            placed += m as usize;
            snake_right = !snake_right;
        } else {
            // Tails: stack the leftovers in the outermost column the line
            // ended at, earlier pages at earlier times.
            let edge = if snake_right { 0 } else { m - 1 };
            for i in 0..remaining {
                let page = seq[placed + i];
                let t = cols.place_min(edge, 0);
                pos.insert((page, 0), (edge, t));
            }
            placed += remaining;
        }
    }

    // --- Phase 2: PlacePage for every later cell, checking for a steady
    // state as iterations complete (constant work per cell; the check is
    // amortised by running it every few iterations).
    let mut rev = seq.clone();
    rev.reverse();
    let wrap = p.has_wrap_deps();
    let ii = p.ii as u64;
    let sig = |pos: &HashMap<(u16, u64), (u16, u64)>, iter: u64| -> Vec<(u16, u64)> {
        let mut v = Vec::with_capacity(n as usize * p.ii as usize);
        for page in 0..n {
            for slot in 0..ii {
                v.push(pos[&(page, iter * ii + slot)]);
            }
        }
        v
    };
    let try_detect =
        |pos: &HashMap<(u16, u64), (u16, u64)>, completed_iters: u64| -> Option<ShrinkPlan> {
            let last = completed_iters.checked_sub(1)?;
            for period in 1..=MAX_PERIOD as u64 {
                if period * 3 + 1 > last {
                    break;
                }
                let base_iter = last - period * 2;
                let a = sig(pos, base_iter);
                let b = sig(pos, base_iter + period);
                let c = sig(pos, base_iter + period * 2);
                // Columns must repeat and times must shift uniformly, over
                // two consecutive periods (one matching pair is not proof of
                // a steady state).
                let shift = b[0].1 as i64 - a[0].1 as i64;
                if shift <= 0 {
                    continue;
                }
                let matches = a.iter().zip(&b).zip(&c).all(|((x, y), z)| {
                    x.0 == y.0
                        && y.0 == z.0
                        && y.1 as i64 - x.1 as i64 == shift
                        && z.1 as i64 - y.1 as i64 == shift
                });
                if !matches {
                    continue;
                }
                // Extract the period starting at base_iter.
                let t0 = (0..n)
                    .flat_map(|page| (0..ii).map(move |slot| (page, slot)))
                    .map(|(page, slot)| pos[&(page, base_iter * ii + slot)].1)
                    .min()
                    .expect("non-empty schedule");
                let mut placements = Vec::with_capacity(period as usize);
                for j in 0..period {
                    let mut map = HashMap::new();
                    for page in 0..n {
                        for slot in 0..p.ii {
                            let (col, t) = pos[&(page, (base_iter + j) * ii + slot as u64)];
                            map.insert((page, slot), CellPlacement { col, time: t - t0 });
                        }
                    }
                    placements.push(map);
                }
                let plan = ShrinkPlan {
                    m,
                    period: period as u32,
                    span: shift as u64,
                    placements,
                    strategy: Strategy::PageMaster,
                };
                // Final guard: a drifting process can mimic periodicity over a
                // finite window; only hand out plans that pass the full §VI-C
                // validator. Otherwise keep looking (longer periods / more
                // warm-up).
                if crate::validate::validate_plan(p, &plan).is_empty() {
                    return Some(plan);
                }
            }
            None
        };

    let total_steps = WARMUP_ITERS as u64 * p.ii as u64;
    for step in 1..total_steps {
        for &page in &rev {
            let prev_page = if page == 0 {
                if wrap {
                    n - 1
                } else {
                    page // no ring predecessor: degenerate to case 3 on d2
                }
            } else {
                page - 1
            };
            let (d1, t_d1) = pos[&(prev_page, step - 1)];
            let (d2, t_d2) = pos[&(page, step - 1)];
            let bound = t_d1.max(t_d2);
            let col = place_page_column(d1, d2, m, &cols)?;
            let t = cols.place_min(col, bound + 1);
            pos.insert((page, step), (col, t));
        }
        // Early exit: after each completed iteration, look for a period.
        if step % ii == ii - 1 {
            let completed = (step + 1) / ii;
            if completed >= 8 && completed.is_multiple_of(4) {
                if let Some(plan) = try_detect(&pos, completed) {
                    return Ok(plan);
                }
            }
        }
    }
    try_detect(&pos, WARMUP_ITERS as u64).ok_or(TransformError::NoSteadyState)
}

/// Algorithm 1's column choice from the two dependency columns.
fn place_page_column(d1: u16, d2: u16, m: u16, cols: &Columns) -> Result<u16, TransformError> {
    let diff = d1.abs_diff(d2);
    match diff {
        2 => Ok((d1 + d2) / 2),
        1 => {
            if d1 == 0 || d2 == 0 {
                Ok(0)
            } else if d1 == m - 1 || d2 == m - 1 {
                Ok(m - 1)
            } else {
                // The paper states this case only occurs at the borders;
                // stay robust by keeping the consumer's own column.
                Ok(d2)
            }
        }
        0 => {
            // Neighbouring column with the lighter load (tails case).
            let left = d1.checked_sub(1);
            let right = if d1 + 1 < m { Some(d1 + 1) } else { None };
            match (left, right) {
                (Some(l), Some(r)) => Ok(if cols.load(l) <= cols.load(r) { l } else { r }),
                (Some(l), None) => Ok(l),
                (None, Some(r)) => Ok(r),
                (None, None) => Ok(d1), // M == 1, handled earlier
            }
        }
        _ => Err(TransformError::DependencyTooFar { d1, d2 }),
    }
}

/// M = 1: execute cells sequentially in dependence order `(slot, page)`
/// (Fig. 6). `II_q = N · II_p` exactly.
fn fold_to_single_column(p: &PagedSchedule) -> ShrinkPlan {
    let n = p.num_pages;
    let mut placement = HashMap::new();
    for slot in 0..p.ii {
        for page in 0..n {
            placement.insert(
                (page, slot),
                CellPlacement {
                    col: 0,
                    time: slot as u64 * n as u64 + page as u64,
                },
            );
        }
    }
    ShrinkPlan {
        m: 1,
        period: 1,
        span: n as u64 * p.ii as u64,
        placements: vec![placement],
        strategy: Strategy::PageMaster,
    }
}

/// PageMaster transformation over a faulty page region: shrink `p` onto
/// the longest surviving contiguous run of `faults`, capped at `budget`
/// columns, returning a typed [`DegradedPlan`](crate::degrade::DegradedPlan)
/// instead of panicking when pages have died.
///
/// Uses [`Strategy::Auto`] underneath — Algorithm 1 for canonical
/// schedules, the block transform otherwise — because a fault can strike
/// a thread running *any* discipline; the caller gets a sound plan either
/// way. See [`crate::degrade`] for the run-selection rules.
///
/// # Errors
///
/// [`TransformError::NoHealthyPages`] when nothing survives; otherwise
/// whatever the inner transformation reports.
pub fn transform_pagemaster_degraded(
    p: &PagedSchedule,
    faults: &cgra_arch::FaultMap,
    budget: u16,
) -> Result<crate::degrade::DegradedPlan, TransformError> {
    crate::degrade::transform_degraded(p, faults, budget, Strategy::Auto)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interleave_covers_all_pages() {
        for n in 1..12u16 {
            let seq = interleave_order(n);
            assert_eq!(seq.len(), n as usize);
            let mut sorted = seq.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..n).collect::<Vec<_>>());
        }
    }

    #[test]
    fn interleave_neighbours_within_two() {
        // Ring-consecutive pages must end up within two positions of each
        // other in the interleave (the two-hop property).
        let n = 6;
        let seq = interleave_order(n);
        let posn = |p: u16| seq.iter().position(|&x| x == p).unwrap() as i64;
        for page in 0..n {
            let next = (page + 1) % n;
            assert!(
                (posn(page) - posn(next)).abs() <= 2,
                "pages {page},{next} at positions {},{}",
                posn(page),
                posn(next)
            );
        }
    }

    #[test]
    fn fig7_six_to_five() {
        // The paper's Fig. 7 scenario: N=6 (full ring) onto M=5.
        let p = PagedSchedule::synthetic_canonical(6, 1, true);
        let plan = transform_pagemaster(&p, 5).expect("transforms");
        assert_eq!(plan.m, 5);
        // Capacity bound: II_q >= N/M = 1.2.
        assert!(plan.ii_q() >= 1.2 - 1e-9, "ii_q {}", plan.ii_q());
        // Must not be worse than the block bound ceil(6/5)*1 = 2.
        assert!(plan.ii_q() <= 2.0 + 1e-9, "ii_q {}", plan.ii_q());
    }

    #[test]
    fn shrink_to_one_page_is_sequential() {
        let p = PagedSchedule::synthetic_canonical(4, 2, true);
        let plan = transform_pagemaster(&p, 1).expect("folds");
        assert_eq!(plan.ii_q(), 8.0);
        // Dependence order: (n, t) before (n, t+1) and after (n-1, t).
        let t = |page: u16, slot: u32| plan.placements[0][&(page, slot)].time;
        assert!(t(1, 0) > t(0, 0));
        assert!(t(0, 1) > t(3, 0));
    }

    #[test]
    fn identity_transform_keeps_columns() {
        let p = PagedSchedule::synthetic_canonical(4, 3, true);
        let plan = transform_pagemaster(&p, 4).expect("identity");
        assert_eq!(plan.ii_q(), 3.0);
        for page in 0..4u16 {
            assert_eq!(plan.placements[0][&(page, 0)].col, page);
        }
    }

    #[test]
    fn rejects_stable_discipline() {
        let mut p = PagedSchedule::synthetic_canonical(4, 1, false);
        p.discipline = Discipline::Stable;
        assert_eq!(
            transform_pagemaster(&p, 2).unwrap_err(),
            TransformError::NeedsCanonical
        );
    }

    #[test]
    fn rejects_bad_m() {
        let p = PagedSchedule::synthetic_canonical(4, 1, true);
        assert!(transform_pagemaster(&p, 0).is_err());
        assert!(transform_pagemaster(&p, 5).is_err());
    }

    #[test]
    fn halving_reaches_steady_state_for_paper_page_counts() {
        // Every page count from the paper's grid, halved repeatedly.
        for n in [4u16, 8, 9, 16, 18, 32] {
            let p = PagedSchedule::synthetic_canonical(n, 1, true);
            let mut m = n / 2;
            while m >= 2 {
                let plan =
                    transform_pagemaster(&p, m).unwrap_or_else(|e| panic!("N={n} M={m}: {e}"));
                assert!(
                    plan.ii_q() + 1e-9 >= n as f64 / m as f64,
                    "N={n} M={m}: ii_q {} below capacity bound",
                    plan.ii_q()
                );
                m /= 2;
            }
        }
    }
}
