//! PE-level shrink to a single page — the paper's Fig. 6, including
//! intra-page mirroring.
//!
//! Shrinking to one page executes the pages sequentially in dependence
//! order. The intra-page mapping of each relocated page must be
//! *mirrored* "across the among-page dependency direction" so that
//! producer/consumer PEs still line up: composing one mirror per
//! serpentine step folds every cross-page producer/consumer pair onto the
//! *same* physical PE, where the value passes through the register file.
//!
//! [`fold_to_page`] builds the complete folded PE-level schedule and
//! [`validate_fold`] re-checks every dataflow step (adjacency, ordering)
//! plus rotating-register pressure (§VI-E: N rotating registers per PE
//! suffice).

use crate::transform::TransformError;
use cgra_arch::mirror::Orientation;
use cgra_arch::page::PageId;
use cgra_arch::register::PressureTracker;
use cgra_arch::topology::{PeId, Pos};
use cgra_arch::CgraConfig;
use cgra_mapper::{MapMode, MapResult, Placement};
use serde::{Deserialize, Serialize};

/// One folded operation instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FoldedOp {
    /// PE within the target page's region.
    pub pe: PeId,
    /// Folded absolute time.
    pub time: u64,
}

/// A complete PE-level schedule folded onto one page.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FoldedSchedule {
    /// The physical page everything now runs on.
    pub target: PageId,
    /// The folded initiation interval: `N · II_p`.
    pub ii_q: u64,
    /// Folded placement per DFG node.
    pub ops: Vec<FoldedOp>,
    /// Folded routing hops per edge.
    pub routes: Vec<Vec<FoldedOp>>,
    /// Orientation applied to each source page's intra-page mapping.
    pub orientations: Vec<Orientation>,
}

/// The Fig. 6 mirror rule: walk the serpentine page order; each step to
/// the next page composes a mirror across the axis perpendicular to the
/// step direction (east/west step → left-right mirror; north/south step →
/// top-bottom mirror).
pub fn orientation_plan(cgra: &CgraConfig) -> Vec<Orientation> {
    let layout = cgra.layout();
    let n = layout.num_pages();
    let mut plan = Vec::with_capacity(n);
    let mut o = Orientation::Identity;
    plan.push(o);
    for i in 1..n {
        let a = layout.origin(PageId(i as u16 - 1));
        let b = layout.origin(PageId(i as u16));
        let step = if a.r == b.r {
            Orientation::MirrorV // horizontal move: mirror left-right
        } else {
            Orientation::MirrorH // vertical move: mirror top-bottom
        };
        o = o.then(step);
        plan.push(o);
    }
    plan
}

/// Fold a constrained mapping onto `target` page.
///
/// Cell `(n, t)` of the page schedule executes at folded time
/// `t·N + n` within each `II_q = N·II_p` window; an op at absolute source
/// time `s` on page `n` lands at
/// `(s div II)·II_q + (s mod II)·N + n`.
pub fn fold_to_page(
    result: &MapResult,
    cgra: &CgraConfig,
    target: PageId,
) -> Result<FoldedSchedule, TransformError> {
    if result.mode == MapMode::Baseline {
        return Err(TransformError::NeedsCanonical);
    }
    let layout = cgra.layout();
    let n = layout.num_pages() as u64;
    let ii = result.mapping.ii as u64;
    let ii_q = n * ii;
    let orientations = orientation_plan(cgra);

    let fold = |p: Placement| -> FoldedOp {
        let page = layout.page_of(p.pe);
        let local = layout.intra_pos(p.pe);
        let pe = layout.pe_at(target, local, orientations[page.index()]);
        let s = p.time as u64;
        let time = (s / ii) * ii_q + (s % ii) * n + page.0 as u64;
        FoldedOp { pe, time }
    };

    let ops = result.mapping.placements.iter().map(|&p| fold(p)).collect();
    let routes = result
        .mapping
        .routes
        .iter()
        .map(|hops| {
            hops.iter()
                .map(|h| {
                    fold(Placement {
                        pe: h.pe,
                        time: h.time,
                    })
                })
                .collect()
        })
        .collect();

    Ok(FoldedSchedule {
        target,
        ii_q,
        ops,
        routes,
        orientations,
    })
}

/// A violation found by [`validate_fold`].
#[derive(Debug, Clone, PartialEq)]
pub enum FoldViolation {
    /// A folded op escaped the target page.
    OutsidePage {
        /// The offending PE.
        pe: PeId,
    },
    /// Two folded steps collide on (PE, cycle mod II_q).
    SlotCollision {
        /// The PE.
        pe: PeId,
        /// The folded modulo slot.
        slot: u64,
    },
    /// A dataflow step's endpoints are neither the same PE nor adjacent.
    BrokenStep {
        /// Edge index.
        edge: usize,
        /// Producer folded PE.
        from: PeId,
        /// Consumer folded PE.
        to: PeId,
    },
    /// A dataflow step runs backwards in folded time.
    BackwardsStep {
        /// Edge index.
        edge: usize,
    },
    /// A PE's rotating register file overflows while values wait.
    RfOverflow {
        /// The PE.
        pe: PeId,
        /// Registers needed.
        required: u32,
        /// Registers available.
        available: u32,
    },
}

/// Re-check a folded schedule at PE level.
pub fn validate_fold(
    result: &MapResult,
    cgra: &CgraConfig,
    folded: &FoldedSchedule,
) -> Vec<FoldViolation> {
    let mut violations = Vec::new();
    let layout = cgra.layout();
    let mesh = cgra.mesh();
    let ii = result.mapping.ii as u64;

    // Page confinement + slot exclusivity.
    let mut slots = std::collections::HashSet::new();
    let all_steps = folded.ops.iter().chain(folded.routes.iter().flatten());
    for op in all_steps {
        if layout.page_of(op.pe) != folded.target {
            violations.push(FoldViolation::OutsidePage { pe: op.pe });
        }
        if !slots.insert((op.pe, op.time % folded.ii_q)) {
            violations.push(FoldViolation::SlotCollision {
                pe: op.pe,
                slot: op.time % folded.ii_q,
            });
        }
    }

    // Every dataflow step: producer -> hops -> consumer, allowing fanout
    // sharing (a step may read from the folded landing of a sibling
    // edge's route, exactly as the source mapping did).
    let _ = ii;
    let mut pressure: std::collections::HashMap<PeId, PressureTracker> =
        std::collections::HashMap::new();
    for (ei, e) in result.mdfg.dfg.edges().enumerate() {
        if result.mdfg.is_mem_edge(ei) {
            continue;
        }
        let sites: Vec<FoldedOp> = result
            .mdfg
            .dfg
            .succ_edges(e.src)
            .filter(|e2| e2.index() != ei && !result.mdfg.is_mem_edge(e2.index()))
            .flat_map(|e2| folded.routes[e2.index()].iter().copied())
            .collect();
        let mut from = folded.ops[e.src.index()];
        for hop in &folded.routes[ei] {
            check_step_shared(ei, from, &sites, *hop, mesh, &mut violations, &mut pressure);
            from = *hop;
        }
        // Consumer reads at its own folded time plus carried-iteration
        // shifts (each source iteration now spans II_q cycles).
        let mut to = folded.ops[e.dst.index()];
        to.time += e.distance as u64 * folded.ii_q;
        check_step_shared(ei, from, &sites, to, mesh, &mut violations, &mut pressure);
    }

    for (pe, tracker) in pressure {
        let required = tracker.registers_required(folded.ii_q as u32);
        if required > cgra.rf().size() as u32 {
            violations.push(FoldViolation::RfOverflow {
                pe,
                required,
                available: cgra.rf().size() as u32,
            });
        }
    }
    violations
}

/// Check one dataflow step, preferring the chain's own location and
/// falling back to any sharing site (same rule as the mapping validator).
fn check_step_shared(
    edge: usize,
    from: FoldedOp,
    sites: &[FoldedOp],
    to: FoldedOp,
    mesh: cgra_arch::Mesh,
    violations: &mut Vec<FoldViolation>,
    pressure: &mut std::collections::HashMap<PeId, PressureTracker>,
) {
    let legal = |s: &FoldedOp| to.time > s.time && (s.pe == to.pe || mesh.adjacent(s.pe, to.pe));
    let source = if legal(&from) {
        Some(from)
    } else {
        sites.iter().copied().find(legal)
    };
    match source {
        Some(s) => {
            // The value rests in the source PE's RF until the read.
            if to.time > s.time + 1 {
                pressure
                    .entry(s.pe)
                    .or_default()
                    .add_range(s.time + 1, to.time);
            }
        }
        None => {
            if to.time <= from.time {
                violations.push(FoldViolation::BackwardsStep { edge });
            } else {
                violations.push(FoldViolation::BrokenStep {
                    edge,
                    from: from.pe,
                    to: to.pe,
                });
            }
        }
    }
}

/// Peak rotating-register requirement of the folded schedule across all
/// PEs — the quantity §VI-E claims is bounded by N (the page count).
/// Reproduction note (see EXPERIMENTS.md): fanout parking pushes the real
/// peak to ~2–4× N on the wider kernels; the experiments therefore size
/// RFs from this measurement rather than trusting the claim.
pub fn peak_rf_requirement(result: &MapResult, cgra: &CgraConfig, folded: &FoldedSchedule) -> u32 {
    // Reuse the validator with an unlimited RF and read back the peaks.
    let roomy = cgra.clone().with_rf_size(u16::MAX);
    let violations = validate_fold(result, &roomy, folded);
    debug_assert!(violations
        .iter()
        .all(|v| !matches!(v, FoldViolation::RfOverflow { .. })));
    // Recompute directly for the actual peak.
    let mesh = cgra.mesh();
    let mut pressure: std::collections::HashMap<PeId, PressureTracker> =
        std::collections::HashMap::new();
    let mut scratch = Vec::new();
    for (ei, e) in result.mdfg.dfg.edges().enumerate() {
        if result.mdfg.is_mem_edge(ei) {
            continue;
        }
        let sites: Vec<FoldedOp> = result
            .mdfg
            .dfg
            .succ_edges(e.src)
            .filter(|e2| e2.index() != ei && !result.mdfg.is_mem_edge(e2.index()))
            .flat_map(|e2| folded.routes[e2.index()].iter().copied())
            .collect();
        let mut from = folded.ops[e.src.index()];
        for hop in &folded.routes[ei] {
            check_step_shared(ei, from, &sites, *hop, mesh, &mut scratch, &mut pressure);
            from = *hop;
        }
        let mut to = folded.ops[e.dst.index()];
        to.time += e.distance as u64 * folded.ii_q;
        check_step_shared(ei, from, &sites, to, mesh, &mut scratch, &mut pressure);
    }
    pressure
        .values()
        .map(|t| t.registers_required(folded.ii_q as u32))
        .max()
        .unwrap_or(0)
}

/// Positions within the target page occupied by folded compute ops of one
/// source page — handy for rendering Fig. 6-style diagrams.
pub fn page_footprint(
    folded: &FoldedSchedule,
    cgra: &CgraConfig,
    result: &MapResult,
    source_page: PageId,
) -> Vec<(u32, Pos)> {
    let layout = cgra.layout();
    result
        .mapping
        .placements
        .iter()
        .enumerate()
        .filter(|(_, p)| layout.page_of(p.pe) == source_page)
        .map(|(i, _)| (i as u32, layout.mesh().pos(folded.ops[i].pe)))
        .map(|(i, pos)| {
            let origin = layout.origin(folded.target);
            (i, Pos::new(pos.r - origin.r, pos.c - origin.c))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgra_mapper::{map_constrained, MapOptions};

    #[test]
    fn orientation_plan_quadrants() {
        // 4x4 quadrants: TL, TR, BR, BL -> I, MirrorV, Rot180, MirrorH.
        let cgra = CgraConfig::square(4);
        let plan = orientation_plan(&cgra);
        assert_eq!(
            plan,
            vec![
                Orientation::Identity,
                Orientation::MirrorV,
                Orientation::Rot180,
                Orientation::MirrorH
            ]
        );
    }

    #[test]
    fn fold_validates_for_all_kernels_on_4x4() {
        // RFs sized from the measured fold requirement (see
        // peak_rf_requirement): the paper's N-registers claim is
        // optimistic under fanout parking.
        let cgra = CgraConfig::square(4).with_rf_size(32);
        for k in cgra_dfg::kernels::all() {
            let r = map_constrained(&k, &cgra, &MapOptions::default())
                .unwrap_or_else(|e| panic!("{}: {e}", k.name));
            let folded = fold_to_page(&r, &cgra, PageId(0)).expect("folds");
            assert_eq!(folded.ii_q, 4 * r.ii() as u64);
            let v = validate_fold(&r, &cgra, &folded);
            assert!(v.is_empty(), "{}: {v:?}", k.name);
        }
    }

    #[test]
    fn fold_works_onto_any_target_page() {
        let cgra = CgraConfig::square(4);
        let r = map_constrained(&cgra_dfg::kernels::laplace(), &cgra, &MapOptions::default())
            .expect("maps");
        for target in 0..4u16 {
            let folded = fold_to_page(&r, &cgra, PageId(target)).expect("folds");
            let v = validate_fold(&r, &cgra, &folded);
            assert!(v.is_empty(), "target {target}: {v:?}");
        }
    }

    #[test]
    fn tiny_rf_overflow_is_detected() {
        // Map with a roomy RF, then validate the fold against a fabric
        // with a 1-register file: the parking pressure must be flagged.
        let roomy = CgraConfig::square(4).with_rf_size(32);
        let r = map_constrained(
            &cgra_dfg::kernels::yuv2rgb(),
            &roomy,
            &MapOptions::default(),
        )
        .expect("maps");
        let folded = fold_to_page(&r, &roomy, PageId(0)).expect("folds");
        let tiny = roomy.clone().with_rf_size(1);
        let v = validate_fold(&r, &tiny, &folded);
        assert!(v
            .iter()
            .any(|x| matches!(x, FoldViolation::RfOverflow { .. })));
    }

    #[test]
    fn peak_rf_requirement_exceeds_paper_claim() {
        // Reproduction finding: §VI-E claims N rotating registers per PE
        // suffice for a shrink to one page; fanout parking makes the true
        // peak larger on wide kernels.
        let cgra = CgraConfig::square(4).with_rf_size(32);
        let r = map_constrained(&cgra_dfg::kernels::yuv2rgb(), &cgra, &MapOptions::default())
            .expect("maps");
        let folded = fold_to_page(&r, &cgra, PageId(0)).expect("folds");
        let peak = peak_rf_requirement(&r, &cgra, &folded);
        let n_pages = cgra.layout().num_pages() as u32;
        assert!(peak > n_pages, "peak {peak} <= N {n_pages}");
    }

    #[test]
    fn fold_rejects_baseline() {
        let cgra = CgraConfig::square(4);
        let r =
            cgra_mapper::map_baseline(&cgra_dfg::kernels::mpeg2(), &cgra, &MapOptions::default())
                .expect("maps");
        assert!(fold_to_page(&r, &cgra, PageId(0)).is_err());
    }

    #[test]
    fn fold_on_dominoes() {
        let cgra = CgraConfig::square(4)
            .with_page_size(2)
            .unwrap()
            .with_rf_size(32);
        let r = map_constrained(&cgra_dfg::kernels::mpeg2(), &cgra, &MapOptions::default())
            .expect("maps");
        let folded = fold_to_page(&r, &cgra, PageId(0)).expect("folds");
        assert_eq!(folded.ii_q, 8 * r.ii() as u64);
        let v = validate_fold(&r, &cgra, &folded);
        assert!(v.is_empty(), "{v:?}");
    }
}
