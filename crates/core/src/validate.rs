//! Independent validation of shrink plans.
//!
//! Mirrors §VI-C's constraints, re-derived from scratch against the plan:
//!
//! 1. **Slot exclusivity** — no two cell instances may occupy the same
//!    (column, cycle), across period boundaries included.
//! 2. **Dependence timing** — every dependence's consumer instance
//!    executes strictly after its producer instance.
//! 3. **Dependence columns** — producer and consumer instances sit in the
//!    same or adjacent columns (`x2−1 ≤ x1 ≤ x2+1`); for parked values
//!    (gap > 1, the `Stable` discipline) the producer page's column must
//!    additionally be *constant* throughout the plan, since the value
//!    physically rests in that page's register files.
//! 4. **Capacity bound** — `II_q ≥ total cell work / M` (the corrected
//!    §VI-C resource bound, see DESIGN.md).

use crate::paged::PagedSchedule;
use crate::transform::ShrinkPlan;

/// A violation found by [`validate_plan`].
#[derive(Debug, Clone, PartialEq)]
pub enum TransformViolation {
    /// A cell has no placement in some period entry.
    MissingCell {
        /// Period index.
        period_index: u32,
        /// Cell page.
        page: u16,
        /// Cell slot.
        slot: u32,
    },
    /// A placement names a column outside `0..M`.
    BadColumn {
        /// The offending column.
        col: u16,
    },
    /// Two instances collide on (column, cycle).
    SlotCollision {
        /// The column.
        col: u16,
        /// The cycle.
        time: u64,
    },
    /// A dependence's consumer does not run after its producer.
    DepTiming {
        /// Producer (page, slot).
        from: (u16, u32),
        /// Consumer (page, slot).
        to: (u16, u32),
        /// Producer instance time.
        t_from: u64,
        /// Consumer instance time.
        t_to: u64,
    },
    /// A dependence spans more than one column.
    DepColumns {
        /// Producer (page, slot).
        from: (u16, u32),
        /// Consumer (page, slot).
        to: (u16, u32),
        /// Producer column.
        col_from: u16,
        /// Consumer column.
        col_to: u16,
    },
    /// A parked value's page wanders between columns while the value
    /// rests in its RFs.
    UnstableParking {
        /// The page whose column changes.
        page: u16,
    },
    /// The plan undershoots the capacity bound — it cannot be executable.
    BelowCapacityBound {
        /// `span / period` claimed.
        ii_q: f64,
        /// The bound `occupied cells / M` (per iteration).
        bound: f64,
    },
    /// A degraded plan schedules a column onto a dead (or out-of-range)
    /// physical page.
    OpOnDeadPage {
        /// The plan column.
        col: u16,
        /// The dead physical page it was assigned.
        page: u16,
    },
    /// A degraded plan's physical pages are not one contiguous ascending
    /// run — inter-column values could not route on the ring.
    ColumnsNotContiguous {
        /// The physical pages as listed, in column order.
        pages: Vec<u16>,
    },
}

impl std::fmt::Display for TransformViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransformViolation::MissingCell {
                period_index,
                page,
                slot,
            } => write!(f, "period {period_index}: cell ({page},{slot}) unplaced"),
            TransformViolation::BadColumn { col } => write!(f, "column {col} out of range"),
            TransformViolation::SlotCollision { col, time } => {
                write!(f, "two cells at (col {col}, t {time})")
            }
            TransformViolation::DepTiming {
                from,
                to,
                t_from,
                t_to,
            } => write!(
                f,
                "dep ({},{}) -> ({},{}): consumer at {t_to} not after producer at {t_from}",
                from.0, from.1, to.0, to.1
            ),
            TransformViolation::DepColumns {
                from,
                to,
                col_from,
                col_to,
            } => write!(
                f,
                "dep ({},{}) -> ({},{}): columns {col_from} and {col_to} not adjacent",
                from.0, from.1, to.0, to.1
            ),
            TransformViolation::UnstableParking { page } => {
                write!(f, "page {page} parks values but changes column")
            }
            TransformViolation::BelowCapacityBound { ii_q, bound } => {
                write!(f, "II_q {ii_q} below capacity bound {bound}")
            }
            TransformViolation::OpOnDeadPage { col, page } => {
                write!(f, "column {col} scheduled on dead page {page}")
            }
            TransformViolation::ColumnsNotContiguous { pages } => {
                write!(f, "column pages {pages:?} are not a contiguous run")
            }
        }
    }
}

/// Validate `plan` against `p`. Returns all violations (empty = valid).
pub fn validate_plan(p: &PagedSchedule, plan: &ShrinkPlan) -> Vec<TransformViolation> {
    let mut violations = Vec::new();
    let ii = p.ii as u64;

    // --- Shape: every cell placed, columns in range. ---
    for (j, map) in plan.placements.iter().enumerate() {
        for page in 0..p.num_pages {
            for slot in 0..p.ii {
                match map.get(&(page, slot)) {
                    None => violations.push(TransformViolation::MissingCell {
                        period_index: j as u32,
                        page,
                        slot,
                    }),
                    Some(c) if c.col >= plan.m => {
                        violations.push(TransformViolation::BadColumn { col: c.col })
                    }
                    Some(_) => {}
                }
            }
        }
    }
    if !violations.is_empty() {
        return violations;
    }

    // --- Slot exclusivity over a window of 2·period + 2 iterations. ---
    // Only occupied cells consume a slot; empty cells are free capacity.
    let window = plan.period as u64 * 2 + 2;
    let mut seen = std::collections::HashSet::new();
    for iter in 0..window {
        for page in 0..p.num_pages {
            for slot in 0..p.ii {
                if p.cell(page, slot).is_empty() {
                    continue;
                }
                let c = plan.at(page, slot, iter);
                if !seen.insert((c.col, c.time)) {
                    violations.push(TransformViolation::SlotCollision {
                        col: c.col,
                        time: c.time,
                    });
                }
            }
        }
    }

    // --- Column stability map for parked values. ---
    let col_stable: Vec<Option<u16>> = (0..p.num_pages)
        .map(|page| {
            let mut cols = plan
                .placements
                .iter()
                .flat_map(|m| (0..p.ii).map(move |slot| m[&(page, slot)].col));
            let first = cols.next()?;
            cols.all(|c| c == first).then_some(first)
        })
        .collect();

    // Wrap-column adjacency is only physical for the identity-size plan.
    let wrap_ok = plan.m == p.num_pages;
    let cols_adjacent =
        |a: u16, b: u16| a.abs_diff(b) <= 1 || (wrap_ok && a.min(b) == 0 && a.max(b) == plan.m - 1);

    // --- Dependences, instantiated over the window. ---
    for dep in &p.deps {
        let (fp, fs) = (dep.from_page, (dep.from_time as u64 % ii) as u32);
        let (tp, ts) = (dep.to_page, (dep.to_time as u64 % ii) as u32);
        let f_shift = dep.from_time as u64 / ii;
        let t_shift = dep.to_time as u64 / ii;
        for base in 0..plan.period as u64 {
            let from = plan.at(fp, fs, base + f_shift);
            let to = plan.at(tp, ts, base + t_shift);
            if to.time <= from.time {
                violations.push(TransformViolation::DepTiming {
                    from: (fp, fs),
                    to: (tp, ts),
                    t_from: from.time,
                    t_to: to.time,
                });
            }
            if !cols_adjacent(from.col, to.col) {
                violations.push(TransformViolation::DepColumns {
                    from: (fp, fs),
                    to: (tp, ts),
                    col_from: from.col,
                    col_to: to.col,
                });
            }
        }
        // Parked values (gap > 1) rest in the producer page's RFs: that
        // page's column must be constant.
        if dep.gap() > 1 && col_stable[dep.from_page as usize].is_none() {
            violations.push(TransformViolation::UnstableParking {
                page: dep.from_page,
            });
        }
    }

    // --- Capacity bound. ---
    let occupied = p.cells.iter().filter(|c| !c.is_empty()).count();
    let bound = occupied as f64 / plan.m as f64;
    if plan.ii_q() + 1e-9 < bound {
        violations.push(TransformViolation::BelowCapacityBound {
            ii_q: plan.ii_q(),
            bound,
        });
    }

    violations.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
    violations.dedup();
    violations
}

/// Whether the plan fills *every* (column, cycle) slot — the paper's
/// optimality criterion ("a page from P scheduled in every location in
/// Q"). Only attainable when all cells are occupied and `M · II_q` equals
/// the cell count per iteration.
pub fn is_slot_optimal(p: &PagedSchedule, plan: &ShrinkPlan) -> bool {
    let cells_per_iter = p.cells.iter().filter(|c| !c.is_empty()).count() as u64;
    plan.m as u64 * plan.span == cells_per_iter * plan.period as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::{transform_block, Strategy};

    #[test]
    fn block_plans_validate_for_synthetic_grids() {
        for n in [4u16, 6, 8, 9, 16] {
            let p = PagedSchedule::synthetic_canonical(n, 2, false);
            for m in 1..=n {
                let plan = transform_block(&p, m).unwrap();
                let v = validate_plan(&p, &plan);
                assert!(v.is_empty(), "N={n} M={m}: {v:?}");
            }
        }
    }

    #[test]
    fn pagemaster_plans_validate_for_wrap_grids() {
        for n in [4u16, 6, 8] {
            let p = PagedSchedule::synthetic_canonical(n, 1, true);
            for m in 2..=n {
                match crate::pagemaster::transform_pagemaster(&p, m) {
                    Ok(plan) => {
                        let v = validate_plan(&p, &plan);
                        assert!(v.is_empty(), "N={n} M={m}: {v:?}");
                    }
                    Err(e) => panic!("N={n} M={m}: {e}"),
                }
            }
        }
    }

    #[test]
    fn block_dividing_is_slot_optimal() {
        let p = PagedSchedule::synthetic_canonical(8, 2, false);
        for m in [1u16, 2, 4, 8] {
            let plan = transform_block(&p, m).unwrap();
            assert!(is_slot_optimal(&p, &plan), "M={m} not optimal");
        }
        // Non-dividing M leaves holes.
        let plan = transform_block(&p, 5).unwrap();
        assert!(!is_slot_optimal(&p, &plan));
    }

    #[test]
    fn corrupted_plan_is_caught() {
        let p = PagedSchedule::synthetic_canonical(4, 1, false);
        let mut plan = transform_block(&p, 2).unwrap();
        // Move page 3 into the same slot as page 2.
        let c2 = plan.placements[0][&(2, 0)];
        plan.placements[0].insert((3, 0), c2);
        let v = validate_plan(&p, &plan);
        assert!(
            v.iter()
                .any(|x| matches!(x, TransformViolation::SlotCollision { .. })),
            "{v:?}"
        );
    }

    #[test]
    fn timing_violation_is_caught() {
        let p = PagedSchedule::synthetic_canonical(4, 1, false);
        let mut plan = transform_block(&p, 4).unwrap();
        // Put consumer page 1 before its producer page 0... block at M=4
        // places all pages at time 0 in distinct columns; deps (0,t)->(1,t+1)
        // cross iterations, so instead break a column.
        plan.placements[0].get_mut(&(1, 0)).unwrap().col = 3;
        let v = validate_plan(&p, &plan);
        assert!(
            v.iter().any(|x| matches!(
                x,
                TransformViolation::DepColumns { .. } | TransformViolation::SlotCollision { .. }
            )),
            "{v:?}"
        );
    }

    #[test]
    fn transform_auto_picks_validly_for_extracted_schedules() {
        let cgra = cgra_arch::CgraConfig::square(4);
        for k in cgra_dfg::kernels::all() {
            let r = cgra_mapper::map_constrained(&k, &cgra, &cgra_mapper::MapOptions::default())
                .unwrap_or_else(|e| panic!("{}: {e}", k.name));
            let ps = crate::paged::PagedSchedule::from_mapping(&r, &cgra).unwrap();
            for m in [1u16, 2, 4] {
                let plan = crate::transform::transform(&ps, m, Strategy::Auto)
                    .unwrap_or_else(|e| panic!("{} M={m}: {e}", k.name));
                let v = validate_plan(&ps, &plan);
                assert!(v.is_empty(), "{} M={m}: {v:?}", k.name);
            }
        }
    }
}
