//! Page-level schedules — the input of the PageMaster transformation.
//!
//! A constrained mapping (crate `cgra-mapper`) places operations on PEs at
//! absolute times. Viewed at page granularity, it is an `N × II` grid of
//! *cells*: `cell (n, t)` is the set of operations (computes and routing
//! hops) executing on page `n` in modulo slot `t` (paper §VI-C: `P =
//! {p(n,t)}`). The grid, together with the inter-cell dependences
//! extracted from the mapping's edges and routes, is everything the
//! transformation needs.

use cgra_arch::CgraConfig;
use cgra_mapper::{MapMode, MapResult};
use serde::{Deserialize, Serialize};

/// How disciplined the schedule's dependences are — determines which
/// transformation strategies are sound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Discipline {
    /// Every dependence spans exactly one cycle and advances at most one
    /// page: the canonical `(n,t−1)`/`(n−1,t−1)` form of §VI-C. Both the
    /// paper's drifting Algorithm 1 and the block transform apply.
    Canonical,
    /// Dependences may park in a page's RFs for several cycles before
    /// being consumed on the same or the next page. Only column-stable
    /// transforms (the block strategy, or folding to one page) are sound.
    Stable,
}

/// One cell of the page-level grid.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cell {
    /// DFG node indices of compute ops in this cell.
    pub compute: Vec<u32>,
    /// Number of routing hops executing in this cell.
    pub routes: u32,
}

impl Cell {
    /// Whether the cell executes anything.
    pub fn is_empty(&self) -> bool {
        self.compute.is_empty() && self.routes == 0
    }

    /// Total operations in the cell.
    pub fn ops(&self) -> usize {
        self.compute.len() + self.routes as usize
    }
}

/// An inter-cell dependence: the value leaves page `from_page` at absolute
/// schedule time `from_time` and is used on `to_page` at `to_time`.
///
/// `to_page` is always `from_page` or `from_page + 1` for schedules
/// produced by the constrained mapper (path ring semantics); synthetic
/// schedules may wrap (`to_page == 0`, `from_page == N−1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PageDep {
    /// Producer page.
    pub from_page: u16,
    /// Absolute time the producing step executes.
    pub from_time: u32,
    /// Consumer page.
    pub to_page: u16,
    /// Absolute time the consuming step executes (`> from_time`).
    pub to_time: u32,
}

impl PageDep {
    /// Cycle gap (`to_time − from_time`, ≥ 1).
    pub fn gap(&self) -> u32 {
        self.to_time - self.from_time
    }

    /// Producer cell coordinates `(page, slot)` under the given II.
    pub fn from_cell(&self, ii: u32) -> (u16, u32) {
        (self.from_page, self.from_time % ii)
    }

    /// Consumer cell coordinates `(page, slot)` under the given II.
    pub fn to_cell(&self, ii: u32) -> (u16, u32) {
        (self.to_page, self.to_time % ii)
    }
}

/// Why page-level extraction failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExtractError {
    /// The mapping was produced without the paging constraints; its
    /// dataflow need not respect the ring and cannot be transformed.
    NotConstrained,
    /// A dependence moves backwards or skips pages — the mapping violates
    /// the ring discipline (should be impossible for validated mappings).
    IllegalDep(PageDep),
}

impl std::fmt::Display for ExtractError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExtractError::NotConstrained => {
                write!(f, "page schedules require a ring-constrained mapping")
            }
            ExtractError::IllegalDep(d) => write!(
                f,
                "dependence {} @{} -> {} @{} breaks the ring",
                d.from_page, d.from_time, d.to_page, d.to_time
            ),
        }
    }
}

impl std::error::Error for ExtractError {}

/// The page-level view of a constrained mapping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PagedSchedule {
    /// Kernel name, for reporting.
    pub name: String,
    /// Number of pages in the source layout (N).
    pub num_pages: u16,
    /// Initiation interval of the source mapping (II_p).
    pub ii: u32,
    /// `num_pages × ii` cells, indexed `page * ii + slot`.
    pub cells: Vec<Cell>,
    /// All inter-cell dependences (steps of every edge realisation).
    pub deps: Vec<PageDep>,
    /// The dependence discipline (see [`Discipline`]).
    pub discipline: Discipline,
}

impl PagedSchedule {
    /// The cell at `(page, slot)`.
    pub fn cell(&self, page: u16, slot: u32) -> &Cell {
        &self.cells[page as usize * self.ii as usize + slot as usize]
    }

    fn cell_mut(&mut self, page: u16, slot: u32) -> &mut Cell {
        &mut self.cells[page as usize * self.ii as usize + slot as usize]
    }

    /// Highest page index with any occupied cell, plus one (pages beyond
    /// it are idle and need not be transformed).
    pub fn used_pages(&self) -> u16 {
        (0..self.num_pages)
            .rev()
            .find(|&p| (0..self.ii).any(|t| !self.cell(p, t).is_empty()))
            .map(|p| p + 1)
            .unwrap_or(0)
    }

    /// Total operations across all cells.
    pub fn total_ops(&self) -> usize {
        self.cells.iter().map(Cell::ops).sum()
    }

    /// Average PE-slot utilization of the paged schedule on its fabric
    /// (ops per page-slot, normalised by page size).
    pub fn utilization(&self, page_size: usize) -> f64 {
        self.total_ops() as f64 / (self.cells.len() as f64 * page_size as f64)
    }

    /// Whether any dependence wraps the ring (`N−1 → 0`). Mapper-produced
    /// schedules never wrap; synthetic ones may.
    pub fn has_wrap_deps(&self) -> bool {
        self.deps.iter().any(|d| d.to_page < d.from_page)
    }

    /// Extract the page-level schedule from a constrained mapping.
    pub fn from_mapping(result: &MapResult, cgra: &CgraConfig) -> Result<Self, ExtractError> {
        if result.mode == MapMode::Baseline {
            return Err(ExtractError::NotConstrained);
        }
        let layout = cgra.layout();
        let ii = result.mapping.ii;
        let num_pages = layout.num_pages() as u16;
        let mut ps = PagedSchedule {
            name: result.mdfg.dfg.name.clone(),
            num_pages,
            ii,
            cells: vec![Cell::default(); num_pages as usize * ii as usize],
            deps: Vec::new(),
            discipline: match result.mode {
                MapMode::ConstrainedStrict => Discipline::Canonical,
                _ => Discipline::Stable,
            },
        };

        for (i, p) in result.mapping.placements.iter().enumerate() {
            let page = layout.page_of(p.pe);
            ps.cell_mut(page.0, p.time % ii).compute.push(i as u32);
        }

        // Dependences: walk each edge realisation exactly as the mapping
        // validator does — including fanout sharing, where a hop or final
        // read picks the value up from a sibling edge's route landing
        // rather than this edge's own chain. Memory edges carry no page
        // deps.
        let mesh = cgra.mesh();
        for (ei, e) in result.mdfg.dfg.edges().enumerate() {
            if result.mdfg.is_mem_edge(ei) {
                continue;
            }
            let pu = result.mapping.placements[e.src.index()];
            let pv = result.mapping.placements[e.dst.index()];
            let consume = pv.time + e.distance * ii;

            // Sources the value can be read from: (pe, producing-step
            // time). The producer itself, plus every sibling hop landing.
            let mut sites: Vec<(cgra_arch::PeId, u32)> = vec![(pu.pe, pu.time)];
            for e2 in result.mdfg.dfg.succ_edges(e.src) {
                if e2.index() == ei || result.mdfg.is_mem_edge(e2.index()) {
                    continue;
                }
                for h in &result.mapping.routes[e2.index()] {
                    sites.push((h.pe, h.time));
                }
            }
            // Prefer the edge's own chain location (first element), then
            // sibling sites — the same rule the mapping validator uses.
            let pick = |sources: &[(cgra_arch::PeId, u32)],
                        to_pe: cgra_arch::PeId,
                        read_time: u32|
             -> Option<(cgra_arch::PeId, u32)> {
                sources.iter().copied().find(|&(pe, t)| {
                    (pe == to_pe || mesh.adjacent(pe, to_pe)) && read_time > t && {
                        let (a, b) = (layout.page_of(pe), layout.page_of(to_pe));
                        layout.is_ring_step(a, b)
                    }
                })
            };

            let mut loc = (pu.pe, pu.time);
            for h in &result.mapping.routes[ei] {
                ps.cell_mut(layout.page_of(h.pe).0, h.time % ii).routes += 1;
                let mut sources = vec![loc];
                sources.extend(sites.iter().copied());
                let (spe, st) =
                    pick(&sources, h.pe, h.time).ok_or(ExtractError::IllegalDep(PageDep {
                        from_page: layout.page_of(loc.0).0,
                        from_time: loc.1,
                        to_page: layout.page_of(h.pe).0,
                        to_time: h.time,
                    }))?;
                ps.push_dep(PageDep {
                    from_page: layout.page_of(spe).0,
                    from_time: st,
                    to_page: layout.page_of(h.pe).0,
                    to_time: h.time,
                })?;
                loc = (h.pe, h.time);
            }
            let mut sources = vec![loc];
            sources.extend(sites.iter().copied());
            let (spe, st) =
                pick(&sources, pv.pe, consume).ok_or(ExtractError::IllegalDep(PageDep {
                    from_page: layout.page_of(loc.0).0,
                    from_time: loc.1,
                    to_page: layout.page_of(pv.pe).0,
                    to_time: consume,
                }))?;
            ps.push_dep(PageDep {
                from_page: layout.page_of(spe).0,
                from_time: st,
                to_page: layout.page_of(pv.pe).0,
                to_time: consume,
            })?;
        }
        ps.deps.sort_unstable();
        ps.deps.dedup();
        Ok(ps)
    }

    fn push_dep(&mut self, dep: PageDep) -> Result<(), ExtractError> {
        if dep.to_time <= dep.from_time {
            return Err(ExtractError::IllegalDep(dep));
        }
        if dep.to_page != dep.from_page && dep.to_page != dep.from_page + 1 {
            return Err(ExtractError::IllegalDep(dep));
        }
        self.deps.push(dep);
        Ok(())
    }

    /// Drop trailing idle pages: the returned schedule has
    /// `num_pages == used_pages()`. The constrained mapper's wavefront
    /// placement fills pages from 0 upward, so a kernel that needs only a
    /// few pages leaves the tail idle; transforms should reshape the used
    /// prefix only (shrinking idle pages would inflate II_q for nothing).
    pub fn trimmed(&self) -> PagedSchedule {
        let used = self.used_pages().max(1);
        if used == self.num_pages {
            return self.clone();
        }
        debug_assert!(self
            .deps
            .iter()
            .all(|d| d.from_page < used && d.to_page < used));
        PagedSchedule {
            name: self.name.clone(),
            num_pages: used,
            ii: self.ii,
            cells: self.cells[..used as usize * self.ii as usize].to_vec(),
            deps: self.deps.clone(),
            discipline: self.discipline,
        }
    }

    /// Build a synthetic canonical schedule: every cell occupied, with the
    /// full canonical dependence pattern `(n,t) → (n,t+1)` and
    /// `(n,t) → (n+1,t+1)`, optionally wrapping the ring (as the paper's
    /// Fig. 7 input does). Used by tests and the transformation benches.
    pub fn synthetic_canonical(num_pages: u16, ii: u32, wrap: bool) -> Self {
        let mut cells = vec![Cell::default(); num_pages as usize * ii as usize];
        for (i, c) in cells.iter_mut().enumerate() {
            c.compute.push(i as u32);
        }
        let mut deps = Vec::new();
        for n in 0..num_pages {
            for t in 0..ii {
                // (n, t) -> (n, t+1): same-page storage step.
                deps.push(PageDep {
                    from_page: n,
                    from_time: t,
                    to_page: n,
                    to_time: t + 1,
                });
                // (n, t) -> (n+1, t+1): ring step.
                let next = if n + 1 < num_pages {
                    Some(n + 1)
                } else if wrap {
                    Some(0)
                } else {
                    None
                };
                if let Some(np) = next {
                    deps.push(PageDep {
                        from_page: n,
                        from_time: t,
                        to_page: np,
                        to_time: t + 1,
                    });
                }
            }
        }
        PagedSchedule {
            name: format!("synthetic{num_pages}x{ii}{}", if wrap { "w" } else { "" }),
            num_pages,
            ii,
            cells,
            deps,
            discipline: Discipline::Canonical,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgra_mapper::{map_constrained, map_constrained_strict, MapOptions};

    #[test]
    fn synthetic_shape() {
        let p = PagedSchedule::synthetic_canonical(4, 2, false);
        assert_eq!(p.cells.len(), 8);
        assert_eq!(p.used_pages(), 4);
        assert!(!p.has_wrap_deps());
        assert_eq!(p.total_ops(), 8);
    }

    #[test]
    fn synthetic_wrap_flag() {
        let p = PagedSchedule::synthetic_canonical(4, 1, true);
        assert!(p.has_wrap_deps());
    }

    #[test]
    fn extraction_from_constrained_mapping() {
        let cgra = cgra_arch::CgraConfig::square(4);
        let r = map_constrained(&cgra_dfg::kernels::mpeg2(), &cgra, &MapOptions::default())
            .expect("maps");
        let ps = PagedSchedule::from_mapping(&r, &cgra).expect("extracts");
        assert_eq!(ps.num_pages, 4);
        assert_eq!(ps.ii, r.ii());
        assert_eq!(ps.discipline, Discipline::Stable);
        // Every compute op appears in exactly one cell.
        let total: usize = ps.cells.iter().map(|c| c.compute.len()).sum();
        assert_eq!(total, r.mdfg.dfg.num_nodes());
        // No wrap, all deps ring-forward.
        assert!(!ps.has_wrap_deps());
    }

    #[test]
    fn strict_mapping_extracts_canonical() {
        let cgra = cgra_arch::CgraConfig::square(4);
        let r = map_constrained_strict(&cgra_dfg::kernels::mpeg2(), &cgra, &MapOptions::default())
            .expect("maps strictly");
        let ps = PagedSchedule::from_mapping(&r, &cgra).expect("extracts");
        assert_eq!(ps.discipline, Discipline::Canonical);
        // Canonical: every dep spans exactly one cycle.
        assert!(ps.deps.iter().all(|d| d.gap() == 1), "{:?}", ps.deps);
    }

    #[test]
    fn baseline_mapping_rejected() {
        let cgra = cgra_arch::CgraConfig::square(4);
        let r =
            cgra_mapper::map_baseline(&cgra_dfg::kernels::mpeg2(), &cgra, &MapOptions::default())
                .expect("maps");
        assert_eq!(
            PagedSchedule::from_mapping(&r, &cgra).unwrap_err(),
            ExtractError::NotConstrained
        );
    }

    #[test]
    fn deps_are_ring_forward_for_all_kernels() {
        let cgra = cgra_arch::CgraConfig::square(4);
        for k in cgra_dfg::kernels::all() {
            let r = map_constrained(&k, &cgra, &MapOptions::default())
                .unwrap_or_else(|e| panic!("{}: {e}", k.name));
            let ps = PagedSchedule::from_mapping(&r, &cgra).expect("extracts");
            for d in &ps.deps {
                assert!(d.to_page == d.from_page || d.to_page == d.from_page + 1);
                assert!(d.to_time > d.from_time);
            }
        }
    }
}
