//! Shrink/expand plans — the output of the PageMaster transformation.
//!
//! A [`ShrinkPlan`] reschedules an `N`-page schedule onto `M ≤ N` page
//! *columns*. It is periodic: the placement pattern repeats every
//! `period` source iterations, spanning `span` cycles, so the achieved
//! initiation interval is `span / period` (per source iteration).
//!
//! Two strategies:
//!
//! * [`Strategy::Block`] — column-stable: page `n` always executes in
//!   column `snake(n)`; iteration time is sliced into `⌈N/M⌉` rounds.
//!   Sound for *any* ring-path schedule (including RF parking, i.e. the
//!   [`Discipline::Stable`](crate::paged::Discipline) schedules the
//!   default constrained mapper emits), and exactly optimal
//!   (`II_q = II_p·N/M`) whenever `M` divides `N` — which the paper's
//!   halving policy guarantees.
//! * [`Strategy::PageMaster`] — the paper's Algorithm 1: drifting
//!   placement seeded by the two-hop interleave, packing partial rows as
//!   tails. Requires canonical 1-step dependences; handles full-ring
//!   (wrap) schedules; can beat the block bound when `M ∤ N` by packing
//!   `II_q` toward `⌈N·II_p/M⌉`.

use crate::paged::{Discipline, PagedSchedule};
use cgra_obs::{TraceEvent, Tracer};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Which transformation algorithm to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Strategy {
    /// Column-stable block rounds (sound for all disciplines).
    Block,
    /// The paper's drifting Algorithm 1 (canonical schedules only).
    PageMaster,
    /// PageMaster when the schedule is canonical, otherwise Block.
    Auto,
}

/// Placement of one cell within a plan period.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellPlacement {
    /// Target column (0 ≤ col < M).
    pub col: u16,
    /// Cycle offset from the period start.
    pub time: u64,
}

/// A complete periodic rescheduling of a [`PagedSchedule`] onto `m`
/// columns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShrinkPlan {
    /// Number of target page columns (M).
    pub m: u16,
    /// Source iterations per steady-state period.
    pub period: u32,
    /// Cycles per period.
    pub span: u64,
    /// Placement of cell `(page, slot)` for each iteration of the period:
    /// `placements[iter][(page, slot)]`.
    pub placements: Vec<HashMap<(u16, u32), CellPlacement>>,
    /// The strategy that produced the plan.
    pub strategy: Strategy,
}

impl ShrinkPlan {
    /// Achieved initiation interval per source iteration (may be
    /// fractional when the period spans several iterations).
    pub fn ii_q(&self) -> f64 {
        self.span as f64 / self.period as f64
    }

    /// The II rounded up to whole cycles (what a conservative runtime
    /// would provision).
    pub fn ii_q_ceil(&self) -> u32 {
        self.span.div_ceil(self.period as u64) as u32
    }

    /// Placement of cell `(page, slot)` at absolute source iteration `j`.
    pub fn at(&self, page: u16, slot: u32, iter: u64) -> CellPlacement {
        let idx = (iter % self.period as u64) as usize;
        let rounds = iter / self.period as u64;
        let c = self.placements[idx][&(page, slot)];
        CellPlacement {
            col: c.col,
            time: c.time + rounds * self.span,
        }
    }
}

/// Why a transformation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransformError {
    /// M must satisfy `1 ≤ M`.
    BadTargetSize {
        /// The requested M.
        m: u16,
    },
    /// The PageMaster strategy needs canonical 1-step dependences.
    NeedsCanonical,
    /// The block strategy cannot realise ring-wrap dependences.
    WrapUnsupported,
    /// Algorithm 1 hit a dependency-column distance > 2 (malformed input).
    DependencyTooFar {
        /// Producer columns observed.
        d1: u16,
        /// Producer columns observed.
        d2: u16,
    },
    /// No steady state emerged within the warm-up budget.
    NoSteadyState,
    /// Every page of the fault map is dead — there is nothing to remap
    /// onto (see [`crate::degrade`]).
    NoHealthyPages,
}

impl std::fmt::Display for TransformError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransformError::BadTargetSize { m } => write!(f, "invalid target size M={m}"),
            TransformError::NeedsCanonical => {
                write!(
                    f,
                    "PageMaster strategy requires canonical 1-step dependences"
                )
            }
            TransformError::WrapUnsupported => {
                write!(f, "block strategy cannot realise ring-wrap dependences")
            }
            TransformError::DependencyTooFar { d1, d2 } => {
                write!(
                    f,
                    "dependency columns {d1} and {d2} more than two hops apart"
                )
            }
            TransformError::NoSteadyState => write!(f, "no steady state within warm-up budget"),
            TransformError::NoHealthyPages => {
                write!(f, "no healthy pages survive in the fault map")
            }
        }
    }
}

impl std::error::Error for TransformError {}

/// The snake column of page `n` when `N` pages fold onto `M` columns:
/// block `b = n/M` runs left-to-right when even, right-to-left when odd,
/// so ring-consecutive pages always land on the same or an adjacent
/// column.
pub fn snake_col(n: u16, m: u16) -> u16 {
    let b = n / m;
    let r = n % m;
    if b.is_multiple_of(2) {
        r
    } else {
        m - 1 - r
    }
}

/// The column-stable block transform: page `n` executes in column
/// `snake(n)` during round `n / M` of each slot step.
///
/// `II_q = II_p · ⌈N/M⌉`.
pub fn transform_block(p: &PagedSchedule, m: u16) -> Result<ShrinkPlan, TransformError> {
    if m == 0 {
        return Err(TransformError::BadTargetSize { m });
    }
    if p.has_wrap_deps() && m < p.num_pages {
        return Err(TransformError::WrapUnsupported);
    }
    let n = p.num_pages;
    let k = n.div_ceil(m) as u64; // rounds per slot step
    let span = p.ii as u64 * k;
    let mut placement = HashMap::with_capacity(n as usize * p.ii as usize);
    for page in 0..n {
        for slot in 0..p.ii {
            placement.insert(
                (page, slot),
                CellPlacement {
                    col: snake_col(page, m),
                    time: slot as u64 * k + (page / m) as u64,
                },
            );
        }
    }
    Ok(ShrinkPlan {
        m,
        period: 1,
        span,
        placements: vec![placement],
        strategy: Strategy::Block,
    })
}

/// Transform with the requested strategy ([`Strategy::Auto`] picks
/// PageMaster for canonical schedules, Block otherwise).
pub fn transform(
    p: &PagedSchedule,
    m: u16,
    strategy: Strategy,
) -> Result<ShrinkPlan, TransformError> {
    match strategy {
        Strategy::Block => transform_block(p, m),
        Strategy::PageMaster => crate::pagemaster::transform_pagemaster(p, m),
        Strategy::Auto => {
            if p.discipline == Discipline::Canonical {
                crate::pagemaster::transform_pagemaster(p, m).or_else(|_| transform_block(p, m))
            } else {
                transform_block(p, m)
            }
        }
    }
}

/// [`transform`] with the page geometry emitted to `tracer`: a
/// `TransformBegin` carrying the source shape (`n`, `ii`, requested
/// strategy) and, on success, a `TransformEnd` carrying the produced
/// plan's period/span and effective II.
pub fn transform_traced(
    p: &PagedSchedule,
    m: u16,
    strategy: Strategy,
    tracer: &Tracer,
) -> Result<ShrinkPlan, TransformError> {
    tracer.emit(|| TraceEvent::TransformBegin {
        kernel: p.name.clone(),
        n: p.num_pages,
        m,
        ii: p.ii,
        strategy: format!("{strategy:?}"),
    });
    let plan = transform(p, m, strategy)?;
    tracer.emit(|| TraceEvent::TransformEnd {
        kernel: p.name.clone(),
        m: plan.m,
        period: plan.period,
        span: plan.span,
        ii_q_ceil: plan.ii_q_ceil(),
    });
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snake_is_ring_adjacent() {
        for m in 1..8u16 {
            for n in 0..30u16 {
                let (a, b) = (snake_col(n, m), snake_col(n + 1, m));
                assert!(
                    a.abs_diff(b) <= 1,
                    "pages {n},{} map to columns {a},{b} (m={m})",
                    n + 1
                );
            }
        }
    }

    #[test]
    fn block_ii_q_matches_formula() {
        let p = PagedSchedule::synthetic_canonical(8, 3, false);
        for m in [1u16, 2, 4, 8] {
            let plan = transform_block(&p, m).unwrap();
            assert_eq!(plan.ii_q(), 3.0 * (8.0 / m as f64));
            assert_eq!(plan.period, 1);
        }
    }

    #[test]
    fn block_non_dividing_rounds_up() {
        let p = PagedSchedule::synthetic_canonical(6, 1, false);
        let plan = transform_block(&p, 5).unwrap();
        assert_eq!(plan.ii_q_ceil(), 2); // ceil(6/5) rounds
    }

    #[test]
    fn block_rejects_wrap_when_shrinking() {
        let p = PagedSchedule::synthetic_canonical(4, 1, true);
        assert!(matches!(
            transform_block(&p, 2),
            Err(TransformError::WrapUnsupported)
        ));
        // Identity-size transform is fine even with wrap: every page keeps
        // its own column.
        assert!(transform_block(&p, 4).is_ok());
    }

    #[test]
    fn block_rejects_m_zero() {
        let p = PagedSchedule::synthetic_canonical(4, 1, false);
        assert!(matches!(
            transform_block(&p, 0),
            Err(TransformError::BadTargetSize { m: 0 })
        ));
    }

    #[test]
    fn plan_extension_is_periodic() {
        let p = PagedSchedule::synthetic_canonical(4, 2, false);
        let plan = transform_block(&p, 2).unwrap();
        let a = plan.at(3, 1, 0);
        let b = plan.at(3, 1, 5);
        assert_eq!(a.col, b.col);
        assert_eq!(b.time - a.time, 5 * plan.span);
    }
}
