//! The on-chip data memory and its row buses.
//!
//! The paper contrasts CGRAs with systolic arrays partly through memory
//! access: "there is an explicit instruction and data memory, and a shared
//! data bus for each row of the CGRA" (§III). Load/store operations placed
//! on a PE therefore contend for that PE's *row bus*; the mapper's modulo
//! reservation table charges one bus slot per memory operation per cycle.

use serde::{Deserialize, Serialize};

/// The memory subsystem parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemModel {
    /// Concurrent load/store operations each row bus sustains per cycle.
    buses_per_row: u16,
    /// Words of global scratch storage the compiler may claim for
    /// spilled temporaries (§VI-B.1's register-usage constraint forces
    /// long-lived temporaries into this region).
    scratch_words: u32,
}

impl MemModel {
    /// Create a memory model.
    ///
    /// # Panics
    /// Panics if `buses_per_row` is zero (PEs could never load or store).
    pub fn new(buses_per_row: u16, scratch_words: u32) -> Self {
        assert!(buses_per_row > 0, "each row needs at least one bus");
        MemModel {
            buses_per_row,
            scratch_words,
        }
    }

    /// Load/store slots available per row per cycle.
    #[inline]
    pub fn buses_per_row(&self) -> u16 {
        self.buses_per_row
    }

    /// Global scratch capacity in words.
    #[inline]
    pub fn scratch_words(&self) -> u32 {
        self.scratch_words
    }
}

impl Default for MemModel {
    /// One bus per row, 4 KiB of word-addressed scratch.
    fn default() -> Self {
        MemModel::new(1, 1024)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_has_one_bus() {
        assert_eq!(MemModel::default().buses_per_row(), 1);
    }

    #[test]
    fn accessors_return_constructor_values() {
        let m = MemModel::new(2, 512);
        assert_eq!(m.buses_per_row(), 2);
        assert_eq!(m.scratch_words(), 512);
    }

    #[test]
    #[should_panic(expected = "at least one bus")]
    fn zero_buses_panics() {
        MemModel::new(0, 0);
    }
}
