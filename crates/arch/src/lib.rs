//! # cgra-arch — CGRA architecture model
//!
//! A Coarse-Grained Reconfigurable Array (CGRA) is a 2-D mesh of processing
//! elements (PEs). Each PE contains an ALU and a small *rotating* register
//! file, executes one arithmetic/logic/memory micro-operation per cycle, and
//! can consume the previous-cycle outputs of its four mesh neighbours
//! (paper, Fig. 1). Rows share a data bus to the on-chip data memory.
//!
//! This crate models everything *static* about the fabric:
//!
//! * [`topology`] — the PE mesh: identifiers, coordinates, adjacency.
//! * [`pe`] — per-PE capabilities and functional-unit classes.
//! * [`register`] — rotating register files and register-pressure
//!   accounting (needed by the PageMaster transformation, §VI-E).
//! * [`page`] — the *conceptual* division of the array into pages:
//!   symmetric tiles ordered so that consecutive pages are physically
//!   adjacent (the ring of Fig. 5).
//! * [`mirror`] — orientation transforms used when a page's intra-page
//!   mapping must be mirrored during a shrink (Fig. 6).
//! * [`memory`] — the shared row buses to data memory.
//! * [`fault`] — the fault model: per-page health, PE-level fault
//!   folding onto pages, and deterministic seeded injection schedules.
//! * [`config`] — [`CgraConfig`](config::CgraConfig), the validated bundle
//!   of all architectural parameters.
//!
//! Nothing here is specific to any one mapping algorithm; the mapper and
//! PageMaster crates build on these types.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod fault;
pub mod memory;
pub mod mirror;
pub mod page;
pub mod pe;
pub mod register;
pub mod topology;

pub use config::CgraConfig;
pub use fault::{FaultEvent, FaultKind, FaultMap, FaultSpec, FaultSpecError, PageHealth};
pub use mirror::Orientation;
pub use page::{PageId, PageLayout, PageShape};
pub use pe::{FuClass, PeCapability};
pub use topology::{Mesh, PeId, Pos};
