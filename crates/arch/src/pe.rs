//! Processing-element capabilities.
//!
//! Each PE is "essentially an ALU with a local register file" (paper, §II)
//! and executes one micro-operation per cycle: add/sub/shift/logic,
//! multiply, or load/store. Fabrics in the literature differ in whether
//! every PE may multiply or touch memory; the model captures this with a
//! per-PE capability set so heterogeneous fabrics (cf. Ahn et al. [26])
//! can be described, while the paper's homogeneous fabric is the default.

use serde::{Deserialize, Serialize};

/// A functional-unit class a PE may provide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FuClass {
    /// Add, subtract, compare, shift, bitwise logic, select, move.
    Alu,
    /// Integer multiply (some fabrics restrict multipliers to a subset of PEs).
    Mul,
    /// Load/store to the on-chip data memory via the row bus.
    Mem,
    /// Pure routing: forward an input to the output unchanged. Every PE can
    /// route; a PE spent this way is a *routing PE* (paper, §II).
    Route,
}

/// The capability set of one PE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeCapability {
    alu: bool,
    mul: bool,
    mem: bool,
}

impl PeCapability {
    /// The paper's homogeneous PE: ALU + multiply + memory access.
    pub const fn full() -> Self {
        PeCapability {
            alu: true,
            mul: true,
            mem: true,
        }
    }

    /// An ALU-only PE (no multiplier, no memory port).
    pub const fn alu_only() -> Self {
        PeCapability {
            alu: true,
            mul: false,
            mem: false,
        }
    }

    /// Builder: enable/disable the multiplier.
    pub const fn with_mul(mut self, mul: bool) -> Self {
        self.mul = mul;
        self
    }

    /// Builder: enable/disable memory access.
    pub const fn with_mem(mut self, mem: bool) -> Self {
        self.mem = mem;
        self
    }

    /// Whether this PE provides the given functional-unit class.
    pub fn supports(&self, class: FuClass) -> bool {
        match class {
            FuClass::Alu => self.alu,
            FuClass::Mul => self.mul,
            FuClass::Mem => self.mem,
            FuClass::Route => true,
        }
    }
}

impl Default for PeCapability {
    fn default() -> Self {
        Self::full()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_pe_supports_everything() {
        let pe = PeCapability::full();
        for class in [FuClass::Alu, FuClass::Mul, FuClass::Mem, FuClass::Route] {
            assert!(pe.supports(class));
        }
    }

    #[test]
    fn alu_only_cannot_mul_or_mem() {
        let pe = PeCapability::alu_only();
        assert!(pe.supports(FuClass::Alu));
        assert!(!pe.supports(FuClass::Mul));
        assert!(!pe.supports(FuClass::Mem));
    }

    #[test]
    fn every_pe_can_route() {
        assert!(PeCapability::alu_only().supports(FuClass::Route));
        assert!(PeCapability::full().supports(FuClass::Route));
    }

    #[test]
    fn builders_toggle_capabilities() {
        let pe = PeCapability::alu_only().with_mul(true).with_mem(true);
        assert_eq!(pe, PeCapability::full());
    }
}
