//! [`CgraConfig`] — the validated bundle of architectural parameters.

use crate::memory::MemModel;
use crate::page::{LayoutError, PageLayout, PageShape};
use crate::pe::PeCapability;
use crate::register::RotatingRf;
use crate::topology::Mesh;
use serde::{Deserialize, Serialize};

/// A complete CGRA description: mesh, per-PE capability, rotating RF size,
/// memory buses, and the conceptual page division.
///
/// ```
/// use cgra_arch::CgraConfig;
/// let cgra = CgraConfig::square(4).with_page_size(4).unwrap();
/// assert_eq!(cgra.layout().num_pages(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CgraConfig {
    mesh: Mesh,
    capability: PeCapability,
    rf: RotatingRf,
    mem: MemModel,
    layout: PageLayout,
}

impl CgraConfig {
    /// An `n × n` CGRA with the paper's defaults: homogeneous full-capability
    /// PEs, one bus per row, and 2×2 pages (page size 4).
    ///
    /// # Panics
    /// Panics if `n` is odd (2×2 pages must tile the mesh); use
    /// [`CgraConfig::new`] for exotic dimensions.
    pub fn square(n: u16) -> Self {
        CgraConfig::new(
            Mesh::new(n, n),
            PageShape::for_size(Mesh::new(n, n), 4)
                .expect("square() requires even n so 2x2 pages tile the mesh; use CgraConfig::new"),
        )
        .expect("2x2 shape validated above")
    }

    /// Build a config from a mesh and page shape.
    pub fn new(mesh: Mesh, page_shape: PageShape) -> Result<Self, LayoutError> {
        let layout = PageLayout::new(mesh, page_shape)?;
        Ok(CgraConfig {
            mesh,
            capability: PeCapability::full(),
            // §VI-E: N rotating registers per PE (N = number of pages)
            // guarantee shrink-to-one-page; default to at least that.
            rf: RotatingRf::new((layout.num_pages() as u16).max(8)),
            mem: MemModel::default(),
            layout,
        })
    }

    /// Replace the page division by one with `size` PEs per page.
    pub fn with_page_size(self, size: usize) -> Result<Self, LayoutError> {
        let shape = PageShape::for_size(self.mesh, size).ok_or(LayoutError::DoesNotTile {
            mesh: self.mesh,
            shape: PageShape::new(1, size.max(1) as u16),
        })?;
        let layout = PageLayout::new(self.mesh, shape)?;
        Ok(CgraConfig { layout, ..self })
    }

    /// Replace the rotating register file size.
    pub fn with_rf_size(mut self, size: u16) -> Self {
        self.rf = RotatingRf::new(size);
        self
    }

    /// Replace the per-PE capability set.
    pub fn with_capability(mut self, cap: PeCapability) -> Self {
        self.capability = cap;
        self
    }

    /// Replace the memory model.
    pub fn with_mem(mut self, mem: MemModel) -> Self {
        self.mem = mem;
        self
    }

    /// The PE mesh.
    #[inline]
    pub fn mesh(&self) -> Mesh {
        self.mesh
    }

    /// The (homogeneous) capability of each PE.
    #[inline]
    pub fn capability(&self) -> PeCapability {
        self.capability
    }

    /// The rotating register file of each PE.
    #[inline]
    pub fn rf(&self) -> RotatingRf {
        self.rf
    }

    /// The memory subsystem.
    #[inline]
    pub fn mem(&self) -> MemModel {
        self.mem
    }

    /// The page division.
    #[inline]
    pub fn layout(&self) -> &PageLayout {
        &self.layout
    }

    /// Total PEs.
    #[inline]
    pub fn num_pes(&self) -> usize {
        self.mesh.num_pes()
    }

    /// The experimental grid from §VII-A: every (CGRA size, page size)
    /// combination the paper evaluates. The 6×6 "page size 8" point is
    /// substituted with 3×3 pages (size 9) as 8 does not divide 36; the
    /// substitution is recorded in DESIGN.md.
    pub fn paper_grid() -> Vec<CgraConfig> {
        let mut grid = Vec::new();
        for (dim, sizes) in [
            (4u16, &[2usize, 4, 8][..]),
            (6, &[2, 4, 9]),
            (8, &[2, 4, 8]),
        ] {
            for &s in sizes {
                let mesh = Mesh::new(dim, dim);
                let shape = PageShape::for_size(mesh, s).expect("paper grid shapes tile");
                grid.push(CgraConfig::new(mesh, shape).expect("paper grid layouts valid"));
            }
        }
        grid
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_default_is_2x2_pages() {
        let c = CgraConfig::square(4);
        assert_eq!(c.layout().num_pages(), 4);
        assert_eq!(c.layout().shape(), PageShape::new(2, 2));
    }

    #[test]
    fn with_page_size_rebuilds_layout() {
        let c = CgraConfig::square(4).with_page_size(2).unwrap();
        assert_eq!(c.layout().num_pages(), 8);
    }

    #[test]
    fn invalid_page_size_is_error() {
        assert!(CgraConfig::square(6).with_page_size(8).is_err());
    }

    #[test]
    fn rf_defaults_cover_page_count() {
        // §VI-E: N rotating registers per PE where N = number of pages.
        let c = CgraConfig::square(8).with_page_size(2).unwrap();
        // Note: with_page_size keeps the RF chosen at construction; the
        // caller tunes it explicitly when exploring page sizes.
        let pages = c.layout().num_pages() as u16;
        let c = c.with_rf_size(pages);
        assert!(c.rf().size() as usize >= c.layout().num_pages());
    }

    #[test]
    fn paper_grid_has_nine_points() {
        let grid = CgraConfig::paper_grid();
        assert_eq!(grid.len(), 9);
        assert!(grid.iter().all(|c| c.layout().ring_path_is_physical()));
    }

    #[test]
    fn builders_compose() {
        let c = CgraConfig::square(6)
            .with_page_size(9)
            .unwrap()
            .with_rf_size(16)
            .with_capability(PeCapability::full().with_mul(false));
        assert_eq!(c.layout().num_pages(), 4);
        assert_eq!(c.rf().size(), 16);
        assert!(!c.capability().supports(crate::pe::FuClass::Mul));
    }
}
