//! The PE mesh: identifiers, coordinates, and adjacency.
//!
//! PEs are numbered row-major. The interconnect is the standard 2-D mesh
//! used by MorphoSys/ADRES-style fabrics: every PE can read the
//! previous-cycle output of its north/south/east/west neighbour.

use serde::{Deserialize, Serialize};

/// Identifier of a processing element, row-major within its mesh.
///
/// A `PeId` is only meaningful relative to a [`Mesh`]; use
/// [`Mesh::pos`]/[`Mesh::pe`] to convert to and from coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PeId(pub u16);

impl PeId {
    /// The raw index as a `usize`, for table lookups.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for PeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PE{}", self.0)
    }
}

/// A (row, column) position in the mesh. Row 0 is the top row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Pos {
    /// Row index, 0 at the top.
    pub r: u16,
    /// Column index, 0 at the left.
    pub c: u16,
}

impl Pos {
    /// Construct a position.
    #[inline]
    pub const fn new(r: u16, c: u16) -> Self {
        Pos { r, c }
    }

    /// Manhattan distance to another position.
    #[inline]
    pub fn manhattan(self, other: Pos) -> u32 {
        self.r.abs_diff(other.r) as u32 + self.c.abs_diff(other.c) as u32
    }
}

impl std::fmt::Display for Pos {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({},{})", self.r, self.c)
    }
}

/// A rectangular 2-D mesh of PEs with 4-neighbour (NSEW) interconnect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mesh {
    rows: u16,
    cols: u16,
}

impl Mesh {
    /// Create an `rows × cols` mesh.
    ///
    /// # Panics
    /// Panics if either dimension is zero or the PE count exceeds `u16`.
    pub fn new(rows: u16, cols: u16) -> Self {
        assert!(rows > 0 && cols > 0, "mesh dimensions must be non-zero");
        assert!(
            (rows as u32) * (cols as u32) <= u16::MAX as u32,
            "mesh too large for PeId"
        );
        Mesh { rows, cols }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> u16 {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> u16 {
        self.cols
    }

    /// Total number of PEs.
    #[inline]
    pub fn num_pes(&self) -> usize {
        self.rows as usize * self.cols as usize
    }

    /// Whether a position lies inside the mesh.
    #[inline]
    pub fn contains(&self, p: Pos) -> bool {
        p.r < self.rows && p.c < self.cols
    }

    /// The coordinates of a PE.
    ///
    /// # Panics
    /// Panics if the id is out of range for this mesh.
    #[inline]
    pub fn pos(&self, pe: PeId) -> Pos {
        assert!(pe.index() < self.num_pes(), "{pe} out of range");
        Pos::new(pe.0 / self.cols, pe.0 % self.cols)
    }

    /// The PE at a position.
    ///
    /// # Panics
    /// Panics if the position is outside the mesh.
    #[inline]
    pub fn pe(&self, p: Pos) -> PeId {
        assert!(self.contains(p), "position {p} outside mesh");
        PeId(p.r * self.cols + p.c)
    }

    /// Iterate over all PEs in row-major order.
    pub fn pes(&self) -> impl Iterator<Item = PeId> + '_ {
        (0..self.num_pes() as u16).map(PeId)
    }

    /// The NSEW neighbours of a PE (2, 3 or 4 of them).
    pub fn neighbors(&self, pe: PeId) -> impl Iterator<Item = PeId> + '_ {
        let p = self.pos(pe);
        let candidates = [
            (p.r.wrapping_sub(1), p.c),
            (p.r + 1, p.c),
            (p.r, p.c.wrapping_sub(1)),
            (p.r, p.c + 1),
        ];
        let mesh = *self;
        candidates
            .into_iter()
            .filter(move |&(r, c)| r < mesh.rows && c < mesh.cols)
            .map(move |(r, c)| mesh.pe(Pos::new(r, c)))
    }

    /// Whether two PEs are mesh-adjacent (share an interconnect link).
    #[inline]
    pub fn adjacent(&self, a: PeId, b: PeId) -> bool {
        self.pos(a).manhattan(self.pos(b)) == 1
    }

    /// Manhattan hop distance between two PEs — the minimum number of
    /// interconnect traversals to move a value from `a` to `b`.
    #[inline]
    pub fn distance(&self, a: PeId, b: PeId) -> u32 {
        self.pos(a).manhattan(self.pos(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_pe_pos() {
        let m = Mesh::new(4, 4);
        for pe in m.pes() {
            assert_eq!(m.pe(m.pos(pe)), pe);
        }
    }

    #[test]
    fn corner_has_two_neighbors() {
        let m = Mesh::new(4, 4);
        let corner = m.pe(Pos::new(0, 0));
        assert_eq!(m.neighbors(corner).count(), 2);
    }

    #[test]
    fn edge_has_three_neighbors() {
        let m = Mesh::new(4, 4);
        let edge = m.pe(Pos::new(0, 2));
        assert_eq!(m.neighbors(edge).count(), 3);
    }

    #[test]
    fn interior_has_four_neighbors() {
        let m = Mesh::new(4, 4);
        let mid = m.pe(Pos::new(1, 1));
        assert_eq!(m.neighbors(mid).count(), 4);
    }

    #[test]
    fn adjacency_is_symmetric() {
        let m = Mesh::new(3, 5);
        for a in m.pes() {
            for b in m.pes() {
                assert_eq!(m.adjacent(a, b), m.adjacent(b, a));
            }
        }
    }

    #[test]
    fn neighbors_are_adjacent_and_distance_one() {
        let m = Mesh::new(6, 6);
        for pe in m.pes() {
            for n in m.neighbors(pe) {
                assert!(m.adjacent(pe, n));
                assert_eq!(m.distance(pe, n), 1);
            }
        }
    }

    #[test]
    fn distance_matches_manhattan() {
        let m = Mesh::new(8, 8);
        let a = m.pe(Pos::new(0, 0));
        let b = m.pe(Pos::new(7, 7));
        assert_eq!(m.distance(a, b), 14);
        assert_eq!(m.distance(a, a), 0);
    }

    #[test]
    fn non_square_mesh() {
        let m = Mesh::new(2, 8);
        assert_eq!(m.num_pes(), 16);
        assert_eq!(m.pos(PeId(9)), Pos::new(1, 1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_pe_panics() {
        let m = Mesh::new(2, 2);
        m.pos(PeId(4));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dim_panics() {
        Mesh::new(0, 4);
    }
}
