//! Conceptual division of the CGRA into *pages*.
//!
//! A page is a symmetric group of PEs (paper, §VI-A: "symmetrically
//! equivalent groups of PEs which allows page folding"). Pages are purely
//! a compiler concept — no hardware support is required. This module
//! models a page as a rectangular tile of the mesh and orders the tiles
//! *serpentine* (boustrophedon) so that consecutive pages always share a
//! mesh edge; inter-page dependences restricted to the ring of Fig. 5 can
//! then always be carried by single-hop interconnect links.

use crate::mirror::Orientation;
use crate::topology::{Mesh, PeId, Pos};
use serde::{Deserialize, Serialize};

/// Identifier of a page; the index is the page's position in ring order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PageId(pub u16);

impl PageId {
    /// The raw index as a `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for PageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Page{}", self.0)
    }
}

/// The shape of one page: an `h × w` rectangular tile.
///
/// Rectangles are the symmetric shapes the paper's page folding requires
/// (any mirror of the tile is the same tile).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PageShape {
    /// Tile height in PEs.
    pub h: u16,
    /// Tile width in PEs.
    pub w: u16,
}

impl PageShape {
    /// Construct a shape.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub const fn new(h: u16, w: u16) -> Self {
        assert!(h > 0 && w > 0, "page dimensions must be non-zero");
        PageShape { h, w }
    }

    /// PEs per page.
    #[inline]
    pub fn size(&self) -> usize {
        self.h as usize * self.w as usize
    }

    /// The conventional shape used for a given page *size* on a given
    /// mesh, following the paper's configurations:
    ///
    /// * size 2 → `1×2` dominoes,
    /// * size 4 → `2×2` quadrants,
    /// * size 8 → `2×4` bricks,
    /// * size 9 → `3×3` blocks (our substitute for "8" on the 6×6 mesh,
    ///   where 8 does not divide 36 — see DESIGN.md),
    /// * size 16 → `4×4` blocks.
    ///
    /// Returns `None` if the size is unsupported or does not tile `mesh`.
    pub fn for_size(mesh: Mesh, size: usize) -> Option<PageShape> {
        let shape = match size {
            2 => PageShape::new(1, 2),
            4 => PageShape::new(2, 2),
            8 => PageShape::new(2, 4),
            9 => PageShape::new(3, 3),
            16 => PageShape::new(4, 4),
            _ => return None,
        };
        if mesh.rows().is_multiple_of(shape.h) && mesh.cols().is_multiple_of(shape.w) {
            Some(shape)
        } else {
            None
        }
    }
}

/// Error building a [`PageLayout`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayoutError {
    /// The tile shape does not evenly tile the mesh.
    DoesNotTile {
        /// The offending mesh.
        mesh: Mesh,
        /// The offending shape.
        shape: PageShape,
    },
}

impl std::fmt::Display for LayoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LayoutError::DoesNotTile { mesh, shape } => write!(
                f,
                "{}x{} pages do not tile a {}x{} mesh",
                shape.h,
                shape.w,
                mesh.rows(),
                mesh.cols()
            ),
        }
    }
}

impl std::error::Error for LayoutError {}

/// A complete division of a mesh into pages, in serpentine ring order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PageLayout {
    mesh: Mesh,
    shape: PageShape,
    /// Tile-grid origin (top-left PE position) of each page, indexed by page.
    origins: Vec<Pos>,
    /// Page of each PE, indexed by `PeId`.
    page_of: Vec<PageId>,
}

impl PageLayout {
    /// Tile `mesh` with `shape` pages and order them serpentine.
    pub fn new(mesh: Mesh, shape: PageShape) -> Result<Self, LayoutError> {
        if !mesh.rows().is_multiple_of(shape.h) || !mesh.cols().is_multiple_of(shape.w) {
            return Err(LayoutError::DoesNotTile { mesh, shape });
        }
        let tile_rows = mesh.rows() / shape.h;
        let tile_cols = mesh.cols() / shape.w;
        let mut origins = Vec::with_capacity((tile_rows * tile_cols) as usize);
        for tr in 0..tile_rows {
            // Boustrophedon: even tile-rows run left→right, odd run right→left,
            // so consecutive pages always share a mesh edge.
            let cols: Vec<u16> = if tr % 2 == 0 {
                (0..tile_cols).collect()
            } else {
                (0..tile_cols).rev().collect()
            };
            for tc in cols {
                origins.push(Pos::new(tr * shape.h, tc * shape.w));
            }
        }
        let mut page_of = vec![PageId(0); mesh.num_pes()];
        for (i, &origin) in origins.iter().enumerate() {
            for dr in 0..shape.h {
                for dc in 0..shape.w {
                    let pe = mesh.pe(Pos::new(origin.r + dr, origin.c + dc));
                    page_of[pe.index()] = PageId(i as u16);
                }
            }
        }
        Ok(PageLayout {
            mesh,
            shape,
            origins,
            page_of,
        })
    }

    /// Convenience: the layout for a given page *size* on `mesh`.
    pub fn for_size(mesh: Mesh, size: usize) -> Result<Self, LayoutError> {
        let shape = PageShape::for_size(mesh, size).ok_or(LayoutError::DoesNotTile {
            mesh,
            shape: PageShape::new(1, size.max(1) as u16),
        })?;
        PageLayout::new(mesh, shape)
    }

    /// The underlying mesh.
    #[inline]
    pub fn mesh(&self) -> Mesh {
        self.mesh
    }

    /// The page shape.
    #[inline]
    pub fn shape(&self) -> PageShape {
        self.shape
    }

    /// Number of pages.
    #[inline]
    pub fn num_pages(&self) -> usize {
        self.origins.len()
    }

    /// Iterate over all pages in ring order.
    pub fn pages(&self) -> impl Iterator<Item = PageId> + '_ {
        (0..self.num_pages() as u16).map(PageId)
    }

    /// The page containing a PE.
    #[inline]
    pub fn page_of(&self, pe: PeId) -> PageId {
        self.page_of[pe.index()]
    }

    /// Top-left PE position of a page.
    #[inline]
    pub fn origin(&self, page: PageId) -> Pos {
        self.origins[page.index()]
    }

    /// All PEs of a page, row-major within the tile.
    pub fn pes_of(&self, page: PageId) -> impl Iterator<Item = PeId> + '_ {
        let origin = self.origin(page);
        let (h, w, mesh) = (self.shape.h, self.shape.w, self.mesh);
        (0..h).flat_map(move |dr| {
            (0..w).map(move |dc| mesh.pe(Pos::new(origin.r + dr, origin.c + dc)))
        })
    }

    /// A PE's coordinate *within* its page.
    pub fn intra_pos(&self, pe: PeId) -> Pos {
        let p = self.mesh.pos(pe);
        let origin = self.origin(self.page_of(pe));
        Pos::new(p.r - origin.r, p.c - origin.c)
    }

    /// The PE at intra-page coordinate `local` of `page`, after applying
    /// `orient` to the coordinate (used when a relocated page is mirrored).
    ///
    /// # Panics
    /// Panics if `local` lies outside the page shape.
    pub fn pe_at(&self, page: PageId, local: Pos, orient: Orientation) -> PeId {
        let local = orient.apply(local, self.shape.h, self.shape.w);
        let origin = self.origin(page);
        self.mesh
            .pe(Pos::new(origin.r + local.r, origin.c + local.c))
    }

    /// Whether two pages share at least one mesh edge.
    pub fn pages_adjacent(&self, a: PageId, b: PageId) -> bool {
        if a == b {
            return false;
        }
        self.pes_of(a)
            .any(|pa| self.mesh.neighbors(pa).any(|n| self.page_of(n) == b))
    }

    /// Whether consecutive pages in ring order are all physically adjacent
    /// (always true for serpentine layouts; asserted in tests).
    pub fn ring_path_is_physical(&self) -> bool {
        (1..self.num_pages()).all(|i| self.pages_adjacent(PageId(i as u16 - 1), PageId(i as u16)))
    }

    /// Whether the ring *closes*: the last page is adjacent to the first,
    /// so the wrap-around dependence `P−1 → 0` can be carried physically.
    /// True for 2-tile-row layouts (e.g. the 2×2-quadrant division of a
    /// 4×4); false for longer serpentines, where the legal dependences form
    /// a path — still "a subset of ring topology" (§VI-B.2).
    pub fn ring_is_closed(&self) -> bool {
        let n = self.num_pages();
        n >= 2 && self.pages_adjacent(PageId(0), PageId(n as u16 - 1))
    }

    /// Whether a dependence step from page `a` to page `b` is legal under
    /// the paper's data-flow constraint, *path* semantics: stay on the
    /// page or advance to the next page in ring order, without
    /// wrap-around. The mapper uses path semantics so that shrunk
    /// schedules never need the wrap link (see DESIGN.md §4.1); the
    /// PageMaster transform itself also accepts full-ring inputs.
    #[inline]
    pub fn is_ring_step(&self, a: PageId, b: PageId) -> bool {
        b == a || b.0 == a.0 + 1
    }

    /// The next page in ring order (with wrap-around).
    #[inline]
    pub fn next_page(&self, p: PageId) -> PageId {
        PageId(((p.index() + 1) % self.num_pages()) as u16)
    }

    /// The previous page in ring order (with wrap-around).
    #[inline]
    pub fn prev_page(&self, p: PageId) -> PageId {
        let n = self.num_pages();
        PageId(((p.index() + n - 1) % n) as u16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout(rows: u16, cols: u16, size: usize) -> PageLayout {
        PageLayout::for_size(Mesh::new(rows, cols), size).unwrap()
    }

    #[test]
    fn quadrants_of_4x4() {
        let l = layout(4, 4, 4);
        assert_eq!(l.num_pages(), 4);
        // Serpentine on a 2x2 tile grid: TL, TR, BR, BL.
        assert_eq!(l.origin(PageId(0)), Pos::new(0, 0));
        assert_eq!(l.origin(PageId(1)), Pos::new(0, 2));
        assert_eq!(l.origin(PageId(2)), Pos::new(2, 2));
        assert_eq!(l.origin(PageId(3)), Pos::new(2, 0));
    }

    #[test]
    fn quadrant_ring_is_closed() {
        let l = layout(4, 4, 4);
        assert!(l.ring_path_is_physical());
        assert!(l.ring_is_closed());
    }

    #[test]
    fn dominoes_of_4x4_form_physical_path() {
        let l = layout(4, 4, 2);
        assert_eq!(l.num_pages(), 8);
        assert!(l.ring_path_is_physical());
    }

    #[test]
    fn paper_grid_layouts_are_physical_paths() {
        // Every (CGRA size, page size) point from §VII-A.
        for (dim, sizes) in [
            (4u16, &[2usize, 4, 8][..]),
            (6, &[2, 4, 9]),
            (8, &[2, 4, 8, 16]),
        ] {
            for &s in sizes {
                let l = layout(dim, dim, s);
                assert_eq!(l.num_pages(), (dim as usize * dim as usize) / s);
                assert!(
                    l.ring_path_is_physical(),
                    "{dim}x{dim} page size {s}: ring order not physically adjacent"
                );
            }
        }
    }

    #[test]
    fn page_of_partitions_all_pes() {
        let l = layout(6, 6, 4);
        let mut counts = vec![0usize; l.num_pages()];
        for pe in l.mesh().pes() {
            counts[l.page_of(pe).index()] += 1;
        }
        assert!(counts.iter().all(|&c| c == 4));
    }

    #[test]
    fn pes_of_agrees_with_page_of() {
        let l = layout(8, 8, 8);
        for page in l.pages() {
            for pe in l.pes_of(page) {
                assert_eq!(l.page_of(pe), page);
            }
        }
    }

    #[test]
    fn intra_pos_roundtrip() {
        let l = layout(4, 4, 4);
        for pe in l.mesh().pes() {
            let page = l.page_of(pe);
            let local = l.intra_pos(pe);
            assert_eq!(l.pe_at(page, local, Orientation::Identity), pe);
        }
    }

    #[test]
    fn pe_at_with_mirror() {
        let l = layout(4, 4, 4);
        // Page 0 is the TL quadrant. MirrorV maps (0,0) -> (0,1).
        let pe = l.pe_at(PageId(0), Pos::new(0, 0), Orientation::MirrorV);
        assert_eq!(l.mesh().pos(pe), Pos::new(0, 1));
    }

    #[test]
    fn adjacency_is_symmetric_and_irreflexive() {
        let l = layout(6, 6, 4);
        for a in l.pages() {
            assert!(!l.pages_adjacent(a, a));
            for b in l.pages() {
                assert_eq!(l.pages_adjacent(a, b), l.pages_adjacent(b, a));
            }
        }
    }

    #[test]
    fn non_dividing_shape_is_rejected() {
        assert!(PageLayout::for_size(Mesh::new(6, 6), 8).is_err());
        assert!(PageShape::for_size(Mesh::new(6, 6), 8).is_none());
    }

    #[test]
    fn shape_for_size_table() {
        let m = Mesh::new(8, 8);
        assert_eq!(PageShape::for_size(m, 2), Some(PageShape::new(1, 2)));
        assert_eq!(PageShape::for_size(m, 4), Some(PageShape::new(2, 2)));
        assert_eq!(PageShape::for_size(m, 8), Some(PageShape::new(2, 4)));
        assert_eq!(PageShape::for_size(m, 16), Some(PageShape::new(4, 4)));
        assert_eq!(PageShape::for_size(m, 3), None);
    }

    #[test]
    fn next_prev_page_wrap() {
        let l = layout(4, 4, 4);
        assert_eq!(l.next_page(PageId(3)), PageId(0));
        assert_eq!(l.prev_page(PageId(0)), PageId(3));
        assert_eq!(l.next_page(PageId(1)), PageId(2));
    }
}
