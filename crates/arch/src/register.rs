//! Rotating register files and register-pressure accounting.
//!
//! Each PE has a small *rotating* register file (RF). Under modulo
//! scheduling, a value written in iteration *i* must not be clobbered by
//! the same instruction's write in iteration *i+1* while consumers of
//! iteration *i* are still pending — rotation renames registers each II
//! boundary exactly as in Rau's rotating files [10]. The PageMaster
//! transformation additionally parks values in the RF while their consumer
//! page waits its turn (§VI-E: "N rotating registers in each PE will
//! ensure that the original mapping ... can be shrunk to a single page").
//!
//! The model here is *capacity accounting*, not value simulation: a live
//! range occupies one rotating register per II window it spans, and the
//! file overflows when the number of simultaneously-live ranges exceeds
//! its size.

use serde::{Deserialize, Serialize};

/// A rotating register file of fixed capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RotatingRf {
    size: u16,
}

impl RotatingRf {
    /// Create a rotating RF with `size` physical registers.
    pub const fn new(size: u16) -> Self {
        RotatingRf { size }
    }

    /// Number of physical registers.
    #[inline]
    pub fn size(&self) -> u16 {
        self.size
    }

    /// How many rotating registers a live range `[write_time, last_read]`
    /// occupies under initiation interval `ii`.
    ///
    /// Rau's rule: a range spanning `L` cycles needs `ceil(L / II)`
    /// rotating registers, because a new instance of the value is created
    /// every II cycles while old instances are still live. A value read in
    /// the same cycle-window it is written still occupies one register.
    ///
    /// # Panics
    /// Panics if `last_read < write_time` or `ii == 0`.
    pub fn registers_for_range(write_time: u64, last_read: u64, ii: u32) -> u32 {
        assert!(ii > 0, "II must be positive");
        assert!(
            last_read >= write_time,
            "live range ends before it starts ({last_read} < {write_time})"
        );
        let span = last_read - write_time;
        (span / ii as u64 + 1) as u32
    }
}

impl Default for RotatingRf {
    /// MorphoSys/ADRES-class PEs carry small files; 8 is a common size.
    fn default() -> Self {
        RotatingRf::new(8)
    }
}

/// Accumulates live ranges on one PE and reports peak rotating-register
/// pressure for a given II.
#[derive(Debug, Clone, Default)]
pub struct PressureTracker {
    ranges: Vec<(u64, u64)>,
}

impl PressureTracker {
    /// Create an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a live range `[write_time, last_read]` held in this PE's RF.
    pub fn add_range(&mut self, write_time: u64, last_read: u64) {
        assert!(
            last_read >= write_time,
            "live range ends before it starts ({last_read} < {write_time})"
        );
        self.ranges.push((write_time, last_read));
    }

    /// Number of recorded ranges.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// Whether no ranges have been recorded.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Total rotating registers required for all recorded ranges at `ii`.
    ///
    /// Every range is produced by a distinct (instruction, iteration)
    /// instance, so requirements add up — there is no sharing between
    /// ranges within one steady-state window.
    pub fn registers_required(&self, ii: u32) -> u32 {
        self.ranges
            .iter()
            .map(|&(w, r)| RotatingRf::registers_for_range(w, r, ii))
            .sum()
    }

    /// Whether the recorded ranges fit in `rf` at initiation interval `ii`.
    pub fn fits(&self, rf: RotatingRf, ii: u32) -> bool {
        self.registers_required(ii) <= rf.size() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_cycle_range_needs_one_register() {
        assert_eq!(RotatingRf::registers_for_range(5, 5, 4), 1);
    }

    #[test]
    fn range_shorter_than_ii_needs_one_register() {
        assert_eq!(RotatingRf::registers_for_range(0, 3, 4), 1);
    }

    #[test]
    fn range_of_exactly_ii_needs_two_registers() {
        // By the time the value is read, the next iteration's instance has
        // been written: two live instances.
        assert_eq!(RotatingRf::registers_for_range(0, 4, 4), 2);
    }

    #[test]
    fn long_range_scales_with_ii() {
        assert_eq!(RotatingRf::registers_for_range(0, 11, 4), 3);
        assert_eq!(RotatingRf::registers_for_range(0, 11, 2), 6);
        assert_eq!(RotatingRf::registers_for_range(0, 11, 12), 1);
    }

    #[test]
    fn tracker_sums_requirements() {
        let mut t = PressureTracker::new();
        t.add_range(0, 3); // 1 reg at II=4
        t.add_range(0, 4); // 2 regs at II=4
        t.add_range(2, 2); // 1 reg
        assert_eq!(t.registers_required(4), 4);
    }

    #[test]
    fn tracker_fits_respects_capacity() {
        let mut t = PressureTracker::new();
        for _ in 0..8 {
            t.add_range(0, 0);
        }
        assert!(t.fits(RotatingRf::new(8), 1));
        t.add_range(0, 0);
        assert!(!t.fits(RotatingRf::new(8), 1));
    }

    #[test]
    #[should_panic(expected = "ends before it starts")]
    fn inverted_range_panics() {
        RotatingRf::registers_for_range(5, 4, 1);
    }

    #[test]
    #[should_panic(expected = "II must be positive")]
    fn zero_ii_panics() {
        RotatingRf::registers_for_range(0, 0, 0);
    }
}
