//! Fault model over the page grid.
//!
//! The paper's core argument (§VI–VII) is that page-level virtualization
//! lets a thread keep making progress as resources are taken away from
//! it. A faulty PE or page is just another way resources disappear at
//! runtime: a [`FaultMap`] records which pages of a fabric are healthy,
//! degraded (usable at reduced rate) or dead (unusable), and
//! [`FaultSpec`] describes *when* faults strike — a targeted page at a
//! fixed time, or MTBF-style random arrivals from a deterministic seeded
//! stream.
//!
//! The map composes with the existing page geometry: PE-level faults are
//! folded onto their containing page via [`PageLayout::page_of`], and the
//! intra-page coordinates of faulty PEs transform under the D4 subgroup
//! in [`Orientation`] exactly like relocated page mappings do, so a
//! runtime that mirrors a page onto a partially-faulty tile can ask where
//! the faults land in the mirrored frame.

use crate::mirror::Orientation;
use crate::page::{PageLayout, PageShape};
use crate::topology::{PeId, Pos};
use serde::{Deserialize, Serialize};

/// Health of one page of the grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum PageHealth {
    /// Fully usable.
    #[default]
    Healthy,
    /// Usable, but at a reduced rate (e.g. one PE routed around).
    Degraded,
    /// Unusable; no op may be placed on it.
    Dead,
}

/// Health of every page in a fabric, in ring order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultMap {
    shape: PageShape,
    health: Vec<PageHealth>,
    /// Intra-page coordinates of faulty PEs, per page (identity frame).
    faulty_pes: Vec<Vec<Pos>>,
}

impl FaultMap {
    /// An all-healthy map over `num_pages` pages of 1×1 shape (the
    /// page-count-only abstraction the simulator uses).
    pub fn new(num_pages: u16) -> Self {
        FaultMap {
            shape: PageShape::new(1, 1),
            health: vec![PageHealth::Healthy; num_pages as usize],
            faulty_pes: vec![Vec::new(); num_pages as usize],
        }
    }

    /// An all-healthy map matching a concrete page layout.
    pub fn for_layout(layout: &PageLayout) -> Self {
        FaultMap {
            shape: layout.shape(),
            health: vec![PageHealth::Healthy; layout.num_pages()],
            faulty_pes: vec![Vec::new(); layout.num_pages()],
        }
    }

    /// A map with the pages containing the given PEs marked per the
    /// escalation policy of [`FaultMap::mark_pe`].
    pub fn from_dead_pes(layout: &PageLayout, pes: &[PeId]) -> Self {
        let mut map = Self::for_layout(layout);
        for &pe in pes {
            map.mark_pe(layout, pe);
        }
        map
    }

    /// Number of pages covered.
    pub fn num_pages(&self) -> u16 {
        self.health.len() as u16
    }

    /// The page shape faults are recorded against.
    pub fn shape(&self) -> PageShape {
        self.shape
    }

    /// Health of one page.
    pub fn health(&self, page: u16) -> PageHealth {
        self.health[page as usize]
    }

    /// Whether a page can still execute ops (healthy or degraded).
    pub fn is_usable(&self, page: u16) -> bool {
        self.health[page as usize] != PageHealth::Dead
    }

    /// Set a page's health directly.
    pub fn mark_page(&mut self, page: u16, health: PageHealth) {
        self.health[page as usize] = health;
    }

    /// Record a faulty PE. The containing page becomes [`Degraded`]
    /// (the mapping can route around one bad PE at reduced rate); once
    /// more than half the page's PEs are faulty the page is [`Dead`].
    ///
    /// [`Degraded`]: PageHealth::Degraded
    /// [`Dead`]: PageHealth::Dead
    pub fn mark_pe(&mut self, layout: &PageLayout, pe: PeId) {
        let page = layout.page_of(pe);
        let local = layout.intra_pos(pe);
        let faults = &mut self.faulty_pes[page.index()];
        if !faults.contains(&local) {
            faults.push(local);
        }
        let health = if faults.len() * 2 > self.shape.size() {
            PageHealth::Dead
        } else {
            PageHealth::Degraded
        };
        // Never *improve* a page (a directly-killed page stays dead).
        if self.health[page.index()] != PageHealth::Dead {
            self.health[page.index()] = health;
        }
    }

    /// Intra-page coordinates of a page's faulty PEs as seen through
    /// `orient` — where the faults land when the page's mapping is
    /// mirrored/rotated onto this tile.
    pub fn faulty_pes(&self, page: u16, orient: Orientation) -> Vec<Pos> {
        self.faulty_pes[page as usize]
            .iter()
            .map(|&p| orient.apply(p, self.shape.h, self.shape.w))
            .collect()
    }

    /// Pages that can still execute ops, in ring order.
    pub fn usable_pages(&self) -> Vec<u16> {
        (0..self.num_pages())
            .filter(|&p| self.is_usable(p))
            .collect()
    }

    /// Dead pages, in ring order.
    pub fn dead_pages(&self) -> Vec<u16> {
        (0..self.num_pages())
            .filter(|&p| !self.is_usable(p))
            .collect()
    }

    /// Degraded pages, in ring order.
    pub fn degraded_pages(&self) -> Vec<u16> {
        (0..self.num_pages())
            .filter(|&p| self.health(p) == PageHealth::Degraded)
            .collect()
    }

    /// Number of usable pages.
    pub fn usable_count(&self) -> u16 {
        self.usable_pages().len() as u16
    }

    /// Maximal runs of consecutive *usable* pages in ring order, as
    /// `(start, len)`. The ring path is what carries inter-page
    /// dependences (§VI-B.2), so a shrunk schedule must land on one run.
    pub fn surviving_runs(&self) -> Vec<(u16, u16)> {
        let mut runs = Vec::new();
        let mut start = None;
        for p in 0..self.num_pages() {
            match (self.is_usable(p), start) {
                (true, None) => start = Some(p),
                (false, Some(s)) => {
                    runs.push((s, p - s));
                    start = None;
                }
                _ => {}
            }
        }
        if let Some(s) = start {
            runs.push((s, self.num_pages() - s));
        }
        runs
    }

    /// The longest surviving run (ties: earliest start), if any page
    /// survives at all.
    pub fn longest_surviving_run(&self) -> Option<(u16, u16)> {
        self.surviving_runs()
            .into_iter()
            .max_by_key(|&(start, len)| (len, std::cmp::Reverse(start)))
    }
}

/// What a fault does to its page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The page becomes degraded (usable at reduced rate).
    Degrade,
    /// The page dies.
    Kill,
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Cycle at which the fault strikes.
    pub time: u64,
    /// Ring index of the struck page.
    pub page: u16,
    /// What happens to it.
    pub kind: FaultKind,
}

/// A deterministic fault-injection schedule description.
///
/// Parsed from `--faults <spec>`:
///
/// * `off` — no faults (the default; byte-identical to a fault-free run)
/// * `at=<time>,page=<p>[,degrade]` — targeted: page `p` struck at cycle
///   `time` (killed unless `degrade` is given)
/// * `mtbf=<mean>,count=<n>[,seed=<s>][,degrade]` — `n` faults with
///   exponentially distributed inter-arrival times of mean `mean`
///   cycles, striking uniformly random pages; fully determined by `s`
///   (default 0)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum FaultSpec {
    /// No faults.
    #[default]
    Off,
    /// One targeted fault.
    At {
        /// Strike cycle.
        time: u64,
        /// Struck page.
        page: u16,
        /// Effect.
        kind: FaultKind,
    },
    /// MTBF-style random arrivals.
    Mtbf {
        /// Mean cycles between faults.
        mean: u64,
        /// Number of faults drawn.
        count: u32,
        /// Stream seed; the schedule is a pure function of
        /// `(mean, count, seed, num_pages)`.
        seed: u64,
        /// Effect of every fault.
        kind: FaultKind,
    },
}

/// Why a `--faults` spec failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpecError {
    /// Human-readable reason.
    pub reason: String,
}

impl std::fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad fault spec: {}", self.reason)
    }
}

impl std::error::Error for FaultSpecError {}

/// SplitMix64 — a tiny deterministic stream, enough for fault arrival
/// draws (the workload RNG lives in the in-repo `rand` crate; this keeps
/// `cgra-arch` dependency-free).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultSpec {
    /// Parse a `--faults` spec string (see the type-level grammar).
    pub fn parse(s: &str) -> Result<FaultSpec, FaultSpecError> {
        let err = |reason: String| Err(FaultSpecError { reason });
        let s = s.trim();
        if s.is_empty() || s == "off" || s == "none" || s == "0" {
            return Ok(FaultSpec::Off);
        }
        let mut time = None;
        let mut page = None;
        let mut mean = None;
        let mut count = None;
        let mut seed = 0u64;
        let mut kind = FaultKind::Kill;
        for part in s.split(',') {
            let part = part.trim();
            match part.split_once('=') {
                Some(("at", v)) => match v.parse() {
                    Ok(t) => time = Some(t),
                    Err(_) => return err(format!("at={v}: not a cycle count")),
                },
                Some(("page", v)) => match v.parse() {
                    Ok(p) => page = Some(p),
                    Err(_) => return err(format!("page={v}: not a page index")),
                },
                Some(("mtbf", v)) => match v.parse::<u64>() {
                    Ok(m) if m > 0 => mean = Some(m),
                    _ => return err(format!("mtbf={v}: need a positive cycle count")),
                },
                Some(("count", v)) => match v.parse() {
                    Ok(c) => count = Some(c),
                    Err(_) => return err(format!("count={v}: not a fault count")),
                },
                Some(("seed", v)) => match v.parse() {
                    Ok(x) => seed = x,
                    Err(_) => return err(format!("seed={v}: not a u64")),
                },
                None if part == "degrade" => kind = FaultKind::Degrade,
                None if part == "kill" => kind = FaultKind::Kill,
                _ => return err(format!("unknown field {part:?}")),
            }
        }
        match (time, page, mean, count) {
            (Some(time), Some(page), None, None) => Ok(FaultSpec::At { time, page, kind }),
            (None, None, Some(mean), Some(count)) => Ok(FaultSpec::Mtbf {
                mean,
                count,
                seed,
                kind,
            }),
            _ => err("expected `off`, `at=<t>,page=<p>[,degrade]`, or \
                 `mtbf=<mean>,count=<n>[,seed=<s>][,degrade]`"
                .into()),
        }
    }

    /// The concrete event schedule over a fabric of `num_pages` pages,
    /// sorted by `(time, page)`. Deterministic: a pure function of the
    /// spec and `num_pages`.
    pub fn schedule(&self, num_pages: u16) -> Vec<FaultEvent> {
        match *self {
            FaultSpec::Off => Vec::new(),
            FaultSpec::At { time, page, kind } => {
                if page < num_pages {
                    vec![FaultEvent { time, page, kind }]
                } else {
                    Vec::new()
                }
            }
            FaultSpec::Mtbf {
                mean,
                count,
                seed,
                kind,
            } => {
                if num_pages == 0 {
                    return Vec::new();
                }
                // Domain-separate the stream from other users of the seed.
                let mut state = seed ^ 0xFA01_7FA0_17FA_017F;
                let mut t = 0u64;
                let mut events = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    // Exponential inter-arrival via inverse CDF; the
                    // uniform comes from the top 53 bits of SplitMix64.
                    let u = (splitmix64(&mut state) >> 11) as f64 / (1u64 << 53) as f64;
                    let dt = (-(mean as f64) * (1.0 - u).ln()).ceil().max(1.0);
                    t = t.saturating_add(dt as u64);
                    let page = (splitmix64(&mut state) % num_pages as u64) as u16;
                    events.push(FaultEvent {
                        time: t,
                        page,
                        kind,
                    });
                }
                events.sort_by_key(|e| (e.time, e.page));
                events
            }
        }
    }

    /// Whether the spec injects anything at all.
    pub fn is_off(&self) -> bool {
        matches!(self, FaultSpec::Off)
    }

    /// The same spec with the fault rate scaled by `factor` (MTBF
    /// divided): the axis of a throughput-vs-fault-rate degradation
    /// curve. `Off` and `At` specs are returned unchanged.
    pub fn scaled(&self, factor: u64) -> FaultSpec {
        match *self {
            FaultSpec::Mtbf {
                mean,
                count,
                seed,
                kind,
            } => FaultSpec::Mtbf {
                mean: (mean / factor.max(1)).max(1),
                count,
                seed,
                kind,
            },
            other => other,
        }
    }

    /// The same spec with its RNG seed mixed with `salt` (MTBF specs
    /// only; deterministic schedules pass through). Sweep drivers use
    /// this to give every point an independent but reproducible fault
    /// timeline derived from the point's coordinates.
    pub fn reseeded(&self, salt: u64) -> FaultSpec {
        match *self {
            FaultSpec::Mtbf {
                mean,
                count,
                seed,
                kind,
            } => FaultSpec::Mtbf {
                mean,
                count,
                seed: seed ^ salt,
                kind,
            },
            other => other,
        }
    }
}

impl std::fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultSpec::Off => write!(f, "off"),
            FaultSpec::At { time, page, kind } => {
                write!(f, "at={time},page={page}")?;
                if *kind == FaultKind::Degrade {
                    write!(f, ",degrade")?;
                }
                Ok(())
            }
            FaultSpec::Mtbf {
                mean,
                count,
                seed,
                kind,
            } => {
                write!(f, "mtbf={mean},count={count},seed={seed}")?;
                if *kind == FaultKind::Degrade {
                    write!(f, ",degrade")?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Mesh;

    #[test]
    fn fresh_map_is_all_healthy() {
        let m = FaultMap::new(8);
        assert_eq!(m.usable_count(), 8);
        assert!(m.dead_pages().is_empty());
        assert_eq!(m.surviving_runs(), vec![(0, 8)]);
    }

    #[test]
    fn killing_a_page_splits_the_ring() {
        let mut m = FaultMap::new(8);
        m.mark_page(3, PageHealth::Dead);
        assert_eq!(m.surviving_runs(), vec![(0, 3), (4, 4)]);
        assert_eq!(m.longest_surviving_run(), Some((4, 4)));
        assert_eq!(m.dead_pages(), vec![3]);
        assert_eq!(m.usable_count(), 7);
    }

    #[test]
    fn tie_between_runs_prefers_earliest() {
        let mut m = FaultMap::new(7);
        m.mark_page(3, PageHealth::Dead);
        assert_eq!(m.longest_surviving_run(), Some((0, 3)));
    }

    #[test]
    fn all_dead_has_no_run() {
        let mut m = FaultMap::new(2);
        m.mark_page(0, PageHealth::Dead);
        m.mark_page(1, PageHealth::Dead);
        assert_eq!(m.longest_surviving_run(), None);
    }

    #[test]
    fn degraded_pages_stay_usable() {
        let mut m = FaultMap::new(4);
        m.mark_page(1, PageHealth::Degraded);
        assert_eq!(m.surviving_runs(), vec![(0, 4)]);
        assert_eq!(m.degraded_pages(), vec![1]);
    }

    #[test]
    fn pe_faults_escalate_by_majority() {
        let layout = PageLayout::for_size(Mesh::new(4, 4), 4).unwrap();
        let mut m = FaultMap::for_layout(&layout);
        // Page 0 is the TL 2x2 quadrant: PEs at (0,0),(0,1),(1,0),(1,1).
        let mesh = layout.mesh();
        m.mark_pe(&layout, mesh.pe(Pos::new(0, 0)));
        assert_eq!(m.health(0), PageHealth::Degraded);
        m.mark_pe(&layout, mesh.pe(Pos::new(0, 1)));
        assert_eq!(m.health(0), PageHealth::Degraded); // 2 of 4: not a majority
        m.mark_pe(&layout, mesh.pe(Pos::new(1, 0)));
        assert_eq!(m.health(0), PageHealth::Dead); // 3 of 4
                                                   // Other pages untouched.
        assert_eq!(m.health(1), PageHealth::Healthy);
    }

    #[test]
    fn duplicate_pe_fault_is_idempotent() {
        let layout = PageLayout::for_size(Mesh::new(4, 4), 4).unwrap();
        let mut m = FaultMap::for_layout(&layout);
        let pe = layout.mesh().pe(Pos::new(0, 0));
        m.mark_pe(&layout, pe);
        m.mark_pe(&layout, pe);
        assert_eq!(m.faulty_pes(0, Orientation::Identity).len(), 1);
        assert_eq!(m.health(0), PageHealth::Degraded);
    }

    #[test]
    fn faulty_pe_positions_transform_under_orientation() {
        let layout = PageLayout::for_size(Mesh::new(4, 4), 4).unwrap();
        let mut m = FaultMap::for_layout(&layout);
        m.mark_pe(&layout, layout.mesh().pe(Pos::new(0, 0))); // local (0,0) of page 0
        assert_eq!(m.faulty_pes(0, Orientation::Identity), vec![Pos::new(0, 0)]);
        assert_eq!(m.faulty_pes(0, Orientation::MirrorV), vec![Pos::new(0, 1)]);
        assert_eq!(m.faulty_pes(0, Orientation::Rot180), vec![Pos::new(1, 1)]);
    }

    #[test]
    fn spec_parsing_roundtrips() {
        for s in [
            "off",
            "at=5000,page=2",
            "at=5000,page=2,degrade",
            "mtbf=20000,count=4,seed=9",
        ] {
            let spec = FaultSpec::parse(s).unwrap();
            assert_eq!(FaultSpec::parse(&spec.to_string()).unwrap(), spec, "{s}");
        }
        assert_eq!(FaultSpec::parse(""), Ok(FaultSpec::Off));
        assert_eq!(FaultSpec::parse("none"), Ok(FaultSpec::Off));
    }

    #[test]
    fn bad_specs_are_rejected() {
        assert!(FaultSpec::parse("at=5000").is_err());
        assert!(FaultSpec::parse("page=1").is_err());
        assert!(FaultSpec::parse("mtbf=0,count=3").is_err());
        assert!(FaultSpec::parse("banana").is_err());
        assert!(FaultSpec::parse("at=x,page=1").is_err());
    }

    #[test]
    fn targeted_schedule_is_one_event() {
        let spec = FaultSpec::parse("at=100,page=1").unwrap();
        assert_eq!(
            spec.schedule(4),
            vec![FaultEvent {
                time: 100,
                page: 1,
                kind: FaultKind::Kill
            }]
        );
        // A page outside the fabric never fires.
        assert!(spec.schedule(1).is_empty());
    }

    #[test]
    fn mtbf_schedule_is_deterministic_and_sorted() {
        let spec = FaultSpec::parse("mtbf=10000,count=16,seed=3").unwrap();
        let a = spec.schedule(8);
        let b = spec.schedule(8);
        assert_eq!(a, b);
        assert_eq!(a.len(), 16);
        assert!(a.windows(2).all(|w| w[0].time <= w[1].time));
        assert!(a.iter().all(|e| e.page < 8));
        // A different seed gives a different schedule.
        let c = FaultSpec::parse("mtbf=10000,count=16,seed=4")
            .unwrap()
            .schedule(8);
        assert_ne!(a, c);
    }

    #[test]
    fn mtbf_mean_is_roughly_respected() {
        let spec = FaultSpec::Mtbf {
            mean: 1000,
            count: 400,
            seed: 1,
            kind: FaultKind::Kill,
        };
        let events = spec.schedule(4);
        let last = events.last().unwrap().time;
        let mean = last as f64 / 400.0;
        assert!(
            (mean - 1000.0).abs() < 250.0,
            "empirical MTBF {mean:.0} far from 1000"
        );
    }

    #[test]
    fn spec_display_parse_round_trips_exhaustively() {
        // Property sweep over an enumerated spec family: every member
        // must survive Display → parse unchanged, including the extreme
        // field values the hand-picked cases above never reach.
        let mut specs = vec![FaultSpec::Off];
        for kind in [FaultKind::Kill, FaultKind::Degrade] {
            for time in [0u64, 1, 999, u64::MAX] {
                for page in [0u16, 1, 7, u16::MAX] {
                    specs.push(FaultSpec::At { time, page, kind });
                }
            }
            for mean in [1u64, 500, u64::MAX] {
                for count in [0u32, 1, u32::MAX] {
                    for seed in [0u64, 42, u64::MAX] {
                        specs.push(FaultSpec::Mtbf {
                            mean,
                            count,
                            seed,
                            kind,
                        });
                    }
                }
            }
        }
        for spec in specs {
            let shown = spec.to_string();
            assert_eq!(FaultSpec::parse(&shown), Ok(spec), "via {shown:?}");
        }
    }

    #[test]
    fn scaled_and_reseeded_schedules_stay_deterministic() {
        // Derivation laws over a small grid of fabrics and factors:
        // deriving a spec is pure (equal schedules on repeat), scaling
        // preserves the fault count and never stretches the timeline,
        // reseeding with 0 is the identity and reseeding twice with the
        // same salt undoes itself.
        let base = FaultSpec::Mtbf {
            mean: 8_000,
            count: 8,
            seed: 5,
            kind: FaultKind::Kill,
        };
        assert_eq!(base.reseeded(0), base);
        for pages in [1u16, 4, 9] {
            let reference = base.schedule(pages);
            for factor in [1u64, 2, 8, 1_000_000] {
                let scaled = base.scaled(factor);
                let a = scaled.schedule(pages);
                assert_eq!(a, scaled.schedule(pages), "pages={pages} x{factor}");
                assert_eq!(a.len(), reference.len(), "scaling must keep the count");
                assert!(
                    a.last().unwrap().time <= reference.last().unwrap().time,
                    "pages={pages} x{factor}: scaling up the rate stretched the timeline"
                );
                // Same seed stream: the struck pages are unchanged, only
                // the arrival times compress.
                let struck = |evs: &[FaultEvent]| {
                    let mut p: Vec<u16> = evs.iter().map(|e| e.page).collect();
                    p.sort_unstable();
                    p
                };
                assert_eq!(struck(&a), struck(&reference));
            }
            for salt in [0u64, 1, 0xDEAD_BEEF] {
                let reseeded = base.reseeded(salt);
                assert_eq!(
                    reseeded.schedule(pages),
                    reseeded.schedule(pages),
                    "pages={pages} salt={salt}"
                );
                assert_eq!(reseeded.reseeded(salt), base, "reseed is an involution");
            }
        }
        // Off and At specs pass through both derivations unchanged.
        let at = FaultSpec::At {
            time: 7,
            page: 1,
            kind: FaultKind::Degrade,
        };
        for spec in [FaultSpec::Off, at] {
            assert_eq!(spec.scaled(8), spec);
            assert_eq!(spec.reseeded(99), spec);
        }
    }

    #[test]
    fn scaling_divides_the_mtbf() {
        let spec = FaultSpec::parse("mtbf=8000,count=2,seed=0").unwrap();
        match spec.scaled(4) {
            FaultSpec::Mtbf { mean, .. } => assert_eq!(mean, 2000),
            other => panic!("{other:?}"),
        }
        assert_eq!(FaultSpec::Off.scaled(4), FaultSpec::Off);
    }
}
