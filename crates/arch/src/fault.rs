//! Fault model over the page grid.
//!
//! The paper's core argument (§VI–VII) is that page-level virtualization
//! lets a thread keep making progress as resources are taken away from
//! it. A faulty PE or page is just another way resources disappear at
//! runtime: a [`FaultMap`] records which pages of a fabric are healthy,
//! degraded (usable at reduced rate) or dead (unusable), and
//! [`FaultSpec`] describes *when* faults strike — a targeted page at a
//! fixed time, or MTBF-style random arrivals from a deterministic seeded
//! stream.
//!
//! The map composes with the existing page geometry: PE-level faults are
//! folded onto their containing page via [`PageLayout::page_of`], and the
//! intra-page coordinates of faulty PEs transform under the D4 subgroup
//! in [`Orientation`] exactly like relocated page mappings do, so a
//! runtime that mirrors a page onto a partially-faulty tile can ask where
//! the faults land in the mirrored frame.

use crate::mirror::Orientation;
use crate::page::{PageLayout, PageShape};
use crate::topology::{PeId, Pos};
use serde::{Deserialize, Serialize};

/// Health of one page of the grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum PageHealth {
    /// Fully usable.
    #[default]
    Healthy,
    /// Usable, but at a reduced rate (e.g. one PE routed around).
    Degraded,
    /// Unusable; no op may be placed on it.
    Dead,
    /// A transient fault cleared and repair is under way; the page is
    /// still unusable until repair completes (Dead → Repairing →
    /// Healthy).
    Repairing,
}

/// Health of every page in a fabric, in ring order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultMap {
    shape: PageShape,
    health: Vec<PageHealth>,
    /// Intra-page coordinates of faulty PEs, per page (identity frame).
    faulty_pes: Vec<Vec<Pos>>,
}

impl FaultMap {
    /// An all-healthy map over `num_pages` pages of 1×1 shape (the
    /// page-count-only abstraction the simulator uses).
    pub fn new(num_pages: u16) -> Self {
        FaultMap {
            shape: PageShape::new(1, 1),
            health: vec![PageHealth::Healthy; num_pages as usize],
            faulty_pes: vec![Vec::new(); num_pages as usize],
        }
    }

    /// An all-healthy map matching a concrete page layout.
    pub fn for_layout(layout: &PageLayout) -> Self {
        FaultMap {
            shape: layout.shape(),
            health: vec![PageHealth::Healthy; layout.num_pages()],
            faulty_pes: vec![Vec::new(); layout.num_pages()],
        }
    }

    /// A map with the pages containing the given PEs marked per the
    /// escalation policy of [`FaultMap::mark_pe`].
    pub fn from_dead_pes(layout: &PageLayout, pes: &[PeId]) -> Self {
        let mut map = Self::for_layout(layout);
        for &pe in pes {
            map.mark_pe(layout, pe);
        }
        map
    }

    /// Number of pages covered.
    pub fn num_pages(&self) -> u16 {
        self.health.len() as u16
    }

    /// The page shape faults are recorded against.
    pub fn shape(&self) -> PageShape {
        self.shape
    }

    /// Health of one page.
    pub fn health(&self, page: u16) -> PageHealth {
        self.health[page as usize]
    }

    /// Whether a page can still execute ops (healthy or degraded). A
    /// page under repair is *not* usable until repair completes.
    pub fn is_usable(&self, page: u16) -> bool {
        matches!(
            self.health[page as usize],
            PageHealth::Healthy | PageHealth::Degraded
        )
    }

    /// Set a page's health directly.
    pub fn mark_page(&mut self, page: u16, health: PageHealth) {
        self.health[page as usize] = health;
    }

    /// Dead → Repairing: a transient fault has cleared and the page is
    /// being repaired. It stays unusable; only [`complete_repair`] makes
    /// it healthy again. A page in any other state is left unchanged
    /// (in particular a page re-struck while repairing stays whatever
    /// the new fault made it).
    ///
    /// [`complete_repair`]: FaultMap::complete_repair
    pub fn begin_repair(&mut self, page: u16) {
        if self.health[page as usize] == PageHealth::Dead {
            self.health[page as usize] = PageHealth::Repairing;
        }
    }

    /// Repairing → Healthy: repair finished; the page's recorded PE
    /// faults are cleared so majority-vote escalation restarts from
    /// scratch if it is struck again. Only a page actually in
    /// [`Repairing`] transitions — a page re-killed mid-repair stays
    /// dead.
    ///
    /// [`Repairing`]: PageHealth::Repairing
    pub fn complete_repair(&mut self, page: u16) {
        if self.health[page as usize] == PageHealth::Repairing {
            self.health[page as usize] = PageHealth::Healthy;
            self.faulty_pes[page as usize].clear();
        }
    }

    /// Record a faulty PE. The containing page becomes [`Degraded`]
    /// (the mapping can route around one bad PE at reduced rate); once
    /// more than half the page's PEs are faulty the page is [`Dead`].
    ///
    /// [`Degraded`]: PageHealth::Degraded
    /// [`Dead`]: PageHealth::Dead
    pub fn mark_pe(&mut self, layout: &PageLayout, pe: PeId) {
        let page = layout.page_of(pe);
        let local = layout.intra_pos(pe);
        let faults = &mut self.faulty_pes[page.index()];
        if !faults.contains(&local) {
            faults.push(local);
        }
        let health = if faults.len() * 2 > self.shape.size() {
            PageHealth::Dead
        } else {
            PageHealth::Degraded
        };
        // Never *improve* a page (a directly-killed page stays dead).
        if self.health[page.index()] != PageHealth::Dead {
            self.health[page.index()] = health;
        }
    }

    /// Intra-page coordinates of a page's faulty PEs as seen through
    /// `orient` — where the faults land when the page's mapping is
    /// mirrored/rotated onto this tile.
    pub fn faulty_pes(&self, page: u16, orient: Orientation) -> Vec<Pos> {
        self.faulty_pes[page as usize]
            .iter()
            .map(|&p| orient.apply(p, self.shape.h, self.shape.w))
            .collect()
    }

    /// Pages that can still execute ops, in ring order.
    pub fn usable_pages(&self) -> Vec<u16> {
        (0..self.num_pages())
            .filter(|&p| self.is_usable(p))
            .collect()
    }

    /// Dead pages, in ring order.
    pub fn dead_pages(&self) -> Vec<u16> {
        (0..self.num_pages())
            .filter(|&p| !self.is_usable(p))
            .collect()
    }

    /// Degraded pages, in ring order.
    pub fn degraded_pages(&self) -> Vec<u16> {
        (0..self.num_pages())
            .filter(|&p| self.health(p) == PageHealth::Degraded)
            .collect()
    }

    /// Pages currently under repair, in ring order.
    pub fn repairing_pages(&self) -> Vec<u16> {
        (0..self.num_pages())
            .filter(|&p| self.health(p) == PageHealth::Repairing)
            .collect()
    }

    /// Number of usable pages.
    pub fn usable_count(&self) -> u16 {
        self.usable_pages().len() as u16
    }

    /// Maximal runs of consecutive *usable* pages in ring order, as
    /// `(start, len)`. The ring path is what carries inter-page
    /// dependences (§VI-B.2), so a shrunk schedule must land on one run.
    pub fn surviving_runs(&self) -> Vec<(u16, u16)> {
        let mut runs = Vec::new();
        let mut start = None;
        for p in 0..self.num_pages() {
            match (self.is_usable(p), start) {
                (true, None) => start = Some(p),
                (false, Some(s)) => {
                    runs.push((s, p - s));
                    start = None;
                }
                _ => {}
            }
        }
        if let Some(s) = start {
            runs.push((s, self.num_pages() - s));
        }
        runs
    }

    /// The longest surviving run (ties: earliest start), if any page
    /// survives at all.
    pub fn longest_surviving_run(&self) -> Option<(u16, u16)> {
        self.surviving_runs()
            .into_iter()
            .max_by_key(|&(start, len)| (len, std::cmp::Reverse(start)))
    }
}

/// What a fault does to its page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The page becomes degraded (usable at reduced rate).
    Degrade,
    /// The page dies, permanently.
    Kill,
    /// The page dies, but the fault clears: repair begins
    /// `repair_after` cycles after the strike (the MTTR), after which
    /// the page transitions Dead → Repairing → Healthy and can be
    /// re-offered to threads.
    Transient {
        /// Mean time to repair, in cycles after the strike.
        repair_after: u64,
    },
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Cycle at which the fault strikes.
    pub time: u64,
    /// Ring index of the struck page.
    pub page: u16,
    /// What happens to it.
    pub kind: FaultKind,
}

/// A deterministic fault-injection schedule description.
///
/// Parsed from `--faults <spec>`:
///
/// * `off` — no faults (the default; byte-identical to a fault-free run)
/// * `at=<time>,page=<p>[,degrade]` — targeted: page `p` struck at cycle
///   `time` (killed unless `degrade` is given)
/// * `mtbf=<mean>,count=<n>[,seed=<s>][,degrade]` — `n` faults with
///   exponentially distributed inter-arrival times of mean `mean`
///   cycles, striking uniformly random pages; fully determined by `s`
///   (default 0)
/// * either form may append `mttr=<cycles>` to make the faults
///   transient: a struck page begins repair `cycles` after the strike
///   and returns to the free pool once repaired (incompatible with
///   `degrade` — a degraded page never died, so there is nothing to
///   repair)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum FaultSpec {
    /// No faults.
    #[default]
    Off,
    /// One targeted fault.
    At {
        /// Strike cycle.
        time: u64,
        /// Struck page.
        page: u16,
        /// Effect.
        kind: FaultKind,
    },
    /// MTBF-style random arrivals.
    Mtbf {
        /// Mean cycles between faults.
        mean: u64,
        /// Number of faults drawn.
        count: u32,
        /// Stream seed; the schedule is a pure function of
        /// `(mean, count, seed, num_pages)`.
        seed: u64,
        /// Effect of every fault.
        kind: FaultKind,
    },
}

/// Why a `--faults` spec failed to parse. Every variant names the
/// offending clause and its byte offset into the original input, so
/// front-ends can print a caret span under the bad text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultSpecError {
    /// A clause's keyword is known but its value does not parse.
    BadValue {
        /// The full offending clause, e.g. `at=x`.
        clause: String,
        /// Byte offset of the clause in the input.
        offset: usize,
        /// What a value of this clause must be.
        expected: &'static str,
    },
    /// A clause whose keyword is not in the grammar.
    UnknownClause {
        /// The full offending clause.
        clause: String,
        /// Byte offset of the clause in the input.
        offset: usize,
    },
    /// Two clauses contradict each other (e.g. `degrade` with `mttr=`:
    /// a degraded page never died, so there is nothing to repair).
    Conflict {
        /// The later of the two clashing clauses.
        clause: String,
        /// Byte offset of that clause in the input.
        offset: usize,
        /// The earlier clause it clashes with.
        with: &'static str,
    },
    /// The clauses parsed individually but do not assemble into a
    /// complete spec (e.g. `at=` without `page=`).
    Incomplete {
        /// The whole input, for reporting.
        clause: String,
    },
}

impl FaultSpecError {
    /// The offending clause text.
    pub fn clause(&self) -> &str {
        match self {
            FaultSpecError::BadValue { clause, .. }
            | FaultSpecError::UnknownClause { clause, .. }
            | FaultSpecError::Conflict { clause, .. }
            | FaultSpecError::Incomplete { clause } => clause,
        }
    }

    /// `(byte offset, byte length)` of the offending clause in the
    /// original input — the span a front-end should underline.
    pub fn span(&self) -> (usize, usize) {
        match self {
            FaultSpecError::BadValue { clause, offset, .. }
            | FaultSpecError::UnknownClause { clause, offset }
            | FaultSpecError::Conflict { clause, offset, .. } => (*offset, clause.len()),
            FaultSpecError::Incomplete { clause } => (0, clause.len()),
        }
    }
}

impl std::fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultSpecError::BadValue {
                clause,
                offset,
                expected,
            } => write!(
                f,
                "bad fault spec: `{clause}` at byte {offset}: expected {expected}"
            ),
            FaultSpecError::UnknownClause { clause, offset } => {
                write!(
                    f,
                    "bad fault spec: unknown clause `{clause}` at byte {offset}"
                )
            }
            FaultSpecError::Conflict {
                clause,
                offset,
                with,
            } => write!(
                f,
                "bad fault spec: `{clause}` at byte {offset} conflicts with `{with}`"
            ),
            FaultSpecError::Incomplete { clause } => write!(
                f,
                "bad fault spec `{clause}`: expected `off`, \
                 `at=<t>,page=<p>[,degrade|,mttr=<c>]`, or \
                 `mtbf=<mean>,count=<n>[,seed=<s>][,degrade|,mttr=<c>]`"
            ),
        }
    }
}

impl std::error::Error for FaultSpecError {}

/// SplitMix64 — a tiny deterministic stream, enough for fault arrival
/// draws (the workload RNG lives in the in-repo `rand` crate; this keeps
/// `cgra-arch` dependency-free).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultSpec {
    /// Parse a `--faults` spec string (see the type-level grammar).
    /// Errors are typed and carry the offending clause plus its byte
    /// offset into `input`, so callers can underline the bad span.
    pub fn parse(input: &str) -> Result<FaultSpec, FaultSpecError> {
        let trimmed = input.trim();
        if trimmed.is_empty() || trimmed == "off" || trimmed == "none" || trimmed == "0" {
            return Ok(FaultSpec::Off);
        }
        let mut time = None;
        let mut page = None;
        let mut mean = None;
        let mut count = None;
        let mut seed = 0u64;
        let mut kind = FaultKind::Kill;
        let mut mttr: Option<u64> = None;
        // Byte offset of the clause currently being scanned, relative
        // to the *original* (untrimmed) input.
        let mut offset = input.len() - input.trim_start().len();
        for raw in trimmed.split(',') {
            let part = raw.trim();
            let at = offset + (raw.len() - raw.trim_start().len());
            offset += raw.len() + 1; // clause + its trailing comma
            let bad = |expected: &'static str| FaultSpecError::BadValue {
                clause: part.to_string(),
                offset: at,
                expected,
            };
            match part.split_once('=') {
                Some(("at", v)) => match v.parse() {
                    Ok(t) => time = Some(t),
                    Err(_) => return Err(bad("a cycle count")),
                },
                Some(("page", v)) => match v.parse() {
                    Ok(p) => page = Some(p),
                    Err(_) => return Err(bad("a page index")),
                },
                Some(("mtbf", v)) => match v.parse::<u64>() {
                    Ok(m) if m > 0 => mean = Some(m),
                    _ => return Err(bad("a positive cycle count")),
                },
                Some(("count", v)) => match v.parse() {
                    Ok(c) => count = Some(c),
                    Err(_) => return Err(bad("a fault count")),
                },
                Some(("seed", v)) => match v.parse() {
                    Ok(x) => seed = x,
                    Err(_) => return Err(bad("a u64")),
                },
                Some(("mttr", v)) => match v.parse::<u64>() {
                    Ok(m) if m > 0 => {
                        if kind == FaultKind::Degrade {
                            return Err(FaultSpecError::Conflict {
                                clause: part.to_string(),
                                offset: at,
                                with: "degrade",
                            });
                        }
                        mttr = Some(m);
                    }
                    _ => return Err(bad("a positive repair time in cycles")),
                },
                None if part == "degrade" => {
                    if mttr.is_some() {
                        return Err(FaultSpecError::Conflict {
                            clause: part.to_string(),
                            offset: at,
                            with: "mttr",
                        });
                    }
                    kind = FaultKind::Degrade;
                }
                None if part == "kill" => kind = FaultKind::Kill,
                _ => {
                    return Err(FaultSpecError::UnknownClause {
                        clause: part.to_string(),
                        offset: at,
                    })
                }
            }
        }
        if let Some(repair_after) = mttr {
            kind = FaultKind::Transient { repair_after };
        }
        match (time, page, mean, count) {
            (Some(time), Some(page), None, None) => Ok(FaultSpec::At { time, page, kind }),
            (None, None, Some(mean), Some(count)) => Ok(FaultSpec::Mtbf {
                mean,
                count,
                seed,
                kind,
            }),
            _ => Err(FaultSpecError::Incomplete {
                clause: trimmed.to_string(),
            }),
        }
    }

    /// The concrete event schedule over a fabric of `num_pages` pages,
    /// sorted by `(time, page)`. Deterministic: a pure function of the
    /// spec and `num_pages`.
    pub fn schedule(&self, num_pages: u16) -> Vec<FaultEvent> {
        match *self {
            FaultSpec::Off => Vec::new(),
            FaultSpec::At { time, page, kind } => {
                if page < num_pages {
                    vec![FaultEvent { time, page, kind }]
                } else {
                    Vec::new()
                }
            }
            FaultSpec::Mtbf {
                mean,
                count,
                seed,
                kind,
            } => {
                if num_pages == 0 {
                    return Vec::new();
                }
                // Domain-separate the stream from other users of the seed.
                let mut state = seed ^ 0xFA01_7FA0_17FA_017F;
                let mut t = 0u64;
                let mut events = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    // Exponential inter-arrival via inverse CDF; the
                    // uniform comes from the top 53 bits of SplitMix64.
                    let u = (splitmix64(&mut state) >> 11) as f64 / (1u64 << 53) as f64;
                    let dt = (-(mean as f64) * (1.0 - u).ln()).ceil().max(1.0);
                    t = t.saturating_add(dt as u64);
                    let page = (splitmix64(&mut state) % num_pages as u64) as u16;
                    events.push(FaultEvent {
                        time: t,
                        page,
                        kind,
                    });
                }
                events.sort_by_key(|e| (e.time, e.page));
                events
            }
        }
    }

    /// Whether the spec injects anything at all.
    pub fn is_off(&self) -> bool {
        matches!(self, FaultSpec::Off)
    }

    /// The same spec with the fault rate scaled by `factor` (MTBF
    /// divided): the axis of a throughput-vs-fault-rate degradation
    /// curve. `Off` and `At` specs are returned unchanged.
    pub fn scaled(&self, factor: u64) -> FaultSpec {
        match *self {
            FaultSpec::Mtbf {
                mean,
                count,
                seed,
                kind,
            } => FaultSpec::Mtbf {
                mean: (mean / factor.max(1)).max(1),
                count,
                seed,
                kind,
            },
            other => other,
        }
    }

    /// The same spec with its RNG seed mixed with `salt` (MTBF specs
    /// only; deterministic schedules pass through). Sweep drivers use
    /// this to give every point an independent but reproducible fault
    /// timeline derived from the point's coordinates.
    pub fn reseeded(&self, salt: u64) -> FaultSpec {
        match *self {
            FaultSpec::Mtbf {
                mean,
                count,
                seed,
                kind,
            } => FaultSpec::Mtbf {
                mean,
                count,
                seed: seed ^ salt,
                kind,
            },
            other => other,
        }
    }

    /// The spec's fault kind, if it injects anything.
    pub fn kind(&self) -> Option<FaultKind> {
        match *self {
            FaultSpec::Off => None,
            FaultSpec::At { kind, .. } | FaultSpec::Mtbf { kind, .. } => Some(kind),
        }
    }

    /// The repair interval, if the spec's faults are transient.
    pub fn mttr(&self) -> Option<u64> {
        match self.kind() {
            Some(FaultKind::Transient { repair_after }) => Some(repair_after),
            _ => None,
        }
    }

    /// The same spec with its faults made transient, repairing
    /// `repair_after` cycles after each strike (the mttr axis of a
    /// recovery curve). `Off` passes through.
    pub fn with_mttr(&self, repair_after: u64) -> FaultSpec {
        let kind = FaultKind::Transient { repair_after };
        match *self {
            FaultSpec::Off => FaultSpec::Off,
            FaultSpec::At { time, page, .. } => FaultSpec::At { time, page, kind },
            FaultSpec::Mtbf {
                mean, count, seed, ..
            } => FaultSpec::Mtbf {
                mean,
                count,
                seed,
                kind,
            },
        }
    }

    /// The same spec with any transient kind made permanent — the
    /// no-repair reference row of a recovery curve. `Degrade` and
    /// `Kill` specs pass through unchanged.
    pub fn permanent(&self) -> FaultSpec {
        match *self {
            FaultSpec::At {
                time,
                page,
                kind: FaultKind::Transient { .. },
            } => FaultSpec::At {
                time,
                page,
                kind: FaultKind::Kill,
            },
            FaultSpec::Mtbf {
                mean,
                count,
                seed,
                kind: FaultKind::Transient { .. },
            } => FaultSpec::Mtbf {
                mean,
                count,
                seed,
                kind: FaultKind::Kill,
            },
            other => other,
        }
    }
}

impl std::fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind_suffix = |f: &mut std::fmt::Formatter<'_>, kind: &FaultKind| match kind {
            FaultKind::Kill => Ok(()),
            FaultKind::Degrade => write!(f, ",degrade"),
            FaultKind::Transient { repair_after } => write!(f, ",mttr={repair_after}"),
        };
        match self {
            FaultSpec::Off => write!(f, "off"),
            FaultSpec::At { time, page, kind } => {
                write!(f, "at={time},page={page}")?;
                kind_suffix(f, kind)
            }
            FaultSpec::Mtbf {
                mean,
                count,
                seed,
                kind,
            } => {
                write!(f, "mtbf={mean},count={count},seed={seed}")?;
                kind_suffix(f, kind)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Mesh;

    #[test]
    fn fresh_map_is_all_healthy() {
        let m = FaultMap::new(8);
        assert_eq!(m.usable_count(), 8);
        assert!(m.dead_pages().is_empty());
        assert_eq!(m.surviving_runs(), vec![(0, 8)]);
    }

    #[test]
    fn killing_a_page_splits_the_ring() {
        let mut m = FaultMap::new(8);
        m.mark_page(3, PageHealth::Dead);
        assert_eq!(m.surviving_runs(), vec![(0, 3), (4, 4)]);
        assert_eq!(m.longest_surviving_run(), Some((4, 4)));
        assert_eq!(m.dead_pages(), vec![3]);
        assert_eq!(m.usable_count(), 7);
    }

    #[test]
    fn tie_between_runs_prefers_earliest() {
        let mut m = FaultMap::new(7);
        m.mark_page(3, PageHealth::Dead);
        assert_eq!(m.longest_surviving_run(), Some((0, 3)));
    }

    #[test]
    fn all_dead_has_no_run() {
        let mut m = FaultMap::new(2);
        m.mark_page(0, PageHealth::Dead);
        m.mark_page(1, PageHealth::Dead);
        assert_eq!(m.longest_surviving_run(), None);
    }

    #[test]
    fn degraded_pages_stay_usable() {
        let mut m = FaultMap::new(4);
        m.mark_page(1, PageHealth::Degraded);
        assert_eq!(m.surviving_runs(), vec![(0, 4)]);
        assert_eq!(m.degraded_pages(), vec![1]);
    }

    #[test]
    fn pe_faults_escalate_by_majority() {
        let layout = PageLayout::for_size(Mesh::new(4, 4), 4).unwrap();
        let mut m = FaultMap::for_layout(&layout);
        // Page 0 is the TL 2x2 quadrant: PEs at (0,0),(0,1),(1,0),(1,1).
        let mesh = layout.mesh();
        m.mark_pe(&layout, mesh.pe(Pos::new(0, 0)));
        assert_eq!(m.health(0), PageHealth::Degraded);
        m.mark_pe(&layout, mesh.pe(Pos::new(0, 1)));
        assert_eq!(m.health(0), PageHealth::Degraded); // 2 of 4: not a majority
        m.mark_pe(&layout, mesh.pe(Pos::new(1, 0)));
        assert_eq!(m.health(0), PageHealth::Dead); // 3 of 4
                                                   // Other pages untouched.
        assert_eq!(m.health(1), PageHealth::Healthy);
    }

    #[test]
    fn duplicate_pe_fault_is_idempotent() {
        let layout = PageLayout::for_size(Mesh::new(4, 4), 4).unwrap();
        let mut m = FaultMap::for_layout(&layout);
        let pe = layout.mesh().pe(Pos::new(0, 0));
        m.mark_pe(&layout, pe);
        m.mark_pe(&layout, pe);
        assert_eq!(m.faulty_pes(0, Orientation::Identity).len(), 1);
        assert_eq!(m.health(0), PageHealth::Degraded);
    }

    #[test]
    fn faulty_pe_positions_transform_under_orientation() {
        let layout = PageLayout::for_size(Mesh::new(4, 4), 4).unwrap();
        let mut m = FaultMap::for_layout(&layout);
        m.mark_pe(&layout, layout.mesh().pe(Pos::new(0, 0))); // local (0,0) of page 0
        assert_eq!(m.faulty_pes(0, Orientation::Identity), vec![Pos::new(0, 0)]);
        assert_eq!(m.faulty_pes(0, Orientation::MirrorV), vec![Pos::new(0, 1)]);
        assert_eq!(m.faulty_pes(0, Orientation::Rot180), vec![Pos::new(1, 1)]);
    }

    #[test]
    fn spec_parsing_roundtrips() {
        for s in [
            "off",
            "at=5000,page=2",
            "at=5000,page=2,degrade",
            "mtbf=20000,count=4,seed=9",
        ] {
            let spec = FaultSpec::parse(s).unwrap();
            assert_eq!(FaultSpec::parse(&spec.to_string()).unwrap(), spec, "{s}");
        }
        assert_eq!(FaultSpec::parse(""), Ok(FaultSpec::Off));
        assert_eq!(FaultSpec::parse("none"), Ok(FaultSpec::Off));
    }

    #[test]
    fn bad_specs_are_rejected() {
        assert!(FaultSpec::parse("at=5000").is_err());
        assert!(FaultSpec::parse("page=1").is_err());
        assert!(FaultSpec::parse("mtbf=0,count=3").is_err());
        assert!(FaultSpec::parse("banana").is_err());
        assert!(FaultSpec::parse("at=x,page=1").is_err());
        assert!(FaultSpec::parse("at=1,page=0,mttr=0").is_err());
        assert!(FaultSpec::parse("at=1,page=0,mttr=x").is_err());
    }

    #[test]
    fn parse_errors_carry_clause_and_span() {
        // The typed error names the offending clause and its byte
        // offset in the *original* input, including leading whitespace
        // and clause-internal trimming.
        match FaultSpec::parse("at=x,page=1").unwrap_err() {
            FaultSpecError::BadValue {
                clause,
                offset,
                expected,
            } => {
                assert_eq!(clause, "at=x");
                assert_eq!(offset, 0);
                assert_eq!(expected, "a cycle count");
            }
            other => panic!("{other:?}"),
        }
        match FaultSpec::parse("at=1,banana").unwrap_err() {
            FaultSpecError::UnknownClause { clause, offset } => {
                assert_eq!(clause, "banana");
                assert_eq!(offset, 5);
            }
            other => panic!("{other:?}"),
        }
        // Offsets survive surrounding whitespace.
        let err = FaultSpec::parse("  at=1, page=zzz").unwrap_err();
        assert_eq!(err.clause(), "page=zzz");
        assert_eq!(err.span(), (8, 8));
        // Incomplete assemblies span the whole (trimmed) input.
        match FaultSpec::parse("at=5000").unwrap_err() {
            FaultSpecError::Incomplete { clause } => assert_eq!(clause, "at=5000"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn mttr_and_degrade_conflict_either_order() {
        match FaultSpec::parse("at=1,page=0,degrade,mttr=50").unwrap_err() {
            FaultSpecError::Conflict {
                clause,
                offset,
                with,
            } => {
                assert_eq!(clause, "mttr=50");
                assert_eq!(offset, 20);
                assert_eq!(with, "degrade");
            }
            other => panic!("{other:?}"),
        }
        match FaultSpec::parse("at=1,page=0,mttr=50,degrade").unwrap_err() {
            FaultSpecError::Conflict { clause, with, .. } => {
                assert_eq!(clause, "degrade");
                assert_eq!(with, "mttr");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn mttr_clause_makes_faults_transient() {
        assert_eq!(
            FaultSpec::parse("at=100,page=1,mttr=500").unwrap(),
            FaultSpec::At {
                time: 100,
                page: 1,
                kind: FaultKind::Transient { repair_after: 500 }
            }
        );
        // `kill` is the default; an explicit `kill` with `mttr` is
        // simply a transient kill, whichever order they appear in.
        assert_eq!(
            FaultSpec::parse("mtbf=9000,count=3,mttr=250,kill").unwrap(),
            FaultSpec::Mtbf {
                mean: 9000,
                count: 3,
                seed: 0,
                kind: FaultKind::Transient { repair_after: 250 }
            }
        );
    }

    #[test]
    fn spec_kind_accessors_round_trip() {
        let base = FaultSpec::parse("mtbf=8000,count=2,seed=7").unwrap();
        assert_eq!(base.mttr(), None);
        let transient = base.with_mttr(300);
        assert_eq!(transient.mttr(), Some(300));
        assert_eq!(
            transient.kind(),
            Some(FaultKind::Transient { repair_after: 300 })
        );
        // permanent() is the inverse direction back to plain kills.
        assert_eq!(transient.permanent(), base);
        assert_eq!(base.permanent(), base);
        assert_eq!(FaultSpec::Off.with_mttr(300), FaultSpec::Off);
        assert_eq!(FaultSpec::Off.kind(), None);
        // Derivations preserve the transient kind.
        assert_eq!(transient.scaled(2).mttr(), Some(300));
        assert_eq!(transient.reseeded(9).mttr(), Some(300));
        // The schedule carries the transient kind on every event.
        assert!(transient
            .schedule(4)
            .iter()
            .all(|e| e.kind == FaultKind::Transient { repair_after: 300 }));
    }

    #[test]
    fn repair_transitions_follow_the_state_machine() {
        let mut m = FaultMap::new(4);
        m.mark_page(2, PageHealth::Dead);
        assert!(!m.is_usable(2));

        // Dead → Repairing: still not usable, still splits the ring.
        m.begin_repair(2);
        assert_eq!(m.health(2), PageHealth::Repairing);
        assert!(!m.is_usable(2));
        assert_eq!(m.repairing_pages(), vec![2]);
        assert_eq!(m.surviving_runs(), vec![(0, 2), (3, 1)]);

        // Repairing → Healthy.
        m.complete_repair(2);
        assert_eq!(m.health(2), PageHealth::Healthy);
        assert!(m.is_usable(2));
        assert_eq!(m.surviving_runs(), vec![(0, 4)]);

        // begin_repair on a non-dead page is a no-op...
        m.begin_repair(2);
        assert_eq!(m.health(2), PageHealth::Healthy);
        m.mark_page(1, PageHealth::Degraded);
        m.begin_repair(1);
        assert_eq!(m.health(1), PageHealth::Degraded);
        // ...and complete_repair on a non-repairing page is too (a page
        // re-killed mid-repair stays dead).
        m.mark_page(3, PageHealth::Dead);
        m.begin_repair(3);
        m.mark_page(3, PageHealth::Dead); // re-struck while repairing
        m.complete_repair(3);
        assert_eq!(m.health(3), PageHealth::Dead);
    }

    #[test]
    fn repair_clears_pe_faults_for_fresh_majority_vote() {
        let layout = PageLayout::for_size(Mesh::new(4, 4), 4).unwrap();
        let mut m = FaultMap::for_layout(&layout);
        let mesh = layout.mesh();
        // Kill page 0 by majority vote.
        m.mark_pe(&layout, mesh.pe(Pos::new(0, 0)));
        m.mark_pe(&layout, mesh.pe(Pos::new(0, 1)));
        m.mark_pe(&layout, mesh.pe(Pos::new(1, 0)));
        assert_eq!(m.health(0), PageHealth::Dead);
        m.begin_repair(0);
        m.complete_repair(0);
        assert_eq!(m.health(0), PageHealth::Healthy);
        assert!(m.faulty_pes(0, Orientation::Identity).is_empty());
        // A fresh single PE fault only degrades — the vote restarted.
        m.mark_pe(&layout, mesh.pe(Pos::new(0, 0)));
        assert_eq!(m.health(0), PageHealth::Degraded);
    }

    #[test]
    fn targeted_schedule_is_one_event() {
        let spec = FaultSpec::parse("at=100,page=1").unwrap();
        assert_eq!(
            spec.schedule(4),
            vec![FaultEvent {
                time: 100,
                page: 1,
                kind: FaultKind::Kill
            }]
        );
        // A page outside the fabric never fires.
        assert!(spec.schedule(1).is_empty());
    }

    #[test]
    fn mtbf_schedule_is_deterministic_and_sorted() {
        let spec = FaultSpec::parse("mtbf=10000,count=16,seed=3").unwrap();
        let a = spec.schedule(8);
        let b = spec.schedule(8);
        assert_eq!(a, b);
        assert_eq!(a.len(), 16);
        assert!(a.windows(2).all(|w| w[0].time <= w[1].time));
        assert!(a.iter().all(|e| e.page < 8));
        // A different seed gives a different schedule.
        let c = FaultSpec::parse("mtbf=10000,count=16,seed=4")
            .unwrap()
            .schedule(8);
        assert_ne!(a, c);
    }

    #[test]
    fn mtbf_mean_is_roughly_respected() {
        let spec = FaultSpec::Mtbf {
            mean: 1000,
            count: 400,
            seed: 1,
            kind: FaultKind::Kill,
        };
        let events = spec.schedule(4);
        let last = events.last().unwrap().time;
        let mean = last as f64 / 400.0;
        assert!(
            (mean - 1000.0).abs() < 250.0,
            "empirical MTBF {mean:.0} far from 1000"
        );
    }

    #[test]
    fn spec_display_parse_round_trips_exhaustively() {
        // Property sweep over an enumerated spec family: every member
        // must survive Display → parse unchanged, including the extreme
        // field values the hand-picked cases above never reach.
        let mut specs = vec![FaultSpec::Off];
        for kind in [
            FaultKind::Kill,
            FaultKind::Degrade,
            FaultKind::Transient { repair_after: 1 },
            FaultKind::Transient { repair_after: 4096 },
            FaultKind::Transient {
                repair_after: u64::MAX,
            },
        ] {
            for time in [0u64, 1, 999, u64::MAX] {
                for page in [0u16, 1, 7, u16::MAX] {
                    specs.push(FaultSpec::At { time, page, kind });
                }
            }
            for mean in [1u64, 500, u64::MAX] {
                for count in [0u32, 1, u32::MAX] {
                    for seed in [0u64, 42, u64::MAX] {
                        specs.push(FaultSpec::Mtbf {
                            mean,
                            count,
                            seed,
                            kind,
                        });
                    }
                }
            }
        }
        for spec in specs {
            let shown = spec.to_string();
            assert_eq!(FaultSpec::parse(&shown), Ok(spec), "via {shown:?}");
        }
    }

    #[test]
    fn scaled_and_reseeded_schedules_stay_deterministic() {
        // Derivation laws over a small grid of fabrics and factors:
        // deriving a spec is pure (equal schedules on repeat), scaling
        // preserves the fault count and never stretches the timeline,
        // reseeding with 0 is the identity and reseeding twice with the
        // same salt undoes itself.
        let base = FaultSpec::Mtbf {
            mean: 8_000,
            count: 8,
            seed: 5,
            kind: FaultKind::Kill,
        };
        assert_eq!(base.reseeded(0), base);
        for pages in [1u16, 4, 9] {
            let reference = base.schedule(pages);
            for factor in [1u64, 2, 8, 1_000_000] {
                let scaled = base.scaled(factor);
                let a = scaled.schedule(pages);
                assert_eq!(a, scaled.schedule(pages), "pages={pages} x{factor}");
                assert_eq!(a.len(), reference.len(), "scaling must keep the count");
                assert!(
                    a.last().unwrap().time <= reference.last().unwrap().time,
                    "pages={pages} x{factor}: scaling up the rate stretched the timeline"
                );
                // Same seed stream: the struck pages are unchanged, only
                // the arrival times compress.
                let struck = |evs: &[FaultEvent]| {
                    let mut p: Vec<u16> = evs.iter().map(|e| e.page).collect();
                    p.sort_unstable();
                    p
                };
                assert_eq!(struck(&a), struck(&reference));
            }
            for salt in [0u64, 1, 0xDEAD_BEEF] {
                let reseeded = base.reseeded(salt);
                assert_eq!(
                    reseeded.schedule(pages),
                    reseeded.schedule(pages),
                    "pages={pages} salt={salt}"
                );
                assert_eq!(reseeded.reseeded(salt), base, "reseed is an involution");
            }
        }
        // Off and At specs pass through both derivations unchanged.
        let at = FaultSpec::At {
            time: 7,
            page: 1,
            kind: FaultKind::Degrade,
        };
        for spec in [FaultSpec::Off, at] {
            assert_eq!(spec.scaled(8), spec);
            assert_eq!(spec.reseeded(99), spec);
        }
    }

    #[test]
    fn scaling_divides_the_mtbf() {
        let spec = FaultSpec::parse("mtbf=8000,count=2,seed=0").unwrap();
        match spec.scaled(4) {
            FaultSpec::Mtbf { mean, .. } => assert_eq!(mean, 2000),
            other => panic!("{other:?}"),
        }
        assert_eq!(FaultSpec::Off.scaled(4), FaultSpec::Off);
    }
}
