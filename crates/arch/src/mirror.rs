//! Orientation transforms for intra-page mappings.
//!
//! When the PageMaster transformation relocates a page, the intra-page PE
//! mapping must sometimes be *mirrored* so that inter-page producer/consumer
//! PEs still line up across the shared mesh edge (paper, Fig. 6: "the
//! mapping of Page1 must be mirrored along the horizontal axis ... Page2 is
//! mirrored along the vertical axis"). The transforms that preserve an
//! `h × w` rectangle are the Klein four-group {identity, horizontal mirror,
//! vertical mirror, 180° rotation}.

use crate::topology::Pos;
use serde::{Deserialize, Serialize};

/// An orientation-preserving-or-mirroring transform of an `h × w` page.
///
/// Mirror axes follow the paper's wording: `MirrorH` mirrors *along the
/// horizontal axis* (flips rows, top↔bottom); `MirrorV` mirrors along the
/// vertical axis (flips columns, left↔right).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Orientation {
    /// Leave the mapping unchanged.
    #[default]
    Identity,
    /// Flip top↔bottom (mirror along the horizontal axis).
    MirrorH,
    /// Flip left↔right (mirror along the vertical axis).
    MirrorV,
    /// Flip both: 180° rotation.
    Rot180,
}

impl Orientation {
    /// All four orientations, Identity first.
    pub const ALL: [Orientation; 4] = [
        Orientation::Identity,
        Orientation::MirrorH,
        Orientation::MirrorV,
        Orientation::Rot180,
    ];

    /// Apply the transform to an intra-page coordinate in an `h × w` page.
    ///
    /// # Panics
    /// Panics if `p` lies outside the page.
    pub fn apply(self, p: Pos, h: u16, w: u16) -> Pos {
        assert!(
            p.r < h && p.c < w,
            "intra-page position {p} outside {h}x{w} page"
        );
        match self {
            Orientation::Identity => p,
            Orientation::MirrorH => Pos::new(h - 1 - p.r, p.c),
            Orientation::MirrorV => Pos::new(p.r, w - 1 - p.c),
            Orientation::Rot180 => Pos::new(h - 1 - p.r, w - 1 - p.c),
        }
    }

    /// Group composition: `self.then(other)` applies `self` first, then
    /// `other`.
    pub fn then(self, other: Orientation) -> Orientation {
        use Orientation::*;
        match (self, other) {
            (Identity, o) | (o, Identity) => o,
            (a, b) if a == b => Identity,
            (MirrorH, MirrorV) | (MirrorV, MirrorH) => Rot180,
            (MirrorH, Rot180) | (Rot180, MirrorH) => MirrorV,
            (MirrorV, Rot180) | (Rot180, MirrorV) => MirrorH,
            _ => unreachable!(),
        }
    }

    /// The inverse transform (every element of the Klein group is its own
    /// inverse).
    pub fn inverse(self) -> Orientation {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_fixes_everything() {
        for r in 0..2 {
            for c in 0..2 {
                let p = Pos::new(r, c);
                assert_eq!(Orientation::Identity.apply(p, 2, 2), p);
            }
        }
    }

    #[test]
    fn mirror_h_flips_rows() {
        assert_eq!(
            Orientation::MirrorH.apply(Pos::new(0, 1), 2, 2),
            Pos::new(1, 1)
        );
    }

    #[test]
    fn mirror_v_flips_cols() {
        assert_eq!(
            Orientation::MirrorV.apply(Pos::new(0, 0), 2, 2),
            Pos::new(0, 1)
        );
    }

    #[test]
    fn rot180_is_both_mirrors() {
        let p = Pos::new(0, 1);
        let via_compose = Orientation::MirrorH.apply(Orientation::MirrorV.apply(p, 2, 2), 2, 2);
        assert_eq!(Orientation::Rot180.apply(p, 2, 2), via_compose);
    }

    #[test]
    fn every_element_is_an_involution() {
        for o in Orientation::ALL {
            for r in 0..3 {
                for c in 0..4 {
                    let p = Pos::new(r, c);
                    assert_eq!(o.apply(o.apply(p, 3, 4), 3, 4), p, "{o:?} not involutive");
                }
            }
        }
    }

    #[test]
    fn composition_table_matches_pointwise_action() {
        for a in Orientation::ALL {
            for b in Orientation::ALL {
                let composed = a.then(b);
                for r in 0..3 {
                    for c in 0..5 {
                        let p = Pos::new(r, c);
                        assert_eq!(
                            composed.apply(p, 3, 5),
                            b.apply(a.apply(p, 3, 5), 3, 5),
                            "{a:?} then {b:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn group_is_closed_and_has_identity() {
        for a in Orientation::ALL {
            assert_eq!(a.then(a.inverse()), Orientation::Identity);
            assert_eq!(a.then(Orientation::Identity), a);
        }
    }

    #[test]
    fn non_square_page_mirrors() {
        // 1x2 page: only MirrorV moves anything.
        assert_eq!(
            Orientation::MirrorV.apply(Pos::new(0, 0), 1, 2),
            Pos::new(0, 1)
        );
        assert_eq!(
            Orientation::MirrorH.apply(Pos::new(0, 0), 1, 2),
            Pos::new(0, 0)
        );
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_page_position_panics() {
        Orientation::Identity.apply(Pos::new(2, 0), 2, 2);
    }
}
