//! Degradation analysis: a [`DegradedPlan`] re-checked against the live
//! [`FaultMap`], from first principles.
//!
//! The inner shrink plan is analyzed like any other
//! ([`analyze_plan`](crate::plan::analyze_plan)); on top, the
//! column→page remap must satisfy:
//!
//! * every column is backed by an in-range, usable page (A301);
//! * the backing pages form one contiguous ascending run, so the ring
//!   dependences of the plan are physical adjacencies on the fabric
//!   (A302);
//! * the remap is injective — two columns sharing a physical page would
//!   double-book its PEs (A303);
//! * the plan's own column count, the remap length, and the headline
//!   `effective_pages` agree (A304);
//! * the recorded dead/degraded bookkeeping matches the fault map the
//!   plan claims to have been built against (A305);
//! * columns on degraded-but-usable pages are reported as warnings
//!   (A306) — legal, but the operator should know.

use crate::diag::{Code, Diagnostic, Report, Span};
use crate::plan::analyze_plan;
use cgra_arch::FaultMap;
use cgra_core::{DegradedPlan, PagedSchedule};

/// Analyze a degraded plan against its source schedule and the fault map
/// it must survive on.
pub fn analyze_degraded(p: &PagedSchedule, d: &DegradedPlan, faults: &FaultMap) -> Report {
    let mut diagnostics = Vec::new();
    let pages = &d.column_pages;

    if pages.len() != d.plan.m as usize || d.effective_pages != d.plan.m {
        diagnostics.push(Diagnostic::new(
            Code::A304DegradedShapeMismatch,
            Span::Global,
            format!(
                "{} column pages, effective_pages {}, for a plan over {} columns",
                pages.len(),
                d.effective_pages,
                d.plan.m
            ),
        ));
    }

    for (col, &page) in pages.iter().enumerate() {
        let span = Span::Column(col as u16);
        if page >= faults.num_pages() || !faults.is_usable(page) {
            diagnostics.push(Diagnostic::new(
                Code::A301OpOnDeadPage,
                span,
                format!("backed by dead or out-of-range page {page}"),
            ));
        } else if faults.degraded_pages().contains(&page) {
            diagnostics.push(Diagnostic::new(
                Code::A306ColumnOnDegradedPage,
                span,
                format!("backed by degraded page {page}"),
            ));
        }
    }

    if pages.windows(2).any(|w| w[1] != w[0] + 1) {
        diagnostics.push(Diagnostic::new(
            Code::A302ColumnsNotContiguous,
            Span::Global,
            format!("column pages {pages:?} are not a contiguous ascending run"),
        ));
    }

    let mut seen = std::collections::HashSet::new();
    for (col, &page) in pages.iter().enumerate() {
        if !seen.insert(page) {
            diagnostics.push(Diagnostic::new(
                Code::A303RemapNotBijective,
                Span::Column(col as u16),
                format!("physical page {page} backs more than one column"),
            ));
        }
    }

    if d.dead_pages != faults.dead_pages() || d.degraded_pages != faults.degraded_pages() {
        diagnostics.push(Diagnostic::new(
            Code::A305FaultBookkeeping,
            Span::Global,
            format!(
                "plan records dead {:?} / degraded {:?}, fault map says dead {:?} / degraded {:?}",
                d.dead_pages,
                d.degraded_pages,
                faults.dead_pages(),
                faults.degraded_pages()
            ),
        ));
    }

    Report::from_diagnostics(diagnostics).merge(analyze_plan(p, &d.plan))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgra_arch::PageHealth;
    use cgra_core::transform::Strategy;
    use cgra_core::transform_degraded;

    #[test]
    fn healthy_degradation_is_clean() {
        let p = PagedSchedule::synthetic_canonical(8, 2, false);
        let mut faults = FaultMap::new(8);
        faults.mark_page(2, PageHealth::Dead);
        let d = transform_degraded(&p, &faults, 4, Strategy::Auto).unwrap();
        let rep = analyze_degraded(&p, &d, &faults);
        assert!(rep.is_clean(), "{}", rep.render());
    }

    #[test]
    fn degraded_column_warns_but_is_not_an_error() {
        let p = PagedSchedule::synthetic_canonical(4, 1, false);
        let mut faults = FaultMap::new(4);
        faults.mark_page(1, PageHealth::Degraded);
        let d = transform_degraded(&p, &faults, 4, Strategy::Auto).unwrap();
        let rep = analyze_degraded(&p, &d, &faults);
        assert!(rep.codes().contains(&Code::A306ColumnOnDegradedPage));
        assert!(!rep.has_errors(), "{}", rep.render());
    }

    #[test]
    fn aliased_and_dead_columns_are_errors() {
        let p = PagedSchedule::synthetic_canonical(8, 2, false);
        let mut faults = FaultMap::new(8);
        faults.mark_page(2, PageHealth::Dead);
        let mut d = transform_degraded(&p, &faults, 4, Strategy::Auto).unwrap();
        d.column_pages = vec![2, 4, 4, 6];
        let rep = analyze_degraded(&p, &d, &faults);
        let codes = rep.codes();
        assert!(codes.contains(&Code::A301OpOnDeadPage), "{}", rep.render());
        assert!(codes.contains(&Code::A303RemapNotBijective));
        assert!(codes.contains(&Code::A302ColumnsNotContiguous));
    }
}
