//! Recovery analysis: a [`RecoveryPlan`] re-checked against the healed
//! [`FaultMap`], from first principles.
//!
//! The inner re-expanded plan is analyzed like any other
//! ([`analyze_plan`](crate::plan::analyze_plan)), and the column→page
//! remap is held to the same structural rules as a degraded plan's
//! (contiguity A302, injectivity A303, bookkeeping A305). On top, the
//! recovery-specific invariants:
//!
//! * **A310** — repaired-page reuse legality: no recovered column may
//!   sit on a page that is still dead or mid-repair (`Repairing` is not
//!   usable; only a committed repair makes a page placeable again);
//! * **A311** — quarantine respected: every repaired page the plan
//!   activates must have sat out its full quarantine window
//!   (`activated_at ≥ repaired_at + quarantine`), the hysteresis that
//!   keeps a flapping page from thrashing shrink/expand;
//! * **A312** — no iteration loss: the recovered schedule must resume
//!   exactly at the iteration the thread had completed
//!   (`resume_iteration == completed_iterations`) — the
//!   shrink → repair → expand round trip loses nothing.

use crate::diag::{Code, Diagnostic, Report, Span};
use crate::plan::analyze_plan;
use cgra_arch::FaultMap;
use cgra_core::{PagedSchedule, RecoveryPlan};

/// Analyze a recovery plan against its source schedule and the healed
/// fault map it re-expands onto.
pub fn analyze_recovery(p: &PagedSchedule, r: &RecoveryPlan, faults: &FaultMap) -> Report {
    let mut diagnostics = Vec::new();
    let pages = &r.column_pages;

    if pages.len() != r.plan.m as usize {
        diagnostics.push(Diagnostic::new(
            Code::A304DegradedShapeMismatch,
            Span::Global,
            format!(
                "{} column pages for a plan over {} columns",
                pages.len(),
                r.plan.m
            ),
        ));
    }

    // A310: reuse legality. A page is placeable only when the fault map
    // says it is usable *now* — dead and mid-repair pages are not.
    for (col, &page) in pages.iter().enumerate() {
        if page >= faults.num_pages() || !faults.is_usable(page) {
            diagnostics.push(Diagnostic::new(
                Code::A310RecoveryOnUnrepairedPage,
                Span::Column(col as u16),
                format!("recovered column backed by unusable page {page}"),
            ));
        }
    }

    if pages.windows(2).any(|w| w[1] != w[0] + 1) {
        diagnostics.push(Diagnostic::new(
            Code::A302ColumnsNotContiguous,
            Span::Global,
            format!("column pages {pages:?} are not a contiguous ascending run"),
        ));
    }

    let mut seen = std::collections::HashSet::new();
    for (col, &page) in pages.iter().enumerate() {
        if !seen.insert(page) {
            diagnostics.push(Diagnostic::new(
                Code::A303RemapNotBijective,
                Span::Column(col as u16),
                format!("physical page {page} backs more than one column"),
            ));
        }
    }

    // A311: quarantine. Only repaired pages the plan actually places
    // work on are held to the window — a page repaired but left out of
    // the run (still quarantined by the supervisor) is fine.
    for rp in &r.repaired {
        if !pages.contains(&rp.page) {
            continue;
        }
        let earliest = rp.repaired_at.saturating_add(r.quarantine);
        if rp.activated_at < earliest {
            diagnostics.push(Diagnostic::new(
                Code::A311QuarantineViolated,
                Span::Page(rp.page),
                format!(
                    "page {} activated at {} but repaired at {} with quarantine {} (earliest legal: {})",
                    rp.page, rp.activated_at, rp.repaired_at, r.quarantine, earliest
                ),
            ));
        }
    }

    // A312: the round trip must lose (or replay) nothing.
    if r.resume_iteration != r.completed_iterations {
        diagnostics.push(Diagnostic::new(
            Code::A312IterationLoss,
            Span::Global,
            format!(
                "recovered schedule resumes at iteration {} but the thread completed {}",
                r.resume_iteration, r.completed_iterations
            ),
        ));
    }

    if r.dead_pages != faults.dead_pages() {
        diagnostics.push(Diagnostic::new(
            Code::A305FaultBookkeeping,
            Span::Global,
            format!(
                "plan records dead {:?}, fault map says dead {:?}",
                r.dead_pages,
                faults.dead_pages()
            ),
        ));
    }

    Report::from_diagnostics(diagnostics).merge(analyze_plan(p, &r.plan))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgra_arch::PageHealth;
    use cgra_core::transform::Strategy;
    use cgra_core::{plan_recovery, transform_degraded, RepairedPage};

    fn healed_recovery() -> (PagedSchedule, RecoveryPlan, FaultMap) {
        let p = PagedSchedule::synthetic_canonical(8, 2, false);
        let mut faults = FaultMap::new(8);
        faults.mark_page(2, PageHealth::Dead);
        let d = transform_degraded(&p, &faults, 8, Strategy::Auto).unwrap();
        faults.begin_repair(2);
        faults.complete_repair(2);
        let repaired = [RepairedPage {
            page: 2,
            repaired_at: 1_000,
            activated_at: 1_064,
        }];
        let r = plan_recovery(&p, &d, &faults, &repaired, 64, 42, Strategy::Auto).unwrap();
        (p, r, faults)
    }

    #[test]
    fn legal_recovery_is_clean() {
        let (p, r, faults) = healed_recovery();
        let rep = analyze_recovery(&p, &r, &faults);
        assert!(rep.is_clean(), "{}", rep.render());
    }

    #[test]
    fn reusing_a_still_dead_page_is_a310() {
        let (p, mut r, mut faults) = healed_recovery();
        // The fabric strikes again after the plan was cut: page 2 dies.
        faults.mark_page(2, PageHealth::Dead);
        r.dead_pages = faults.dead_pages(); // keep A305 quiet
        let rep = analyze_recovery(&p, &r, &faults);
        assert!(
            rep.codes().contains(&Code::A310RecoveryOnUnrepairedPage),
            "{}",
            rep.render()
        );
    }

    #[test]
    fn mid_repair_page_is_a310_too() {
        let (p, mut r, mut faults) = healed_recovery();
        faults.mark_page(2, PageHealth::Dead);
        faults.begin_repair(2); // Repairing: still not placeable
        r.dead_pages = faults.dead_pages();
        let rep = analyze_recovery(&p, &r, &faults);
        assert!(
            rep.codes().contains(&Code::A310RecoveryOnUnrepairedPage),
            "{}",
            rep.render()
        );
    }

    #[test]
    fn early_activation_is_a311() {
        let (p, mut r, faults) = healed_recovery();
        r.repaired[0].activated_at = r.repaired[0].repaired_at + r.quarantine - 1;
        let rep = analyze_recovery(&p, &r, &faults);
        assert!(
            rep.codes().contains(&Code::A311QuarantineViolated),
            "{}",
            rep.render()
        );
    }

    #[test]
    fn unused_repaired_page_is_exempt_from_quarantine() {
        let (p, mut r, faults) = healed_recovery();
        // A repaired page the plan does not place work on may be listed
        // with any activation time — the supervisor just hasn't offered
        // it yet.
        r.repaired.push(RepairedPage {
            page: 15,
            repaired_at: 10,
            activated_at: 0,
        });
        let rep = analyze_recovery(&p, &r, &faults);
        assert!(rep.is_clean(), "{}", rep.render());
    }

    #[test]
    fn iteration_mismatch_is_a312() {
        let (p, mut r, faults) = healed_recovery();
        r.resume_iteration = r.completed_iterations + 3;
        let rep = analyze_recovery(&p, &r, &faults);
        assert!(
            rep.codes().contains(&Code::A312IterationLoss),
            "{}",
            rep.render()
        );
    }

    #[test]
    fn stale_dead_bookkeeping_is_a305() {
        let (p, mut r, faults) = healed_recovery();
        r.dead_pages = vec![7];
        let rep = analyze_recovery(&p, &r, &faults);
        assert!(
            rep.codes().contains(&Code::A305FaultBookkeeping),
            "{}",
            rep.render()
        );
    }
}
