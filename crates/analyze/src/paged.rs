//! Paging-constraint analysis of a [`PagedSchedule`] (§VI-B).
//!
//! A page-level schedule is the transformation's input; this pass checks
//! it from first principles, independent of the extraction that built
//! it:
//!
//! * **Shape** — the cell grid must be exactly `N × II` (A004).
//! * **Ring discipline** — every dependence must stay on its page or
//!   advance one page; the wrap link `N−1 → 0` is topologically real and
//!   accepted (synthetic full-ring schedules use it; mapper-extracted
//!   ones never do). Backwards or page-skipping dependences are A204.
//! * **Register-usage bound** — §VI-B: a value parked between pages
//!   rests in the producing page's rotating files for `gap` cycles and
//!   needs `gap/II + 1` rotating registers; a dependence whose own park
//!   exceeds the file is unrealisable and must have been spilled through
//!   memory instead (A202).

use crate::diag::{Code, Diagnostic, Report, Span};
use cgra_arch::register::RotatingRf;
use cgra_core::PagedSchedule;

/// Analyze a page-level schedule against a fabric with `rf_size`
/// rotating registers per PE.
pub fn analyze_paged(p: &PagedSchedule, rf_size: u16) -> Report {
    let mut diagnostics = Vec::new();

    if p.cells.len() != p.num_pages as usize * p.ii as usize {
        diagnostics.push(Diagnostic::new(
            Code::A004ShapeMismatch,
            Span::Global,
            format!(
                "cell grid holds {} cells for {} pages x II {}",
                p.cells.len(),
                p.num_pages,
                p.ii
            ),
        ));
        return Report::from_diagnostics(diagnostics);
    }

    for dep in &p.deps {
        let span = Span::Cell {
            page: dep.from_page,
            slot: dep.from_time % p.ii,
        };
        let ring_ok = dep.to_page == dep.from_page
            || dep.to_page == dep.from_page + 1
            || (dep.from_page + 1 == p.num_pages && dep.to_page == 0);
        if !ring_ok {
            diagnostics.push(Diagnostic::new(
                Code::A204PagedDepNotRing,
                span,
                format!(
                    "dependence to page {} skips or reverses the ring",
                    dep.to_page
                ),
            ));
            continue;
        }
        if dep.to_time <= dep.from_time {
            diagnostics.push(Diagnostic::new(
                Code::A204PagedDepNotRing,
                span,
                format!(
                    "consumer at {} not after producer at {}",
                    dep.to_time, dep.from_time
                ),
            ));
            continue;
        }
        // §VI-B register-usage bound for the park itself.
        let needed =
            RotatingRf::registers_for_range(dep.from_time as u64, dep.to_time as u64, p.ii.max(1));
        if needed > rf_size as u32 {
            diagnostics.push(Diagnostic::new(
                Code::A202DepOverparked,
                span,
                format!(
                    "park of {} cycles needs {needed} rotating registers, file holds {rf_size}",
                    dep.gap()
                ),
            ));
        }
    }

    Report::from_diagnostics(diagnostics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgra_core::PageDep;

    #[test]
    fn synthetic_schedules_are_clean() {
        for wrap in [false, true] {
            let p = PagedSchedule::synthetic_canonical(8, 2, wrap);
            let rep = analyze_paged(&p, 8);
            assert!(rep.is_clean(), "wrap={wrap}: {}", rep.render());
        }
    }

    #[test]
    fn extracted_schedules_are_clean() {
        let cgra = cgra_arch::CgraConfig::square(4);
        for k in cgra_dfg::kernels::all() {
            let r = cgra_mapper::map_constrained(&k, &cgra, &cgra_mapper::MapOptions::default())
                .unwrap_or_else(|e| panic!("{}: {e}", k.name));
            let ps = PagedSchedule::from_mapping(&r, &cgra).unwrap();
            let rep = analyze_paged(&ps, cgra.rf().size());
            assert!(rep.is_clean(), "{}: {}", k.name, rep.render());
        }
    }

    #[test]
    fn backwards_and_overparked_deps_are_flagged() {
        let mut p = PagedSchedule::synthetic_canonical(4, 2, false);
        p.deps.push(PageDep {
            from_page: 3,
            from_time: 0,
            to_page: 1,
            to_time: 1,
        });
        p.deps.push(PageDep {
            from_page: 0,
            from_time: 0,
            to_page: 1,
            to_time: 1 + 2 * 8 * 4, // park needs 8·4/II+1 = 17 regs
        });
        let rep = analyze_paged(&p, 8);
        assert!(rep.codes().contains(&Code::A204PagedDepNotRing));
        assert!(rep.codes().contains(&Code::A202DepOverparked));
    }
}
