//! Seeded mutation operators — the analyzer's own verification.
//!
//! Each operator takes a **known-good pipeline artifact** (a constrained
//! FIR mapping, an extracted page-level schedule, a block shrink plan, a
//! degraded plan, a Fig. 6 fold, a cached kernel profile), breaks
//! exactly one invariant, and hands the mutant to the analyzer. The
//! operator declares which [`Code`] class the analyzer *must* raise; a
//! mutant whose report lacks that code has survived, and the test suite
//! treats any survivor as an analyzer bug (100 % kill rate required).
//!
//! Operators that have a choice of mutation site (which edge to stretch,
//! which placement to clone) draw it from a seeded splitmix64 stream, so
//! a run is reproducible from its seed while still exercising different
//! sites across seeds. Every operator is constructed so the expected
//! code fires for *any* qualifying site — the seed varies coverage, not
//! correctness.

// Operators are deliberately terse (r/m/i/j for result/mutant/indices)
// and the registry is one long literal list — both idiomatic here.
#![allow(clippy::many_single_char_names, clippy::too_many_lines)]

use std::collections::HashMap;

use cgra_arch::{CgraConfig, FaultMap, PageHealth, PageId, PeCapability, PeId};
use cgra_core::fold::fold_to_page;
use cgra_core::transform::{transform_block, Strategy};
use cgra_core::{
    plan_recovery, transform_degraded, DegradedPlan, FoldedSchedule, PageDep, PagedSchedule,
    RecoveryPlan, RepairedPage,
};
use cgra_dfg::{kernels, DfgBuilder, OpKind};
use cgra_mapper::{map_constrained, MapDfg, MapOptions, MapResult, Mapping, Placement};

use crate::diag::{Code, Report};
use crate::{
    analyze_degraded, analyze_fold, analyze_mapping, analyze_paged, analyze_plan, analyze_profile,
    analyze_recovery,
};

/// The known-good artifacts every operator mutates. Built once per run;
/// all of them analyze clean (asserted by the test suite).
pub struct Artifacts {
    cgra: CgraConfig,
    fir: MapResult,
    fir_paged: PagedSchedule,
    p8: PagedSchedule,
    plan4: cgra_core::ShrinkPlan,
    parked_p: PagedSchedule,
    parked_plan: cgra_core::ShrinkPlan,
    faults: FaultMap,
    degraded: DegradedPlan,
    healed: FaultMap,
    recovery: RecoveryPlan,
    cgra_rf32: CgraConfig,
    fir32: MapResult,
    folded: FoldedSchedule,
    yuv32: MapResult,
    folded_yuv: FoldedSchedule,
}

impl Artifacts {
    /// Map, extract, transform, degrade and fold the fixture set.
    pub fn build() -> Self {
        let cgra = CgraConfig::square(4);
        let opts = MapOptions::default();
        let fir = map_constrained(&kernels::fir(), &cgra, &opts).expect("fir maps");
        let fir_paged = PagedSchedule::from_mapping(&fir, &cgra).expect("fir extracts");

        let p8 = PagedSchedule::synthetic_canonical(8, 2, false);
        let plan4 = transform_block(&p8, 4).expect("block transform");

        // A schedule that parks a value for 3 cycles on page 1 — the
        // fixture for the parked-column-stability rule.
        let mut parked_p = PagedSchedule::synthetic_canonical(6, 2, false);
        parked_p.deps.push(PageDep {
            from_page: 1,
            from_time: 0,
            to_page: 1,
            to_time: 3,
        });
        let parked_plan = transform_block(&parked_p, 3).expect("parked transform");

        let mut faults = FaultMap::new(8);
        faults.mark_page(2, PageHealth::Dead);
        let degraded = transform_degraded(&p8, &faults, 4, Strategy::Auto).expect("degrades");

        // The dead page repairs (Dead → Repairing → Healthy) and the
        // thread re-expands back to the full ring after the quarantine.
        let mut healed = faults.clone();
        healed.begin_repair(2);
        healed.complete_repair(2);
        let repaired = [RepairedPage {
            page: 2,
            repaired_at: 1_000,
            activated_at: 1_064,
        }];
        let recovery = plan_recovery(&p8, &degraded, &healed, &repaired, 64, 42, Strategy::Auto)
            .expect("recovers");

        let cgra_rf32 = CgraConfig::square(4).with_rf_size(32);
        let fir32 = map_constrained(&kernels::fir(), &cgra_rf32, &opts).expect("fir maps rf32");
        let folded = fold_to_page(&fir32, &cgra_rf32, PageId(0)).expect("fir folds");
        let yuv32 = map_constrained(&kernels::yuv2rgb(), &cgra_rf32, &opts).expect("yuv maps");
        let folded_yuv = fold_to_page(&yuv32, &cgra_rf32, PageId(0)).expect("yuv folds");

        Artifacts {
            cgra,
            fir,
            fir_paged,
            p8,
            plan4,
            parked_p,
            parked_plan,
            faults,
            degraded,
            healed,
            recovery,
            cgra_rf32,
            fir32,
            folded,
            yuv32,
            folded_yuv,
        }
    }

    /// Analyze every fixture; the returned report must be clean (the
    /// degradation fixture may carry warnings, never errors).
    pub fn baseline_report(&self) -> Report {
        let mut rep = analyze_mapping(&self.fir.mdfg, &self.cgra, &self.fir.mapping, self.fir.mode)
            .merge(analyze_paged(&self.fir_paged, self.cgra.rf().size()))
            .merge(analyze_paged(&self.p8, self.cgra.rf().size()))
            .merge(analyze_plan(&self.p8, &self.plan4))
            .merge(analyze_plan(&self.parked_p, &self.parked_plan))
            .merge(analyze_fold(&self.fir32, &self.cgra_rf32, &self.folded))
            .merge(analyze_fold(&self.yuv32, &self.cgra_rf32, &self.folded_yuv));
        let (b, c, u, t) = good_profile();
        rep = rep.merge(analyze_profile("fixture", b, c, u, &t, 4));
        rep.merge(analyze_degraded(&self.p8, &self.degraded, &self.faults))
            .merge(analyze_recovery(&self.p8, &self.recovery, &self.healed))
    }
}

/// The well-formed kernel-profile fixture for the `A40x` operators.
fn good_profile() -> (u32, u32, u16, Vec<(u16, u32)>) {
    (3, 4, 2, vec![(4, 4), (2, 4), (1, 8)])
}

/// One splitmix64 step — tiny, deterministic, dependency-free.
fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Pick one qualifying mutation site; panics if an operator found none
/// (a fixture regression, not a survivable outcome).
fn pick<'a, T>(state: &mut u64, items: &'a [T], what: &str) -> &'a T {
    assert!(!items.is_empty(), "no mutation candidates for {what}");
    &items[usize::try_from(next(state) % items.len() as u64).unwrap()]
}

/// One mutation operator: a named artifact-breaking transformation and
/// the diagnostic code the analyzer must answer it with.
pub struct Operator {
    /// Stable kebab-case operator name.
    pub name: &'static str,
    /// The code class that must appear in the mutant's report.
    pub expected: Code,
    run: fn(&Artifacts, &mut u64) -> Report,
}

impl Operator {
    /// Apply the operator and analyze the mutant.
    pub fn apply(&self, a: &Artifacts, state: &mut u64) -> Report {
        (self.run)(a, state)
    }
}

/// The outcome of one operator under [`run_all`].
pub struct MutationOutcome {
    /// Operator name.
    pub name: &'static str,
    /// The code class the operator expects.
    pub expected: Code,
    /// The analyzer's full report on the mutant.
    pub report: Report,
}

impl MutationOutcome {
    /// Whether the analyzer flagged the mutant with the expected code.
    pub fn killed(&self) -> bool {
        self.report.codes().contains(&self.expected)
    }
}

/// Apply every operator to freshly built artifacts under `seed`.
pub fn run_all(seed: u64) -> Vec<MutationOutcome> {
    let a = Artifacts::build();
    let mut state = seed;
    operators()
        .iter()
        .map(|op| MutationOutcome {
            name: op.name,
            expected: op.expected,
            report: op.apply(&a, &mut state),
        })
        .collect()
}

/// The seeded-broken FIR mapping used by the golden-snapshot test: the
/// `shift-producer-late` mutant of the constrained FIR mapping.
pub fn broken_fir_report(seed: u64) -> Report {
    let a = Artifacts::build();
    let mut state = seed;
    shift_producer_late(&a, &mut state)
}

// --- A0xx: modulo-resource and dataflow mutants -------------------------

fn shift_producer_late(a: &Artifacts, s: &mut u64) -> Report {
    let r = &a.fir;
    let dfg = &r.mdfg.dfg;
    // Any producer with a live (non-memory) consumer: delaying it by
    // whole IIs keeps its modulo slot but strands every reader.
    let cands: Vec<usize> = dfg
        .node_ids()
        .filter(|&n| dfg.succ_edges(n).any(|e| !r.mdfg.is_mem_edge(e.index())))
        .map(cgra_dfg::NodeId::index)
        .collect();
    let n = *pick(s, &cands, "shift-producer-late");
    let mut m = r.mapping.clone();
    m.placements[n].time += 16 * m.ii;
    analyze_mapping(&r.mdfg, &a.cgra, &m, r.mode)
}

fn clone_onto_occupied_slot(a: &Artifacts, s: &mut u64) -> Report {
    let r = &a.fir;
    let mut m = r.mapping.clone();
    let n = m.placements.len();
    let i = usize::try_from(next(s) % n as u64).unwrap();
    let j = (i + 1 + usize::try_from(next(s) % (n as u64 - 1)).unwrap()) % n;
    m.placements[j] = m.placements[i];
    analyze_mapping(&r.mdfg, &a.cgra, &m, r.mode)
}

/// Two loads and their sum — small enough to place by hand, so the bus
/// fixture is exact.
fn bus_fixture() -> (MapDfg, Mapping) {
    let mut b = DfgBuilder::new("bus");
    let l0 = b.node(OpKind::Load);
    let l1 = b.node(OpKind::Load);
    b.apply(OpKind::Add, &[l0, l1]);
    let m = MapDfg::unspilled(&b.build().unwrap());
    // Loads on row 0 at distinct bus slots (t=0, t=1 with II=2), the
    // add beside them.
    let mapping = Mapping {
        ii: 2,
        placements: vec![
            Placement {
                pe: PeId(0),
                time: 0,
            },
            Placement {
                pe: PeId(1),
                time: 1,
            },
            Placement {
                pe: PeId(1),
                time: 2,
            },
        ],
        routes: vec![Vec::new(), Vec::new()],
    };
    (m, mapping)
}

fn congruent_mem_same_row(a: &Artifacts, _s: &mut u64) -> Report {
    let (m, mut mapping) = bus_fixture();
    // Slide the second load onto the first one's bus slot (both ≡ 0
    // mod II on row 0; one bus per row).
    mapping.placements[1].time = 2;
    analyze_mapping(&m, &a.cgra, &mapping, cgra_mapper::MapMode::Baseline)
}

fn capability_downgrade(a: &Artifacts, _s: &mut u64) -> Report {
    // The fabric loses its multipliers; FIR's Mul placements go illegal.
    let no_mul = a
        .cgra
        .clone()
        .with_capability(PeCapability::full().with_mul(false));
    analyze_mapping(&a.fir.mdfg, &no_mul, &a.fir.mapping, a.fir.mode)
}

fn truncate_placements(a: &Artifacts, _s: &mut u64) -> Report {
    let mut m = a.fir.mapping.clone();
    m.placements.pop();
    analyze_mapping(&a.fir.mdfg, &a.cgra, &m, a.fir.mode)
}

fn drop_route_hop(a: &Artifacts, s: &mut u64) -> Report {
    let r = &a.fir;
    let dfg = &r.mdfg.dfg;
    let mesh = a.cgra.mesh();
    // Qualifying sites: a hop on a single-fanout edge whose removal
    // leaves two non-adjacent consecutive locations (no sharing site
    // can rescue the read).
    let mut cands: Vec<(usize, usize)> = Vec::new();
    for (ei, e) in dfg.edges().enumerate() {
        if r.mdfg.is_mem_edge(ei) || r.mapping.routes[ei].is_empty() {
            continue;
        }
        let fanout = dfg
            .succ_edges(e.src)
            .filter(|x| !r.mdfg.is_mem_edge(x.index()))
            .count();
        if fanout != 1 {
            continue;
        }
        let hops = &r.mapping.routes[ei];
        for hi in 0..hops.len() {
            let prev = if hi == 0 {
                r.mapping.placements[e.src.index()].pe
            } else {
                hops[hi - 1].pe
            };
            let nxt = if hi + 1 < hops.len() {
                hops[hi + 1].pe
            } else {
                r.mapping.placements[e.dst.index()].pe
            };
            if nxt != prev && !mesh.adjacent(prev, nxt) {
                cands.push((ei, hi));
            }
        }
    }
    let &(ei, hi) = pick(s, &cands, "drop-route-hop");
    let mut m = r.mapping.clone();
    m.routes[ei].remove(hi);
    analyze_mapping(&r.mdfg, &a.cgra, &m, r.mode)
}

fn delayed_consumer(a: &Artifacts, s: &mut u64, iters: u32) -> Report {
    let r = &a.fir;
    let dfg = &r.mdfg.dfg;
    // A direct (unrouted) edge: delaying its consumer by whole IIs
    // keeps slots intact but parks the value far beyond the file.
    let cands: Vec<usize> = dfg
        .edges()
        .enumerate()
        .filter(|(ei, e)| {
            !r.mdfg.is_mem_edge(*ei) && r.mapping.routes[*ei].is_empty() && e.src != e.dst
        })
        .map(|(_, e)| e.dst.index())
        .collect();
    let v = *pick(s, &cands, "delayed-consumer");
    let mut m = r.mapping.clone();
    m.placements[v].time += iters * m.ii;
    analyze_mapping(&r.mdfg, &a.cgra, &m, r.mode)
}

fn park_beyond_rf(a: &Artifacts, s: &mut u64) -> Report {
    delayed_consumer(a, s, 16)
}

fn stretch_lifetime(a: &Artifacts, s: &mut u64) -> Report {
    delayed_consumer(a, s, 32)
}

/// Load→Store inside page 1 — the smallest constrained-legal mapping,
/// placed by hand so ring mutants are exact.
fn ring_fixture() -> (MapDfg, Mapping) {
    let mut b = DfgBuilder::new("ring");
    let u = b.node(OpKind::Load);
    b.apply(OpKind::Store, &[u]);
    let m = MapDfg::unspilled(&b.build().unwrap());
    let mapping = Mapping {
        ii: 2,
        placements: vec![
            Placement {
                pe: PeId(2),
                time: 0,
            },
            Placement {
                pe: PeId(3),
                time: 1,
            },
        ],
        routes: vec![Vec::new()],
    };
    (m, mapping)
}

fn cross_ring_step(a: &Artifacts, _s: &mut u64) -> Report {
    let (m, mut mapping) = ring_fixture();
    // PE1 is mesh-adjacent to PE2 but lives on the *previous* page:
    // timing and adjacency stay legal, only the ring direction breaks.
    mapping.placements[1].pe = PeId(1);
    analyze_mapping(&m, &a.cgra, &mapping, cgra_mapper::MapMode::Constrained)
}

// --- A2xx: paged-schedule and shrink-plan mutants -----------------------

fn skip_ring_page(a: &Artifacts, _s: &mut u64) -> Report {
    let mut p = a.p8.clone();
    p.deps.push(PageDep {
        from_page: 3,
        from_time: 0,
        to_page: 1,
        to_time: 1,
    });
    analyze_paged(&p, a.cgra.rf().size())
}

fn overpark_paged_dep(a: &Artifacts, _s: &mut u64) -> Report {
    let mut p = a.fir_paged.clone();
    p.deps.push(PageDep {
        from_page: 0,
        from_time: 0,
        to_page: 0,
        to_time: 1 + p.ii * 64,
    });
    analyze_paged(&p, a.cgra.rf().size())
}

fn remove_plan_cell(a: &Artifacts, _s: &mut u64) -> Report {
    let mut plan = a.plan4.clone();
    plan.placements[0].remove(&(0, 0));
    analyze_plan(&a.p8, &plan)
}

fn column_out_of_range(a: &Artifacts, _s: &mut u64) -> Report {
    let mut plan = a.plan4.clone();
    plan.placements[0].get_mut(&(1, 0)).unwrap().col = plan.m + 3;
    analyze_plan(&a.p8, &plan)
}

fn collide_plan_cells(a: &Artifacts, _s: &mut u64) -> Report {
    let mut plan = a.plan4.clone();
    let c = plan.placements[0][&(0, 0)];
    plan.placements[0].insert((1, 0), c);
    analyze_plan(&a.p8, &plan)
}

fn equalize_dep_times(a: &Artifacts, s: &mut u64) -> Report {
    let ii = a.p8.ii;
    // A dependence whose endpoints fall in the same source iteration:
    // cloning the producer's placement onto the consumer makes the
    // consumer run at the producer's own cycle.
    let cands: Vec<&PageDep> =
        a.p8.deps
            .iter()
            .filter(|d| d.from_time / ii == d.to_time / ii)
            .collect();
    let d = *pick(s, &cands, "equalize-dep-times");
    let mut plan = a.plan4.clone();
    let c = plan.placements[0][&(d.from_page, d.from_time % ii)];
    plan.placements[0].insert((d.to_page, d.to_time % ii), c);
    analyze_plan(&a.p8, &plan)
}

fn teleport_column(a: &Artifacts, _s: &mut u64) -> Report {
    let mut plan = a.plan4.clone();
    for slot in 0..a.p8.ii {
        plan.placements[0].get_mut(&(0, slot)).unwrap().col = 3;
    }
    analyze_plan(&a.p8, &plan)
}

fn crush_span(a: &Artifacts, _s: &mut u64) -> Report {
    let mut plan = a.plan4.clone();
    plan.span = 1;
    analyze_plan(&a.p8, &plan)
}

fn wobble_parked_column(a: &Artifacts, _s: &mut u64) -> Report {
    // Unroll the parked block plan to period 2, swapping the columns of
    // pages 0 and 1 in the second entry. Instance times are preserved
    // exactly, but page 1 — which parks a value for 3 cycles — no
    // longer keeps one column.
    let base = &a.parked_plan;
    let p0 = base.placements[0].clone();
    let mut p1 = HashMap::new();
    for (&(page, slot), &c) in &p0 {
        let mut c2 = c;
        c2.time += base.span;
        if page == 0 {
            c2.col = p0[&(1, slot)].col;
        } else if page == 1 {
            c2.col = p0[&(0, slot)].col;
        }
        p1.insert((page, slot), c2);
    }
    let mut plan = base.clone();
    plan.placements = vec![p0, p1];
    plan.period = 2;
    plan.span = base.span * 2;
    analyze_plan(&a.parked_p, &plan)
}

// --- A3xx: degradation mutants ------------------------------------------

fn back_column_with_dead_page(a: &Artifacts, _s: &mut u64) -> Report {
    let mut d = a.degraded.clone();
    d.column_pages[0] = 2; // the dead page
    analyze_degraded(&a.p8, &d, &a.faults)
}

fn shuffle_columns(a: &Artifacts, _s: &mut u64) -> Report {
    let mut d = a.degraded.clone();
    d.column_pages.reverse();
    analyze_degraded(&a.p8, &d, &a.faults)
}

fn alias_columns(a: &Artifacts, _s: &mut u64) -> Report {
    let mut d = a.degraded.clone();
    d.column_pages[1] = d.column_pages[2];
    analyze_degraded(&a.p8, &d, &a.faults)
}

fn drop_column(a: &Artifacts, _s: &mut u64) -> Report {
    let mut d = a.degraded.clone();
    d.column_pages.pop();
    analyze_degraded(&a.p8, &d, &a.faults)
}

fn forget_dead_page(a: &Artifacts, _s: &mut u64) -> Report {
    let mut d = a.degraded.clone();
    d.dead_pages.clear();
    analyze_degraded(&a.p8, &d, &a.faults)
}

fn degrade_backing_page(a: &Artifacts, _s: &mut u64) -> Report {
    // The fabric worsens under the plan: one backing page turns
    // degraded-but-usable. Bookkeeping follows, so the only finding is
    // the advisory warning.
    let mut faults = a.faults.clone();
    faults.mark_page(a.degraded.column_pages[1], PageHealth::Degraded);
    let mut d = a.degraded.clone();
    d.degraded_pages = faults.degraded_pages();
    analyze_degraded(&a.p8, &d, &faults)
}

// --- A31x: recovery mutants ---------------------------------------------

fn reexpand_before_repair(a: &Artifacts, _s: &mut u64) -> Report {
    // The recovery plan is analyzed against the *pre-repair* fault map:
    // page 2 is still dead, so the column it backs is illegal reuse.
    analyze_recovery(&a.p8, &a.recovery, &a.faults)
}

fn jump_quarantine(a: &Artifacts, s: &mut u64) -> Report {
    let mut r = a.recovery.clone();
    // Activate somewhere strictly inside the quarantine window.
    let early = next(s) % r.quarantine;
    r.repaired[0].activated_at = r.repaired[0].repaired_at + early;
    analyze_recovery(&a.p8, &r, &a.healed)
}

fn lose_iterations(a: &Artifacts, s: &mut u64) -> Report {
    let mut r = a.recovery.clone();
    // Resume anywhere but where the thread left off.
    r.resume_iteration = r.completed_iterations + 1 + next(s) % 7;
    analyze_recovery(&a.p8, &r, &a.healed)
}

// --- A22x: fold mutants -------------------------------------------------

fn escape_target_page(a: &Artifacts, s: &mut u64) -> Report {
    let layout = a.cgra_rf32.layout();
    let mut folded = a.folded.clone();
    let i = usize::try_from(next(s) % folded.ops.len() as u64).unwrap();
    let off_page = layout
        .pes_of(layout.next_page(folded.target))
        .next()
        .unwrap();
    folded.ops[i].pe = off_page;
    analyze_fold(&a.fir32, &a.cgra_rf32, &folded)
}

fn collide_folded_ops(a: &Artifacts, s: &mut u64) -> Report {
    let mut folded = a.folded.clone();
    let n = folded.ops.len();
    let i = usize::try_from(next(s) % n as u64).unwrap();
    let j = (i + 1 + usize::try_from(next(s) % (n as u64 - 1)).unwrap()) % n;
    folded.ops[j] = folded.ops[i];
    analyze_fold(&a.fir32, &a.cgra_rf32, &folded)
}

/// Direct single-fanout edges of the folded FIR: mutating their consumer
/// op cannot be rescued by a sharing site or an intermediate hop.
fn lone_direct_fold_edges(a: &Artifacts, need_zero_distance: bool) -> Vec<(usize, usize, usize)> {
    let r = &a.fir32;
    r.mdfg
        .dfg
        .edges()
        .enumerate()
        .filter(|(ei, e)| {
            !r.mdfg.is_mem_edge(*ei)
                && a.folded.routes[*ei].is_empty()
                && e.src != e.dst
                && (!need_zero_distance || e.distance == 0)
                && r.mdfg
                    .dfg
                    .succ_edges(e.src)
                    .filter(|x| !r.mdfg.is_mem_edge(x.index()))
                    .count()
                    == 1
        })
        .map(|(ei, e)| (ei, e.src.index(), e.dst.index()))
        .collect()
}

fn stretch_fold_step(a: &Artifacts, s: &mut u64) -> Report {
    let layout = a.cgra_rf32.layout();
    let mesh = a.cgra_rf32.mesh();
    let cands = lone_direct_fold_edges(a, false);
    let &(_, src, dst) = pick(s, &cands, "stretch-fold-step");
    let mut folded = a.folded.clone();
    let from_pe = folded.ops[src].pe;
    // The far corner of the target page: in-page (no A220) but not
    // adjacent to the producer.
    let far = layout
        .pes_of(folded.target)
        .find(|&pe| pe != from_pe && !mesh.adjacent(from_pe, pe))
        .expect("a 2x2 page has a non-adjacent corner");
    folded.ops[dst].pe = far;
    analyze_fold(&a.fir32, &a.cgra_rf32, &folded)
}

fn reverse_fold_step(a: &Artifacts, s: &mut u64) -> Report {
    let cands = lone_direct_fold_edges(a, true);
    let &(_, src, dst) = pick(s, &cands, "reverse-fold-step");
    let mut folded = a.folded.clone();
    folded.ops[dst].time = folded.ops[src].time;
    analyze_fold(&a.fir32, &a.cgra_rf32, &folded)
}

fn shrink_rotating_file(a: &Artifacts, _s: &mut u64) -> Report {
    // The fold is unchanged; the fabric it claims to run on shrinks to
    // a single rotating register per PE.
    let tiny = CgraConfig::square(4).with_rf_size(1);
    analyze_fold(&a.yuv32, &tiny, &a.folded_yuv)
}

fn flip_orientation(a: &Artifacts, s: &mut u64) -> Report {
    let mut folded = a.folded.clone();
    let n = folded.orientations.len();
    // Never page 0 (identity is correct there by construction, so flip
    // a later page).
    let i = 1 + usize::try_from(next(s) % (n as u64 - 1)).unwrap();
    folded.orientations[i] = if folded.orientations[i] == cgra_arch::Orientation::Identity {
        cgra_arch::Orientation::Rot180
    } else {
        cgra_arch::Orientation::Identity
    };
    analyze_fold(&a.fir32, &a.cgra_rf32, &folded)
}

// --- A40x: profile mutants ----------------------------------------------

fn zero_ii(_a: &Artifacts, _s: &mut u64) -> Report {
    let (b, _, u, t) = good_profile();
    analyze_profile("mutant", b, 0, u, &t, 4)
}

fn invert_constraint_order(_a: &Artifacts, _s: &mut u64) -> Report {
    let (_, _, u, t) = good_profile();
    analyze_profile("mutant", 5, 4, u, &t, 4)
}

fn leave_halving_chain(_a: &Artifacts, _s: &mut u64) -> Report {
    let (b, c, u, _) = good_profile();
    analyze_profile("mutant", b, c, u, &[(4, 4), (3, 5), (1, 8)], 4)
}

fn speed_up_small_m(_a: &Artifacts, _s: &mut u64) -> Report {
    let (b, c, u, _) = good_profile();
    analyze_profile("mutant", b, c, u, &[(4, 8), (2, 4), (1, 8)], 4)
}

fn inflate_used_pages(_a: &Artifacts, _s: &mut u64) -> Report {
    let (b, c, _, t) = good_profile();
    analyze_profile("mutant", b, c, 9, &t, 4)
}

/// The full operator library, in code order.
pub fn operators() -> Vec<Operator> {
    use Code::{
        A001PeSlotConflict, A002BusOverflow, A003MissingFu, A004ShapeMismatch, A005BadDataflow,
        A101RfPressure, A102LifetimeExceedsRotation, A201RingStepViolation, A202DepOverparked,
        A204PagedDepNotRing, A210PlanMissingCell, A211PlanBadColumn, A212PlanSlotCollision,
        A213PlanDepTiming, A214PlanDepColumns, A215PlanUnstableParking, A216PlanBelowCapacity,
        A220FoldOutsidePage, A221FoldSlotCollision, A222FoldBrokenStep, A223FoldBackwardsStep,
        A224FoldRfOverflow, A225OrientationPlanMismatch, A301OpOnDeadPage,
        A302ColumnsNotContiguous, A303RemapNotBijective, A304DegradedShapeMismatch,
        A305FaultBookkeeping, A306ColumnOnDegradedPage, A310RecoveryOnUnrepairedPage,
        A311QuarantineViolated, A312IterationLoss, A401ProfileBadIi, A402ProfileConstraintInverted,
        A403ProfileOffChain, A404ProfileNotMonotone, A405ProfileUsedPagesOutOfRange,
    };
    vec![
        Operator {
            name: "shift-producer-late",
            expected: A005BadDataflow,
            run: shift_producer_late,
        },
        Operator {
            name: "clone-onto-occupied-slot",
            expected: A001PeSlotConflict,
            run: clone_onto_occupied_slot,
        },
        Operator {
            name: "congruent-mem-same-row",
            expected: A002BusOverflow,
            run: congruent_mem_same_row,
        },
        Operator {
            name: "capability-downgrade",
            expected: A003MissingFu,
            run: capability_downgrade,
        },
        Operator {
            name: "truncate-placements",
            expected: A004ShapeMismatch,
            run: truncate_placements,
        },
        Operator {
            name: "drop-route-hop",
            expected: A005BadDataflow,
            run: drop_route_hop,
        },
        Operator {
            name: "park-beyond-rf",
            expected: A101RfPressure,
            run: park_beyond_rf,
        },
        Operator {
            name: "stretch-lifetime",
            expected: A102LifetimeExceedsRotation,
            run: stretch_lifetime,
        },
        Operator {
            name: "cross-ring-step",
            expected: A201RingStepViolation,
            run: cross_ring_step,
        },
        Operator {
            name: "skip-ring-page",
            expected: A204PagedDepNotRing,
            run: skip_ring_page,
        },
        Operator {
            name: "overpark-paged-dep",
            expected: A202DepOverparked,
            run: overpark_paged_dep,
        },
        Operator {
            name: "remove-plan-cell",
            expected: A210PlanMissingCell,
            run: remove_plan_cell,
        },
        Operator {
            name: "column-out-of-range",
            expected: A211PlanBadColumn,
            run: column_out_of_range,
        },
        Operator {
            name: "collide-plan-cells",
            expected: A212PlanSlotCollision,
            run: collide_plan_cells,
        },
        Operator {
            name: "equalize-dep-times",
            expected: A213PlanDepTiming,
            run: equalize_dep_times,
        },
        Operator {
            name: "teleport-column",
            expected: A214PlanDepColumns,
            run: teleport_column,
        },
        Operator {
            name: "crush-span",
            expected: A216PlanBelowCapacity,
            run: crush_span,
        },
        Operator {
            name: "wobble-parked-column",
            expected: A215PlanUnstableParking,
            run: wobble_parked_column,
        },
        Operator {
            name: "back-column-with-dead-page",
            expected: A301OpOnDeadPage,
            run: back_column_with_dead_page,
        },
        Operator {
            name: "shuffle-columns",
            expected: A302ColumnsNotContiguous,
            run: shuffle_columns,
        },
        Operator {
            name: "alias-columns",
            expected: A303RemapNotBijective,
            run: alias_columns,
        },
        Operator {
            name: "drop-column",
            expected: A304DegradedShapeMismatch,
            run: drop_column,
        },
        Operator {
            name: "forget-dead-page",
            expected: A305FaultBookkeeping,
            run: forget_dead_page,
        },
        Operator {
            name: "degrade-backing-page",
            expected: A306ColumnOnDegradedPage,
            run: degrade_backing_page,
        },
        Operator {
            name: "reexpand-before-repair",
            expected: A310RecoveryOnUnrepairedPage,
            run: reexpand_before_repair,
        },
        Operator {
            name: "jump-quarantine",
            expected: A311QuarantineViolated,
            run: jump_quarantine,
        },
        Operator {
            name: "lose-iterations",
            expected: A312IterationLoss,
            run: lose_iterations,
        },
        Operator {
            name: "escape-target-page",
            expected: A220FoldOutsidePage,
            run: escape_target_page,
        },
        Operator {
            name: "collide-folded-ops",
            expected: A221FoldSlotCollision,
            run: collide_folded_ops,
        },
        Operator {
            name: "stretch-fold-step",
            expected: A222FoldBrokenStep,
            run: stretch_fold_step,
        },
        Operator {
            name: "reverse-fold-step",
            expected: A223FoldBackwardsStep,
            run: reverse_fold_step,
        },
        Operator {
            name: "shrink-rotating-file",
            expected: A224FoldRfOverflow,
            run: shrink_rotating_file,
        },
        Operator {
            name: "flip-orientation",
            expected: A225OrientationPlanMismatch,
            run: flip_orientation,
        },
        Operator {
            name: "zero-ii",
            expected: A401ProfileBadIi,
            run: zero_ii,
        },
        Operator {
            name: "invert-constraint-order",
            expected: A402ProfileConstraintInverted,
            run: invert_constraint_order,
        },
        Operator {
            name: "leave-halving-chain",
            expected: A403ProfileOffChain,
            run: leave_halving_chain,
        },
        Operator {
            name: "speed-up-small-m",
            expected: A404ProfileNotMonotone,
            run: speed_up_small_m,
        },
        Operator {
            name: "inflate-used-pages",
            expected: A405ProfileUsedPagesOutOfRange,
            run: inflate_used_pages,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_analyze_without_errors() {
        let a = Artifacts::build();
        let rep = a.baseline_report();
        assert!(!rep.has_errors(), "{}", rep.render());
    }

    #[test]
    fn operator_names_are_unique() {
        let ops = operators();
        let mut names: Vec<_> = ops.iter().map(|o| o.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ops.len());
    }
}
