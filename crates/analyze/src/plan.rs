//! Shrink-plan analysis (§VI-C) with coded diagnostics.
//!
//! The §VI-C re-derivation (slot exclusivity over the periodic window,
//! dependence timing and column adjacency, parked-column stability, the
//! capacity bound) lives in [`cgra_core::validate::validate_plan`] — an
//! independent checker that never trusts the transform. This pass lifts
//! its [`TransformViolation`]s into the diagnostic vocabulary so every
//! pipeline stage reports in one language.

use crate::diag::{Code, Diagnostic, Report, Span};
use cgra_core::transform::ShrinkPlan;
use cgra_core::validate::validate_plan;
use cgra_core::{PagedSchedule, TransformViolation};

/// Lift one shallow [`TransformViolation`] into a coded [`Diagnostic`].
pub fn diagnostic_from_transform_violation(v: &TransformViolation) -> Diagnostic {
    match v {
        TransformViolation::MissingCell {
            period_index,
            page,
            slot,
        } => Diagnostic::new(
            Code::A210PlanMissingCell,
            Span::Cell {
                page: *page,
                slot: *slot,
            },
            format!("unplaced in period entry {period_index}"),
        ),
        TransformViolation::BadColumn { col } => Diagnostic::new(
            Code::A211PlanBadColumn,
            Span::Column(*col),
            "column outside 0..M".to_string(),
        ),
        TransformViolation::SlotCollision { col, time } => Diagnostic::new(
            Code::A212PlanSlotCollision,
            Span::Column(*col),
            format!("two cell instances at cycle {time}"),
        ),
        TransformViolation::DepTiming {
            from,
            to,
            t_from,
            t_to,
        } => Diagnostic::new(
            Code::A213PlanDepTiming,
            Span::Cell {
                page: from.0,
                slot: from.1,
            },
            format!(
                "consumer ({},{}) at {t_to} not after producer at {t_from}",
                to.0, to.1
            ),
        ),
        TransformViolation::DepColumns {
            from,
            to,
            col_from,
            col_to,
        } => Diagnostic::new(
            Code::A214PlanDepColumns,
            Span::Cell {
                page: from.0,
                slot: from.1,
            },
            format!(
                "dependence to ({},{}) spans columns {col_from} and {col_to}",
                to.0, to.1
            ),
        ),
        TransformViolation::UnstableParking { page } => Diagnostic::new(
            Code::A215PlanUnstableParking,
            Span::Page(*page),
            "parks values but changes column".to_string(),
        ),
        TransformViolation::BelowCapacityBound { ii_q, bound } => Diagnostic::new(
            Code::A216PlanBelowCapacity,
            Span::Global,
            format!("II_q {ii_q} below capacity bound {bound}"),
        ),
        TransformViolation::OpOnDeadPage { col, page } => Diagnostic::new(
            Code::A301OpOnDeadPage,
            Span::Column(*col),
            format!("scheduled on dead page {page}"),
        ),
        TransformViolation::ColumnsNotContiguous { pages } => Diagnostic::new(
            Code::A302ColumnsNotContiguous,
            Span::Global,
            format!("column pages {pages:?} are not a contiguous run"),
        ),
    }
}

/// Analyze a shrink plan against its source schedule.
pub fn analyze_plan(p: &PagedSchedule, plan: &ShrinkPlan) -> Report {
    validate_plan(p, plan)
        .iter()
        .map(diagnostic_from_transform_violation)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgra_core::transform::transform_block;

    #[test]
    fn block_plans_are_clean() {
        let p = PagedSchedule::synthetic_canonical(8, 2, false);
        for m in [1u16, 2, 4, 8] {
            let plan = transform_block(&p, m).unwrap();
            let rep = analyze_plan(&p, &plan);
            assert!(rep.is_clean(), "M={m}: {}", rep.render());
        }
    }

    #[test]
    fn collision_reports_a212() {
        let p = PagedSchedule::synthetic_canonical(4, 1, false);
        let mut plan = transform_block(&p, 2).unwrap();
        let c2 = plan.placements[0][&(2, 0)];
        plan.placements[0].insert((3, 0), c2);
        let rep = analyze_plan(&p, &plan);
        assert!(
            rep.codes().contains(&Code::A212PlanSlotCollision),
            "{}",
            rep.render()
        );
    }
}
