//! The diagnostic vocabulary: stable codes, severities, spans, and the
//! [`Report`] container with human and JSON renderers.
//!
//! Codes are grouped by hundreds:
//!
//! * `A0xx` — modulo-resource analysis of a [`Mapping`]
//!   (MRT exclusivity, buses, functional units, dataflow shape).
//! * `A1xx` — rotating-register live-range analysis.
//! * `A2xx` — paging constraints (§VI-B): ring discipline, paged
//!   dependences, shrink-plan legality, fold/mirror legality.
//! * `A3xx` — degradation analysis of a [`DegradedPlan`] against a
//!   [`FaultMap`], and recovery analysis (`A31x`) of a
//!   [`RecoveryPlan`] re-expanding onto repaired pages.
//! * `A4xx` — profile/cache-entry semantic integrity.
//!
//! Codes are **stable**: external tooling may match on them, so a code
//! is never renumbered or reused once released. New checks append.
//!
//! [`Mapping`]: cgra_mapper::Mapping
//! [`DegradedPlan`]: cgra_core::DegradedPlan
//! [`RecoveryPlan`]: cgra_core::RecoveryPlan
//! [`FaultMap`]: cgra_arch::FaultMap

use cgra_obs::jsonio::Json;

/// A stable diagnostic code. See the module docs for the numbering plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(clippy::enum_variant_names)]
pub enum Code {
    /// Two MRT reservations collide on one PE slot (mod II).
    A001PeSlotConflict,
    /// A row bus exceeds its per-slot capacity.
    A002BusOverflow,
    /// An op sits on a PE lacking the required functional unit.
    A003MissingFu,
    /// Artifact shape does not match the DFG (placement/route counts).
    A004ShapeMismatch,
    /// An edge's dataflow is unrealisable (timing, adjacency, chain
    /// contiguity, memory visibility).
    A005BadDataflow,
    /// Rotating-register pressure exceeds the per-PE file size.
    A101RfPressure,
    /// A single value's lifetime alone needs more rotating registers
    /// than one PE's file holds — no schedule shuffle can save it.
    A102LifetimeExceedsRotation,
    /// A dataflow step leaves the page ring (not same-page, not the
    /// next page on the serpentine path).
    A201RingStepViolation,
    /// A paged dependence parks longer than the producing page's
    /// rotating file can hold under §VI-B's register-usage bound.
    A202DepOverparked,
    /// A paged dependence is malformed: its pages are not a ring step,
    /// or its consumer does not run after its producer.
    A204PagedDepNotRing,
    /// A shrink plan leaves a cell unplaced in some period entry.
    A210PlanMissingCell,
    /// A shrink plan names a column outside `0..M`.
    A211PlanBadColumn,
    /// Two plan instances collide on (column, cycle).
    A212PlanSlotCollision,
    /// A plan dependence's consumer does not run after its producer.
    A213PlanDepTiming,
    /// A plan dependence spans non-adjacent columns.
    A214PlanDepColumns,
    /// A parked value's page wanders between columns.
    A215PlanUnstableParking,
    /// A plan undershoots the §VI-C capacity bound.
    A216PlanBelowCapacity,
    /// A folded op escaped the target page.
    A220FoldOutsidePage,
    /// Two folded steps collide on (PE, cycle mod II_q).
    A221FoldSlotCollision,
    /// A folded dataflow step's endpoints are neither equal nor adjacent.
    A222FoldBrokenStep,
    /// A folded dataflow step runs backwards in time.
    A223FoldBackwardsStep,
    /// A PE's rotating file overflows in the folded schedule.
    A224FoldRfOverflow,
    /// The fold's orientation vector disagrees with the Fig. 6 mirror
    /// rule re-derived from the serpentine page walk.
    A225OrientationPlanMismatch,
    /// A degraded plan column is backed by a dead or out-of-range page.
    A301OpOnDeadPage,
    /// The surviving pages backing the columns are not one contiguous
    /// ascending run.
    A302ColumnsNotContiguous,
    /// The column→page remap is not injective (two columns share a
    /// physical page).
    A303RemapNotBijective,
    /// The degraded plan's column count disagrees with its own plan.
    A304DegradedShapeMismatch,
    /// The recorded dead/degraded page lists disagree with the fault map.
    A305FaultBookkeeping,
    /// A column is backed by a degraded (slow but usable) page.
    A306ColumnOnDegradedPage,
    /// A recovery plan re-places work on a page that is still dead or
    /// mid-repair (repaired-page reuse legality).
    A310RecoveryOnUnrepairedPage,
    /// A recovery plan activates a repaired page before its quarantine
    /// window elapsed.
    A311QuarantineViolated,
    /// A recovery plan resumes at a different iteration than the thread
    /// completed — iterations were lost (or replayed) across the
    /// shrink → repair → expand round trip.
    A312IterationLoss,
    /// A profile claims a zero initiation interval.
    A401ProfileBadIi,
    /// A profile's constrained II is below its baseline II.
    A402ProfileConstraintInverted,
    /// A profile's II table does not enumerate the halving chain.
    A403ProfileOffChain,
    /// A profile's II table is not monotone as pages shrink.
    A404ProfileNotMonotone,
    /// A profile's used-page count is out of the fabric's range.
    A405ProfileUsedPagesOutOfRange,
}

impl Code {
    /// Every code, in ascending numeric order. The mutation suite
    /// asserts each one is produced by at least one operator.
    pub const ALL: [Code; 37] = [
        Code::A001PeSlotConflict,
        Code::A002BusOverflow,
        Code::A003MissingFu,
        Code::A004ShapeMismatch,
        Code::A005BadDataflow,
        Code::A101RfPressure,
        Code::A102LifetimeExceedsRotation,
        Code::A201RingStepViolation,
        Code::A202DepOverparked,
        Code::A204PagedDepNotRing,
        Code::A210PlanMissingCell,
        Code::A211PlanBadColumn,
        Code::A212PlanSlotCollision,
        Code::A213PlanDepTiming,
        Code::A214PlanDepColumns,
        Code::A215PlanUnstableParking,
        Code::A216PlanBelowCapacity,
        Code::A220FoldOutsidePage,
        Code::A221FoldSlotCollision,
        Code::A222FoldBrokenStep,
        Code::A223FoldBackwardsStep,
        Code::A224FoldRfOverflow,
        Code::A225OrientationPlanMismatch,
        Code::A301OpOnDeadPage,
        Code::A302ColumnsNotContiguous,
        Code::A303RemapNotBijective,
        Code::A304DegradedShapeMismatch,
        Code::A305FaultBookkeeping,
        Code::A306ColumnOnDegradedPage,
        Code::A310RecoveryOnUnrepairedPage,
        Code::A311QuarantineViolated,
        Code::A312IterationLoss,
        Code::A401ProfileBadIi,
        Code::A402ProfileConstraintInverted,
        Code::A403ProfileOffChain,
        Code::A404ProfileNotMonotone,
        Code::A405ProfileUsedPagesOutOfRange,
    ];

    /// The stable wire form, e.g. `"A001"`.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::A001PeSlotConflict => "A001",
            Code::A002BusOverflow => "A002",
            Code::A003MissingFu => "A003",
            Code::A004ShapeMismatch => "A004",
            Code::A005BadDataflow => "A005",
            Code::A101RfPressure => "A101",
            Code::A102LifetimeExceedsRotation => "A102",
            Code::A201RingStepViolation => "A201",
            Code::A202DepOverparked => "A202",
            Code::A204PagedDepNotRing => "A204",
            Code::A210PlanMissingCell => "A210",
            Code::A211PlanBadColumn => "A211",
            Code::A212PlanSlotCollision => "A212",
            Code::A213PlanDepTiming => "A213",
            Code::A214PlanDepColumns => "A214",
            Code::A215PlanUnstableParking => "A215",
            Code::A216PlanBelowCapacity => "A216",
            Code::A220FoldOutsidePage => "A220",
            Code::A221FoldSlotCollision => "A221",
            Code::A222FoldBrokenStep => "A222",
            Code::A223FoldBackwardsStep => "A223",
            Code::A224FoldRfOverflow => "A224",
            Code::A225OrientationPlanMismatch => "A225",
            Code::A301OpOnDeadPage => "A301",
            Code::A302ColumnsNotContiguous => "A302",
            Code::A303RemapNotBijective => "A303",
            Code::A304DegradedShapeMismatch => "A304",
            Code::A305FaultBookkeeping => "A305",
            Code::A306ColumnOnDegradedPage => "A306",
            Code::A310RecoveryOnUnrepairedPage => "A310",
            Code::A311QuarantineViolated => "A311",
            Code::A312IterationLoss => "A312",
            Code::A401ProfileBadIi => "A401",
            Code::A402ProfileConstraintInverted => "A402",
            Code::A403ProfileOffChain => "A403",
            Code::A404ProfileNotMonotone => "A404",
            Code::A405ProfileUsedPagesOutOfRange => "A405",
        }
    }

    /// The default severity a finding with this code carries.
    pub fn default_severity(self) -> Severity {
        match self {
            // Legal-but-suspicious: running on a degraded (not dead) page
            // works, and a heuristic mapper's constrained search can land
            // on a better II than its baseline search did.
            Code::A306ColumnOnDegradedPage | Code::A402ProfileConstraintInverted => {
                Severity::Warning
            }
            _ => Severity::Error,
        }
    }
}

impl std::fmt::Display for Code {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Legal but worth knowing (e.g. running on a degraded page).
    Warning,
    /// The artifact is illegal; executing it would compute wrong values
    /// or collide on hardware.
    Error,
}

impl Severity {
    /// The wire form: `"error"` / `"warning"`.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Where in the artifact a finding points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Span {
    /// The artifact as a whole.
    Global,
    /// A DFG node index.
    Node(u32),
    /// A DFG edge index.
    Edge(u32),
    /// A processing element.
    Pe(u16),
    /// A page of the layout.
    Page(u16),
    /// One cell of a paged schedule.
    Cell {
        /// The page.
        page: u16,
        /// The modulo slot.
        slot: u32,
    },
    /// A shrink-plan column.
    Column(u16),
}

impl std::fmt::Display for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Span::Global => write!(f, "global"),
            Span::Node(n) => write!(f, "node#{n}"),
            Span::Edge(e) => write!(f, "edge#{e}"),
            Span::Pe(p) => write!(f, "PE{p}"),
            Span::Page(p) => write!(f, "page{p}"),
            Span::Cell { page, slot } => write!(f, "cell({page},{slot})"),
            Span::Column(c) => write!(f, "col{c}"),
        }
    }
}

/// One analyzer finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The stable code.
    pub code: Code,
    /// How bad it is.
    pub severity: Severity,
    /// What part of the artifact it points at.
    pub span: Span,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// A finding with the code's default severity.
    pub fn new(code: Code, span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: code.default_severity(),
            span,
            message: message.into(),
        }
    }

    /// JSON form: `{"code","severity","span","message"}`.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("code", Json::Str(self.code.as_str().into())),
            ("severity", Json::Str(self.severity.as_str().into())),
            ("span", Json::Str(self.span.to_string())),
            ("message", Json::Str(self.message.clone())),
        ])
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} [{}] {}: {}",
            self.severity, self.code, self.span, self.message
        )
    }
}

/// The outcome of one analysis pass (or several merged): an ordered,
/// deduplicated list of findings.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty (clean) report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Build from raw findings (sorted and deduplicated).
    pub fn from_diagnostics(mut diagnostics: Vec<Diagnostic>) -> Self {
        diagnostics.sort_by(|a, b| {
            (a.code, a.span, &a.message, a.severity).cmp(&(b.code, b.span, &b.message, b.severity))
        });
        diagnostics.dedup();
        Report { diagnostics }
    }

    /// Append another pass's findings.
    #[must_use]
    pub fn merge(self, other: Report) -> Report {
        let mut all = self.diagnostics;
        all.extend(other.diagnostics);
        Report::from_diagnostics(all)
    }

    /// The findings, ordered by (code, span, message).
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// No findings at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Whether any error-severity finding is present.
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// The distinct codes present, ascending.
    pub fn codes(&self) -> Vec<Code> {
        let mut codes: Vec<Code> = self.diagnostics.iter().map(|d| d.code).collect();
        codes.sort_unstable();
        codes.dedup();
        codes
    }

    /// Human rendering: one finding per line, `"clean"` when empty.
    pub fn render(&self) -> String {
        if self.is_clean() {
            return "clean\n".into();
        }
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out
    }

    /// JSON form: `{"clean": bool, "diagnostics": [...]}`.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("clean", Json::Bool(self.is_clean())),
            (
                "diagnostics",
                Json::Arr(self.diagnostics.iter().map(Diagnostic::to_json).collect()),
            ),
        ])
    }
}

impl FromIterator<Diagnostic> for Report {
    fn from_iter<T: IntoIterator<Item = Diagnostic>>(iter: T) -> Self {
        Report::from_diagnostics(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_distinct_and_sorted() {
        let strs: Vec<&str> = Code::ALL.iter().map(|c| c.as_str()).collect();
        let mut sorted = strs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(strs, sorted, "Code::ALL must be ascending and unique");
    }

    #[test]
    fn report_dedups_and_orders() {
        let d1 = Diagnostic::new(Code::A005BadDataflow, Span::Edge(3), "x");
        let d0 = Diagnostic::new(Code::A001PeSlotConflict, Span::Pe(1), "y");
        let r = Report::from_diagnostics(vec![d1.clone(), d0.clone(), d1.clone()]);
        assert_eq!(r.diagnostics(), &[d0, d1]);
        assert!(r.has_errors());
        assert!(!r.is_clean());
    }

    #[test]
    fn warning_only_report_has_no_errors() {
        let r = Report::from_diagnostics(vec![Diagnostic::new(
            Code::A306ColumnOnDegradedPage,
            Span::Column(0),
            "slow",
        )]);
        assert!(!r.is_clean());
        assert!(!r.has_errors());
    }

    #[test]
    fn json_rendering_is_stable() {
        let r = Report::from_diagnostics(vec![Diagnostic::new(
            Code::A001PeSlotConflict,
            Span::Pe(2),
            "conflict",
        )]);
        let j = r.to_json().compact();
        assert!(j.contains("\"code\":\"A001\""), "{j}");
        assert!(j.contains("\"severity\":\"error\""), "{j}");
        assert!(j.contains("\"span\":\"PE2\""), "{j}");
    }
}
