//! Semantic integrity analysis of a compiled kernel profile — what the
//! mapping cache replays instead of running the mapper.
//!
//! A profile is a pure summary (`name`, baseline/constrained IIs, page
//! footprint, the `(M, II_q)` table over the halving chain), so the
//! analyzer cannot re-derive the numbers themselves without recompiling;
//! what it *can* re-derive are the invariants every honestly compiled
//! profile satisfies:
//!
//! * all IIs are positive — a zero II means a free kernel (A401);
//! * the paging constraints only ever cost performance, so
//!   `II_constrained ≥ II_baseline` (A402);
//! * the II table enumerates exactly the halving-chain budgets
//!   `N, N/2, …, 1` in order (A403) — the chain is re-derived locally,
//!   not imported from the code that wrote the entry;
//! * shrinking pages never speeds a kernel up: the table's IIs are
//!   weakly increasing as `M` falls (A404);
//! * the claimed page footprint fits the fabric: `1 ≤ used ≤ N` (A405).
//!
//! Any violation means the entry was corrupted, hand-edited, or written
//! by a buggy compiler — the cache must recompute rather than replay it.

use crate::diag::{Code, Diagnostic, Report, Span};

/// The allocator's halving chain `N, N/2, …, 1`, re-derived locally so
/// this pass stays independent of the simulator crate.
fn halving_chain(n: u16) -> Vec<u16> {
    let mut chain = Vec::new();
    let mut m = n;
    while m >= 1 {
        chain.push(m);
        if m == 1 {
            break;
        }
        m /= 2;
    }
    chain
}

/// Analyze a kernel profile's fields against a fabric with `n` pages.
///
/// Takes plain fields rather than the simulator's `KernelProfile` type
/// so the analyzer does not depend on the crate whose output it audits.
pub fn analyze_profile(
    name: &str,
    ii_baseline: u32,
    ii_constrained: u32,
    used_pages: u16,
    ii_by_pages: &[(u16, u32)],
    n: u16,
) -> Report {
    let mut diagnostics = Vec::new();
    let span = Span::Global;

    if ii_baseline == 0 || ii_constrained == 0 {
        diagnostics.push(Diagnostic::new(
            Code::A401ProfileBadIi,
            span,
            format!("{name}: zero II (baseline {ii_baseline}, constrained {ii_constrained})"),
        ));
    }
    for &(m, ii) in ii_by_pages {
        if ii == 0 {
            diagnostics.push(Diagnostic::new(
                Code::A401ProfileBadIi,
                span,
                format!("{name}: zero II at M={m}"),
            ));
        }
    }
    if ii_constrained < ii_baseline {
        diagnostics.push(Diagnostic::new(
            Code::A402ProfileConstraintInverted,
            span,
            format!(
                "{name}: constrained II {ii_constrained} below baseline {ii_baseline} — \
                 either the baseline search under-performed or a profile field is swapped"
            ),
        ));
    }
    let ms: Vec<u16> = ii_by_pages.iter().map(|&(m, _)| m).collect();
    if ms != halving_chain(n) {
        diagnostics.push(Diagnostic::new(
            Code::A403ProfileOffChain,
            span,
            format!(
                "{name}: II table budgets {ms:?} differ from the halving chain {:?}",
                halving_chain(n)
            ),
        ));
    }
    for w in ii_by_pages.windows(2) {
        if w[1].1 < w[0].1 {
            diagnostics.push(Diagnostic::new(
                Code::A404ProfileNotMonotone,
                span,
                format!(
                    "{name}: II falls from {} to {} as pages shrink {} -> {}",
                    w[0].1, w[1].1, w[0].0, w[1].0
                ),
            ));
        }
    }
    if used_pages == 0 || used_pages > n {
        diagnostics.push(Diagnostic::new(
            Code::A405ProfileUsedPagesOutOfRange,
            span,
            format!("{name}: claims {used_pages} used pages on a {n}-page fabric"),
        ));
    }

    Report::from_diagnostics(diagnostics)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn good() -> (u32, u32, u16, Vec<(u16, u32)>) {
        (3, 4, 2, vec![(4, 4), (2, 4), (1, 8)])
    }

    #[test]
    fn honest_profile_is_clean() {
        let (b, c, u, t) = good();
        let rep = analyze_profile("k", b, c, u, &t, 4);
        assert!(rep.is_clean(), "{}", rep.render());
    }

    #[test]
    fn each_invariant_is_enforced() {
        type Case = (u32, u32, u16, Vec<(u16, u32)>, Code);
        let (b, c, u, t) = good();
        let cases: [Case; 5] = [
            (0, c, u, t.clone(), Code::A401ProfileBadIi),
            (5, 4, u, t.clone(), Code::A402ProfileConstraintInverted),
            (
                b,
                c,
                u,
                vec![(4, 4), (3, 5), (1, 8)],
                Code::A403ProfileOffChain,
            ),
            (
                b,
                c,
                u,
                vec![(4, 8), (2, 4), (1, 8)],
                Code::A404ProfileNotMonotone,
            ),
            (b, c, 9, t, Code::A405ProfileUsedPagesOutOfRange),
        ];
        for (b, c, u, t, code) in cases {
            let rep = analyze_profile("k", b, c, u, &t, 4);
            assert!(rep.codes().contains(&code), "{code:?}: {}", rep.render());
        }
    }
}
