//! Fold analysis: the Fig. 6 shrink-to-one-page, including D4
//! orientation legality after mirroring.
//!
//! The PE-level dataflow re-derivation (page confinement, slot
//! exclusivity mod `II_q`, step adjacency and ordering, rotating
//! pressure) is [`cgra_core::fold::validate_fold`]; this pass lifts its
//! findings into coded diagnostics and adds the **orientation-plan
//! check** (A225): the mirror applied to each source page is re-derived
//! here from the serpentine page walk — an east/west step composes a
//! left-right mirror, a north/south step a top-bottom mirror, the
//! composition living in the Klein four-group `{I, H, V, R}` — and the
//! folded schedule's recorded orientation vector must match. A wrong
//! mirror can keep every op inside the page and even keep steps adjacent
//! on small pages, so the dataflow checks alone cannot always see it.

use crate::diag::{Code, Diagnostic, Report, Span};
use cgra_arch::mirror::Orientation;
use cgra_arch::page::PageId;
use cgra_arch::CgraConfig;
use cgra_core::fold::{validate_fold, FoldViolation, FoldedSchedule};
use cgra_mapper::MapResult;

/// Lift one shallow [`FoldViolation`] into a coded [`Diagnostic`].
pub fn diagnostic_from_fold_violation(v: &FoldViolation) -> Diagnostic {
    match v {
        FoldViolation::OutsidePage { pe } => Diagnostic::new(
            Code::A220FoldOutsidePage,
            Span::Pe(pe.0),
            "folded op escaped the target page".to_string(),
        ),
        FoldViolation::SlotCollision { pe, slot } => Diagnostic::new(
            Code::A221FoldSlotCollision,
            Span::Pe(pe.0),
            format!("two folded steps at modulo slot {slot}"),
        ),
        FoldViolation::BrokenStep { edge, from, to } => Diagnostic::new(
            Code::A222FoldBrokenStep,
            Span::Edge(*edge as u32),
            format!("step endpoints {from} and {to} are neither equal nor adjacent"),
        ),
        FoldViolation::BackwardsStep { edge } => Diagnostic::new(
            Code::A223FoldBackwardsStep,
            Span::Edge(*edge as u32),
            "step runs backwards in folded time".to_string(),
        ),
        FoldViolation::RfOverflow {
            pe,
            required,
            available,
        } => Diagnostic::new(
            Code::A224FoldRfOverflow,
            Span::Pe(pe.0),
            format!("rotating file needs {required} registers, has {available}"),
        ),
    }
}

/// The expected orientation of each source page, re-derived from the
/// serpentine page walk (independent of `cgra_core::fold`).
fn expected_orientations(cgra: &CgraConfig) -> Vec<Orientation> {
    let layout = cgra.layout();
    let mut expected = Vec::with_capacity(layout.num_pages());
    let mut o = Orientation::Identity;
    for i in 0..layout.num_pages() {
        if i > 0 {
            let prev = layout.origin(PageId(i as u16 - 1));
            let here = layout.origin(PageId(i as u16));
            let step = if prev.r == here.r {
                Orientation::MirrorV
            } else {
                Orientation::MirrorH
            };
            o = o.then(step);
        }
        expected.push(o);
    }
    expected
}

/// Analyze a folded schedule against the mapping it came from.
pub fn analyze_fold(result: &MapResult, cgra: &CgraConfig, folded: &FoldedSchedule) -> Report {
    let mut diagnostics: Vec<Diagnostic> = validate_fold(result, cgra, folded)
        .iter()
        .map(diagnostic_from_fold_violation)
        .collect();

    let expected = expected_orientations(cgra);
    if folded.orientations.len() == expected.len() {
        for (page, (&got, &want)) in folded.orientations.iter().zip(expected.iter()).enumerate() {
            if got != want {
                diagnostics.push(Diagnostic::new(
                    Code::A225OrientationPlanMismatch,
                    Span::Page(page as u16),
                    format!("mirrored {got:?}, Fig. 6 serpentine rule requires {want:?}"),
                ));
            }
        }
    } else {
        diagnostics.push(Diagnostic::new(
            Code::A225OrientationPlanMismatch,
            Span::Global,
            format!(
                "{} orientations recorded for {} pages",
                folded.orientations.len(),
                expected.len()
            ),
        ));
    }

    Report::from_diagnostics(diagnostics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgra_core::fold::fold_to_page;
    use cgra_mapper::{map_constrained, MapOptions};

    #[test]
    fn clean_folds_analyze_clean() {
        let cgra = CgraConfig::square(4).with_rf_size(32);
        let r = map_constrained(&cgra_dfg::kernels::fir(), &cgra, &MapOptions::default())
            .expect("maps");
        let folded = fold_to_page(&r, &cgra, PageId(0)).expect("folds");
        let rep = analyze_fold(&r, &cgra, &folded);
        assert!(rep.is_clean(), "{}", rep.render());
    }

    #[test]
    fn wrong_mirror_is_flagged_even_without_dataflow_damage() {
        let cgra = CgraConfig::square(4).with_rf_size(32);
        let r = map_constrained(&cgra_dfg::kernels::fir(), &cgra, &MapOptions::default())
            .expect("maps");
        let mut folded = fold_to_page(&r, &cgra, PageId(0)).expect("folds");
        folded.orientations[2] = Orientation::Identity;
        let rep = analyze_fold(&r, &cgra, &folded);
        assert!(
            rep.codes().contains(&Code::A225OrientationPlanMismatch),
            "{}",
            rep.render()
        );
    }
}
