//! Modulo-resource and rotating-register analysis of a [`Mapping`].
//!
//! The resource/dataflow core reuses the mapper crate's independent
//! re-derivation ([`validate_mapping`] rebuilds the MRT and walks every
//! edge realisation from scratch — it never trusts the search that
//! produced the mapping) and lifts each [`Violation`] into the coded
//! diagnostic vocabulary. On top of that, this pass adds a check the
//! shallow validator lacks: **per-value lifetime analysis** (A102) — a
//! single value whose live range alone exceeds the rotating file is
//! unschedulable on this fabric no matter how other values are packed,
//! which is a stronger statement than the aggregate-pressure overflow
//! (A101).

use crate::diag::{Code, Diagnostic, Report, Span};
use cgra_arch::register::RotatingRf;
use cgra_arch::CgraConfig;
use cgra_mapper::{validate_mapping, MapDfg, MapMode, Mapping, Violation};

/// Lift one shallow [`Violation`] into a coded [`Diagnostic`].
pub fn diagnostic_from_violation(v: &Violation) -> Diagnostic {
    match v {
        Violation::SlotConflict { pe, slot } => Diagnostic::new(
            Code::A001PeSlotConflict,
            Span::Pe(pe.0),
            format!("two reservations collide at modulo slot {slot}"),
        ),
        Violation::BusOverflow { row, slot } => Diagnostic::new(
            Code::A002BusOverflow,
            Span::Global,
            format!("row {row} bus over capacity at slot {slot}"),
        ),
        Violation::BadCapability { node } => Diagnostic::new(
            Code::A003MissingFu,
            Span::Node(*node as u32),
            "placed on a PE lacking the required functional unit".to_string(),
        ),
        Violation::BadEdge { edge, reason } if *edge == usize::MAX => {
            Diagnostic::new(Code::A004ShapeMismatch, Span::Global, reason.clone())
        }
        Violation::BadEdge { edge, reason } => Diagnostic::new(
            Code::A005BadDataflow,
            Span::Edge(*edge as u32),
            reason.clone(),
        ),
        Violation::RingViolation { edge, reason } => Diagnostic::new(
            Code::A201RingStepViolation,
            Span::Edge(*edge as u32),
            reason.clone(),
        ),
        Violation::RfOverflow {
            pe,
            required,
            available,
        } => Diagnostic::new(
            Code::A101RfPressure,
            Span::Pe(pe.0),
            format!("rotating file needs {required} registers, has {available}"),
        ),
    }
}

/// Analyze a mapping: modulo-resource exclusivity, dataflow legality,
/// ring discipline, aggregate RF pressure (via the shallow validator)
/// plus per-value lifetime analysis (A102).
pub fn analyze_mapping(
    mdfg: &MapDfg,
    cgra: &CgraConfig,
    mapping: &Mapping,
    mode: MapMode,
) -> Report {
    let mut diagnostics: Vec<Diagnostic> = validate_mapping(mdfg, cgra, mapping, mode)
        .iter()
        .map(diagnostic_from_violation)
        .collect();

    // Shape errors poison every downstream index; stop like the shallow
    // validator does.
    if diagnostics
        .iter()
        .any(|d| d.code == Code::A004ShapeMismatch)
    {
        return Report::from_diagnostics(diagnostics);
    }

    // --- Per-value live-range analysis (first principles). ---
    // A value produced at `t` and last consumed at `T` occupies
    // `(T - t) / II + 1` rotating registers on its resident PE
    // (`RotatingRf::registers_for_range`). If that single interval
    // exceeds the file, the lifetime itself is unschedulable — report it
    // on the producing node, independent of aggregate packing.
    if mode.allows_waiting() {
        let dfg = &mdfg.dfg;
        let ii = mapping.ii;
        let rf = cgra.rf().size() as u32;
        for n in dfg.node_ids() {
            let pu = mapping.placements[n.index()];
            let avail = pu.time as u64 + 1;
            // The value's last read from the producer PE itself: direct
            // consumers (plus iteration-distance shifts) and the first
            // hop of each outgoing route.
            let mut last_read: Option<u64> = None;
            for eid in dfg.succ_edges(n) {
                let ei = eid.index();
                if mdfg.is_mem_edge(ei) {
                    continue;
                }
                let e = dfg.edge(eid);
                let read = match mapping.routes[ei].first() {
                    Some(h) => h.time as u64,
                    None => {
                        mapping.placements[e.dst.index()].time as u64
                            + e.distance as u64 * ii as u64
                    }
                };
                if read >= avail {
                    last_read = Some(last_read.map_or(read, |l| l.max(read)));
                }
            }
            if let Some(read) = last_read {
                let needed = RotatingRf::registers_for_range(avail, read, ii);
                if needed > rf {
                    diagnostics.push(Diagnostic::new(
                        Code::A102LifetimeExceedsRotation,
                        Span::Node(n.0),
                        format!(
                            "value live {avail}..={read} needs {needed} rotating registers \
                             (II {ii}), file holds {rf}"
                        ),
                    ));
                }
            }
        }
    }

    Report::from_diagnostics(diagnostics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgra_arch::topology::PeId;
    use cgra_mapper::{map_baseline, map_constrained, MapOptions, Placement};

    #[test]
    fn clean_mappings_analyze_clean() {
        let cgra = CgraConfig::square(4);
        let k = cgra_dfg::kernels::fir();
        for (r, mode) in [
            (
                map_baseline(&k, &cgra, &MapOptions::default()).unwrap(),
                MapMode::Baseline,
            ),
            (
                map_constrained(&k, &cgra, &MapOptions::default()).unwrap(),
                MapMode::Constrained,
            ),
        ] {
            let rep = analyze_mapping(&r.mdfg, &cgra, &r.mapping, mode);
            assert!(rep.is_clean(), "{}", rep.render());
        }
    }

    #[test]
    fn lifetime_beyond_rotation_is_flagged_on_the_node() {
        // One producer, one consumer parked absurdly long: with II=2 and
        // an 8-register file, a park of 16·II busts the single value's
        // own live range.
        let mut b = cgra_dfg::DfgBuilder::new("t");
        let u = b.node(cgra_dfg::OpKind::Const);
        b.apply(cgra_dfg::OpKind::Add, &[u]);
        let m = MapDfg::unspilled(&b.build().unwrap());
        let cgra = CgraConfig::square(4);
        let mapping = Mapping {
            ii: 2,
            placements: vec![
                Placement {
                    pe: PeId(0),
                    time: 0,
                },
                Placement {
                    pe: PeId(1),
                    time: 33,
                },
            ],
            routes: vec![Vec::new()],
        };
        let rep = analyze_mapping(&m, &cgra, &mapping, MapMode::Baseline);
        assert!(
            rep.codes().contains(&Code::A102LifetimeExceedsRotation),
            "{}",
            rep.render()
        );
        // The aggregate pass agrees (the one value already overflows).
        assert!(rep.codes().contains(&Code::A101RfPressure));
    }

    #[test]
    fn shape_mismatch_short_circuits() {
        let mut b = cgra_dfg::DfgBuilder::new("t");
        let u = b.node(cgra_dfg::OpKind::Const);
        b.apply(cgra_dfg::OpKind::Add, &[u]);
        let m = MapDfg::unspilled(&b.build().unwrap());
        let cgra = CgraConfig::square(4);
        let mapping = Mapping {
            ii: 2,
            placements: vec![Placement {
                pe: PeId(0),
                time: 0,
            }],
            routes: vec![Vec::new()],
        };
        let rep = analyze_mapping(&m, &cgra, &mapping, MapMode::Baseline);
        assert_eq!(rep.codes(), vec![Code::A004ShapeMismatch]);
    }
}
