//! `cgra-analyze` — whole-pipeline static schedule analyzer.
//!
//! Every artifact the pipeline produces — a modulo [`Mapping`], a
//! page-level schedule, a §VI-C shrink plan, a degraded plan, a folded
//! one-page schedule, or a cached kernel profile — can be handed to this
//! crate and re-checked **from first principles** against the
//! architecture and dataflow models, independent of the code that
//! produced it. Findings are structured [`Diagnostic`]s with stable
//! codes (`A001`…`A405`), a severity, a source span, and both JSON and
//! human renderers, collected into a [`Report`].
//!
//! The analyzer is its own verifier: [`mutate`] holds a library of
//! seeded mutation operators that each break one invariant of a
//! known-good artifact, and the test suite asserts every mutant is
//! flagged with the expected code class (100 % kill rate) and that every
//! code is reachable.
//!
//! Pass families:
//!
//! * [`analyze_mapping`] — modulo-resource exclusivity, dataflow
//!   legality, ring discipline, aggregate RF pressure, per-value
//!   lifetime analysis (`A0xx`/`A1xx`/`A201`).
//! * [`analyze_paged`] — §VI-B paging constraints on a page-level
//!   schedule (`A202`/`A204`).
//! * [`analyze_plan`] — §VI-C shrink-plan legality (`A21x`).
//! * [`analyze_fold`] — Fig. 6 fold including D4 orientation legality
//!   (`A22x`).
//! * [`analyze_degraded`] — degradation legality against a fault map
//!   (`A30x`).
//! * [`analyze_recovery`] — post-repair re-expansion legality: repaired
//!   page reuse, quarantine, and iteration conservation (`A31x`).
//! * [`analyze_profile`] — semantic integrity of cached kernel profiles
//!   (`A40x`).
//!
//! [`Mapping`]: cgra_mapper::Mapping

#![deny(missing_docs)]
#![warn(clippy::pedantic)]
#![allow(
    clippy::cast_possible_truncation,
    clippy::cast_lossless,
    clippy::module_name_repetitions,
    clippy::must_use_candidate,
    clippy::missing_panics_doc,
    clippy::doc_markdown
)]

pub mod degrade;
pub mod diag;
pub mod fold;
pub mod mapping;
pub mod mutate;
pub mod paged;
pub mod plan;
pub mod profile;
pub mod recovery;

pub use degrade::analyze_degraded;
pub use diag::{Code, Diagnostic, Report, Severity, Span};
pub use fold::{analyze_fold, diagnostic_from_fold_violation};
pub use mapping::{analyze_mapping, diagnostic_from_violation};
pub use paged::analyze_paged;
pub use plan::{analyze_plan, diagnostic_from_transform_violation};
pub use profile::analyze_profile;
pub use recovery::analyze_recovery;
