//! Golden JSON snapshot of the analyzer's diagnostics for one
//! seeded-broken FIR mapping (the `shift-producer-late` mutant under
//! seed 42). Pins the exact codes, spans, severities and message text —
//! renderer drift and code renumbering both show up as byte diffs.
//!
//! Refresh intentionally with
//! `UPDATE_GOLDEN=1 cargo test -p cgra-analyze --test golden_diagnostics`.

use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); regenerate with UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "snapshot {name} diverged; if intentional, rerun with UPDATE_GOLDEN=1"
    );
}

#[test]
fn broken_fir_diagnostics_match_golden() {
    let report = cgra_analyze::mutate::broken_fir_report(42);
    assert!(report.has_errors(), "the mutant must not analyze clean");
    let mut json = report.to_json().pretty();
    json.push('\n');
    check_golden("fir_broken.json", &json);
    // The human renderer is pinned too — one line per diagnostic.
    check_golden("fir_broken.txt", &report.render());
}
