//! Mutation-tested verification of the analyzer (the tentpole's own
//! self-test): every seeded operator must be killed with its expected
//! code class, and every diagnostic code must be reachable.

use cgra_analyze::mutate::{operators, run_all, Artifacts};
use cgra_analyze::Code;

/// Seeds chosen to vary every seeded operator's mutation site.
const SEEDS: [u64; 4] = [0, 1, 42, 0xC6_4A11];

#[test]
fn fixtures_are_known_good() {
    let rep = Artifacts::build().baseline_report();
    assert!(
        !rep.has_errors(),
        "fixtures must analyze clean:\n{}",
        rep.render()
    );
}

#[test]
fn every_mutant_is_killed_under_every_seed() {
    for seed in SEEDS {
        let outcomes = run_all(seed);
        let survivors: Vec<_> = outcomes.iter().filter(|o| !o.killed()).collect();
        assert!(
            survivors.is_empty(),
            "seed {seed}: {} of {} mutants survived: {:?}",
            survivors.len(),
            outcomes.len(),
            survivors
                .iter()
                .map(|o| (o.name, o.expected, o.report.codes()))
                .collect::<Vec<_>>()
        );
    }
}

#[test]
fn every_code_is_produced_by_some_operator() {
    let produced: std::collections::HashSet<Code> =
        run_all(0).iter().flat_map(|o| o.report.codes()).collect();
    let missing: Vec<Code> = Code::ALL
        .iter()
        .copied()
        .filter(|c| !produced.contains(c))
        .collect();
    assert!(
        missing.is_empty(),
        "codes no operator can produce: {missing:?}"
    );
}

#[test]
fn every_operator_expects_a_distinct_failure_it_actually_causes() {
    // The declared expectation must be among the produced codes (that is
    // `killed`), and the library must cover all code classes by
    // expectation except the shared A005 (two dataflow operators).
    let ops = operators();
    assert!(
        ops.len() >= 15,
        "ISSUE requires ~15+ operators, have {}",
        ops.len()
    );
    let expected: std::collections::HashSet<Code> = ops.iter().map(|o| o.expected).collect();
    assert_eq!(
        expected.len(),
        Code::ALL.len(),
        "every code class needs an operator whose expectation is exactly it"
    );
}

#[test]
fn kill_rate_report() {
    // Not an assertion beyond totals — prints the per-operator table so
    // `cargo test -p cgra-analyze -- --nocapture kill_rate` doubles as
    // the EXPERIMENTS.md kill-rate report.
    let outcomes = run_all(42);
    let killed = outcomes.iter().filter(|o| o.killed()).count();
    println!("mutation kill rate: {killed}/{} (seed 42)", outcomes.len());
    for o in &outcomes {
        println!(
            "  {:28} expected {:4} -> {} [{}]",
            o.name,
            o.expected.as_str(),
            if o.killed() { "killed" } else { "SURVIVED" },
            o.report
                .codes()
                .iter()
                .map(|c| c.as_str())
                .collect::<Vec<_>>()
                .join(",")
        );
    }
    assert_eq!(killed, outcomes.len());
}
