//! Offline stand-in for the `serde` facade.
//!
//! This build environment has no access to crates.io, so the real serde
//! cannot be vendored. The workspace only ever used serde as derive
//! decoration — no call site serializes through the serde data model —
//! so this shim keeps the existing `#[derive(Serialize, Deserialize)]`
//! annotations compiling as *markers*:
//!
//! * [`Serialize`] / [`Deserialize`] are empty marker traits;
//! * the derive macros (re-exported from `serde_derive` under the
//!   `derive` feature, exactly like the real facade) emit marker impls.
//!
//! Actual persistence in this workspace goes through the hand-rolled
//! JSON codec in `cgra-bench` (`jsonio` + `mapcache`), which implements
//! explicit `to_json`/`from_json` conversions for the few types that hit
//! disk. If the real serde ever becomes available, deleting this crate
//! and restoring the registry dependency is the only change needed: the
//! annotations are already in place.

#![warn(missing_docs)]

/// Marker for types that are serializable. The real trait's methods are
/// intentionally absent — see the crate docs.
pub trait Serialize {}

/// Marker for types that are deserializable. The real trait's lifetime
/// parameter and methods are intentionally absent — see the crate docs.
pub trait Deserialize {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
