//! Simulation reports and derived metrics.

use serde::{Deserialize, Serialize};

/// Outcome of one simulated run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Cycle at which the last thread finished.
    pub makespan: u64,
    /// Per-thread completion times.
    pub thread_finish: Vec<u64>,
    /// Total kernel iterations executed on the CGRA.
    pub cgra_iterations: u64,
    /// Integral of allocated pages over time (page·cycles) — CGRA
    /// occupancy.
    pub page_cycles: u64,
    /// Number of shrink transformations performed.
    pub shrinks: u64,
    /// Number of expand transformations performed.
    pub expands: u64,
    /// Cycles threads spent stalled waiting for CGRA pages.
    pub stall_cycles: u64,
}

impl SimReport {
    /// Mean page occupancy over the run (pages in use on average).
    pub fn mean_pages_busy(&self) -> f64 {
        if self.makespan == 0 {
            0.0
        } else {
            self.page_cycles as f64 / self.makespan as f64
        }
    }

    /// Average thread completion time.
    pub fn mean_finish(&self) -> f64 {
        if self.thread_finish.is_empty() {
            0.0
        } else {
            self.thread_finish.iter().sum::<u64>() as f64 / self.thread_finish.len() as f64
        }
    }
}

/// Percentage improvement of `ours` over `baseline` in completion time
/// (positive = ours finished sooner). The Fig. 9 metric.
pub fn improvement_percent(baseline_makespan: u64, ours_makespan: u64) -> f64 {
    if ours_makespan == 0 {
        return 0.0;
    }
    (baseline_makespan as f64 / ours_makespan as f64 - 1.0) * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improvement_signs() {
        assert!(improvement_percent(200, 100) > 0.0);
        assert!(improvement_percent(100, 200) < 0.0);
        assert_eq!(improvement_percent(100, 100), 0.0);
    }

    #[test]
    fn improvement_magnitude() {
        assert!((improvement_percent(300, 100) - 200.0).abs() < 1e-9);
    }

    #[test]
    fn mean_pages() {
        let r = SimReport {
            makespan: 100,
            thread_finish: vec![50, 100],
            cgra_iterations: 10,
            page_cycles: 400,
            shrinks: 0,
            expands: 0,
            stall_cycles: 0,
        };
        assert_eq!(r.mean_pages_busy(), 4.0);
        assert_eq!(r.mean_finish(), 75.0);
    }
}
