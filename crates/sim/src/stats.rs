//! Simulation reports and derived metrics.

use serde::{Deserialize, Serialize};

/// Counters for the fault-injection subsystem. All zero in a fault-free
/// run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FaultStats {
    /// Fault events applied during the run.
    pub injected: u64,
    /// Pages that transitioned to dead.
    pub pages_killed: u64,
    /// Pages that transitioned to degraded (still usable, slower).
    pub pages_degraded: u64,
    /// Threads shrunk/remapped onto surviving pages by a page death.
    pub threads_remapped: u64,
    /// Threads that lost their last page and had to re-queue.
    pub threads_revoked: u64,
    /// Kernel iterations that were in flight when their pages died and
    /// had to be re-run after re-admission.
    pub iterations_deferred: u64,
    /// Cycles from each fault to the moment the affected thread was
    /// making progress again (remap boundary + switch overhead, or
    /// re-admission from the queue).
    pub recovery_cycles: u64,
    /// Pages repaired after a transient fault (Dead → Repairing →
    /// Healthy, returned to the allocator's free pool).
    pub repairs: u64,
    /// Threads re-expanded onto repaired pages by the supervision
    /// policy.
    pub reexpansions: u64,
}

impl FaultStats {
    /// Whether any fault was applied.
    pub fn any(&self) -> bool {
        self.injected > 0
    }

    /// Add `other`'s counters into `self` (sweep drivers aggregate the
    /// per-seed counters of one point this way).
    pub fn absorb(&mut self, other: &FaultStats) {
        self.injected += other.injected;
        self.pages_killed += other.pages_killed;
        self.pages_degraded += other.pages_degraded;
        self.threads_remapped += other.threads_remapped;
        self.threads_revoked += other.threads_revoked;
        self.iterations_deferred += other.iterations_deferred;
        self.recovery_cycles += other.recovery_cycles;
        self.repairs += other.repairs;
        self.reexpansions += other.reexpansions;
    }
}

/// Outcome of one simulated run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Cycle at which the last thread finished.
    pub makespan: u64,
    /// Per-thread completion times.
    pub thread_finish: Vec<u64>,
    /// Total kernel iterations executed on the CGRA.
    pub cgra_iterations: u64,
    /// Integral of allocated pages over time (page·cycles) — CGRA
    /// occupancy.
    pub page_cycles: u64,
    /// Number of shrink transformations performed.
    pub shrinks: u64,
    /// Number of expand transformations performed.
    pub expands: u64,
    /// Cycles threads spent stalled waiting for CGRA pages.
    pub stall_cycles: u64,
    /// Fault-injection counters (all zero when no faults were injected).
    pub faults: FaultStats,
}

impl SimReport {
    /// Mean page occupancy over the run (pages in use on average).
    pub fn mean_pages_busy(&self) -> f64 {
        if self.makespan == 0 {
            0.0
        } else {
            self.page_cycles as f64 / self.makespan as f64
        }
    }

    /// Average thread completion time.
    pub fn mean_finish(&self) -> f64 {
        if self.thread_finish.is_empty() {
            0.0
        } else {
            self.thread_finish.iter().sum::<u64>() as f64 / self.thread_finish.len() as f64
        }
    }
}

/// Percentage improvement of `ours` over `baseline` in completion time
/// (positive = ours finished sooner). The Fig. 9 metric.
pub fn improvement_percent(baseline_makespan: u64, ours_makespan: u64) -> f64 {
    if ours_makespan == 0 {
        return 0.0;
    }
    (baseline_makespan as f64 / ours_makespan as f64 - 1.0) * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improvement_signs() {
        assert!(improvement_percent(200, 100) > 0.0);
        assert!(improvement_percent(100, 200) < 0.0);
        assert_eq!(improvement_percent(100, 100), 0.0);
    }

    #[test]
    fn improvement_magnitude() {
        assert!((improvement_percent(300, 100) - 200.0).abs() < 1e-9);
    }

    #[test]
    fn mean_pages() {
        let r = SimReport {
            makespan: 100,
            thread_finish: vec![50, 100],
            cgra_iterations: 10,
            page_cycles: 400,
            shrinks: 0,
            expands: 0,
            stall_cycles: 0,
            faults: FaultStats::default(),
        };
        assert_eq!(r.mean_pages_busy(), 4.0);
        assert!(!r.faults.any());
        assert_eq!(r.mean_finish(), 75.0);
    }
}
