//! A versioned discrete-event queue.
//!
//! Rates in the simulator change when the page allocator reshuffles the
//! CGRA, which invalidates previously-scheduled completion events. Rather
//! than deleting from the heap, events carry a per-thread *version*; a
//! popped event whose version is stale is discarded (the standard lazy
//! deletion scheme).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// An event bound for `thread` at `time`, valid only if the thread's
/// version still equals `version`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Simulation time.
    pub time: u64,
    /// Target thread.
    pub thread: usize,
    /// Version at scheduling time.
    pub version: u64,
}

/// Min-heap of events ordered by (time, thread) for determinism.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<(u64, usize, u64)>>,
    versions: Vec<u64>,
}

impl EventQueue {
    /// Create a queue for `threads` threads.
    pub fn new(threads: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            versions: vec![0; threads],
        }
    }

    /// Current version of a thread.
    pub fn version(&self, thread: usize) -> u64 {
        self.versions[thread]
    }

    /// Invalidate all pending events of a thread; returns the new version.
    pub fn bump(&mut self, thread: usize) -> u64 {
        self.versions[thread] += 1;
        self.versions[thread]
    }

    /// Schedule an event at the thread's *current* version.
    pub fn push(&mut self, time: u64, thread: usize) {
        self.heap
            .push(Reverse((time, thread, self.versions[thread])));
    }

    /// Time of the next *valid* event without popping it (stale heads
    /// are discarded on the way). The fault-injection loop uses this to
    /// apply every fault due *before* the next thread event — applying a
    /// fault bumps versions, which can invalidate an already-popped
    /// event, so peeking first is load-bearing, not an optimisation.
    pub fn peek_time(&mut self) -> Option<u64> {
        while let Some(&Reverse((time, thread, version))) = self.heap.peek() {
            if self.versions[thread] == version {
                return Some(time);
            }
            self.heap.pop();
        }
        None
    }

    /// Pop the next *valid* event, skipping stale ones.
    pub fn pop(&mut self) -> Option<Event> {
        while let Some(Reverse((time, thread, version))) = self.heap.pop() {
            if self.versions[thread] == version {
                return Some(Event {
                    time,
                    thread,
                    version,
                });
            }
        }
        None
    }

    /// Whether any (possibly stale) events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new(3);
        q.push(30, 2);
        q.push(10, 0);
        q.push(20, 1);
        assert_eq!(q.pop().unwrap().time, 10);
        assert_eq!(q.pop().unwrap().time, 20);
        assert_eq!(q.pop().unwrap().time, 30);
        assert!(q.pop().is_none());
    }

    #[test]
    fn stale_events_are_skipped() {
        let mut q = EventQueue::new(1);
        q.push(10, 0);
        q.bump(0);
        q.push(20, 0);
        let e = q.pop().unwrap();
        assert_eq!(e.time, 20);
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_by_thread_id() {
        let mut q = EventQueue::new(2);
        q.push(10, 1);
        q.push(10, 0);
        assert_eq!(q.pop().unwrap().thread, 0);
        assert_eq!(q.pop().unwrap().thread, 1);
    }

    #[test]
    fn peek_skips_stale_and_preserves_pop() {
        let mut q = EventQueue::new(2);
        q.push(10, 0);
        q.bump(0); // stale
        q.push(25, 0);
        q.push(15, 1);
        assert_eq!(q.peek_time(), Some(15));
        assert_eq!(q.pop().unwrap().time, 15);
        assert_eq!(q.peek_time(), Some(25));
        assert_eq!(q.pop().unwrap().time, 25);
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn version_accessor_tracks_bumps() {
        let mut q = EventQueue::new(1);
        assert_eq!(q.version(0), 0);
        q.bump(0);
        assert_eq!(q.version(0), 1);
    }
}
