//! Re-entrant, `Send`-safe simulation entry points.
//!
//! Every simulator in this crate is a pure function of its inputs: no
//! globals, no interior mutability, no thread-locals. That makes the
//! whole crate safe to drive from many worker threads at once — the
//! property the `cgra-bench` parallel sweep engine relies on. This
//! module states that contract in code ([`assert_parallel_safe`] fails
//! to *compile* if a simulator input or output ever stops being
//! `Send + Sync`) and provides the one-call entry the engine uses per
//! sweep point.

use crate::baseline::simulate_baseline;
use crate::error::SimError;
use crate::kernel_lib::KernelLibrary;
use crate::multithreaded::{simulate_multithreaded_faulty_traced, MtConfig};
use crate::stats::SimReport;
use crate::workload::{generate, WorkloadParams};
use cgra_arch::FaultSpec;
use cgra_obs::Tracer;

/// Baseline and multithreaded reports for one generated workload.
#[derive(Debug, Clone, PartialEq)]
pub struct PointReport {
    /// Single-threaded FCFS system.
    pub baseline: SimReport,
    /// Page-multiplexed multithreaded system.
    pub multithreaded: SimReport,
}

/// Generate the workload for `params` and simulate it on both systems.
///
/// Re-entrant: depends only on the arguments, so concurrent calls from
/// any number of threads (sharing one `&KernelLibrary`) produce
/// identical results to serial calls. The workload is regenerated from
/// `params.seed` — callers get determinism by deriving that seed from
/// point coordinates, never from worker identity or call order.
///
/// # Errors
///
/// Propagates any [`SimError`] from the multithreaded simulator so the
/// bench engine can report a poisoned point in its own result slot.
pub fn simulate_point(
    lib: &KernelLibrary,
    params: &WorkloadParams,
    mt: MtConfig,
) -> Result<PointReport, SimError> {
    simulate_point_faulty(lib, params, mt, FaultSpec::Off)
}

/// [`simulate_point`] under a fault schedule: `faults` is expanded into
/// concrete events over the library's fabric and injected into the
/// multithreaded run (the baseline system models today's monolithic
/// CGRA, which has no page-level fault story — it stays fault-free so
/// degradation curves compare against a fixed reference).
pub fn simulate_point_faulty(
    lib: &KernelLibrary,
    params: &WorkloadParams,
    mt: MtConfig,
    faults: FaultSpec,
) -> Result<PointReport, SimError> {
    simulate_point_faulty_traced(lib, params, mt, faults, &Tracer::off())
}

/// [`simulate_point_faulty`] with the multithreaded run emitted to
/// `tracer` (the baseline FCFS run is a fixed reference and stays
/// untraced). Still re-entrant: `Tracer` is `Send + Sync`, so concurrent
/// sweep points may share one sink — callers that need each point's
/// events contiguous should wrap the call in
/// [`Tracer::batched`](cgra_obs::Tracer::batched).
pub fn simulate_point_faulty_traced(
    lib: &KernelLibrary,
    params: &WorkloadParams,
    mt: MtConfig,
    faults: FaultSpec,
    tracer: &Tracer,
) -> Result<PointReport, SimError> {
    let workload = generate(lib, params);
    let events = faults.schedule(lib.num_pages);
    Ok(PointReport {
        baseline: simulate_baseline(lib, &workload),
        multithreaded: simulate_multithreaded_faulty_traced(lib, &workload, mt, &events, tracer)?,
    })
}

/// Compile-time proof that simulator inputs and outputs cross threads.
///
/// Called from nowhere at runtime; if `KernelLibrary`, `SimReport`,
/// `MtConfig`, `WorkloadParams` or `SimError` ever gain a
/// non-`Send`/`Sync` field (an `Rc`, a raw pointer, a thread-local
/// handle), this stops compiling — turning a latent data race in the
/// sweep engine into a build error.
pub fn assert_parallel_safe() {
    fn ok<T: Send + Sync>() {}
    ok::<KernelLibrary>();
    ok::<SimReport>();
    ok::<PointReport>();
    ok::<MtConfig>();
    ok::<WorkloadParams>();
    ok::<SimError>();
    ok::<FaultSpec>();
    ok::<Tracer>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multithreaded::simulate_multithreaded;
    use crate::workload::CgraNeed;
    use cgra_mapper::MapOptions;

    #[test]
    fn simulate_point_matches_manual_composition() {
        let lib = KernelLibrary::compile_benchmarks(
            &cgra_arch::CgraConfig::square(4),
            &MapOptions::default(),
        )
        .unwrap();
        let params = WorkloadParams {
            threads: 4,
            need: CgraNeed::Medium,
            work_per_thread: 10_000,
            bursts: 2,
            seed: 11,
        };
        let combined = simulate_point(&lib, &params, MtConfig::default()).unwrap();
        let workload = generate(&lib, &params);
        assert_eq!(combined.baseline, simulate_baseline(&lib, &workload));
        assert_eq!(
            combined.multithreaded,
            simulate_multithreaded(&lib, &workload, MtConfig::default()).unwrap()
        );
    }

    #[test]
    fn off_spec_equals_plain_point() {
        let lib = KernelLibrary::compile_benchmarks(
            &cgra_arch::CgraConfig::square(4),
            &MapOptions::default(),
        )
        .unwrap();
        let params = WorkloadParams {
            threads: 4,
            need: CgraNeed::High,
            work_per_thread: 10_000,
            bursts: 2,
            seed: 3,
        };
        let plain = simulate_point(&lib, &params, MtConfig::default()).unwrap();
        let off =
            simulate_point_faulty(&lib, &params, MtConfig::default(), FaultSpec::Off).unwrap();
        assert_eq!(plain, off);
    }

    #[test]
    fn concurrent_calls_agree_with_serial() {
        let lib = KernelLibrary::compile_benchmarks(
            &cgra_arch::CgraConfig::square(4),
            &MapOptions::default(),
        )
        .unwrap();
        let all_params: Vec<WorkloadParams> = (0..8)
            .map(|i| WorkloadParams {
                threads: 1 + i % 4,
                need: CgraNeed::ALL[i % 3],
                work_per_thread: 8_000,
                bursts: 2,
                seed: i as u64,
            })
            .collect();
        let serial: Vec<Result<PointReport, SimError>> = all_params
            .iter()
            .map(|p| simulate_point(&lib, p, MtConfig::default()))
            .collect();
        let parallel: Vec<Result<PointReport, SimError>> = std::thread::scope(|s| {
            let handles: Vec<_> = all_params
                .iter()
                .map(|p| s.spawn(|| simulate_point(&lib, p, MtConfig::default())))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(serial, parallel);
    }
}
