//! Pre-compiled kernel profiles — what the OS knows about each kernel.
//!
//! Compilation happens once, offline (§V: "threads are to be compiled
//! independently of each other"); at runtime the OS only consults the
//! profile: the baseline II, the paging-constrained II, the number of
//! pages the schedule actually occupies, and the transformed II for every
//! page budget on the halving chain.

use cgra_arch::CgraConfig;
use cgra_core::transform::{transform_traced, Strategy};
use cgra_core::PagedSchedule;
use cgra_mapper::{map_baseline_traced, map_constrained_traced, MapError, MapOptions};
use cgra_obs::Tracer;
use serde::{Deserialize, Serialize};

/// The page budgets the allocator hands out: `N, N/2, N/4, …, 1`
/// (integer halving, §VII-B.1's policy).
pub fn halving_chain(n: u16) -> Vec<u16> {
    let mut chain = Vec::new();
    let mut m = n;
    while m >= 1 {
        chain.push(m);
        if m == 1 {
            break;
        }
        m /= 2;
    }
    chain
}

/// Everything the runtime needs to know about one compiled kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelProfile {
    /// Kernel name.
    pub name: String,
    /// II of the *unconstrained* mapping (the single-threaded baseline
    /// system runs at this rate).
    pub ii_baseline: u32,
    /// II of the paging-constrained mapping (full-array rate in the
    /// multithreaded system).
    pub ii_constrained: u32,
    /// Pages the constrained schedule actually occupies.
    pub used_pages: u16,
    /// `(M, II_q)` for every budget on the halving chain, from the actual
    /// PageMaster/block transform (not the analytic formula).
    pub ii_by_pages: Vec<(u16, u32)>,
}

impl KernelProfile {
    /// Compile a kernel for `cgra` and derive its profile.
    pub fn compile(
        dfg: &cgra_dfg::Dfg,
        cgra: &CgraConfig,
        opts: &MapOptions,
    ) -> Result<Self, MapError> {
        Self::compile_traced(dfg, cgra, opts, &Tracer::off())
    }

    /// [`compile`](Self::compile) with both mapper searches and every
    /// halving-chain transform emitted to `tracer`.
    pub fn compile_traced(
        dfg: &cgra_dfg::Dfg,
        cgra: &CgraConfig,
        opts: &MapOptions,
        tracer: &Tracer,
    ) -> Result<Self, MapError> {
        let base = map_baseline_traced(dfg, cgra, opts, tracer)?;
        let cons = map_constrained_traced(dfg, cgra, opts, tracer)?;
        // Debug builds re-audit every artifact with the independent
        // static analyzer; release builds trust the producing code.
        #[cfg(debug_assertions)]
        for r in [&base, &cons] {
            let rep = cgra_analyze::analyze_mapping(&r.mdfg, cgra, &r.mapping, r.mode);
            debug_assert!(
                !rep.has_errors(),
                "{} mapping ({:?}) failed analysis:\n{}",
                dfg.name,
                r.mode,
                rep.render()
            );
        }
        let paged = PagedSchedule::from_mapping(&cons, cgra)
            .map_err(|e| MapError::Unmappable {
                reason: e.to_string(),
            })?
            .trimmed();
        #[cfg(debug_assertions)]
        {
            let rep = cgra_analyze::analyze_paged(&paged, cgra.rf().size());
            debug_assert!(
                !rep.has_errors(),
                "{} paged schedule failed analysis:\n{}",
                dfg.name,
                rep.render()
            );
        }
        let used = paged.num_pages;
        let n = cgra.layout().num_pages() as u16;
        let mut ii_by_pages = Vec::new();
        for m in halving_chain(n) {
            let ii_q = if m >= used {
                // §VII-B.1: schedules not using the entire CGRA need no
                // transformation for budgets covering their footprint.
                cons.ii()
            } else {
                let plan = transform_traced(&paged, m, Strategy::Auto, tracer).map_err(|e| {
                    MapError::Unmappable {
                        reason: format!("transform to {m} pages: {e}"),
                    }
                })?;
                #[cfg(debug_assertions)]
                {
                    let rep = cgra_analyze::analyze_plan(&paged, &plan);
                    debug_assert!(
                        !rep.has_errors(),
                        "{} plan at M={m} failed analysis:\n{}",
                        dfg.name,
                        rep.render()
                    );
                }
                plan.ii_q_ceil()
            };
            ii_by_pages.push((m, ii_q));
        }
        #[cfg(debug_assertions)]
        {
            let rep = cgra_analyze::analyze_profile(
                &dfg.name,
                base.ii(),
                cons.ii(),
                used,
                &ii_by_pages,
                n,
            );
            debug_assert!(
                !rep.has_errors(),
                "{} profile failed analysis:\n{}",
                dfg.name,
                rep.render()
            );
        }
        Ok(KernelProfile {
            name: dfg.name.clone(),
            ii_baseline: base.ii(),
            ii_constrained: cons.ii(),
            used_pages: used,
            ii_by_pages,
        })
    }

    /// The smallest halving-chain budget that covers the kernel's
    /// footprint — what the thread asks the allocator for.
    pub fn wanted_pages(&self, n: u16) -> u16 {
        halving_chain(n)
            .into_iter()
            .filter(|&m| m >= self.used_pages)
            .min()
            .unwrap_or(n)
    }

    /// Cycles per kernel iteration with `m` pages allocated, or `None`
    /// if `m` is off the halving chain the profile was built for. The
    /// simulator's fault paths use this to report a typed
    /// [`SimError`](crate::error::SimError) instead of panicking.
    pub fn try_ii_at(&self, m: u16) -> Option<u32> {
        self.ii_by_pages
            .iter()
            .find(|&&(pm, _)| pm == m)
            .map(|&(_, ii)| ii)
    }

    /// Cycles per kernel iteration with `m` pages allocated.
    ///
    /// # Panics
    /// Panics if `m` is not on the halving chain the profile was built
    /// for (use [`try_ii_at`](Self::try_ii_at) on fallible paths).
    pub fn ii_at(&self, m: u16) -> u32 {
        self.try_ii_at(m)
            .unwrap_or_else(|| panic!("{}: no transform cached for M={m}", self.name))
    }
}

/// The compiled library: one profile per benchmark kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelLibrary {
    /// Profiles in `cgra_dfg::kernels::NAMES` order.
    pub profiles: Vec<KernelProfile>,
    /// Pages in the fabric the library was compiled for.
    pub num_pages: u16,
}

impl KernelLibrary {
    /// Compile all 11 benchmark kernels for a fabric.
    pub fn compile_benchmarks(cgra: &CgraConfig, opts: &MapOptions) -> Result<Self, MapError> {
        Self::compile_benchmarks_traced(cgra, opts, &Tracer::off())
    }

    /// [`compile_benchmarks`](Self::compile_benchmarks) with every
    /// kernel's compilation emitted to `tracer` (one `MapBegin`/`MapEnd`
    /// segment per mapper search, in `cgra_dfg::kernels::NAMES` order).
    pub fn compile_benchmarks_traced(
        cgra: &CgraConfig,
        opts: &MapOptions,
        tracer: &Tracer,
    ) -> Result<Self, MapError> {
        let profiles = cgra_dfg::kernels::all()
            .iter()
            .map(|k| KernelProfile::compile_traced(k, cgra, opts, tracer))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(KernelLibrary {
            profiles,
            num_pages: cgra.layout().num_pages() as u16,
        })
    }

    /// Number of kernels.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// Whether the library is empty.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// Profile by index.
    pub fn profile(&self, kernel: usize) -> &KernelProfile {
        &self.profiles[kernel]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn halving_chains() {
        assert_eq!(halving_chain(16), vec![16, 8, 4, 2, 1]);
        assert_eq!(halving_chain(9), vec![9, 4, 2, 1]);
        assert_eq!(halving_chain(4), vec![4, 2, 1]);
        assert_eq!(halving_chain(1), vec![1]);
    }

    #[test]
    fn profile_compiles_for_mpeg2_on_4x4() {
        let cgra = CgraConfig::square(4);
        let p = KernelProfile::compile(&cgra_dfg::kernels::mpeg2(), &cgra, &MapOptions::default())
            .expect("compiles");
        assert!(p.ii_constrained >= p.ii_baseline);
        assert!(p.used_pages >= 1 && p.used_pages <= 4);
        // Rates weakly degrade as pages shrink.
        let iis: Vec<u32> = p.ii_by_pages.iter().map(|&(_, ii)| ii).collect();
        for w in iis.windows(2) {
            assert!(w[1] >= w[0], "rates not monotone: {iis:?}");
        }
        // One page executes the used pages sequentially.
        let one = p.ii_at(1);
        assert!(one >= p.ii_constrained * p.used_pages as u32 / 2);
    }

    #[test]
    fn wanted_pages_covers_footprint() {
        let cgra = CgraConfig::square(4);
        let p = KernelProfile::compile(&cgra_dfg::kernels::sor(), &cgra, &MapOptions::default())
            .expect("compiles");
        let want = p.wanted_pages(4);
        assert!(want >= p.used_pages);
        assert!(halving_chain(4).contains(&want));
    }

    #[test]
    #[should_panic(expected = "no transform cached")]
    fn ii_at_off_chain_panics() {
        let cgra = CgraConfig::square(4);
        let p =
            KernelProfile::compile(&cgra_dfg::kernels::laplace(), &cgra, &MapOptions::default())
                .expect("compiles");
        p.ii_at(3);
    }
}
