//! Thread workload generation (§VII-B.1).
//!
//! "Each thread is randomly and independently generated, where portions
//! of the thread are either assigned to the processor or the CGRA. For
//! portions assigned to the CGRA, the schedule that is ran is randomly
//! chosen so as to not create bias towards any one kernel."

use crate::kernel_lib::KernelLibrary;
use rand::prelude::*;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// The fraction of a thread's work accelerated on the CGRA (§VII-B.1's
/// three "CGRA need" operating points).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CgraNeed {
    /// 50 % of the thread's nominal cycles on the CGRA.
    Low,
    /// 75 %.
    Medium,
    /// 87.5 % — chosen so processor-side effects are negligible by
    /// Amdahl's argument.
    High,
}

impl CgraNeed {
    /// The fraction as a number.
    pub fn fraction(self) -> f64 {
        match self {
            CgraNeed::Low => 0.50,
            CgraNeed::Medium => 0.75,
            CgraNeed::High => 0.875,
        }
    }

    /// All three operating points, in the paper's order.
    pub const ALL: [CgraNeed; 3] = [CgraNeed::Low, CgraNeed::Medium, CgraNeed::High];

    /// Label used in tables ("50%", "75%", "87.5%").
    pub fn label(self) -> &'static str {
        match self {
            CgraNeed::Low => "50%",
            CgraNeed::Medium => "75%",
            CgraNeed::High => "87.5%",
        }
    }
}

/// One phase of a thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Segment {
    /// Run on the host processor for this many cycles.
    Cpu(u64),
    /// Run `iterations` of kernel `kernel` on the CGRA.
    Cgra {
        /// Index into the kernel library.
        kernel: usize,
        /// Loop iterations to execute.
        iterations: u64,
    },
}

/// A generated thread: an alternating sequence of CPU and CGRA segments.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThreadSpec {
    /// The phases, executed in order.
    pub segments: Vec<Segment>,
}

impl ThreadSpec {
    /// Nominal cycles of CGRA work (at the constrained full-array rate)
    /// given a library — used to calibrate the need fraction.
    pub fn nominal_cgra_cycles(&self, lib: &KernelLibrary) -> u64 {
        self.segments
            .iter()
            .map(|s| match s {
                Segment::Cgra { kernel, iterations } => {
                    *iterations * lib.profile(*kernel).ii_constrained as u64
                }
                Segment::Cpu(_) => 0,
            })
            .sum()
    }

    /// Total CPU cycles.
    pub fn cpu_cycles(&self) -> u64 {
        self.segments
            .iter()
            .map(|s| match s {
                Segment::Cpu(c) => *c,
                _ => 0,
            })
            .sum()
    }
}

/// Workload generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadParams {
    /// Threads to generate.
    pub threads: usize,
    /// CGRA need operating point.
    pub need: CgraNeed,
    /// Nominal total work per thread, in cycles (CPU + CGRA at the
    /// constrained full-array rate).
    pub work_per_thread: u64,
    /// CGRA bursts per thread (segments alternate CPU / CGRA).
    pub bursts: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadParams {
    fn default() -> Self {
        WorkloadParams {
            threads: 4,
            need: CgraNeed::Medium,
            work_per_thread: 100_000,
            bursts: 4,
            seed: 1,
        }
    }
}

/// Generate a multithreaded workload against a compiled kernel library.
///
/// Each thread gets `bursts` CGRA segments with randomly chosen kernels,
/// interleaved with CPU segments; segment sizes are jittered ±50 % but the
/// thread's total CGRA-cycle share matches `need.fraction()` of its work.
pub fn generate(lib: &KernelLibrary, params: &WorkloadParams) -> Vec<ThreadSpec> {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut threads = Vec::with_capacity(params.threads);
    for _ in 0..params.threads {
        let cgra_budget = (params.work_per_thread as f64 * params.need.fraction()) as u64;
        let cpu_budget = params.work_per_thread - cgra_budget;
        let mut segments = Vec::with_capacity(params.bursts * 2);
        // Split each budget into `bursts` jittered chunks.
        let chunks = |total: u64, parts: usize, rng: &mut StdRng| -> Vec<u64> {
            let base = total / parts as u64;
            let mut v: Vec<u64> = (0..parts)
                .map(|_| {
                    let jitter = rng.gen_range(0.5..1.5);
                    ((base as f64) * jitter) as u64
                })
                .collect();
            // Repair the sum to hit the budget exactly.
            let sum: u64 = v.iter().sum();
            if sum > 0 {
                let last = v.len() - 1;
                v[last] = v[last].saturating_add(total.saturating_sub(sum));
                if sum > total {
                    v[last] = v[last].saturating_sub(sum - total);
                }
            }
            v
        };
        let cpu_chunks = chunks(cpu_budget, params.bursts, &mut rng);
        let cgra_chunks = chunks(cgra_budget, params.bursts, &mut rng);
        for (cpu, cgra) in cpu_chunks.into_iter().zip(cgra_chunks) {
            if cpu > 0 {
                segments.push(Segment::Cpu(cpu));
            }
            let kernel = rng.gen_range(0..lib.len());
            let ii = lib.profile(kernel).ii_constrained as u64;
            let iterations = (cgra / ii).max(1);
            segments.push(Segment::Cgra { kernel, iterations });
        }
        threads.push(ThreadSpec { segments });
    }
    threads
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgra_mapper::MapOptions;

    fn lib() -> KernelLibrary {
        KernelLibrary::compile_benchmarks(&cgra_arch::CgraConfig::square(4), &MapOptions::default())
            .expect("library compiles")
    }

    #[test]
    fn need_fractions() {
        assert_eq!(CgraNeed::Low.fraction(), 0.5);
        assert_eq!(CgraNeed::Medium.fraction(), 0.75);
        assert_eq!(CgraNeed::High.fraction(), 0.875);
    }

    #[test]
    fn generation_is_deterministic() {
        let lib = lib();
        let p = WorkloadParams::default();
        assert_eq!(generate(&lib, &p), generate(&lib, &p));
    }

    #[test]
    fn different_seeds_differ() {
        let lib = lib();
        let a = generate(&lib, &WorkloadParams::default());
        let b = generate(
            &lib,
            &WorkloadParams {
                seed: 2,
                ..Default::default()
            },
        );
        assert_ne!(a, b);
    }

    #[test]
    fn need_fraction_is_respected() {
        let lib = lib();
        for need in CgraNeed::ALL {
            let threads = generate(
                &lib,
                &WorkloadParams {
                    need,
                    threads: 8,
                    work_per_thread: 200_000,
                    ..Default::default()
                },
            );
            for t in &threads {
                let cgra = t.nominal_cgra_cycles(&lib) as f64;
                let total = cgra + t.cpu_cycles() as f64;
                let f = cgra / total;
                assert!(
                    (f - need.fraction()).abs() < 0.1,
                    "need {need:?}: got fraction {f}"
                );
            }
        }
    }

    #[test]
    fn segments_alternate_and_have_work() {
        let lib = lib();
        let threads = generate(&lib, &WorkloadParams::default());
        for t in &threads {
            assert!(!t.segments.is_empty());
            assert!(t.segments.iter().any(|s| matches!(s, Segment::Cgra { .. })));
            for s in &t.segments {
                match s {
                    Segment::Cpu(c) => assert!(*c > 0),
                    Segment::Cgra { iterations, .. } => assert!(*iterations > 0),
                }
            }
        }
    }
}
