//! # cgra-sim — multithreaded CGRA system simulation
//!
//! A deterministic discrete-event simulator reproducing the paper's
//! §VII-B experiment: a multithreaded host whose threads offload loop
//! kernels to one shared CGRA, under two accelerator regimes:
//!
//! * [`baseline::simulate_baseline`] — today's single-threaded,
//!   non-preemptive CGRA: kernels occupy the whole array FCFS.
//! * [`multithreaded::simulate_multithreaded`] — the paper's proposal:
//!   page-granular space multiplexing with PageMaster shrink/expand,
//!   driven by pre-computed `II_q(M)` tables from real transforms.
//!
//! Workloads ([`workload`]) follow §VII-B.1: 1–16 threads, CGRA need of
//! 50 / 75 / 87.5 %, kernels drawn uniformly from the 11-benchmark
//! library ([`kernel_lib`]).
//!
//! Faults are first-class:
//! [`multithreaded::simulate_multithreaded_faulty`] injects page deaths
//! and degradations mid-run (pages revoked via the allocator, owners
//! remapped or re-queued), and every fallible path reports a typed
//! [`error::SimError`] instead of panicking, so one poisoned sweep point
//! cannot abort a whole bench run.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod alloc;
pub mod baseline;
pub mod entry;
pub mod error;
pub mod event;
pub mod kernel_lib;
pub mod multithreaded;
pub mod stats;
pub mod workload;

pub use alloc::{Allocator, ExpandPolicy, Expansion, PageDeath, RequestOutcome};
pub use baseline::simulate_baseline;
pub use entry::{simulate_point, simulate_point_faulty, simulate_point_faulty_traced, PointReport};
pub use error::SimError;
pub use kernel_lib::{halving_chain, KernelLibrary, KernelProfile};
pub use multithreaded::{
    simulate_multithreaded, simulate_multithreaded_faulty, simulate_multithreaded_faulty_traced,
    MtConfig,
};
pub use stats::{improvement_percent, FaultStats, SimReport};
pub use workload::{generate, CgraNeed, Segment, ThreadSpec, WorkloadParams};
