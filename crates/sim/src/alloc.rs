//! The OS page allocator (§VII-B.1).
//!
//! Budgets move along the halving chain: "when another thread requests
//! access to the CGRA, the thread using the most pages is decreased to use
//! half as many pages and the new thread is resized to fit into the freed
//! portion … threads are expanded as other threads complete."

use crate::kernel_lib::halving_chain;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// How freed pages are redistributed when a thread leaves the CGRA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExpandPolicy {
    /// Grow the smallest allocation first (default; fairness-oriented).
    SmallestFirst,
    /// Grow the largest allocation first (throughput for the leader).
    LargestFirst,
    /// Never expand (ablation: measures how much expansion contributes).
    None,
}

/// Outcome of a CGRA page request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestOutcome {
    /// Pages granted without touching anyone.
    Granted {
        /// Pages handed to the requester.
        pages: u16,
    },
    /// A running thread was shrunk to make room.
    Shrunk {
        /// The shrunk thread.
        victim: usize,
        /// The victim's new allocation.
        victim_pages: u16,
        /// Pages handed to the requester.
        pages: u16,
    },
    /// No pages available (every running thread is at one page): stall.
    Queued,
}

/// Page bookkeeping for the multithreaded CGRA.
#[derive(Debug, Clone)]
pub struct Allocator {
    n: u16,
    free: u16,
    running: BTreeMap<usize, u16>,
    chain: Vec<u16>,
}

impl Allocator {
    /// An allocator over `n` pages.
    pub fn new(n: u16) -> Self {
        Allocator {
            n,
            free: n,
            running: BTreeMap::new(),
            chain: halving_chain(n),
        }
    }

    /// Pages currently unallocated.
    pub fn free_pages(&self) -> u16 {
        self.free
    }

    /// Current allocation of a thread (None if not on the CGRA).
    pub fn allocation(&self, thread: usize) -> Option<u16> {
        self.running.get(&thread).copied()
    }

    /// Number of threads on the CGRA.
    pub fn active(&self) -> usize {
        self.running.len()
    }

    fn largest_chain_at_most(&self, x: u16) -> Option<u16> {
        self.chain.iter().copied().find(|&c| c <= x)
    }

    fn chain_above(&self, c: u16) -> Option<u16> {
        self.chain.iter().copied().rev().find(|&x| x > c)
    }

    fn chain_below(&self, c: u16) -> Option<u16> {
        self.chain.iter().copied().find(|&x| x < c)
    }

    /// Request pages for `thread` (wanting `want`, a halving-chain value).
    pub fn request(&mut self, thread: usize, want: u16) -> RequestOutcome {
        debug_assert!(self.chain.contains(&want), "want {want} not on chain");
        debug_assert!(!self.running.contains_key(&thread));
        // Unused portion first: no transformation of anyone needed.
        if self.free > 0 {
            if let Some(pages) = self.largest_chain_at_most(self.free.min(want)) {
                self.free -= pages;
                self.running.insert(thread, pages);
                return RequestOutcome::Granted { pages };
            }
        }
        // Shrink the thread using the most pages (ties: lowest id).
        let victim = self
            .running
            .iter()
            .max_by_key(|&(id, &pages)| (pages, std::cmp::Reverse(*id)))
            .map(|(&id, &pages)| (id, pages));
        let Some((victim, victim_pages)) = victim else {
            return RequestOutcome::Queued;
        };
        let Some(new_pages) = self.chain_below(victim_pages) else {
            return RequestOutcome::Queued; // everyone already at 1 page
        };
        let freed = victim_pages - new_pages;
        self.running.insert(victim, new_pages);
        self.free += freed;
        let pages = self
            .largest_chain_at_most(self.free.min(want))
            .expect("freed at least one page");
        self.free -= pages;
        self.running.insert(thread, pages);
        RequestOutcome::Shrunk {
            victim,
            victim_pages: new_pages,
            pages,
        }
    }

    /// Release a thread's pages; returns how many were freed.
    pub fn release(&mut self, thread: usize) -> u16 {
        let pages = self.running.remove(&thread).expect("thread not running");
        self.free += pages;
        pages
    }

    /// Expand running threads into free pages per `policy`. `want(t)`
    /// caps each thread's growth. Returns `(thread, new_pages)` for every
    /// applied expansion.
    pub fn expand(
        &mut self,
        policy: ExpandPolicy,
        want: impl Fn(usize) -> u16,
    ) -> Vec<(usize, u16)> {
        if policy == ExpandPolicy::None {
            return Vec::new();
        }
        let mut applied = Vec::new();
        loop {
            let mut candidates: Vec<(usize, u16)> = self
                .running
                .iter()
                .map(|(&id, &pages)| (id, pages))
                .filter(|&(id, pages)| pages < want(id))
                .collect();
            match policy {
                ExpandPolicy::SmallestFirst => candidates.sort_by_key(|&(id, p)| (p, id)),
                ExpandPolicy::LargestFirst => {
                    candidates.sort_by_key(|&(id, p)| (std::cmp::Reverse(p), id))
                }
                ExpandPolicy::None => unreachable!(),
            }
            let mut progressed = false;
            for (id, pages) in candidates {
                let Some(up) = self.chain_above(pages) else {
                    continue;
                };
                let up = up.min(want(id));
                if up <= pages {
                    continue;
                }
                let cost = up - pages;
                if cost <= self.free {
                    self.free -= cost;
                    self.running.insert(id, up);
                    applied.push((id, up));
                    progressed = true;
                    break;
                }
            }
            if !progressed {
                break;
            }
        }
        applied
    }

    /// Sanity: allocations + free always equals N.
    pub fn check_invariant(&self) -> bool {
        self.running.values().sum::<u16>() + self.free == self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_thread_gets_what_it_wants() {
        let mut a = Allocator::new(8);
        assert_eq!(a.request(0, 8), RequestOutcome::Granted { pages: 8 });
        assert!(a.check_invariant());
    }

    #[test]
    fn unused_portion_served_without_shrinking() {
        let mut a = Allocator::new(8);
        a.request(0, 4);
        // 4 pages free: second thread fits without a shrink.
        assert_eq!(a.request(1, 4), RequestOutcome::Granted { pages: 4 });
        assert!(a.check_invariant());
    }

    #[test]
    fn shrink_halves_the_biggest() {
        let mut a = Allocator::new(8);
        a.request(0, 8);
        let out = a.request(1, 8);
        assert_eq!(
            out,
            RequestOutcome::Shrunk {
                victim: 0,
                victim_pages: 4,
                pages: 4
            }
        );
        assert!(a.check_invariant());
    }

    #[test]
    fn cascade_of_arrivals() {
        let mut a = Allocator::new(8);
        a.request(0, 8);
        a.request(1, 8); // 4 + 4
        let out = a.request(2, 8); // shrink thread 0 (tie-lowest) to 2
        assert_eq!(
            out,
            RequestOutcome::Shrunk {
                victim: 0,
                victim_pages: 2,
                pages: 2
            }
        );
        assert_eq!(a.allocation(1), Some(4));
        assert!(a.check_invariant());
    }

    #[test]
    fn queue_when_everyone_at_one_page() {
        let mut a = Allocator::new(2);
        a.request(0, 2);
        a.request(1, 2); // 1 + 1
        assert_eq!(a.request(2, 2), RequestOutcome::Queued);
        assert!(a.check_invariant());
    }

    #[test]
    fn release_and_expand_smallest_first() {
        let mut a = Allocator::new(8);
        a.request(0, 8);
        a.request(1, 8); // 4+4
        a.request(2, 8); // 2+4+2
        assert_eq!(a.allocation(0), Some(2));
        a.release(1);
        let grown = a.expand(ExpandPolicy::SmallestFirst, |_| 8);
        // Thread 0 (2 pages) doubles to 4, then thread 2 doubles to 4.
        assert_eq!(grown, vec![(0, 4), (2, 4)]);
        assert!(a.check_invariant());
    }

    #[test]
    fn expansion_respects_want() {
        let mut a = Allocator::new(8);
        a.request(0, 2);
        let grown = a.expand(ExpandPolicy::SmallestFirst, |_| 2);
        assert!(grown.is_empty(), "{grown:?}");
    }

    #[test]
    fn expand_none_is_inert() {
        let mut a = Allocator::new(8);
        a.request(0, 2);
        assert!(a.expand(ExpandPolicy::None, |_| 8).is_empty());
    }

    #[test]
    fn nine_page_chain_composition() {
        // 6x6 with 2x2 pages: 9 pages, chain [9,4,2,1].
        let mut a = Allocator::new(9);
        assert_eq!(a.request(0, 9), RequestOutcome::Granted { pages: 9 });
        let out = a.request(1, 9);
        // Victim halves 9 -> 4, freeing 5; newcomer takes 4 (largest chain <= 5).
        assert_eq!(
            out,
            RequestOutcome::Shrunk {
                victim: 0,
                victim_pages: 4,
                pages: 4
            }
        );
        assert_eq!(a.free_pages(), 1);
        // A third small thread can take the loose page without shrinking.
        assert_eq!(a.request(2, 1), RequestOutcome::Granted { pages: 1 });
        assert!(a.check_invariant());
    }
}
