//! The OS page allocator (§VII-B.1).
//!
//! Budgets move along the halving chain: "when another thread requests
//! access to the CGRA, the thread using the most pages is decreased to use
//! half as many pages and the new thread is resized to fit into the freed
//! portion … threads are expanded as other threads complete."
//!
//! Beyond budget *counts*, the allocator tracks page *identity*: which
//! physical page backs which thread. Counts drive every policy decision
//! (so fault-free runs are bit-identical to the count-only allocator this
//! replaced); identity exists so a [`kill_page`](Allocator::kill_page)
//! fault can find the owning thread and revoke exactly the page that
//! died. Grants take the lowest-numbered free pages; shrinks return a
//! thread's highest-numbered pages — both deterministic.

use crate::error::SimError;
use crate::kernel_lib::halving_chain;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// How freed pages are redistributed when a thread leaves the CGRA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExpandPolicy {
    /// Grow the smallest allocation first (default; fairness-oriented).
    SmallestFirst,
    /// Grow the largest allocation first (throughput for the leader).
    LargestFirst,
    /// Never expand (ablation: measures how much expansion contributes).
    None,
}

/// Outcome of a CGRA page request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestOutcome {
    /// Pages granted without touching anyone.
    Granted {
        /// Pages handed to the requester.
        pages: u16,
    },
    /// A running thread was shrunk to make room.
    Shrunk {
        /// The shrunk thread.
        victim: usize,
        /// The victim's allocation before the shrink.
        victim_was: u16,
        /// The victim's new allocation.
        victim_pages: u16,
        /// Pages handed to the requester.
        pages: u16,
    },
    /// No pages available (every running thread is at one page): stall.
    Queued,
}

/// What happened when a page died ([`Allocator::kill_page`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageDeath {
    /// The page was already dead; nothing changed.
    AlreadyDead,
    /// The page was free; capacity shrank by one, no thread affected.
    Unallocated,
    /// The owning thread dropped to the next halving-chain budget.
    Shrunk {
        /// The affected thread.
        victim: usize,
        /// Its allocation before the fault.
        from_pages: u16,
        /// Its allocation after (next chain value below).
        to_pages: u16,
    },
    /// The owning thread was at one page: its allocation is gone and it
    /// must re-queue.
    Revoked {
        /// The evicted thread.
        victim: usize,
    },
}

/// One applied expansion: `thread` grew `from_pages → to_pages`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Expansion {
    /// The grown thread.
    pub thread: usize,
    /// Allocation before the expansion.
    pub from_pages: u16,
    /// Allocation after.
    pub to_pages: u16,
}

/// Per-page ownership state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PageState {
    Free,
    Dead,
    Owned(usize),
}

/// Page bookkeeping for the multithreaded CGRA.
#[derive(Debug, Clone)]
pub struct Allocator {
    n: u16,
    free: u16,
    running: BTreeMap<usize, u16>,
    chain: Vec<u16>,
    pages: Vec<PageState>,
}

impl Allocator {
    /// An allocator over `n` pages.
    pub fn new(n: u16) -> Self {
        Allocator {
            n,
            free: n,
            running: BTreeMap::new(),
            chain: halving_chain(n),
            pages: vec![PageState::Free; n as usize],
        }
    }

    /// Pages currently unallocated (and not dead).
    pub fn free_pages(&self) -> u16 {
        self.free
    }

    /// Pages still usable (free or owned; excludes dead).
    pub fn usable_pages(&self) -> u16 {
        self.pages
            .iter()
            .filter(|s| !matches!(s, PageState::Dead))
            .count() as u16
    }

    /// Current allocation of a thread (None if not on the CGRA).
    pub fn allocation(&self, thread: usize) -> Option<u16> {
        self.running.get(&thread).copied()
    }

    /// Number of threads on the CGRA.
    pub fn active(&self) -> usize {
        self.running.len()
    }

    /// The thread owning `page`, if any.
    pub fn owner_of(&self, page: u16) -> Option<usize> {
        match self.pages.get(page as usize)? {
            PageState::Owned(t) => Some(*t),
            _ => None,
        }
    }

    /// The physical pages held by `thread`, ascending.
    pub fn pages_of(&self, thread: usize) -> Vec<u16> {
        self.pages
            .iter()
            .enumerate()
            .filter(|&(_, s)| *s == PageState::Owned(thread))
            .map(|(i, _)| i as u16)
            .collect()
    }

    fn largest_chain_at_most(&self, x: u16) -> Option<u16> {
        self.chain.iter().copied().find(|&c| c <= x)
    }

    fn chain_above(&self, c: u16) -> Option<u16> {
        self.chain.iter().copied().rev().find(|&x| x > c)
    }

    fn chain_below(&self, c: u16) -> Option<u16> {
        self.chain.iter().copied().find(|&x| x < c)
    }

    /// Hand the `count` lowest-numbered free pages to `thread`.
    fn take_free(&mut self, thread: usize, count: u16) -> Result<(), SimError> {
        let mut left = count;
        for s in self.pages.iter_mut() {
            if left == 0 {
                break;
            }
            if *s == PageState::Free {
                *s = PageState::Owned(thread);
                left -= 1;
            }
        }
        if left != 0 {
            return Err(SimError::InvariantViolated {
                detail: format!(
                    "free count {} but only {} free pages",
                    self.free,
                    count - left
                ),
            });
        }
        self.free -= count;
        Ok(())
    }

    /// Return `count` of `thread`'s highest-numbered pages to the free
    /// pool.
    fn give_back(&mut self, thread: usize, count: u16) -> Result<(), SimError> {
        let mut left = count;
        for s in self.pages.iter_mut().rev() {
            if left == 0 {
                break;
            }
            if *s == PageState::Owned(thread) {
                *s = PageState::Free;
                left -= 1;
            }
        }
        if left != 0 {
            return Err(SimError::InvariantViolated {
                detail: format!("thread {thread} owns fewer than {count} pages"),
            });
        }
        self.free += count;
        Ok(())
    }

    /// Request pages for `thread` (wanting `want`, a halving-chain value).
    pub fn request(&mut self, thread: usize, want: u16) -> Result<RequestOutcome, SimError> {
        debug_assert!(self.chain.contains(&want), "want {want} not on chain");
        if self.running.contains_key(&thread) {
            return Err(SimError::InvariantViolated {
                detail: format!("thread {thread} requested pages while already on the CGRA"),
            });
        }
        // Unused portion first: no transformation of anyone needed.
        if self.free > 0 {
            if let Some(pages) = self.largest_chain_at_most(self.free.min(want)) {
                self.take_free(thread, pages)?;
                self.running.insert(thread, pages);
                return Ok(RequestOutcome::Granted { pages });
            }
        }
        // Shrink the thread using the most pages (ties: lowest id).
        let victim = self
            .running
            .iter()
            .max_by_key(|&(id, &pages)| (pages, std::cmp::Reverse(*id)))
            .map(|(&id, &pages)| (id, pages));
        let Some((victim, victim_was)) = victim else {
            return Ok(RequestOutcome::Queued);
        };
        let Some(new_pages) = self.chain_below(victim_was) else {
            return Ok(RequestOutcome::Queued); // everyone already at 1 page
        };
        let freed = victim_was - new_pages;
        self.running.insert(victim, new_pages);
        self.give_back(victim, freed)?;
        let pages =
            self.largest_chain_at_most(self.free.min(want))
                .ok_or(SimError::InvariantViolated {
                    detail: "shrink freed no usable budget".to_string(),
                })?;
        self.take_free(thread, pages)?;
        self.running.insert(thread, pages);
        Ok(RequestOutcome::Shrunk {
            victim,
            victim_was,
            victim_pages: new_pages,
            pages,
        })
    }

    /// Release a thread's pages; returns how many were freed.
    pub fn release(&mut self, thread: usize) -> Result<u16, SimError> {
        let pages = self
            .running
            .remove(&thread)
            .ok_or(SimError::UnknownThread { thread })?;
        self.give_back(thread, pages)?;
        Ok(pages)
    }

    /// A page died. Capacity shrinks by one; if a thread owned the page
    /// it drops to the next halving-chain budget below (its other freed
    /// pages return to the pool), or loses its allocation entirely when
    /// it was already at one page.
    pub fn kill_page(&mut self, page: u16) -> Result<PageDeath, SimError> {
        let Some(&state) = self.pages.get(page as usize) else {
            return Err(SimError::PageOutOfRange {
                page,
                num_pages: self.n,
            });
        };
        match state {
            PageState::Dead => Ok(PageDeath::AlreadyDead),
            PageState::Free => {
                self.pages[page as usize] = PageState::Dead;
                self.free -= 1;
                Ok(PageDeath::Unallocated)
            }
            PageState::Owned(victim) => {
                let from_pages = self
                    .allocation(victim)
                    .ok_or(SimError::UnknownThread { thread: victim })?;
                self.pages[page as usize] = PageState::Dead;
                match self.chain_below(from_pages) {
                    None => {
                        // Was at the chain bottom (one page): fully evicted.
                        self.running.remove(&victim);
                        Ok(PageDeath::Revoked { victim })
                    }
                    Some(to_pages) => {
                        // The thread keeps `to_pages` of its surviving
                        // pages; the rest (beyond the dead one) free up.
                        let extra = from_pages - 1 - to_pages;
                        self.give_back(victim, extra)?;
                        self.running.insert(victim, to_pages);
                        Ok(PageDeath::Shrunk {
                            victim,
                            from_pages,
                            to_pages,
                        })
                    }
                }
            }
        }
    }

    /// A repaired page returns to the free pool (Dead → Free). Returns
    /// `true` if the page was actually dead; reviving a page that is
    /// free or owned is a no-op (`false`) so a stale repair completion
    /// can never double-count capacity.
    pub fn revive(&mut self, page: u16) -> Result<bool, SimError> {
        let Some(&state) = self.pages.get(page as usize) else {
            return Err(SimError::PageOutOfRange {
                page,
                num_pages: self.n,
            });
        };
        if state == PageState::Dead {
            self.pages[page as usize] = PageState::Free;
            self.free += 1;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Supervised re-expansion after a page repair: repeatedly grow the
    /// live thread with the largest *deficit* below its desired budget
    /// (ties: lowest id) by one halving-chain step, while free pages
    /// cover the cost. Unlike [`expand`](Allocator::expand), which
    /// orders by current size per policy, this orders by how much a
    /// thread has been shrunk — the most-shrunk thread recovers first,
    /// which is the supervision policy recovered capacity is for.
    /// Returns every applied expansion.
    pub fn expand_most_shrunk(
        &mut self,
        want: impl Fn(usize) -> u16,
    ) -> Result<Vec<Expansion>, SimError> {
        let mut applied = Vec::new();
        loop {
            let mut candidates: Vec<(usize, u16, u16)> = self
                .running
                .iter()
                .map(|(&id, &pages)| (id, pages, want(id)))
                .filter(|&(_, pages, desired)| pages < desired)
                .collect();
            candidates
                .sort_by_key(|&(id, pages, desired)| (std::cmp::Reverse(desired - pages), id));
            let mut progressed = false;
            for (id, pages, desired) in candidates {
                let Some(up) = self.chain_above(pages) else {
                    continue;
                };
                let up = up.min(desired);
                if up <= pages {
                    continue;
                }
                let cost = up - pages;
                if cost <= self.free {
                    self.take_free(id, cost)?;
                    self.running.insert(id, up);
                    applied.push(Expansion {
                        thread: id,
                        from_pages: pages,
                        to_pages: up,
                    });
                    progressed = true;
                    break;
                }
            }
            if !progressed {
                break;
            }
        }
        Ok(applied)
    }

    /// Expand running threads into free pages per `policy`. `want(t)`
    /// caps each thread's growth. Returns every applied expansion.
    pub fn expand(
        &mut self,
        policy: ExpandPolicy,
        want: impl Fn(usize) -> u16,
    ) -> Result<Vec<Expansion>, SimError> {
        if policy == ExpandPolicy::None {
            return Ok(Vec::new());
        }
        let mut applied = Vec::new();
        loop {
            let mut candidates: Vec<(usize, u16)> = self
                .running
                .iter()
                .map(|(&id, &pages)| (id, pages))
                .filter(|&(id, pages)| pages < want(id))
                .collect();
            match policy {
                ExpandPolicy::SmallestFirst => candidates.sort_by_key(|&(id, p)| (p, id)),
                ExpandPolicy::LargestFirst => {
                    candidates.sort_by_key(|&(id, p)| (std::cmp::Reverse(p), id))
                }
                ExpandPolicy::None => unreachable!(),
            }
            let mut progressed = false;
            for (id, pages) in candidates {
                let Some(up) = self.chain_above(pages) else {
                    continue;
                };
                let up = up.min(want(id));
                if up <= pages {
                    continue;
                }
                let cost = up - pages;
                if cost <= self.free {
                    self.take_free(id, cost)?;
                    self.running.insert(id, up);
                    applied.push(Expansion {
                        thread: id,
                        from_pages: pages,
                        to_pages: up,
                    });
                    progressed = true;
                    break;
                }
            }
            if !progressed {
                break;
            }
        }
        Ok(applied)
    }

    /// Sanity: allocations + free + dead always equals N, and the
    /// identity map agrees with the counts.
    pub fn check_invariant(&self) -> bool {
        let dead = self
            .pages
            .iter()
            .filter(|s| matches!(s, PageState::Dead))
            .count() as u16;
        let free_ident = self
            .pages
            .iter()
            .filter(|s| matches!(s, PageState::Free))
            .count() as u16;
        let counts_ok = self.running.values().sum::<u16>() + self.free + dead == self.n;
        let identity_ok = free_ident == self.free
            && self
                .running
                .iter()
                .all(|(&t, &c)| self.pages_of(t).len() as u16 == c);
        counts_ok && identity_ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_thread_gets_what_it_wants() {
        let mut a = Allocator::new(8);
        assert_eq!(
            a.request(0, 8).unwrap(),
            RequestOutcome::Granted { pages: 8 }
        );
        assert_eq!(a.pages_of(0), (0..8).collect::<Vec<u16>>());
        assert!(a.check_invariant());
    }

    #[test]
    fn unused_portion_served_without_shrinking() {
        let mut a = Allocator::new(8);
        a.request(0, 4).unwrap();
        // 4 pages free: second thread fits without a shrink.
        assert_eq!(
            a.request(1, 4).unwrap(),
            RequestOutcome::Granted { pages: 4 }
        );
        assert_eq!(a.pages_of(1), vec![4, 5, 6, 7]);
        assert!(a.check_invariant());
    }

    #[test]
    fn shrink_halves_the_biggest() {
        let mut a = Allocator::new(8);
        a.request(0, 8).unwrap();
        let out = a.request(1, 8).unwrap();
        assert_eq!(
            out,
            RequestOutcome::Shrunk {
                victim: 0,
                victim_was: 8,
                victim_pages: 4,
                pages: 4
            }
        );
        // Victim keeps its lowest pages; newcomer takes the freed ones.
        assert_eq!(a.pages_of(0), vec![0, 1, 2, 3]);
        assert_eq!(a.pages_of(1), vec![4, 5, 6, 7]);
        assert!(a.check_invariant());
    }

    #[test]
    fn cascade_of_arrivals() {
        let mut a = Allocator::new(8);
        a.request(0, 8).unwrap();
        a.request(1, 8).unwrap(); // 4 + 4
        let out = a.request(2, 8).unwrap(); // shrink thread 0 (tie-lowest) to 2
        assert_eq!(
            out,
            RequestOutcome::Shrunk {
                victim: 0,
                victim_was: 4,
                victim_pages: 2,
                pages: 2
            }
        );
        assert_eq!(a.allocation(1), Some(4));
        assert!(a.check_invariant());
    }

    #[test]
    fn queue_when_everyone_at_one_page() {
        let mut a = Allocator::new(2);
        a.request(0, 2).unwrap();
        a.request(1, 2).unwrap(); // 1 + 1
        assert_eq!(a.request(2, 2).unwrap(), RequestOutcome::Queued);
        assert!(a.check_invariant());
    }

    #[test]
    fn queued_request_drains_after_release() {
        let mut a = Allocator::new(2);
        a.request(0, 2).unwrap();
        a.request(1, 2).unwrap(); // 1 + 1
        assert_eq!(a.request(2, 2).unwrap(), RequestOutcome::Queued);
        // Thread 0 finishes; the stalled request now fits its free page.
        a.release(0).unwrap();
        assert_eq!(
            a.request(2, 2).unwrap(),
            RequestOutcome::Granted { pages: 1 }
        );
        assert!(a.check_invariant());
    }

    #[test]
    fn release_and_expand_smallest_first() {
        let mut a = Allocator::new(8);
        a.request(0, 8).unwrap();
        a.request(1, 8).unwrap(); // 4+4
        a.request(2, 8).unwrap(); // 2+4+2
        assert_eq!(a.allocation(0), Some(2));
        a.release(1).unwrap();
        let grown = a.expand(ExpandPolicy::SmallestFirst, |_| 8).unwrap();
        // Thread 0 (2 pages) doubles to 4, then thread 2 doubles to 4.
        assert_eq!(
            grown,
            vec![
                Expansion {
                    thread: 0,
                    from_pages: 2,
                    to_pages: 4
                },
                Expansion {
                    thread: 2,
                    from_pages: 2,
                    to_pages: 4
                }
            ]
        );
        assert!(a.check_invariant());
    }

    #[test]
    fn expansion_respects_want() {
        let mut a = Allocator::new(8);
        a.request(0, 2).unwrap();
        let grown = a.expand(ExpandPolicy::SmallestFirst, |_| 2).unwrap();
        assert!(grown.is_empty(), "{grown:?}");
    }

    #[test]
    fn expand_none_is_inert() {
        let mut a = Allocator::new(8);
        a.request(0, 2).unwrap();
        assert!(a.expand(ExpandPolicy::None, |_| 8).unwrap().is_empty());
    }

    #[test]
    fn nine_page_chain_composition() {
        // 6x6 with 2x2 pages: 9 pages, chain [9,4,2,1].
        let mut a = Allocator::new(9);
        assert_eq!(
            a.request(0, 9).unwrap(),
            RequestOutcome::Granted { pages: 9 }
        );
        let out = a.request(1, 9).unwrap();
        // Victim halves 9 -> 4, freeing 5; newcomer takes 4 (largest chain <= 5).
        assert_eq!(
            out,
            RequestOutcome::Shrunk {
                victim: 0,
                victim_was: 9,
                victim_pages: 4,
                pages: 4
            }
        );
        assert_eq!(a.free_pages(), 1);
        // A third small thread can take the loose page without shrinking.
        assert_eq!(
            a.request(2, 1).unwrap(),
            RequestOutcome::Granted { pages: 1 }
        );
        assert!(a.check_invariant());
    }

    #[test]
    fn release_unknown_thread_is_typed_error() {
        let mut a = Allocator::new(4);
        assert_eq!(a.release(3), Err(SimError::UnknownThread { thread: 3 }));
    }

    #[test]
    fn kill_free_page_shrinks_capacity() {
        let mut a = Allocator::new(4);
        assert_eq!(a.kill_page(2).unwrap(), PageDeath::Unallocated);
        assert_eq!(a.free_pages(), 3);
        assert_eq!(a.usable_pages(), 3);
        assert_eq!(a.kill_page(2).unwrap(), PageDeath::AlreadyDead);
        assert!(a.check_invariant());
    }

    #[test]
    fn kill_owned_page_shrinks_owner_to_chain_below() {
        let mut a = Allocator::new(8);
        a.request(0, 8).unwrap();
        // Page 5 dies: thread 0 drops 8 -> 4, pages 5 is dead and the
        // other 3 surplus pages free up.
        assert_eq!(
            a.kill_page(5).unwrap(),
            PageDeath::Shrunk {
                victim: 0,
                from_pages: 8,
                to_pages: 4
            }
        );
        assert_eq!(a.allocation(0), Some(4));
        assert_eq!(a.pages_of(0).len(), 4);
        assert!(!a.pages_of(0).contains(&5));
        assert_eq!(a.free_pages(), 3);
        assert_eq!(a.usable_pages(), 7);
        assert!(a.check_invariant());
    }

    #[test]
    fn kill_last_page_revokes_thread() {
        let mut a = Allocator::new(2);
        a.request(0, 2).unwrap();
        a.request(1, 2).unwrap(); // 1 + 1
        let page = a.pages_of(1)[0];
        assert_eq!(a.kill_page(page).unwrap(), PageDeath::Revoked { victim: 1 });
        assert_eq!(a.allocation(1), None);
        assert_eq!(a.active(), 1);
        assert!(a.check_invariant());
    }

    #[test]
    fn kill_out_of_range_is_typed_error() {
        let mut a = Allocator::new(4);
        assert_eq!(
            a.kill_page(9),
            Err(SimError::PageOutOfRange {
                page: 9,
                num_pages: 4
            })
        );
    }

    #[test]
    fn revive_returns_dead_page_to_the_pool() {
        let mut a = Allocator::new(4);
        a.kill_page(2).unwrap();
        assert_eq!(a.free_pages(), 3);
        assert_eq!(a.usable_pages(), 3);
        assert!(a.revive(2).unwrap());
        assert_eq!(a.free_pages(), 4);
        assert_eq!(a.usable_pages(), 4);
        // Double-revive and reviving a live page are no-ops.
        assert!(!a.revive(2).unwrap());
        assert_eq!(a.free_pages(), 4);
        a.request(0, 4).unwrap();
        assert!(!a.revive(0).unwrap());
        assert_eq!(
            a.revive(9),
            Err(SimError::PageOutOfRange {
                page: 9,
                num_pages: 4
            })
        );
        assert!(a.check_invariant());
    }

    #[test]
    fn revived_page_is_grantable_again() {
        let mut a = Allocator::new(2);
        a.request(0, 2).unwrap();
        a.request(1, 2).unwrap(); // 1 + 1
        let page = a.pages_of(1)[0];
        assert_eq!(a.kill_page(page).unwrap(), PageDeath::Revoked { victim: 1 });
        assert_eq!(a.request(1, 2).unwrap(), RequestOutcome::Queued);
        assert!(a.revive(page).unwrap());
        assert_eq!(
            a.request(1, 2).unwrap(),
            RequestOutcome::Granted { pages: 1 }
        );
        assert_eq!(a.pages_of(1), vec![page]);
        assert!(a.check_invariant());
    }

    #[test]
    fn expand_most_shrunk_grows_largest_deficit_first() {
        let mut a = Allocator::new(8);
        a.request(0, 8).unwrap();
        a.request(1, 8).unwrap(); // 4 + 4
        a.request(2, 8).unwrap(); // 2 + 4 + 2
        a.release(1).unwrap(); // 4 free
                               // Thread 0 wants 8 (deficit 6); thread 2 wants 4 (deficit 2):
                               // the most-shrunk thread 0 doubles first, then thread 2 takes
                               // the remaining 2.
        let wants = |t: usize| if t == 0 { 8 } else { 4 };
        let grown = a.expand_most_shrunk(wants).unwrap();
        assert_eq!(
            grown,
            vec![
                Expansion {
                    thread: 0,
                    from_pages: 2,
                    to_pages: 4
                },
                Expansion {
                    thread: 2,
                    from_pages: 2,
                    to_pages: 4
                }
            ]
        );
        assert_eq!(a.free_pages(), 0);
        assert!(a.check_invariant());
    }

    #[test]
    fn expand_most_shrunk_ties_go_to_lowest_id() {
        let mut a = Allocator::new(8);
        a.request(0, 8).unwrap();
        a.request(1, 8).unwrap(); // 4 + 4
        a.request(2, 8).unwrap(); // 2 + 4 + 2
        a.release(1).unwrap(); // 4 free; threads 0 and 2 both at 2
                               // Equal deficits: thread 0 wins the tie, and after one chain
                               // step (2 -> 4) the pool is drained before thread 2's turn
                               // comes again.
        let grown = a.expand_most_shrunk(|_| 8).unwrap();
        assert_eq!(grown.len(), 2);
        assert_eq!(grown[0].thread, 0);
        assert_eq!((grown[0].from_pages, grown[0].to_pages), (2, 4));
        assert_eq!(grown[1].thread, 2);
        assert!(a.check_invariant());
    }

    #[test]
    fn expand_most_shrunk_respects_want_and_empty_pool() {
        let mut a = Allocator::new(8);
        a.request(0, 2).unwrap();
        // Satisfied threads never grow.
        assert!(a.expand_most_shrunk(|_| 2).unwrap().is_empty());
        // Nothing free: no growth even with a deficit.
        let mut b = Allocator::new(2);
        b.request(0, 2).unwrap();
        b.request(1, 2).unwrap();
        assert!(b.expand_most_shrunk(|_| 2).unwrap().is_empty());
    }
}
