//! Typed simulation errors.
//!
//! The simulator is driven by the bench engine across many sweep points
//! in parallel; a malformed workload or a degraded fabric must poison
//! *its own* result slot, not abort the process. Every fallible path in
//! [`alloc`](crate::alloc) and [`multithreaded`](crate::multithreaded)
//! reports one of these instead of panicking.

use serde::{Deserialize, Serialize};

/// Why a simulation (or an allocator operation) failed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SimError {
    /// An operation named a thread the allocator is not tracking.
    UnknownThread {
        /// The thread id.
        thread: usize,
    },
    /// A shrink victim reported by the allocator was not in a running
    /// mode — the allocator and the event loop disagree about state.
    VictimNotRunning {
        /// The thread id.
        thread: usize,
    },
    /// A kernel profile has no transformed II cached for a page budget.
    ProfileMissing {
        /// The kernel name.
        kernel: String,
        /// The page budget with no cached transform.
        m: u16,
    },
    /// A fault event named a page outside the fabric.
    PageOutOfRange {
        /// The offending page.
        page: u16,
        /// Pages in the fabric.
        num_pages: u16,
    },
    /// Faults consumed so much of the fabric that a thread can never be
    /// served again — the run cannot complete.
    Starved {
        /// A thread left waiting forever.
        thread: usize,
        /// Usable pages remaining in the fabric.
        usable_pages: u16,
    },
    /// An internal bookkeeping invariant broke (a bug, reported instead
    /// of asserted so one sweep point cannot kill the whole sweep).
    InvariantViolated {
        /// What went wrong.
        detail: String,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::UnknownThread { thread } => {
                write!(f, "thread {thread} is not on the CGRA")
            }
            SimError::VictimNotRunning { thread } => {
                write!(f, "shrink victim {thread} is not in a running mode")
            }
            SimError::ProfileMissing { kernel, m } => {
                write!(f, "{kernel}: no transform cached for M={m}")
            }
            SimError::PageOutOfRange { page, num_pages } => {
                write!(f, "page {page} outside fabric of {num_pages} pages")
            }
            SimError::Starved {
                thread,
                usable_pages,
            } => write!(
                f,
                "thread {thread} starved: only {usable_pages} usable pages left"
            ),
            SimError::InvariantViolated { detail } => {
                write!(f, "simulator invariant violated: {detail}")
            }
        }
    }
}

impl std::error::Error for SimError {}
