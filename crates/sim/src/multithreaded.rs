//! The multithreaded CGRA system (§VII-B case (ii)).
//!
//! Threads request CGRA pages when they reach a kernel segment. The
//! allocator serves them from unused pages when possible, otherwise
//! shrinks the biggest tenant (PageMaster transform, modelled by the
//! pre-computed `II_q(M)` table); when a tenant leaves, survivors are
//! expanded back. Schedule switches take effect at the next iteration
//! boundary of the old schedule (§VII-B.1: "switched at an integer value
//! of II_p × N/M"), plus a configurable transformation overhead (the
//! paper argues it is negligible against the kernel-memory transfer; the
//! `fig9 --ablation-overhead` sweep tests that claim).

use crate::alloc::{Allocator, ExpandPolicy, RequestOutcome};
use crate::event::EventQueue;
use crate::kernel_lib::KernelLibrary;
use crate::stats::SimReport;
use crate::workload::{Segment, ThreadSpec};
use std::collections::VecDeque;

/// Multithreaded-system knobs.
#[derive(Debug, Clone, Copy)]
pub struct MtConfig {
    /// Extra cycles a schedule switch costs (0 = the paper's assumption).
    pub switch_overhead: u64,
    /// Redistribution policy when pages free up.
    pub expand: ExpandPolicy,
}

impl Default for MtConfig {
    fn default() -> Self {
        MtConfig {
            switch_overhead: 0,
            expand: ExpandPolicy::SmallestFirst,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Mode {
    /// Waiting to start the next segment (event pending).
    Advancing,
    /// Executing a kernel: iterations remaining as of `since`, at
    /// `rate` cycles per iteration.
    OnCgra {
        kernel: usize,
        remaining: u64,
        rate: u64,
        since: u64,
    },
    /// Stalled in the CGRA queue.
    Waiting {
        kernel: usize,
        iterations: u64,
        enqueued: u64,
    },
    Done,
}

struct Sim<'a> {
    lib: &'a KernelLibrary,
    threads: &'a [ThreadSpec],
    cfg: MtConfig,
    q: EventQueue,
    seg_idx: Vec<usize>,
    mode: Vec<Mode>,
    finish: Vec<u64>,
    alloc: Allocator,
    queue: VecDeque<usize>,
    // Stats.
    cgra_iterations: u64,
    page_cycles: u64,
    pages_busy: u64,
    last_integral: u64,
    shrinks: u64,
    expands: u64,
    stall_cycles: u64,
}

impl<'a> Sim<'a> {
    fn integrate(&mut self, now: u64) {
        self.page_cycles += self.pages_busy * (now - self.last_integral);
        self.last_integral = now;
    }

    fn want(&self, thread: usize) -> u16 {
        match self.mode[thread] {
            Mode::OnCgra { kernel, .. } | Mode::Waiting { kernel, .. } => {
                self.lib.profile(kernel).wanted_pages(self.lib.num_pages)
            }
            _ => 1,
        }
    }

    /// Change a running thread's rate at the next iteration boundary of
    /// its old schedule (plus the switch overhead).
    fn set_rate(&mut self, thread: usize, now: u64, new_rate: u64) {
        let Mode::OnCgra {
            kernel,
            remaining,
            rate,
            since,
        } = self.mode[thread]
        else {
            return;
        };
        if new_rate == rate {
            return;
        }
        // `since` can lie in the future while a previous switch's overhead
        // drains; no progress has been made in that case.
        let boundary = if now <= since {
            since
        } else {
            let elapsed = now - since;
            if elapsed.is_multiple_of(rate) {
                now
            } else {
                since + (elapsed / rate + 1) * rate
            }
        };
        let done = ((boundary - since) / rate).min(remaining);
        self.cgra_iterations += done;
        let remaining = remaining - done;
        let since = boundary + self.cfg.switch_overhead;
        self.q.bump(thread);
        if remaining == 0 {
            self.mode[thread] = Mode::OnCgra {
                kernel,
                remaining,
                rate: new_rate,
                since: boundary,
            };
            self.q.push(boundary, thread);
        } else {
            self.mode[thread] = Mode::OnCgra {
                kernel,
                remaining,
                rate: new_rate,
                since,
            };
            self.q.push(since + remaining * new_rate, thread);
        }
    }

    /// Put a thread onto the CGRA with `pages`.
    fn start_kernel(
        &mut self,
        thread: usize,
        kernel: usize,
        iterations: u64,
        now: u64,
        pages: u16,
    ) {
        let rate = self.lib.profile(kernel).ii_at(pages) as u64;
        let since = now + self.cfg.switch_overhead;
        self.mode[thread] = Mode::OnCgra {
            kernel,
            remaining: iterations,
            rate,
            since,
        };
        self.pages_busy += pages as u64;
        self.q.bump(thread);
        self.q.push(since + iterations * rate, thread);
    }

    /// Handle a CGRA page request; may shrink a victim.
    fn request_cgra(&mut self, thread: usize, kernel: usize, iterations: u64, now: u64) {
        let want = self.lib.profile(kernel).wanted_pages(self.lib.num_pages);
        match self.alloc.request(thread, want) {
            RequestOutcome::Granted { pages } => {
                self.integrate(now);
                self.start_kernel(thread, kernel, iterations, now, pages);
            }
            RequestOutcome::Shrunk {
                victim,
                victim_pages,
                pages,
            } => {
                self.integrate(now);
                self.shrinks += 1;
                let old_pages = match self.mode[victim] {
                    Mode::OnCgra { kernel: vk, .. } => {
                        let new_rate = self.lib.profile(vk).ii_at(victim_pages) as u64;
                        // pages_busy: victim gave up (old - new) pages.
                        let old = self.victim_old_pages(victim_pages);
                        self.set_rate(victim, now, new_rate);
                        old
                    }
                    _ => unreachable!("victim must be running"),
                };
                self.pages_busy -= (old_pages - victim_pages) as u64;
                self.start_kernel(thread, kernel, iterations, now, pages);
            }
            RequestOutcome::Queued => {
                self.mode[thread] = Mode::Waiting {
                    kernel,
                    iterations,
                    enqueued: now,
                };
                self.queue.push_back(thread);
            }
        }
    }

    fn victim_old_pages(&self, new_pages: u16) -> u16 {
        // The allocator halves along the chain; recover the previous
        // value (the chain element directly above new_pages).
        crate::kernel_lib::halving_chain(self.lib.num_pages)
            .into_iter()
            .rev()
            .find(|&c| c > new_pages)
            .expect("victim was above the chain bottom")
    }

    /// A thread finished its kernel segment: release pages, serve the
    /// queue, expand survivors.
    fn finish_kernel(&mut self, thread: usize, now: u64) {
        let Mode::OnCgra { remaining, .. } = self.mode[thread] else {
            unreachable!("finish_kernel on non-running thread");
        };
        self.cgra_iterations += remaining;
        self.integrate(now);
        let freed = self.alloc.release(thread);
        self.pages_busy -= freed as u64;
        self.advance(thread, now);

        // Serve stalled threads first.
        while let Some(&head) = self.queue.front() {
            let Mode::Waiting {
                kernel,
                iterations,
                enqueued,
            } = self.mode[head]
            else {
                self.queue.pop_front();
                continue;
            };
            if self.alloc.free_pages() == 0 {
                break;
            }
            self.queue.pop_front();
            self.stall_cycles += now - enqueued;
            // Re-request: guaranteed to be served from free pages.
            self.request_cgra(head, kernel, iterations, now);
        }

        // Then grow the survivors.
        let lib = self.lib;
        let wants: Vec<u16> = (0..self.threads.len()).map(|t| self.want(t)).collect();
        let grown = self.alloc.expand(self.cfg.expand, |t| wants[t]);
        for (t, new_pages) in grown {
            self.expands += 1;
            if let Mode::OnCgra { kernel, .. } = self.mode[t] {
                let old = self.alloc_pages_before_expand(new_pages);
                self.pages_busy += (new_pages - old) as u64;
                let new_rate = lib.profile(kernel).ii_at(new_pages) as u64;
                self.set_rate(t, now, new_rate);
            }
        }
    }

    fn alloc_pages_before_expand(&self, new_pages: u16) -> u16 {
        crate::kernel_lib::halving_chain(self.lib.num_pages)
            .into_iter()
            .find(|&c| c < new_pages)
            .unwrap_or(new_pages)
    }

    /// Move a thread to its next segment at `now`.
    fn advance(&mut self, thread: usize, now: u64) {
        let idx = self.seg_idx[thread];
        if idx >= self.threads[thread].segments.len() {
            self.mode[thread] = Mode::Done;
            self.finish[thread] = now;
            return;
        }
        self.seg_idx[thread] += 1;
        match self.threads[thread].segments[idx] {
            Segment::Cpu(cycles) => {
                self.mode[thread] = Mode::Advancing;
                self.q.bump(thread);
                self.q.push(now + cycles, thread);
            }
            Segment::Cgra { kernel, iterations } => {
                self.request_cgra(thread, kernel, iterations, now);
            }
        }
    }

    fn run(&mut self) {
        for t in 0..self.threads.len() {
            self.q.push(0, t);
            self.mode[t] = Mode::Advancing;
        }
        // Kick-off events advance each thread into its first segment.
        while let Some(ev) = self.q.pop() {
            let t = ev.thread;
            match self.mode[t] {
                Mode::Advancing => self.advance(t, ev.time),
                Mode::OnCgra { .. } => self.finish_kernel(t, ev.time),
                Mode::Waiting { .. } | Mode::Done => {}
            }
            debug_assert!(self.alloc.check_invariant());
        }
    }
}

/// Simulate the multithreaded system; deterministic for a given workload.
pub fn simulate_multithreaded(
    lib: &KernelLibrary,
    threads: &[ThreadSpec],
    cfg: MtConfig,
) -> SimReport {
    let mut sim = Sim {
        lib,
        threads,
        cfg,
        q: EventQueue::new(threads.len()),
        seg_idx: vec![0; threads.len()],
        mode: vec![Mode::Advancing; threads.len()],
        finish: vec![0; threads.len()],
        alloc: Allocator::new(lib.num_pages),
        queue: VecDeque::new(),
        cgra_iterations: 0,
        page_cycles: 0,
        pages_busy: 0,
        last_integral: 0,
        shrinks: 0,
        expands: 0,
        stall_cycles: 0,
    };
    sim.run();
    SimReport {
        makespan: sim.finish.iter().copied().max().unwrap_or(0),
        thread_finish: sim.finish,
        cgra_iterations: sim.cgra_iterations,
        page_cycles: sim.page_cycles,
        shrinks: sim.shrinks,
        expands: sim.expands,
        stall_cycles: sim.stall_cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::improvement_percent;
    use crate::workload::{generate, CgraNeed, WorkloadParams};
    use cgra_mapper::MapOptions;

    fn lib(dim: u16) -> KernelLibrary {
        KernelLibrary::compile_benchmarks(
            &cgra_arch::CgraConfig::square(dim),
            &MapOptions::default(),
        )
        .expect("library compiles")
    }

    #[test]
    fn single_thread_matches_constrained_rate() {
        let lib = lib(4);
        let spec = ThreadSpec {
            segments: vec![Segment::Cgra {
                kernel: 0,
                iterations: 50,
            }],
        };
        let r = simulate_multithreaded(&lib, &[spec], MtConfig::default());
        let ii = lib.profile(0).ii_constrained as u64;
        assert_eq!(r.makespan, 50 * ii);
        assert_eq!(r.shrinks, 0);
    }

    #[test]
    fn deterministic() {
        let lib = lib(4);
        let w = generate(&lib, &WorkloadParams::default());
        let a = simulate_multithreaded(&lib, &w, MtConfig::default());
        let b = simulate_multithreaded(&lib, &w, MtConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn small_kernels_co_run_without_shrinking() {
        let lib = lib(4);
        // Two threads running kernels that fit half the array each.
        let small = (0..lib.len())
            .find(|&k| lib.profile(k).wanted_pages(lib.num_pages) <= 2)
            .expect("some kernel uses at most half the 4x4");
        let spec = ThreadSpec {
            segments: vec![Segment::Cgra {
                kernel: small,
                iterations: 100,
            }],
        };
        let r = simulate_multithreaded(&lib, &[spec.clone(), spec], MtConfig::default());
        assert_eq!(r.shrinks, 0, "unused-portion rule should serve both");
        let ii = lib.profile(small).ii_constrained as u64;
        assert_eq!(r.makespan, 100 * ii);
    }

    #[test]
    fn multithreading_beats_baseline_on_contended_workloads() {
        let lib = lib(8);
        let w = generate(
            &lib,
            &WorkloadParams {
                threads: 8,
                need: CgraNeed::High,
                work_per_thread: 50_000,
                bursts: 3,
                seed: 7,
            },
        );
        let base = crate::baseline::simulate_baseline(&lib, &w);
        let mt = simulate_multithreaded(&lib, &w, MtConfig::default());
        let imp = improvement_percent(base.makespan, mt.makespan);
        assert!(
            imp > 20.0,
            "expected solid improvement on 8x8 with 8 threads, got {imp:.1}%"
        );
    }

    #[test]
    fn overhead_reduces_but_does_not_break_improvement() {
        let lib = lib(4);
        let w = generate(
            &lib,
            &WorkloadParams {
                threads: 4,
                need: CgraNeed::High,
                ..Default::default()
            },
        );
        let zero = simulate_multithreaded(&lib, &w, MtConfig::default());
        let heavy = simulate_multithreaded(
            &lib,
            &w,
            MtConfig {
                switch_overhead: 1000,
                ..Default::default()
            },
        );
        assert!(heavy.makespan >= zero.makespan);
    }

    #[test]
    fn conservation_of_iterations() {
        let lib = lib(4);
        let w = generate(&lib, &WorkloadParams::default());
        let total: u64 = w
            .iter()
            .flat_map(|t| &t.segments)
            .map(|s| match s {
                Segment::Cgra { iterations, .. } => *iterations,
                _ => 0,
            })
            .sum();
        let r = simulate_multithreaded(&lib, &w, MtConfig::default());
        assert_eq!(r.cgra_iterations, total);
    }
}
