//! The multithreaded CGRA system (§VII-B case (ii)).
//!
//! Threads request CGRA pages when they reach a kernel segment. The
//! allocator serves them from unused pages when possible, otherwise
//! shrinks the biggest tenant (PageMaster transform, modelled by the
//! pre-computed `II_q(M)` table); when a tenant leaves, survivors are
//! expanded back. Schedule switches take effect at the next iteration
//! boundary of the old schedule (§VII-B.1: "switched at an integer value
//! of II_p × N/M"), plus a configurable transformation overhead (the
//! paper argues it is negligible against the kernel-memory transfer; the
//! `fig9 --ablation-overhead` sweep tests that claim).
//!
//! ## Fault injection
//!
//! [`simulate_multithreaded_faulty`] additionally threads a schedule of
//! [`FaultEvent`]s through the discrete-event loop. A page *death* is
//! handled exactly like a contention shrink — the owning thread is
//! remapped onto its surviving pages at the next iteration boundary (or
//! re-queued when it was already at one page) — and a page *degrade*
//! slows whoever holds the page by `degrade_factor`. Every fault is
//! applied **before** the next thread event at a later time, because
//! applying one bumps event versions; the loop peeks instead of popping
//! for exactly this reason. Fault-free runs take the same code path and
//! are bit-identical to the pre-fault simulator.
//!
//! ## Repair and re-expansion
//!
//! A [`FaultKind::Transient`] fault kills its page like a permanent
//! kill, then schedules repair: `repair_after` cycles later the page
//! enters `Repairing`, and after a further quarantine window
//! ([`MtConfig::quarantine`] — hysteresis so a flapping page cannot
//! thrash shrink/expand) it returns to the allocator's free pool as a
//! `PageRepaired` discrete event. Recovered capacity first re-admits
//! queued threads, then a supervision policy re-expands the *most
//! shrunk* live thread through the ordinary PageMaster expansion path
//! (`Reexpanded` trace events). Any new fault on a page invalidates its
//! in-flight repair — a permanent kill during repair sticks.

use crate::alloc::{Allocator, ExpandPolicy, PageDeath, RequestOutcome};
use crate::error::SimError;
use crate::event::EventQueue;
use crate::kernel_lib::KernelLibrary;
use crate::stats::{FaultStats, SimReport};
use crate::workload::{Segment, ThreadSpec};
use cgra_arch::{FaultEvent, FaultKind, FaultMap, PageHealth};
use cgra_obs::{TraceEvent, Tracer};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Multithreaded-system knobs.
#[derive(Debug, Clone, Copy)]
pub struct MtConfig {
    /// Extra cycles a schedule switch costs (0 = the paper's assumption).
    pub switch_overhead: u64,
    /// Redistribution policy when pages free up.
    pub expand: ExpandPolicy,
    /// II multiplier for a thread holding a *degraded* (but usable)
    /// page. 1 = degraded pages run at full speed.
    pub degrade_factor: u64,
    /// Cycles a repaired page must stay fault-free *after* its repair
    /// interval elapses before it is re-offered to threads (hysteresis
    /// against flapping pages). Inert without transient faults.
    pub quarantine: u64,
}

impl Default for MtConfig {
    fn default() -> Self {
        MtConfig {
            switch_overhead: 0,
            expand: ExpandPolicy::SmallestFirst,
            degrade_factor: 2,
            quarantine: 64,
        }
    }
}

/// The two stages of a scheduled page repair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum RepairPhase {
    /// Dead → Repairing, `repair_after` cycles after the strike.
    Begin,
    /// Repairing → Healthy + back to the free pool, after the
    /// quarantine window.
    Commit,
}

/// One scheduled repair action. Ordered by `(time, page, phase,
/// version)` so the pending-repair heap pops deterministically; the
/// version snapshot invalidates the action if the page is struck again
/// after it was scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct RepairAction {
    time: u64,
    page: u16,
    phase: RepairPhase,
    version: u64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Mode {
    /// Waiting to start the next segment (event pending).
    Advancing,
    /// Executing a kernel: iterations remaining as of `since`, at
    /// `rate` cycles per iteration.
    OnCgra {
        kernel: usize,
        remaining: u64,
        rate: u64,
        since: u64,
    },
    /// Stalled in the CGRA queue.
    Waiting {
        kernel: usize,
        iterations: u64,
        enqueued: u64,
    },
    Done,
}

struct Sim<'a> {
    lib: &'a KernelLibrary,
    threads: &'a [ThreadSpec],
    cfg: MtConfig,
    tracer: &'a Tracer,
    q: EventQueue,
    seg_idx: Vec<usize>,
    mode: Vec<Mode>,
    finish: Vec<u64>,
    alloc: Allocator,
    queue: VecDeque<usize>,
    // Fault injection.
    fault_events: Vec<FaultEvent>,
    fault_idx: usize,
    faults: FaultMap,
    fstats: FaultStats,
    /// Threads queued because a fault revoked their last page (their
    /// wait counts toward recovery latency, not just stall time).
    fault_waiting: Vec<bool>,
    /// Pending repair actions for transient faults, popped in
    /// `(time, page, phase)` order.
    repairs: BinaryHeap<Reverse<RepairAction>>,
    /// Per-page strike counter; a repair action scheduled under an
    /// older version is stale and dropped (the page was re-struck).
    repair_version: Vec<u64>,
    // Stats.
    cgra_iterations: u64,
    page_cycles: u64,
    pages_busy: u64,
    last_integral: u64,
    shrinks: u64,
    expands: u64,
    stall_cycles: u64,
}

impl<'a> Sim<'a> {
    fn integrate(&mut self, now: u64) {
        self.page_cycles += self.pages_busy * (now - self.last_integral);
        self.last_integral = now;
    }

    fn want(&self, thread: usize) -> u16 {
        match self.mode[thread] {
            Mode::OnCgra { kernel, .. } | Mode::Waiting { kernel, .. } => {
                self.lib.profile(kernel).wanted_pages(self.lib.num_pages)
            }
            _ => 1,
        }
    }

    /// Cycles per iteration for `thread` running `kernel` on `pages`
    /// pages, including the degraded-page slowdown. Typed error instead
    /// of a panic when the budget is off the profile's chain.
    fn effective_rate(&self, thread: usize, kernel: usize, pages: u16) -> Result<u64, SimError> {
        let profile = self.lib.profile(kernel);
        let base = profile
            .try_ii_at(pages)
            .ok_or_else(|| SimError::ProfileMissing {
                kernel: profile.name.clone(),
                m: pages,
            })? as u64;
        let slowed = self
            .alloc
            .pages_of(thread)
            .iter()
            .any(|&p| self.faults.health(p) == PageHealth::Degraded);
        Ok(if slowed {
            base * self.cfg.degrade_factor.max(1)
        } else {
            base
        })
    }

    /// Change a running thread's rate at the next iteration boundary of
    /// its old schedule (plus the switch overhead). Returns the time the
    /// new schedule takes over, or `None` when no switch was needed.
    fn set_rate(&mut self, thread: usize, now: u64, new_rate: u64) -> Option<u64> {
        let Mode::OnCgra {
            kernel,
            remaining,
            rate,
            since,
        } = self.mode[thread]
        else {
            return None;
        };
        if new_rate == rate {
            return None;
        }
        // `since` can lie in the future while a previous switch's overhead
        // drains; no progress has been made in that case.
        let boundary = if now <= since {
            since
        } else {
            let elapsed = now - since;
            if elapsed.is_multiple_of(rate) {
                now
            } else {
                since + (elapsed / rate + 1) * rate
            }
        };
        let done = ((boundary - since) / rate).min(remaining);
        self.cgra_iterations += done;
        let remaining = remaining - done;
        let since = boundary + self.cfg.switch_overhead;
        self.q.bump(thread);
        if remaining == 0 {
            self.mode[thread] = Mode::OnCgra {
                kernel,
                remaining,
                rate: new_rate,
                since: boundary,
            };
            self.q.push(boundary, thread);
            Some(boundary)
        } else {
            self.mode[thread] = Mode::OnCgra {
                kernel,
                remaining,
                rate: new_rate,
                since,
            };
            self.q.push(since + remaining * new_rate, thread);
            Some(since)
        }
    }

    /// Put a thread onto the CGRA with `pages`.
    fn start_kernel(
        &mut self,
        thread: usize,
        kernel: usize,
        iterations: u64,
        now: u64,
        pages: u16,
    ) -> Result<(), SimError> {
        let rate = self.effective_rate(thread, kernel, pages)?;
        let since = now + self.cfg.switch_overhead;
        self.mode[thread] = Mode::OnCgra {
            kernel,
            remaining: iterations,
            rate,
            since,
        };
        self.pages_busy += pages as u64;
        self.q.bump(thread);
        self.q.push(since + iterations * rate, thread);
        let tr = self.tracer;
        tr.emit(|| TraceEvent::ThreadStart {
            time: now,
            thread: thread as u32,
            kernel: kernel as u32,
            pages: self.alloc.pages_of(thread),
        });
        Ok(())
    }

    /// Handle a CGRA page request; may shrink a victim.
    fn request_cgra(
        &mut self,
        thread: usize,
        kernel: usize,
        iterations: u64,
        now: u64,
    ) -> Result<(), SimError> {
        let want = self.lib.profile(kernel).wanted_pages(self.lib.num_pages);
        match self.alloc.request(thread, want)? {
            RequestOutcome::Granted { pages } => {
                self.integrate(now);
                self.start_kernel(thread, kernel, iterations, now, pages)?;
            }
            RequestOutcome::Shrunk {
                victim,
                victim_was,
                victim_pages,
                pages,
            } => {
                self.integrate(now);
                self.shrinks += 1;
                let Mode::OnCgra { kernel: vk, .. } = self.mode[victim] else {
                    return Err(SimError::VictimNotRunning { thread: victim });
                };
                let new_rate = self.effective_rate(victim, vk, victim_pages)?;
                // pages_busy: victim gave up (old - new) pages.
                self.set_rate(victim, now, new_rate);
                self.pages_busy -= (victim_was - victim_pages) as u64;
                let tr = self.tracer;
                tr.emit(|| TraceEvent::ThreadShrink {
                    time: now,
                    thread: victim as u32,
                    from: victim_was,
                    to: victim_pages,
                    pages: self.alloc.pages_of(victim),
                });
                self.start_kernel(thread, kernel, iterations, now, pages)?;
            }
            RequestOutcome::Queued => {
                self.mode[thread] = Mode::Waiting {
                    kernel,
                    iterations,
                    enqueued: now,
                };
                self.queue.push_back(thread);
                self.tracer.emit(|| TraceEvent::ThreadQueue {
                    time: now,
                    thread: thread as u32,
                    kernel: kernel as u32,
                });
            }
        }
        Ok(())
    }

    /// Serve stalled threads from freed pages, front of the queue
    /// first. A fault-revoked thread's wait counts toward recovery
    /// latency as well as stall time.
    fn drain_queue(&mut self, now: u64) -> Result<(), SimError> {
        while let Some(&head) = self.queue.front() {
            let Mode::Waiting {
                kernel,
                iterations,
                enqueued,
            } = self.mode[head]
            else {
                self.queue.pop_front();
                continue;
            };
            if self.alloc.free_pages() == 0 {
                break;
            }
            self.queue.pop_front();
            self.stall_cycles += now - enqueued;
            if self.fault_waiting[head] {
                self.fault_waiting[head] = false;
                self.fstats.recovery_cycles += now - enqueued;
            }
            // Re-request: guaranteed to be served from free pages.
            self.request_cgra(head, kernel, iterations, now)?;
        }
        Ok(())
    }

    /// Serve stalled threads from freed pages, then grow the survivors.
    /// Runs after every kernel completion and after every page death.
    fn redistribute(&mut self, now: u64) -> Result<(), SimError> {
        self.drain_queue(now)?;

        // Then grow the survivors.
        let wants: Vec<u16> = (0..self.threads.len()).map(|t| self.want(t)).collect();
        let grown = self.alloc.expand(self.cfg.expand, |t| wants[t])?;
        for ex in grown {
            self.expands += 1;
            if let Mode::OnCgra { kernel, .. } = self.mode[ex.thread] {
                self.pages_busy += (ex.to_pages - ex.from_pages) as u64;
                let new_rate = self.effective_rate(ex.thread, kernel, ex.to_pages)?;
                self.set_rate(ex.thread, now, new_rate);
                let tr = self.tracer;
                tr.emit(|| TraceEvent::ThreadExpand {
                    time: now,
                    thread: ex.thread as u32,
                    from: ex.from_pages,
                    to: ex.to_pages,
                    pages: self.alloc.pages_of(ex.thread),
                });
            }
        }
        Ok(())
    }

    /// Redistribution after a page repair: re-admit queued threads
    /// first, then hand the remaining recovered capacity to the *most
    /// shrunk* live thread (supervision policy) via the ordinary
    /// expansion path, emitted as `Reexpanded` rather than
    /// `ThreadExpand` so the trace distinguishes recovery from routine
    /// growth.
    fn redistribute_repaired(&mut self, now: u64) -> Result<(), SimError> {
        self.drain_queue(now)?;

        let wants: Vec<u16> = (0..self.threads.len()).map(|t| self.want(t)).collect();
        let grown = self.alloc.expand_most_shrunk(|t| wants[t])?;
        for ex in grown {
            self.expands += 1;
            self.fstats.reexpansions += 1;
            if let Mode::OnCgra { kernel, .. } = self.mode[ex.thread] {
                self.pages_busy += (ex.to_pages - ex.from_pages) as u64;
                let new_rate = self.effective_rate(ex.thread, kernel, ex.to_pages)?;
                self.set_rate(ex.thread, now, new_rate);
                let tr = self.tracer;
                tr.emit(|| TraceEvent::Reexpanded {
                    time: now,
                    thread: ex.thread as u32,
                    from: ex.from_pages,
                    to: ex.to_pages,
                    pages: self.alloc.pages_of(ex.thread),
                });
            }
        }
        Ok(())
    }

    /// A thread finished its kernel segment: release pages, serve the
    /// queue, expand survivors.
    fn finish_kernel(&mut self, thread: usize, now: u64) -> Result<(), SimError> {
        let Mode::OnCgra { remaining, .. } = self.mode[thread] else {
            return Err(SimError::VictimNotRunning { thread });
        };
        self.cgra_iterations += remaining;
        self.integrate(now);
        let freed = self.alloc.release(thread)?;
        self.pages_busy -= freed as u64;
        self.tracer.emit(|| TraceEvent::ThreadFinish {
            time: now,
            thread: thread as u32,
            freed,
        });
        self.advance(thread, now)?;
        self.redistribute(now)
    }

    /// Move a thread to its next segment at `now`.
    fn advance(&mut self, thread: usize, now: u64) -> Result<(), SimError> {
        let idx = self.seg_idx[thread];
        if idx >= self.threads[thread].segments.len() {
            self.mode[thread] = Mode::Done;
            self.finish[thread] = now;
            self.tracer.emit(|| TraceEvent::ThreadDone {
                time: now,
                thread: thread as u32,
            });
            return Ok(());
        }
        self.seg_idx[thread] += 1;
        match self.threads[thread].segments[idx] {
            Segment::Cpu(cycles) => {
                self.mode[thread] = Mode::Advancing;
                self.q.bump(thread);
                self.q.push(now + cycles, thread);
                Ok(())
            }
            Segment::Cgra { kernel, iterations } => {
                self.request_cgra(thread, kernel, iterations, now)
            }
        }
    }

    /// Apply one fault event at its scheduled time.
    fn apply_fault(&mut self, ev: FaultEvent) -> Result<(), SimError> {
        let now = ev.time;
        if ev.page >= self.faults.num_pages() {
            return Err(SimError::PageOutOfRange {
                page: ev.page,
                num_pages: self.faults.num_pages(),
            });
        }
        self.fstats.injected += 1;
        self.tracer.emit(|| TraceEvent::Fault {
            time: now,
            page: ev.page,
            kind: ev.kind,
        });
        match ev.kind {
            FaultKind::Degrade => {
                if self.faults.health(ev.page) != PageHealth::Healthy {
                    return Ok(()); // dead or already degraded: no change
                }
                self.faults.mark_page(ev.page, PageHealth::Degraded);
                self.fstats.pages_degraded += 1;
                if let Some(owner) = self.alloc.owner_of(ev.page) {
                    if let Mode::OnCgra { kernel, .. } = self.mode[owner] {
                        let pages = self
                            .alloc
                            .allocation(owner)
                            .ok_or(SimError::UnknownThread { thread: owner })?;
                        let rate = self.effective_rate(owner, kernel, pages)?;
                        if let Some(at) = self.set_rate(owner, now, rate) {
                            self.fstats.recovery_cycles += at.saturating_sub(now);
                        }
                    }
                }
                Ok(())
            }
            FaultKind::Kill => {
                // A permanent kill cancels any in-flight repair of this
                // page — whatever happens below, the page stays dead.
                self.repair_version[ev.page as usize] += 1;
                if self.faults.health(ev.page) == PageHealth::Dead {
                    return Ok(());
                }
                self.apply_kill(now, ev.page)
            }
            FaultKind::Transient { repair_after } => {
                if self.faults.health(ev.page) == PageHealth::Dead {
                    // Already dead: either permanently killed (never
                    // improve) or awaiting its first repair (which
                    // stands — repair tracks the first strike).
                    return Ok(());
                }
                // A re-strike mid-repair invalidates the pending
                // completion; repair restarts from this strike.
                self.repair_version[ev.page as usize] += 1;
                self.repairs.push(Reverse(RepairAction {
                    time: now.saturating_add(repair_after),
                    page: ev.page,
                    phase: RepairPhase::Begin,
                    version: self.repair_version[ev.page as usize],
                }));
                self.apply_kill(now, ev.page)
            }
        }
    }

    /// The kill machinery shared by permanent and transient faults: the
    /// page dies, its owner (if any) is shrunk or revoked, and freed
    /// capacity is redistributed.
    fn apply_kill(&mut self, now: u64, page: u16) -> Result<(), SimError> {
        self.faults.mark_page(page, PageHealth::Dead);
        self.fstats.pages_killed += 1;
        match self.alloc.kill_page(page)? {
            PageDeath::AlreadyDead | PageDeath::Unallocated => {}
            PageDeath::Shrunk {
                victim,
                from_pages,
                to_pages,
            } => {
                self.integrate(now);
                self.fstats.threads_remapped += 1;
                self.pages_busy -= (from_pages - to_pages) as u64;
                let Mode::OnCgra { kernel, .. } = self.mode[victim] else {
                    return Err(SimError::VictimNotRunning { thread: victim });
                };
                let rate = self.effective_rate(victim, kernel, to_pages)?;
                if let Some(at) = self.set_rate(victim, now, rate) {
                    self.fstats.recovery_cycles += at.saturating_sub(now);
                }
                let tr = self.tracer;
                tr.emit(|| TraceEvent::ThreadShrink {
                    time: now,
                    thread: victim as u32,
                    from: from_pages,
                    to: to_pages,
                    pages: self.alloc.pages_of(victim),
                });
            }
            PageDeath::Revoked { victim } => {
                self.integrate(now);
                self.fstats.threads_revoked += 1;
                self.pages_busy -= 1;
                let Mode::OnCgra {
                    kernel,
                    remaining,
                    rate,
                    since,
                } = self.mode[victim]
                else {
                    return Err(SimError::VictimNotRunning { thread: victim });
                };
                // Credit whole iterations completed before the
                // fault; the in-flight remainder is lost and
                // re-queued.
                let done = if now <= since {
                    0
                } else {
                    ((now - since) / rate).min(remaining)
                };
                self.cgra_iterations += done;
                let left = remaining - done;
                self.fstats.iterations_deferred += left;
                self.q.bump(victim);
                self.mode[victim] = Mode::Waiting {
                    kernel,
                    iterations: left,
                    enqueued: now,
                };
                self.queue.push_back(victim);
                self.fault_waiting[victim] = true;
                self.tracer.emit(|| TraceEvent::Revoke {
                    time: now,
                    thread: victim as u32,
                    page,
                });
            }
        }
        // A death can free surplus pages (chain rounding): let
        // waiting threads in and regrow survivors.
        self.redistribute(now)
    }

    /// Apply one pending repair action (stale ones — scheduled before
    /// the page was struck again — are dropped).
    fn apply_repair(&mut self, action: RepairAction) -> Result<(), SimError> {
        if action.version != self.repair_version[action.page as usize] {
            return Ok(());
        }
        let now = action.time;
        match action.phase {
            RepairPhase::Begin => {
                // Dead → Repairing; the quarantine window starts. The
                // page is still unusable until the commit.
                self.faults.begin_repair(action.page);
                self.repairs.push(Reverse(RepairAction {
                    time: now.saturating_add(self.cfg.quarantine),
                    page: action.page,
                    phase: RepairPhase::Commit,
                    version: action.version,
                }));
                Ok(())
            }
            RepairPhase::Commit => {
                // Repairing → Healthy; the page returns to the free
                // pool and recovered capacity is re-offered: queued
                // threads first, then the most-shrunk live thread.
                self.faults.complete_repair(action.page);
                let revived = self.alloc.revive(action.page)?;
                debug_assert!(revived, "live-version commit must revive a dead page");
                self.fstats.repairs += 1;
                self.tracer.emit(|| TraceEvent::PageRepaired {
                    time: now,
                    page: action.page,
                });
                self.redistribute_repaired(now)
            }
        }
    }

    fn run(&mut self) -> Result<(), SimError> {
        for t in 0..self.threads.len() {
            self.q.push(0, t);
            self.mode[t] = Mode::Advancing;
        }
        // Kick-off events advance each thread into its first segment.
        // Three merged streams: thread events, fault events, and repair
        // actions. Fabric events (faults + repairs) strictly before the
        // next thread event go first (ties go to the thread event: a
        // kernel finishing at t completes before a page dying at t),
        // and must be applied before *popping* — a fault bumps versions
        // and can invalidate the event we would have popped. Among
        // fabric events at the same time, repairs fire before faults (a
        // page repairs, then is struck again). Fabric events also
        // continue with no thread events pending: with every tenant
        // revoked and queued, a later kill can still free surplus pages
        // — and a pending repair can rescue the whole queue.
        loop {
            let next_event = self.q.peek_time();
            let next_fault = self.fault_events.get(self.fault_idx).copied();
            let next_repair = self.repairs.peek().map(|&Reverse(a)| a);
            let repair_first = match (next_repair, next_fault) {
                (Some(r), Some(f)) => r.time <= f.time,
                (Some(_), None) => true,
                (None, _) => false,
            };
            let fabric_time = match (next_repair, next_fault) {
                (None, None) => None,
                _ if repair_first => next_repair.map(|r| r.time),
                _ => next_fault.map(|f| f.time),
            };
            let fabric_due = match (next_event, fabric_time) {
                (None, None) => break,
                (Some(te), Some(ft)) => ft < te,
                (None, Some(_)) => true,
                (Some(_), None) => false,
            };
            if fabric_due {
                if repair_first {
                    self.repairs.pop();
                    self.apply_repair(next_repair.expect("repair_first implies a repair"))?;
                } else {
                    self.fault_idx += 1;
                    self.apply_fault(next_fault.expect("fabric_due implies a fault"))?;
                }
                continue;
            }
            let Some(ev) = self.q.pop() else { continue };
            let t = ev.thread;
            match self.mode[t] {
                Mode::Advancing => self.advance(t, ev.time)?,
                Mode::OnCgra { .. } => self.finish_kernel(t, ev.time)?,
                Mode::Waiting { .. } | Mode::Done => {}
            }
            if !self.alloc.check_invariant() {
                return Err(SimError::InvariantViolated {
                    detail: "allocation counts diverged from page identities".to_string(),
                });
            }
        }
        // Faults can eat so much of the fabric that queued threads are
        // never admitted again; report that instead of a silent zero
        // finish time. (Impossible without faults: every queued thread
        // is eventually served when a running thread finishes.)
        for t in 0..self.threads.len() {
            if self.mode[t] != Mode::Done {
                return Err(SimError::Starved {
                    thread: t,
                    usable_pages: self.alloc.usable_pages(),
                });
            }
        }
        Ok(())
    }
}

/// Simulate the multithreaded system; deterministic for a given workload.
pub fn simulate_multithreaded(
    lib: &KernelLibrary,
    threads: &[ThreadSpec],
    cfg: MtConfig,
) -> Result<SimReport, SimError> {
    simulate_multithreaded_faulty(lib, threads, cfg, &[])
}

/// Simulate the multithreaded system under a fault schedule.
///
/// `faults` need not be sorted; events are applied in `(time, page)`
/// order, each one strictly before any thread event at a later time.
/// With an empty schedule this is exactly [`simulate_multithreaded`].
pub fn simulate_multithreaded_faulty(
    lib: &KernelLibrary,
    threads: &[ThreadSpec],
    cfg: MtConfig,
    faults: &[FaultEvent],
) -> Result<SimReport, SimError> {
    simulate_multithreaded_faulty_traced(lib, threads, cfg, faults, &Tracer::off())
}

/// [`simulate_multithreaded_faulty`] with every scheduling decision
/// emitted to `tracer`: one `SimBegin`/`SimEnd` pair bracketing the run
/// (or `SimAbort` when the simulation errors out), with thread
/// queue/start/shrink/expand/finish/done, fault, and revoke events in
/// between, all stamped with simulation time.
pub fn simulate_multithreaded_faulty_traced(
    lib: &KernelLibrary,
    threads: &[ThreadSpec],
    cfg: MtConfig,
    faults: &[FaultEvent],
    tracer: &Tracer,
) -> Result<SimReport, SimError> {
    let mut fault_events = faults.to_vec();
    fault_events.sort_by_key(|f| (f.time, f.page));
    tracer.emit(|| TraceEvent::SimBegin {
        threads: threads.len() as u32,
        pages: lib.num_pages,
    });
    let mut sim = Sim {
        lib,
        threads,
        cfg,
        tracer,
        q: EventQueue::new(threads.len()),
        seg_idx: vec![0; threads.len()],
        mode: vec![Mode::Advancing; threads.len()],
        finish: vec![0; threads.len()],
        alloc: Allocator::new(lib.num_pages),
        queue: VecDeque::new(),
        fault_events,
        fault_idx: 0,
        faults: FaultMap::new(lib.num_pages),
        fstats: FaultStats::default(),
        fault_waiting: vec![false; threads.len()],
        repairs: BinaryHeap::new(),
        repair_version: vec![0; lib.num_pages as usize],
        cgra_iterations: 0,
        page_cycles: 0,
        pages_busy: 0,
        last_integral: 0,
        shrinks: 0,
        expands: 0,
        stall_cycles: 0,
    };
    if let Err(err) = sim.run() {
        tracer.emit(|| TraceEvent::SimAbort {
            reason: err.to_string(),
        });
        return Err(err);
    }
    tracer.emit(|| TraceEvent::SimEnd {
        makespan: sim.finish.iter().copied().max().unwrap_or(0),
        iterations: sim.cgra_iterations,
    });
    Ok(SimReport {
        makespan: sim.finish.iter().copied().max().unwrap_or(0),
        thread_finish: sim.finish,
        cgra_iterations: sim.cgra_iterations,
        page_cycles: sim.page_cycles,
        shrinks: sim.shrinks,
        expands: sim.expands,
        stall_cycles: sim.stall_cycles,
        faults: sim.fstats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::improvement_percent;
    use crate::workload::{generate, CgraNeed, WorkloadParams};
    use cgra_mapper::MapOptions;

    fn lib(dim: u16) -> KernelLibrary {
        KernelLibrary::compile_benchmarks(
            &cgra_arch::CgraConfig::square(dim),
            &MapOptions::default(),
        )
        .expect("library compiles")
    }

    #[test]
    fn single_thread_matches_constrained_rate() {
        let lib = lib(4);
        let spec = ThreadSpec {
            segments: vec![Segment::Cgra {
                kernel: 0,
                iterations: 50,
            }],
        };
        let r = simulate_multithreaded(&lib, &[spec], MtConfig::default()).unwrap();
        let ii = lib.profile(0).ii_constrained as u64;
        assert_eq!(r.makespan, 50 * ii);
        assert_eq!(r.shrinks, 0);
    }

    #[test]
    fn deterministic() {
        let lib = lib(4);
        let w = generate(&lib, &WorkloadParams::default());
        let a = simulate_multithreaded(&lib, &w, MtConfig::default()).unwrap();
        let b = simulate_multithreaded(&lib, &w, MtConfig::default()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn small_kernels_co_run_without_shrinking() {
        let lib = lib(4);
        // Two threads running kernels that fit half the array each.
        let small = (0..lib.len())
            .find(|&k| lib.profile(k).wanted_pages(lib.num_pages) <= 2)
            .expect("some kernel uses at most half the 4x4");
        let spec = ThreadSpec {
            segments: vec![Segment::Cgra {
                kernel: small,
                iterations: 100,
            }],
        };
        let r = simulate_multithreaded(&lib, &[spec.clone(), spec], MtConfig::default()).unwrap();
        assert_eq!(r.shrinks, 0, "unused-portion rule should serve both");
        let ii = lib.profile(small).ii_constrained as u64;
        assert_eq!(r.makespan, 100 * ii);
    }

    #[test]
    fn multithreading_beats_baseline_on_contended_workloads() {
        let lib = lib(8);
        let w = generate(
            &lib,
            &WorkloadParams {
                threads: 8,
                need: CgraNeed::High,
                work_per_thread: 50_000,
                bursts: 3,
                seed: 7,
            },
        );
        let base = crate::baseline::simulate_baseline(&lib, &w);
        let mt = simulate_multithreaded(&lib, &w, MtConfig::default()).unwrap();
        let imp = improvement_percent(base.makespan, mt.makespan);
        assert!(
            imp > 20.0,
            "expected solid improvement on 8x8 with 8 threads, got {imp:.1}%"
        );
    }

    #[test]
    fn overhead_reduces_but_does_not_break_improvement() {
        let lib = lib(4);
        let w = generate(
            &lib,
            &WorkloadParams {
                threads: 4,
                need: CgraNeed::High,
                ..Default::default()
            },
        );
        let zero = simulate_multithreaded(&lib, &w, MtConfig::default()).unwrap();
        let heavy = simulate_multithreaded(
            &lib,
            &w,
            MtConfig {
                switch_overhead: 1000,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(heavy.makespan >= zero.makespan);
    }

    #[test]
    fn conservation_of_iterations() {
        let lib = lib(4);
        let w = generate(&lib, &WorkloadParams::default());
        let total: u64 = w
            .iter()
            .flat_map(|t| &t.segments)
            .map(|s| match s {
                Segment::Cgra { iterations, .. } => *iterations,
                _ => 0,
            })
            .sum();
        let r = simulate_multithreaded(&lib, &w, MtConfig::default()).unwrap();
        assert_eq!(r.cgra_iterations, total);
    }

    #[test]
    fn queued_thread_drains_when_capacity_frees() {
        let lib = lib(4);
        // Find a kernel wanting the whole array, so every arrival forces
        // a shrink and the fifth request finds everyone at one page.
        let big = (0..lib.len())
            .find(|&k| lib.profile(k).wanted_pages(lib.num_pages) == lib.num_pages)
            .expect("some kernel wants the whole 4x4");
        let spec = |iters: u64| ThreadSpec {
            segments: vec![Segment::Cgra {
                kernel: big,
                iterations: iters,
            }],
        };
        // Threads 0..4 fill the fabric down to 1 page each; thread 4
        // arrives with nothing shrinkable left and must queue until one
        // of the others finishes.
        let threads = [spec(200), spec(200), spec(200), spec(200), spec(50)];
        let r = simulate_multithreaded(&lib, &threads, MtConfig::default()).unwrap();
        assert!(r.stall_cycles > 0, "fifth thread should have waited: {r:?}");
        assert!(r.thread_finish.iter().all(|&f| f > 0));
        assert_eq!(r.shrinks, 3, "arrivals 1..3 each shrink a tenant");
    }

    #[test]
    fn zero_fault_schedule_is_identical_to_plain_path() {
        let lib = lib(4);
        let w = generate(&lib, &WorkloadParams::default());
        let plain = simulate_multithreaded(&lib, &w, MtConfig::default()).unwrap();
        let faulty = simulate_multithreaded_faulty(&lib, &w, MtConfig::default(), &[]).unwrap();
        assert_eq!(plain, faulty);
        assert!(!faulty.faults.any());
    }

    #[test]
    fn page_death_shrinks_only_the_owner() {
        let lib = lib(4);
        let small = (0..lib.len())
            .find(|&k| lib.profile(k).wanted_pages(lib.num_pages) == 2)
            .expect("some kernel wants half the 4x4");
        let spec = ThreadSpec {
            segments: vec![Segment::Cgra {
                kernel: small,
                iterations: 1000,
            }],
        };
        // Two tenants at 2 pages each: thread 0 on pages {0,1}, thread 1
        // on pages {2,3}. Kill page 0 mid-run: only thread 0 is remapped.
        let ii = lib.profile(small).ii_constrained as u64;
        let faults = [FaultEvent {
            time: 100 * ii,
            page: 0,
            kind: FaultKind::Kill,
        }];
        let r = simulate_multithreaded_faulty(
            &lib,
            &[spec.clone(), spec],
            MtConfig::default(),
            &faults,
        )
        .unwrap();
        assert_eq!(r.faults.injected, 1);
        assert_eq!(r.faults.pages_killed, 1);
        assert_eq!(r.faults.threads_remapped, 1);
        assert_eq!(r.faults.threads_revoked, 0);
        // Thread 1 is untouched: it finishes at its undisturbed rate.
        assert_eq!(r.thread_finish[1], 1000 * ii);
        // Thread 0 lost a page and must run slower from the fault on.
        assert!(r.thread_finish[0] > 1000 * ii);
        assert_eq!(r.cgra_iterations, 2000);
    }

    #[test]
    fn fault_runs_are_deterministic() {
        let lib = lib(4);
        let w = generate(&lib, &WorkloadParams::default());
        let faults = [
            FaultEvent {
                time: 5_000,
                page: 1,
                kind: FaultKind::Kill,
            },
            FaultEvent {
                time: 9_000,
                page: 3,
                kind: FaultKind::Degrade,
            },
        ];
        let a = simulate_multithreaded_faulty(&lib, &w, MtConfig::default(), &faults).unwrap();
        let b = simulate_multithreaded_faulty(&lib, &w, MtConfig::default(), &faults).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn revoked_thread_requeues_and_completes() {
        let lib = lib(4);
        let big = (0..lib.len())
            .find(|&k| lib.profile(k).wanted_pages(lib.num_pages) == lib.num_pages)
            .expect("some kernel wants the whole 4x4");
        let spec = |iters: u64| ThreadSpec {
            segments: vec![Segment::Cgra {
                kernel: big,
                iterations: iters,
            }],
        };
        // Four tenants at one page each; kill thread 0's page early. It
        // is revoked, waits, and is re-admitted when a tenant finishes.
        let threads = [spec(500), spec(100), spec(500), spec(500)];
        let r = simulate_multithreaded_faulty(
            &lib,
            &threads,
            MtConfig::default(),
            &[FaultEvent {
                time: 3,
                page: 0,
                kind: FaultKind::Kill,
            }],
        )
        .unwrap();
        assert_eq!(r.faults.threads_revoked, 1);
        assert!(r.faults.iterations_deferred > 0);
        assert!(r.faults.recovery_cycles > 0);
        assert!(r.thread_finish.iter().all(|&f| f > 0), "{r:?}");
    }

    #[test]
    fn killing_every_page_starves_typed() {
        let lib = lib(4);
        let big = (0..lib.len())
            .find(|&k| lib.profile(k).wanted_pages(lib.num_pages) == lib.num_pages)
            .expect("some kernel wants the whole 4x4");
        let spec = ThreadSpec {
            segments: vec![Segment::Cgra {
                kernel: big,
                iterations: 1_000_000,
            }],
        };
        let faults: Vec<FaultEvent> = (0..4)
            .map(|p| FaultEvent {
                time: 10 + p as u64,
                page: p,
                kind: FaultKind::Kill,
            })
            .collect();
        let err =
            simulate_multithreaded_faulty(&lib, &[spec], MtConfig::default(), &faults).unwrap_err();
        assert!(
            matches!(
                err,
                SimError::Starved {
                    usable_pages: 0,
                    ..
                }
            ),
            "{err:?}"
        );
    }

    /// Two tenants at two pages each; a transient strike on page 0
    /// shrinks thread 0 to one page, then repair + supervised
    /// re-expansion puts it back on two — the full
    /// shrink → repair → expand round trip, with the trace showing
    /// `PageRepaired` and `Reexpanded` at the expected cycles.
    #[test]
    fn transient_fault_round_trips_to_original_page_count() {
        let lib = lib(4);
        let small = (0..lib.len())
            .find(|&k| lib.profile(k).wanted_pages(lib.num_pages) == 2)
            .expect("some kernel wants half the 4x4");
        let spec = ThreadSpec {
            segments: vec![Segment::Cgra {
                kernel: small,
                iterations: 1000,
            }],
        };
        let ii = lib.profile(small).ii_constrained as u64;
        let (strike, repair_after, quarantine) = (100 * ii, 50 * ii, 64);
        let sink = std::sync::Arc::new(cgra_obs::RingSink::unbounded());
        let tracer = Tracer::new(sink.clone());
        let r = simulate_multithreaded_faulty_traced(
            &lib,
            &[spec.clone(), spec],
            MtConfig {
                quarantine,
                ..MtConfig::default()
            },
            &[FaultEvent {
                time: strike,
                page: 0,
                kind: FaultKind::Transient { repair_after },
            }],
            &tracer,
        )
        .unwrap();
        assert_eq!(r.faults.pages_killed, 1);
        assert_eq!(r.faults.threads_remapped, 1);
        assert_eq!(r.faults.repairs, 1);
        assert_eq!(r.faults.reexpansions, 1);
        // No revoke ⇒ no iteration loss across the round trip.
        assert_eq!(r.faults.iterations_deferred, 0);
        assert_eq!(r.cgra_iterations, 2000);
        // Thread 1 never noticed; thread 0 paid for the one-page spell.
        assert_eq!(r.thread_finish[1], 1000 * ii);
        assert!(r.thread_finish[0] > 1000 * ii);
        let events = sink.drain();
        let repaired_at = events
            .iter()
            .find_map(|ev| match ev {
                TraceEvent::PageRepaired { time, page: 0 } => Some(*time),
                _ => None,
            })
            .expect("page 0 is repaired");
        assert_eq!(repaired_at, strike + repair_after + quarantine);
        let reexpanded = events
            .iter()
            .find_map(|ev| match ev {
                TraceEvent::Reexpanded {
                    time,
                    thread: 0,
                    from,
                    to,
                    ..
                } => Some((*time, *from, *to)),
                _ => None,
            })
            .expect("thread 0 is re-expanded");
        assert_eq!(reexpanded.1, 1, "re-expansion starts from the shrunk size");
        assert_eq!(reexpanded.2, 2, "…and restores the original page count");
        assert!(reexpanded.0 >= repaired_at);
    }

    /// A longer quarantine window keeps the repaired page out of the
    /// pool longer, so the shrunk thread runs slow for longer.
    #[test]
    fn quarantine_delays_the_reoffer() {
        let lib = lib(4);
        let small = (0..lib.len())
            .find(|&k| lib.profile(k).wanted_pages(lib.num_pages) == 2)
            .expect("some kernel wants half the 4x4");
        let spec = ThreadSpec {
            segments: vec![Segment::Cgra {
                kernel: small,
                iterations: 1000,
            }],
        };
        let ii = lib.profile(small).ii_constrained as u64;
        let fault = [FaultEvent {
            time: 100 * ii,
            page: 0,
            kind: FaultKind::Transient {
                repair_after: 10 * ii,
            },
        }];
        let run = |quarantine: u64| {
            simulate_multithreaded_faulty(
                &lib,
                &[spec.clone(), spec.clone()],
                MtConfig {
                    quarantine,
                    ..MtConfig::default()
                },
                &fault,
            )
            .unwrap()
        };
        let short = run(0);
        let long = run(400 * ii);
        assert_eq!(short.faults.repairs, 1);
        assert_eq!(long.faults.repairs, 1);
        assert!(
            short.thread_finish[0] < long.thread_finish[0],
            "longer quarantine must delay recovery: {} vs {}",
            short.thread_finish[0],
            long.thread_finish[0]
        );
    }

    /// A permanent kill landing while the page awaits repair cancels
    /// the repair — the page stays dead for good.
    #[test]
    fn permanent_kill_during_repair_sticks() {
        let lib = lib(4);
        let small = (0..lib.len())
            .find(|&k| lib.profile(k).wanted_pages(lib.num_pages) == 2)
            .expect("some kernel wants half the 4x4");
        let spec = ThreadSpec {
            segments: vec![Segment::Cgra {
                kernel: small,
                iterations: 1000,
            }],
        };
        let ii = lib.profile(small).ii_constrained as u64;
        let faults = [
            FaultEvent {
                time: 100 * ii,
                page: 0,
                kind: FaultKind::Transient {
                    repair_after: 50 * ii,
                },
            },
            // Lands while page 0 is dead awaiting repair.
            FaultEvent {
                time: 120 * ii,
                page: 0,
                kind: FaultKind::Kill,
            },
        ];
        let r = simulate_multithreaded_faulty(
            &lib,
            &[spec.clone(), spec],
            MtConfig::default(),
            &faults,
        )
        .unwrap();
        assert_eq!(r.faults.injected, 2);
        assert_eq!(r.faults.pages_killed, 1, "second strike found it dead");
        assert_eq!(r.faults.repairs, 0, "the permanent kill cancels repair");
        assert_eq!(r.faults.reexpansions, 0);
        assert!(r.thread_finish[0] > 1000 * ii, "thread 0 stays shrunk");
    }

    /// A second transient strike mid-quarantine invalidates the pending
    /// commit and restarts the repair clock from the new strike.
    #[test]
    fn restrike_during_quarantine_restarts_the_repair_clock() {
        let lib = lib(4);
        let small = (0..lib.len())
            .find(|&k| lib.profile(k).wanted_pages(lib.num_pages) == 2)
            .expect("some kernel wants half the 4x4");
        let spec = ThreadSpec {
            segments: vec![Segment::Cgra {
                kernel: small,
                iterations: 2000,
            }],
        };
        let ii = lib.profile(small).ii_constrained as u64;
        let (t0, ra, q) = (100 * ii, 20 * ii, 100 * ii);
        let t1 = t0 + ra + q / 2; // inside the quarantine window
        let faults = [
            FaultEvent {
                time: t0,
                page: 0,
                kind: FaultKind::Transient { repair_after: ra },
            },
            FaultEvent {
                time: t1,
                page: 0,
                kind: FaultKind::Transient { repair_after: ra },
            },
        ];
        let sink = std::sync::Arc::new(cgra_obs::RingSink::unbounded());
        let tracer = Tracer::new(sink.clone());
        let r = simulate_multithreaded_faulty_traced(
            &lib,
            &[spec.clone(), spec],
            MtConfig {
                quarantine: q,
                ..MtConfig::default()
            },
            &faults,
            &tracer,
        )
        .unwrap();
        assert_eq!(r.faults.pages_killed, 2, "the re-strike kills it again");
        assert_eq!(r.faults.repairs, 1, "only the restarted repair commits");
        let repaired_at = sink
            .drain()
            .iter()
            .find_map(|ev| match ev {
                TraceEvent::PageRepaired { time, page: 0 } => Some(*time),
                _ => None,
            })
            .expect("page 0 is eventually repaired");
        assert_eq!(repaired_at, t1 + ra + q, "clock restarts at the re-strike");
    }

    /// Transient kills of *every* page starve the fabric only until the
    /// repairs land — the revoked threads are re-admitted from the
    /// queue and the run completes (contrast
    /// [`killing_every_page_starves_typed`]).
    #[test]
    fn transient_kill_of_every_page_recovers_instead_of_starving() {
        let lib = lib(4);
        let big = (0..lib.len())
            .find(|&k| lib.profile(k).wanted_pages(lib.num_pages) == lib.num_pages)
            .expect("some kernel wants the whole 4x4");
        let spec = ThreadSpec {
            segments: vec![Segment::Cgra {
                kernel: big,
                iterations: 1000,
            }],
        };
        let faults: Vec<FaultEvent> = (0..4)
            .map(|p| FaultEvent {
                time: 10 + u64::from(p),
                page: p,
                kind: FaultKind::Transient { repair_after: 500 },
            })
            .collect();
        let r = simulate_multithreaded_faulty(
            &lib,
            std::slice::from_ref(&spec),
            MtConfig::default(),
            &faults,
        )
        .unwrap();
        assert_eq!(r.faults.repairs, 4, "every page comes back");
        assert_eq!(r.faults.threads_revoked, 1);
        assert!(r.faults.recovery_cycles > 0);
        assert!(r.thread_finish[0] > 0, "{r:?}");
        assert_eq!(r.cgra_iterations, 1000, "no iterations lost for good");
    }

    #[test]
    fn transient_runs_are_deterministic() {
        let lib = lib(4);
        let w = generate(&lib, &WorkloadParams::default());
        let faults = [
            FaultEvent {
                time: 5_000,
                page: 1,
                kind: FaultKind::Transient { repair_after: 800 },
            },
            FaultEvent {
                time: 9_000,
                page: 3,
                kind: FaultKind::Transient { repair_after: 200 },
            },
        ];
        let a = simulate_multithreaded_faulty(&lib, &w, MtConfig::default(), &faults).unwrap();
        let b = simulate_multithreaded_faulty(&lib, &w, MtConfig::default(), &faults).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn degrade_slows_only_while_holding_the_page() {
        let lib = lib(4);
        let big = (0..lib.len())
            .find(|&k| lib.profile(k).wanted_pages(lib.num_pages) == lib.num_pages)
            .expect("some kernel wants the whole 4x4");
        let spec = ThreadSpec {
            segments: vec![Segment::Cgra {
                kernel: big,
                iterations: 100,
            }],
        };
        let ii = lib.profile(big).ii_constrained as u64;
        let clean =
            simulate_multithreaded(&lib, std::slice::from_ref(&spec), MtConfig::default()).unwrap();
        let degraded = simulate_multithreaded_faulty(
            &lib,
            &[spec],
            MtConfig::default(),
            &[FaultEvent {
                time: 10 * ii,
                page: 2,
                kind: FaultKind::Degrade,
            }],
        )
        .unwrap();
        assert_eq!(degraded.faults.pages_degraded, 1);
        assert!(
            degraded.makespan > clean.makespan,
            "degraded page should slow the tenant: {} vs {}",
            degraded.makespan,
            clean.makespan
        );
    }
}
