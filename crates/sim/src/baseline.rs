//! The single-threaded, non-preemptive CGRA system (§VII-B case (i)).
//!
//! The host runs every thread concurrently (one core each — DESIGN.md
//! substitution 3), but the CGRA is a single FCFS resource: a kernel
//! occupies the *entire* array, at the unconstrained baseline II, until it
//! finishes. This is the system today's CGRA compilers imply, and the
//! reference Fig. 9 improvements are measured against.

use crate::event::EventQueue;
use crate::kernel_lib::KernelLibrary;
use crate::stats::SimReport;
use crate::workload::{Segment, ThreadSpec};

/// Simulate the baseline system; deterministic for a given workload.
pub fn simulate_baseline(lib: &KernelLibrary, threads: &[ThreadSpec]) -> SimReport {
    let mut q = EventQueue::new(threads.len());
    let mut seg_idx = vec![0usize; threads.len()];
    let mut finish = vec![0u64; threads.len()];
    let mut cgra_free_at = 0u64;
    let mut cgra_iterations = 0u64;
    let mut page_cycles = 0u64;
    let mut stall_cycles = 0u64;

    // Everyone starts their first segment at t=0.
    for t in 0..threads.len() {
        q.push(0, t);
    }

    while let Some(ev) = q.pop() {
        let t = ev.thread;
        let idx = seg_idx[t];
        if idx >= threads[t].segments.len() {
            continue;
        }
        match threads[t].segments[idx] {
            Segment::Cpu(cycles) => {
                seg_idx[t] += 1;
                let done = ev.time + cycles;
                if seg_idx[t] >= threads[t].segments.len() {
                    finish[t] = done;
                } else {
                    q.bump(t);
                    q.push(done, t);
                }
            }
            Segment::Cgra { kernel, iterations } => {
                let ii = lib.profile(kernel).ii_baseline as u64;
                let start = ev.time.max(cgra_free_at);
                let duration = iterations * ii;
                stall_cycles += start - ev.time;
                cgra_free_at = start + duration;
                cgra_iterations += iterations;
                page_cycles += lib.num_pages as u64 * duration;
                seg_idx[t] += 1;
                if seg_idx[t] >= threads[t].segments.len() {
                    finish[t] = cgra_free_at;
                } else {
                    q.bump(t);
                    q.push(cgra_free_at, t);
                }
            }
        }
    }

    SimReport {
        makespan: finish.iter().copied().max().unwrap_or(0),
        thread_finish: finish,
        cgra_iterations,
        page_cycles,
        shrinks: 0,
        expands: 0,
        stall_cycles,
        faults: Default::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{generate, WorkloadParams};
    use cgra_mapper::MapOptions;

    fn lib() -> KernelLibrary {
        KernelLibrary::compile_benchmarks(&cgra_arch::CgraConfig::square(4), &MapOptions::default())
            .expect("library compiles")
    }

    #[test]
    fn single_thread_runs_back_to_back() {
        let lib = lib();
        let spec = ThreadSpec {
            segments: vec![
                Segment::Cpu(100),
                Segment::Cgra {
                    kernel: 0,
                    iterations: 10,
                },
            ],
        };
        let r = simulate_baseline(&lib, &[spec]);
        let ii = lib.profile(0).ii_baseline as u64;
        assert_eq!(r.makespan, 100 + 10 * ii);
        assert_eq!(r.stall_cycles, 0);
        assert_eq!(r.cgra_iterations, 10);
    }

    #[test]
    fn two_threads_serialize_on_the_cgra() {
        let lib = lib();
        let seg = Segment::Cgra {
            kernel: 0,
            iterations: 100,
        };
        let spec = ThreadSpec {
            segments: vec![seg],
        };
        let r = simulate_baseline(&lib, &[spec.clone(), spec]);
        let ii = lib.profile(0).ii_baseline as u64;
        assert_eq!(r.makespan, 200 * ii);
        assert_eq!(r.stall_cycles, 100 * ii);
    }

    #[test]
    fn cpu_segments_overlap_cgra_use() {
        let lib = lib();
        let ii = lib.profile(0).ii_baseline as u64;
        let a = ThreadSpec {
            segments: vec![Segment::Cgra {
                kernel: 0,
                iterations: 100,
            }],
        };
        let b = ThreadSpec {
            segments: vec![Segment::Cpu(100 * ii)],
        };
        let r = simulate_baseline(&lib, &[a, b]);
        // Thread b's CPU work fully overlaps thread a's CGRA work.
        assert_eq!(r.makespan, 100 * ii);
    }

    #[test]
    fn deterministic() {
        let lib = lib();
        let w = generate(&lib, &WorkloadParams::default());
        assert_eq!(simulate_baseline(&lib, &w), simulate_baseline(&lib, &w));
    }
}
