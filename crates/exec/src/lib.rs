//! # cgra-exec — functional execution of CGRA schedules
//!
//! Structural validators (crate `cgra-mapper`, `cgra-core`) check that
//! schedules *could* move values correctly; this crate checks that they
//! *do*: it runs schedules with concrete values and compares against a
//! golden dataflow interpretation.
//!
//! * [`semantics`] — concrete, operand-order-sensitive op semantics.
//! * [`interp`] — the golden reference: direct DFG interpretation over
//!   input streams.
//! * [`machine`] — cycle-level execution of a mapped or PageMaster-folded
//!   schedule: values only exist where and when their producing steps
//!   published them; every read asserts physical presence.
//! * [`error`] — the shared [`ExecError`] both paths report instead of
//!   panicking, so a bad schedule or truncated input stream stays a
//!   value the caller can route.
//!
//! The headline property (exercised by the test suites and
//! `examples/functional_check.rs`): for every benchmark kernel,
//!
//! ```text
//! interpret(dfg)  ==  execute(map_baseline(dfg))
//!                 ==  execute(map_constrained(dfg))
//!                 ==  execute(fold_to_page(map_constrained(dfg)))
//! ```
//!
//! so the paging constraints and the shrink transformation preserve
//! program semantics, not just scheduling invariants.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod error;
pub mod interp;
pub mod machine;
pub mod semantics;

pub use error::ExecError;
pub use interp::{interpret, InputStreams, Outputs};
pub use machine::{execute, MachineSchedule};
pub use semantics::{const_value, eval, Word};
