//! Concrete operation semantics for functional execution.
//!
//! The DFG IR carries no constants or addresses — it is a scheduling IR.
//! For *equivalence checking* any deterministic, input-order-sensitive
//! interpretation will do: if the golden interpreter and the cycle-level
//! machine agree on every store under these semantics for random inputs,
//! the mapping/transform moved every value to the right place at the
//! right time. The semantics below are wrapping-integer and deliberately
//! asymmetric in their operands so that swapped or misrouted operands
//! change the result.

use cgra_dfg::graph::OpKind;

/// The machine word.
pub type Word = i64;

/// Evaluate one operation over its ordered inputs.
///
/// * `Load` with no inputs is a stream input and is *not* handled here
///   (the executor feeds it); a `Load` with an input is a spill reload —
///   identity.
/// * `Store` passes its input through (the executor records it).
/// * `Const` evaluates to a per-node constant supplied by the executor.
///
/// # Panics
/// Panics if called for a stream `Load` or a `Const` (executor-supplied),
/// or if an op has no inputs where one is required.
pub fn eval(op: OpKind, inputs: &[Word]) -> Word {
    let a = |i: usize| -> Word {
        *inputs
            .get(i)
            .unwrap_or_else(|| panic!("{op:?} missing operand {i}"))
    };
    match op {
        OpKind::Load | OpKind::Store | OpKind::Route => a(0),
        OpKind::Const => unreachable!("constants are supplied by the executor"),
        OpKind::Add => inputs.iter().fold(0i64, |x, &y| x.wrapping_add(y)),
        OpKind::Sub => {
            if inputs.len() == 1 {
                0i64.wrapping_sub(a(0))
            } else {
                a(0).wrapping_sub(a(1))
            }
        }
        OpKind::Mul => inputs.iter().fold(1i64, |x, &y| x.wrapping_mul(y)),
        OpKind::Shift => a(0).wrapping_shl(1),
        OpKind::Logic => inputs.iter().fold(0i64, |x, &y| x ^ y),
        OpKind::Cmp => {
            if inputs.len() >= 2 {
                (a(0) < a(1)) as Word
            } else {
                (a(0) < 0) as Word
            }
        }
        OpKind::Select => {
            // Predicate-sensitive and operand-order-sensitive. A 1-input
            // select (random DFGs generate them) degenerates to a
            // self-conditional clamp.
            let val = if inputs.len() >= 2 { a(1) } else { a(0) };
            if a(0) & 1 != 0 {
                val
            } else {
                val.wrapping_neg().wrapping_add(1)
            }
        }
        OpKind::Abs => a(0).wrapping_abs(),
    }
}

/// The constant a `Const` node evaluates to: derived from its node index
/// so distinct constants differ (and misrouted constants are caught).
pub fn const_value(node_index: usize) -> Word {
    (node_index as Word)
        .wrapping_mul(2654435761)
        .wrapping_add(17)
        % 1009
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sub_is_order_sensitive() {
        assert_ne!(eval(OpKind::Sub, &[5, 3]), eval(OpKind::Sub, &[3, 5]));
    }

    #[test]
    fn add_mul_fold_all_inputs() {
        assert_eq!(eval(OpKind::Add, &[1, 2, 3]), 6);
        assert_eq!(eval(OpKind::Mul, &[2, 3, 4]), 24);
    }

    #[test]
    fn select_depends_on_predicate() {
        assert_ne!(eval(OpKind::Select, &[0, 9]), eval(OpKind::Select, &[1, 9]));
    }

    #[test]
    fn route_and_store_pass_through() {
        assert_eq!(eval(OpKind::Route, &[42]), 42);
        assert_eq!(eval(OpKind::Store, &[42]), 42);
    }

    #[test]
    fn consts_differ_per_node() {
        assert_ne!(const_value(0), const_value(1));
    }

    #[test]
    fn wrapping_does_not_panic() {
        eval(OpKind::Mul, &[i64::MAX, i64::MAX]);
        eval(OpKind::Add, &[i64::MIN, -1]);
        eval(OpKind::Abs, &[i64::MIN]);
    }
}
