//! Typed execution errors.
//!
//! Both the golden interpreter ([`crate::interp::interpret`]) and the
//! cycle-level machine ([`crate::machine::execute`]) report failures
//! through [`ExecError`] instead of panicking, so a malformed schedule or
//! a truncated input stream surfaces as a value the caller can route —
//! e.g. into one sweep point's result slot — rather than aborting the
//! whole process.

use cgra_arch::topology::PeId;

/// Why execution (interpretation or machine run) failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// A read found no value at the expected place and time.
    ValueNotPresent {
        /// Consumer description.
        what: String,
    },
    /// A read site is neither the reader's PE nor adjacent to it.
    NotAdjacent {
        /// Reader PE.
        reader: PeId,
        /// Source PE.
        source: PeId,
    },
    /// A memory load ran before its store's data was visible.
    MemoryNotReady {
        /// Store node index.
        store: u32,
        /// Instance.
        instance: u64,
    },
    /// No legal read source could be derived for an edge (plan failure).
    NoReadSource {
        /// Edge index.
        edge: usize,
    },
    /// An input stream had no value for a stream load at some iteration.
    MissingInput {
        /// Load node index.
        node: u32,
        /// Iteration the read happened at.
        iteration: usize,
    },
    /// The DFG has a zero-distance cycle, so no topological order exists.
    CyclicDfg,
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::ValueNotPresent { what } => write!(f, "value not present: {what}"),
            ExecError::NotAdjacent { reader, source } => {
                write!(f, "read across non-link: {source} -> {reader}")
            }
            ExecError::MemoryNotReady { store, instance } => {
                write!(
                    f,
                    "memory from store n{store} instance {instance} not ready"
                )
            }
            ExecError::NoReadSource { edge } => write!(f, "edge #{edge} has no read source"),
            ExecError::MissingInput { node, iteration } => {
                write!(f, "no input for n{node} iteration {iteration}")
            }
            ExecError::CyclicDfg => write!(f, "zero-distance cycle: no topological order"),
        }
    }
}

impl std::error::Error for ExecError {}
