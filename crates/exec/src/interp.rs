//! The golden reference: direct interpretation of a DFG over a number of
//! loop iterations, following dataflow semantics only (no schedule, no
//! fabric).

use crate::error::ExecError;
use crate::semantics::{const_value, eval, Word};
use cgra_dfg::graph::{Dfg, NodeId, OpKind};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::collections::HashMap;

/// Per-stream-load input values: `streams[node][iteration]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InputStreams {
    streams: HashMap<u32, Vec<Word>>,
}

impl InputStreams {
    /// Random inputs for every stream load of `dfg`, `iters` values each.
    pub fn random(dfg: &Dfg, iters: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut streams = HashMap::new();
        for n in dfg.node_ids() {
            if dfg.node(n).op == OpKind::Load && dfg.pred_edges(n).count() == 0 {
                streams.insert(
                    n.0,
                    (0..iters).map(|_| rng.gen_range(-1000..1000)).collect(),
                );
            }
        }
        InputStreams { streams }
    }

    /// The input for a stream load at one iteration, if present.
    pub fn try_get(&self, node: NodeId, iteration: usize) -> Option<Word> {
        self.streams
            .get(&node.0)
            .and_then(|v| v.get(iteration))
            .copied()
    }

    /// The input for a stream load at one iteration.
    ///
    /// # Panics
    ///
    /// When the stream is missing or too short — convenience for tests
    /// that built the streams themselves; execution paths use
    /// [`InputStreams::try_get`] and report a typed error instead.
    pub fn get(&self, node: NodeId, iteration: usize) -> Word {
        self.try_get(node, iteration)
            .unwrap_or_else(|| panic!("no input for {node} iteration {iteration}"))
    }
}

/// Outputs: for each store node, the value stored at each iteration.
pub type Outputs = HashMap<u32, Vec<Word>>;

/// Topological order of `dfg` over its distance-0 edges (carried edges
/// read earlier iterations and impose no intra-iteration order), or
/// [`ExecError::CyclicDfg`] if a zero-distance cycle slipped past the
/// builder's validation.
fn topo_order(dfg: &Dfg) -> Result<Vec<NodeId>, ExecError> {
    let n = dfg.num_nodes();
    let mut indeg = vec![0usize; n];
    for e in dfg.edges() {
        if e.distance == 0 {
            indeg[e.dst.index()] += 1;
        }
    }
    let mut queue: Vec<NodeId> = dfg.node_ids().filter(|v| indeg[v.index()] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(v) = queue.pop() {
        order.push(v);
        for e in dfg.succ_edges(v) {
            let edge = dfg.edge(e);
            if edge.distance == 0 {
                indeg[edge.dst.index()] -= 1;
                if indeg[edge.dst.index()] == 0 {
                    queue.push(edge.dst);
                }
            }
        }
    }
    if order.len() != n {
        return Err(ExecError::CyclicDfg);
    }
    Ok(order)
}

/// Interpret `dfg` for `iters` iterations over `inputs`.
///
/// Loop-carried reads before iteration 0 see the value 0 (the paper's
/// prologue is out of scope; both the interpreter and the machine use the
/// same convention, so equivalence is unaffected).
///
/// # Errors
///
/// [`ExecError::MissingInput`] when a stream load has no value for some
/// iteration, [`ExecError::CyclicDfg`] when the graph has a
/// zero-distance cycle.
pub fn interpret(dfg: &Dfg, inputs: &InputStreams, iters: usize) -> Result<Outputs, ExecError> {
    let order = topo_order(dfg)?;
    // values[node][iteration]
    let mut values: Vec<Vec<Word>> = vec![vec![0; iters]; dfg.num_nodes()];
    for i in 0..iters {
        for &v in &order {
            let node = dfg.node(v);
            let op = node.op;
            let operands: Vec<Word> = dfg
                .pred_edges(v)
                .map(|e| {
                    let edge = dfg.edge(e);
                    let d = edge.distance as usize;
                    if i >= d {
                        values[edge.src.index()][i - d]
                    } else {
                        0
                    }
                })
                .collect();
            values[v.index()][i] = match op {
                OpKind::Const => const_value(v.index()),
                OpKind::Load if operands.is_empty() => {
                    inputs.try_get(v, i).ok_or(ExecError::MissingInput {
                        node: v.0,
                        iteration: i,
                    })?
                }
                _ => eval(op, &operands),
            };
        }
    }
    Ok(dfg
        .node_ids()
        .filter(|&v| dfg.node(v).op == OpKind::Store)
        .map(|v| (v.0, values[v.index()].clone()))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgra_dfg::DfgBuilder;

    #[test]
    fn chain_computes_expected_values() {
        // st = (x + x) << 1
        let mut b = DfgBuilder::new("t");
        let x = b.node(OpKind::Load);
        let s = b.apply(OpKind::Add, &[x, x]);
        let sh = b.apply(OpKind::Shift, &[s]);
        let st = b.apply(OpKind::Store, &[sh]);
        let dfg = b.build().unwrap();
        let inputs = InputStreams::random(&dfg, 4, 1);
        let out = interpret(&dfg, &inputs, 4).unwrap();
        for (i, &v) in out[&st.0].iter().enumerate() {
            let x_v = inputs.get(x, i);
            assert_eq!(v, (x_v + x_v) << 1);
        }
    }

    #[test]
    fn accumulator_sums_history() {
        // acc += x (self-loop, distance 1), st = acc
        let mut b = DfgBuilder::new("acc");
        let x = b.node(OpKind::Load);
        let acc = b.apply(OpKind::Add, &[x]);
        b.carried_edge(acc, acc, 1);
        let st = b.apply(OpKind::Store, &[acc]);
        let dfg = b.build().unwrap();
        let inputs = InputStreams::random(&dfg, 5, 2);
        let out = interpret(&dfg, &inputs, 5).unwrap();
        let mut sum = 0i64;
        for (i, &v) in out[&st.0].iter().enumerate() {
            sum += inputs.get(x, i);
            assert_eq!(v, sum);
        }
    }

    #[test]
    fn carried_distance_two_reads_two_back() {
        let mut b = DfgBuilder::new("d2");
        let x = b.node(OpKind::Load);
        let y = b.labeled(OpKind::Add, "y");
        b.carried_edge(x, y, 2);
        let st = b.apply(OpKind::Store, &[y]);
        let dfg = b.build().unwrap();
        let inputs = InputStreams::random(&dfg, 6, 3);
        let out = interpret(&dfg, &inputs, 6).unwrap();
        assert_eq!(out[&st.0][0], 0);
        assert_eq!(out[&st.0][1], 0);
        for (i, &v) in out[&st.0].iter().enumerate().skip(2) {
            assert_eq!(v, inputs.get(x, i - 2));
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let dfg = cgra_dfg::kernels::sobel();
        let a = interpret(&dfg, &InputStreams::random(&dfg, 8, 9), 8);
        let b = interpret(&dfg, &InputStreams::random(&dfg, 8, 9), 8);
        assert_eq!(a, b);
    }

    #[test]
    fn all_kernels_interpret() {
        for k in cgra_dfg::kernels::all() {
            let inputs = InputStreams::random(&k, 4, 7);
            let out = interpret(&k, &inputs, 4).unwrap();
            assert!(!out.is_empty(), "{} produced no outputs", k.name);
        }
    }

    #[test]
    fn short_input_stream_is_typed_error() {
        let mut b = DfgBuilder::new("short");
        let x = b.node(OpKind::Load);
        b.apply(OpKind::Store, &[x]);
        let dfg = b.build().unwrap();
        // Streams hold 2 values; ask for 4 iterations.
        let inputs = InputStreams::random(&dfg, 2, 5);
        assert_eq!(
            interpret(&dfg, &inputs, 4),
            Err(ExecError::MissingInput {
                node: x.0,
                iteration: 2,
            })
        );
    }
}
