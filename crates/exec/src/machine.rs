//! Cycle-level machine execution of a mapped (or folded) schedule.
//!
//! Events — every op instance and every routing-hop instance — execute in
//! strict time order against a store of *published* values: a value
//! exists at a PE only from the cycle its producing step completes there,
//! and every read asserts presence at an adjacent-or-same PE at the read
//! cycle. If the mapper, the fanout-sharing logic, the PageMaster fold,
//! or any timing argument were wrong, some read here would find nothing
//! (or the wrong iteration's value) and execution would fail — this is
//! the semantic ground truth the structural validators approximate.

use crate::error::ExecError;
use crate::interp::{InputStreams, Outputs};
use crate::semantics::{const_value, eval, Word};
use cgra_arch::topology::{Mesh, PeId};
use cgra_core::FoldedSchedule;
use cgra_dfg::graph::OpKind;
use cgra_mapper::{MapDfg, Mapping};
use std::collections::HashMap;

/// A schedule in the unified form the machine executes: absolute
/// (PE, time) per node and per routing hop, plus the initiation interval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineSchedule {
    /// Initiation interval (cycles between iterations).
    pub ii: u64,
    /// Per-node (PE, time).
    pub placements: Vec<(PeId, u64)>,
    /// Per-edge routing hops, each (PE, time).
    pub routes: Vec<Vec<(PeId, u64)>>,
}

impl MachineSchedule {
    /// View a mapper schedule.
    pub fn from_mapping(m: &Mapping) -> Self {
        MachineSchedule {
            ii: m.ii as u64,
            placements: m.placements.iter().map(|p| (p.pe, p.time as u64)).collect(),
            routes: m
                .routes
                .iter()
                .map(|hops| hops.iter().map(|h| (h.pe, h.time as u64)).collect())
                .collect(),
        }
    }

    /// View a PageMaster fold.
    pub fn from_fold(f: &FoldedSchedule) -> Self {
        MachineSchedule {
            ii: f.ii_q,
            placements: f.ops.iter().map(|o| (o.pe, o.time)).collect(),
            routes: f
                .routes
                .iter()
                .map(|hops| hops.iter().map(|o| (o.pe, o.time)).collect())
                .collect(),
        }
    }
}

/// A static read plan for one edge: where each hop and the final consumer
/// pick the value up, in instance-0 coordinates. `(pe, exec_time)` of the
/// producing *step* — the value is available there from `exec_time + 1`.
#[derive(Debug, Clone)]
struct EdgePlan {
    /// Source step for each hop of this edge's own chain.
    hop_sources: Vec<(PeId, u64)>,
    /// Source step for the consumer's read (None for memory edges).
    read_source: Option<(PeId, u64)>,
}

/// Derive the static read plans, mirroring the mapping validator's
/// pick-source rule: prefer the edge's own chain location, then the first
/// legal sibling site in successor-edge order.
fn edge_plans(
    mdfg: &MapDfg,
    mesh: Mesh,
    sched: &MachineSchedule,
) -> Result<Vec<EdgePlan>, ExecError> {
    let dfg = &mdfg.dfg;
    let mut plans = Vec::with_capacity(dfg.num_edges());
    for (ei, e) in dfg.edges().enumerate() {
        if mdfg.is_mem_edge(ei) {
            plans.push(EdgePlan {
                hop_sources: Vec::new(),
                read_source: None,
            });
            continue;
        }
        let (pe_u, t_u) = sched.placements[e.src.index()];
        let (pe_v, t_v) = sched.placements[e.dst.index()];
        let consume = t_v + e.distance as u64 * sched.ii;
        // Sibling sites: landings of other routes of the same value.
        let sites: Vec<(PeId, u64)> = dfg
            .succ_edges(e.src)
            .filter(|e2| e2.index() != ei && !mdfg.is_mem_edge(e2.index()))
            .flat_map(|e2| sched.routes[e2.index()].iter().copied())
            .collect();
        let pick = |loc: (PeId, u64), to: PeId, read_time: u64| -> Option<(PeId, u64)> {
            let legal = |(pe, t): (PeId, u64)| read_time > t && (pe == to || mesh.adjacent(pe, to));
            if legal(loc) {
                return Some(loc);
            }
            sites.iter().copied().find(|&s| legal(s))
        };
        let mut loc = (pe_u, t_u);
        let mut hop_sources = Vec::with_capacity(sched.routes[ei].len());
        for &(hpe, ht) in &sched.routes[ei] {
            let src = pick(loc, hpe, ht).ok_or(ExecError::NoReadSource { edge: ei })?;
            hop_sources.push(src);
            loc = (hpe, ht);
        }
        let read_source =
            Some(pick(loc, pe_v, consume).ok_or(ExecError::NoReadSource { edge: ei })?);
        plans.push(EdgePlan {
            hop_sources,
            read_source,
        });
    }
    Ok(plans)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EventKind {
    /// Hops publish before same-cycle consumers would read... execution
    /// order within a cycle is by (time, kind, index); reads only accept
    /// values published at strictly earlier cycles, so intra-cycle order
    /// does not matter for correctness — only for determinism.
    Node {
        node: u32,
    },
    Hop {
        edge: u32,
        hop: u32,
    },
}

/// Execute `sched` of `mdfg` on a fabric with `mesh`, feeding `inputs`,
/// for `iters` iterations. Returns the per-store outputs.
pub fn execute(
    mdfg: &MapDfg,
    mesh: Mesh,
    sched: &MachineSchedule,
    inputs: &InputStreams,
    iters: usize,
) -> Result<Outputs, ExecError> {
    let dfg = &mdfg.dfg;
    let plans = edge_plans(mdfg, mesh, sched)?;

    // Build the event list: every node and hop instance.
    let mut events: Vec<(u64, EventKind, u64)> = Vec::new(); // (time, kind, instance)
    for j in 0..iters as u64 {
        for v in dfg.node_ids() {
            let (_, t) = sched.placements[v.index()];
            events.push((t + j * sched.ii, EventKind::Node { node: v.0 }, j));
        }
        for (ei, hops) in sched.routes.iter().enumerate() {
            for (hi, &(_, ht)) in hops.iter().enumerate() {
                events.push((
                    ht + j * sched.ii,
                    EventKind::Hop {
                        edge: ei as u32,
                        hop: hi as u32,
                    },
                    j,
                ));
            }
        }
    }
    events.sort_unstable();

    // published[(pe, node, instance)] -> (avail_time, value)
    let mut published: HashMap<(PeId, u32, u64), (u64, Word)> = HashMap::new();
    // memory[(store node, instance)] -> (visible_time, value)
    let mut memory: HashMap<(u32, u64), (u64, Word)> = HashMap::new();
    let mut outputs: Outputs = HashMap::new();
    let publish = |map: &mut HashMap<(PeId, u32, u64), (u64, Word)>,
                   key: (PeId, u32, u64),
                   avail: u64,
                   value: Word| {
        let entry = map.entry(key).or_insert((avail, value));
        debug_assert_eq!(entry.1, value, "conflicting value republished at {key:?}");
        if avail < entry.0 {
            *entry = (avail, value);
        }
    };

    let read = |published: &HashMap<(PeId, u32, u64), (u64, Word)>,
                reader: PeId,
                src_step: (PeId, u64),
                node: u32,
                instance: i64,
                at: u64|
     -> Result<Word, ExecError> {
        if instance < 0 {
            return Ok(0); // pre-loop iterations see zero
        }
        let (spe, _) = src_step;
        if spe != reader && !mesh.adjacent(spe, reader) {
            return Err(ExecError::NotAdjacent {
                reader,
                source: spe,
            });
        }
        match published.get(&(spe, node, instance as u64)) {
            Some(&(avail, value)) if avail <= at => Ok(value),
            _ => Err(ExecError::ValueNotPresent {
                what: format!("n{node} instance {instance} at {spe} by cycle {at}"),
            }),
        }
    };

    for (time, kind, j) in events {
        match kind {
            EventKind::Hop { edge, hop } => {
                let e = dfg.edge(cgra_dfg::EdgeId(edge));
                let (hpe, _) = sched.routes[edge as usize][hop as usize];
                let src = plans[edge as usize].hop_sources[hop as usize];
                let src_shifted = (src.0, src.1 + j * sched.ii);
                let value = read(&published, hpe, src_shifted, e.src.0, j as i64, time)?;
                publish(&mut published, (hpe, e.src.0, j), time + 1, value);
            }
            EventKind::Node { node } => {
                let v = cgra_dfg::NodeId(node);
                let op = dfg.node(v).op;
                let (pe_v, _) = sched.placements[v.index()];
                // Gather operands in pred-edge order.
                let mut operands = Vec::new();
                for pe in dfg.pred_edges(v) {
                    let ei = pe.index();
                    let e = dfg.edge(pe);
                    let inst = j as i64 - e.distance as i64;
                    if mdfg.is_mem_edge(ei) {
                        let value = if inst < 0 {
                            0
                        } else {
                            match memory.get(&(e.src.0, inst as u64)) {
                                Some(&(visible, value)) if visible <= time => value,
                                _ => {
                                    return Err(ExecError::MemoryNotReady {
                                        store: e.src.0,
                                        instance: inst as u64,
                                    })
                                }
                            }
                        };
                        operands.push(value);
                        continue;
                    }
                    let src = plans[ei]
                        .read_source
                        .expect("non-mem edges always have a read source");
                    let src_shifted = if inst < 0 {
                        src // irrelevant; read() returns 0
                    } else {
                        (src.0, src.1 + inst as u64 * sched.ii)
                    };
                    operands.push(read(&published, pe_v, src_shifted, e.src.0, inst, time)?);
                }
                let value =
                    match op {
                        OpKind::Const => const_value(v.index()),
                        OpKind::Load if operands.is_empty() => inputs
                            .try_get(v, j as usize)
                            .ok_or(ExecError::MissingInput {
                                node: v.0,
                                iteration: j as usize,
                            })?,
                        _ => eval(op, &operands),
                    };
                publish(&mut published, (pe_v, node, j), time + 1, value);
                if op == OpKind::Store {
                    // Visible in the data memory one cycle after execution.
                    memory.insert((node, j), (time + 2, value));
                    outputs.entry(node).or_default().push(value);
                }
            }
        }
    }
    Ok(outputs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::interpret;
    use cgra_mapper::{map_baseline, map_constrained, MapOptions};

    const ITERS: usize = 8;

    fn check_kernel(name: &str) {
        let cgra = cgra_arch::CgraConfig::square(4).with_rf_size(32);
        let kernel = cgra_dfg::kernels::by_name(name).unwrap();
        let inputs = InputStreams::random(&kernel, ITERS, 0xFEED);
        let golden = interpret(&kernel, &inputs, ITERS).unwrap();

        for (label, result) in [
            (
                "baseline",
                map_baseline(&kernel, &cgra, &MapOptions::default()).unwrap(),
            ),
            (
                "constrained",
                map_constrained(&kernel, &cgra, &MapOptions::default()).unwrap(),
            ),
        ] {
            let sched = MachineSchedule::from_mapping(&result.mapping);
            let out = execute(&result.mdfg, cgra.mesh(), &sched, &inputs, ITERS)
                .unwrap_or_else(|e| panic!("{name}/{label}: {e}"));
            // Compare only the original kernel's stores (spill stores are
            // implementation detail).
            for (store, values) in &golden {
                assert_eq!(
                    out.get(store),
                    Some(values),
                    "{name}/{label}: store n{store} diverged"
                );
            }
        }
    }

    #[test]
    fn machine_matches_interpreter_mpeg2() {
        check_kernel("mpeg2");
    }

    #[test]
    fn machine_matches_interpreter_sor() {
        check_kernel("sor");
    }

    #[test]
    fn machine_matches_interpreter_fir() {
        check_kernel("fir");
    }

    #[test]
    fn machine_matches_interpreter_all_kernels() {
        for name in cgra_dfg::kernels::NAMES {
            check_kernel(name);
        }
    }

    #[test]
    fn folded_schedule_computes_identically() {
        let cgra = cgra_arch::CgraConfig::square(4).with_rf_size(64);
        for name in ["mpeg2", "laplace", "sor", "compress"] {
            let kernel = cgra_dfg::kernels::by_name(name).unwrap();
            let mapped = map_constrained(&kernel, &cgra, &MapOptions::default()).unwrap();
            let folded = cgra_core::fold_to_page(&mapped, &cgra, cgra_arch::PageId(0)).unwrap();
            let inputs = InputStreams::random(&kernel, ITERS, 0xF01D);
            let golden = interpret(&kernel, &inputs, ITERS).unwrap();
            let sched = MachineSchedule::from_fold(&folded);
            let out = execute(&mapped.mdfg, cgra.mesh(), &sched, &inputs, ITERS)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            for (store, values) in &golden {
                assert_eq!(out.get(store), Some(values), "{name}: store n{store}");
            }
        }
    }

    #[test]
    fn corrupted_schedule_fails_to_execute() {
        let cgra = cgra_arch::CgraConfig::square(4);
        let kernel = cgra_dfg::kernels::mpeg2();
        let mapped = map_baseline(&kernel, &cgra, &MapOptions::default()).unwrap();
        let mut sched = MachineSchedule::from_mapping(&mapped.mapping);
        // Teleport one op far away: some read must break.
        let victim = sched
            .placements
            .iter()
            .position(|&(pe, _)| pe != cgra_arch::PeId(15))
            .unwrap();
        sched.placements[victim].0 = cgra_arch::PeId(15);
        let inputs = InputStreams::random(&kernel, 4, 1);
        let r = execute(&mapped.mdfg, cgra.mesh(), &sched, &inputs, 4);
        assert!(r.is_err(), "corrupted schedule executed successfully");
    }
}
