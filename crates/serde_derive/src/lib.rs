//! Derive half of the offline serde stand-in (see `crates/serde`).
//!
//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` here emit marker
//! impls of the shim's empty traits. The macro parses just enough of the
//! item to recover its name: attributes and visibility are skipped, then
//! the identifier following `struct` / `enum` / `union` is taken.
//! Generic types are rejected with a clear error (no derived type in
//! this workspace is generic).

use proc_macro::{TokenStream, TokenTree};

/// Name of the type a `struct`/`enum`/`union` item defines, or an error
/// message when the item has generics (unsupported by the marker shim).
fn item_name(input: TokenStream) -> Result<String, String> {
    let mut tokens = input.into_iter().peekable();
    // Skip outer attributes (`#[...]`) and visibility (`pub`, `pub(...)`).
    while let Some(tok) = tokens.next() {
        match &tok {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                tokens.next(); // the [...] group
            }
            TokenTree::Ident(id) if *id.to_string() == *"pub" => {
                if let Some(TokenTree::Group(_)) = tokens.peek() {
                    tokens.next(); // pub(crate) etc.
                }
            }
            TokenTree::Ident(id)
                if matches!(id.to_string().as_str(), "struct" | "enum" | "union") =>
            {
                let Some(TokenTree::Ident(name)) = tokens.next() else {
                    return Err("expected a type name after the item keyword".into());
                };
                if let Some(TokenTree::Punct(p)) = tokens.peek() {
                    if p.as_char() == '<' {
                        return Err(format!(
                            "the offline serde shim cannot derive for generic type `{name}`"
                        ));
                    }
                }
                return Ok(name.to_string());
            }
            _ => {}
        }
    }
    Err("expected a struct, enum or union item".into())
}

fn marker_impl(input: TokenStream, trait_path: &str) -> TokenStream {
    match item_name(input) {
        Ok(name) => format!("impl {trait_path} for {name} {{}}")
            .parse()
            .expect("generated impl parses"),
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("generated error parses"),
    }
}

/// Emit `impl serde::Serialize for T {}`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "::serde::Serialize")
}

/// Emit `impl serde::Deserialize for T {}`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "::serde::Deserialize")
}
