//! Mapper tuning knobs.

use serde::{Deserialize, Serialize};

/// Options controlling the modulo-scheduling search.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MapOptions {
    /// Give up if no schedule is found at `mii + max_ii_slack`.
    pub max_ii_slack: u32,
    /// Randomised placement attempts per II before increasing it.
    pub restarts: u32,
    /// RNG seed for tie-breaking between equally good candidates.
    pub seed: u64,
    /// Longest route chain the constrained mapper will build before
    /// preferring a memory spill (in hops; chains occupy one PE slot per
    /// hop, so long chains crowd out computation).
    pub chain_budget: u32,
    /// Spill-and-retry rounds per II in constrained mode.
    pub spill_rounds: u32,
}

impl Default for MapOptions {
    fn default() -> Self {
        MapOptions {
            max_ii_slack: 16,
            restarts: 12,
            seed: 0xC6_4A_11,
            chain_budget: 10,
            spill_rounds: 10,
        }
    }
}

impl MapOptions {
    /// A fast profile for property tests (fewer restarts).
    pub fn fast() -> Self {
        MapOptions {
            restarts: 4,
            spill_rounds: 2,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let o = MapOptions::default();
        assert!(o.restarts >= 1);
        assert!(o.max_ii_slack >= 1);
        assert!(o.chain_budget >= 1);
    }

    #[test]
    fn fast_profile_is_cheaper() {
        assert!(MapOptions::fast().restarts < MapOptions::default().restarts);
    }
}
