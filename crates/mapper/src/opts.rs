//! Mapper tuning knobs.

use serde::{Deserialize, Serialize};

/// Options controlling the modulo-scheduling search.
///
/// `Hash`/`Eq` and [`MapOptions::fingerprint`] exist so mapping caches
/// can key on the exact option set: two sweeps sharing a cache never
/// cross-contaminate results produced under different knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MapOptions {
    /// Give up if no schedule is found at `mii + max_ii_slack`.
    pub max_ii_slack: u32,
    /// Randomised placement attempts per II before increasing it.
    pub restarts: u32,
    /// RNG seed for tie-breaking between equally good candidates.
    pub seed: u64,
    /// Longest route chain the constrained mapper will build before
    /// preferring a memory spill (in hops; chains occupy one PE slot per
    /// hop, so long chains crowd out computation).
    pub chain_budget: u32,
    /// Spill-and-retry rounds per II in constrained mode.
    pub spill_rounds: u32,
}

impl Default for MapOptions {
    fn default() -> Self {
        MapOptions {
            max_ii_slack: 16,
            restarts: 12,
            seed: 0xC6_4A_11,
            chain_budget: 10,
            spill_rounds: 10,
        }
    }
}

impl MapOptions {
    /// A fast profile for property tests (fewer restarts).
    pub fn fast() -> Self {
        MapOptions {
            restarts: 4,
            spill_rounds: 2,
            ..Default::default()
        }
    }

    /// A stable 64-bit fingerprint of every knob, suitable for on-disk
    /// cache keys. Hand-rolled FNV-1a over the fields in declaration
    /// order — unlike `std::hash::Hash` + `DefaultHasher`, the value is
    /// specified and identical across processes, platforms and Rust
    /// releases, so persisted cache entries stay valid.
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64; // FNV offset basis
        let mut eat = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3); // FNV prime
            }
        };
        eat(self.max_ii_slack as u64);
        eat(self.restarts as u64);
        eat(self.seed);
        eat(self.chain_budget as u64);
        eat(self.spill_rounds as u64);
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let o = MapOptions::default();
        assert!(o.restarts >= 1);
        assert!(o.max_ii_slack >= 1);
        assert!(o.chain_budget >= 1);
    }

    #[test]
    fn fast_profile_is_cheaper() {
        assert!(MapOptions::fast().restarts < MapOptions::default().restarts);
    }
}
