//! A DRESC-style simulated-annealing mapper (secondary baseline).
//!
//! DRESC [9] maps kernels by simulated annealing over placements,
//! penalising resource conflicts and unroutable operands, lowering II when
//! a legal schedule is found. This implementation anneals placements
//! against a relaxed cost (conflict counts + routing-slack shortfalls),
//! then attempts an exact routing pass with the real router; the result is
//! validated by [`crate::mapping::validate_mapping`] like any other
//! mapping. It exists to cross-check the list scheduler's quality and to
//! reproduce the paper's remark that annealing-based compilation is far
//! too slow for runtime use (see `benches/mapper.rs`).

use crate::ems::MapResult;
use crate::engine::{asap_with_mem, mii_with_mem};
use crate::error::MapError;
use crate::mapping::{MapMode, Mapping, Placement};
use crate::mrt::{Mrt, SlotUse};
use crate::opts::MapOptions;
use crate::route::{route_baseline, RoutePlan, RouteRequest, ValueSite};
use crate::spill::MapDfg;
use cgra_arch::CgraConfig;
use cgra_dfg::graph::Dfg;
use rand::prelude::*;
use rand::rngs::StdRng;

/// Annealing parameters.
#[derive(Debug, Clone, Copy)]
pub struct AnnealOptions {
    /// Moves per temperature step.
    pub moves_per_temp: u32,
    /// Temperature decay per step.
    pub cooling: f64,
    /// Initial temperature.
    pub t0: f64,
    /// Temperature floor — stop when reached.
    pub t_min: f64,
    /// Independent annealing runs per II.
    pub runs: u32,
}

impl Default for AnnealOptions {
    fn default() -> Self {
        AnnealOptions {
            moves_per_temp: 256,
            cooling: 0.92,
            t0: 8.0,
            t_min: 0.05,
            runs: 3,
        }
    }
}

/// Relaxed cost of a placement vector: slot/bus conflicts plus per-edge
/// routability shortfall (a lower bound that ignores congestion).
fn relaxed_cost(mdfg: &MapDfg, cgra: &CgraConfig, ii: u32, placements: &[Placement]) -> u64 {
    let mesh = cgra.mesh();
    let mut cost = 0u64;

    // Slot conflicts.
    let mut slot_count = vec![0u32; mesh.num_pes() * ii as usize];
    let mut bus_count = vec![0u32; mesh.rows() as usize * ii as usize];
    for (i, p) in placements.iter().enumerate() {
        let s = p.pe.index() * ii as usize + (p.time % ii) as usize;
        slot_count[s] += 1;
        if mdfg.dfg.node(cgra_dfg::NodeId(i as u32)).op.is_mem() {
            let b = mesh.pos(p.pe).r as usize * ii as usize + (p.time % ii) as usize;
            bus_count[b] += 1;
        }
    }
    cost += slot_count
        .iter()
        .map(|&c| (c.saturating_sub(1)) as u64)
        .sum::<u64>()
        * 4;
    let cap = cgra.mem().buses_per_row() as u32;
    cost += bus_count
        .iter()
        .map(|&c| c.saturating_sub(cap) as u64)
        .sum::<u64>()
        * 4;

    // Edge feasibility shortfall.
    for (ei, e) in mdfg.dfg.edges().enumerate() {
        let pu = placements[e.src.index()];
        let pv = placements[e.dst.index()];
        let consume = pv.time as i64 + e.distance as i64 * ii as i64;
        if mdfg.is_mem_edge(ei) {
            let short = (pu.time as i64 + 2) - consume;
            cost += short.max(0) as u64;
            continue;
        }
        let avail = pu.time as i64 + 1;
        if consume < avail {
            cost += (avail - consume) as u64 + 1;
            continue;
        }
        let d = mesh.distance(pu.pe, pv.pe) as i64;
        let min_hops = (d - 1).max(0); // last link is read directly
        let slack = consume - avail;
        cost += (min_hops - slack).max(0) as u64;
    }
    cost
}

/// Exact routing pass over a conflict-free placement. Returns the routed
/// mapping or `None` if some edge cannot be realised.
fn routing_pass(
    mdfg: &MapDfg,
    cgra: &CgraConfig,
    ii: u32,
    placements: &[Placement],
) -> Option<Mapping> {
    let mut mrt = Mrt::new(cgra.mesh(), ii, cgra.mem().buses_per_row());
    for (i, p) in placements.iter().enumerate() {
        let op = mdfg.dfg.node(cgra_dfg::NodeId(i as u32)).op;
        if !mrt.pe_free(p.pe, p.time as u64) || (op.is_mem() && !mrt.bus_free(p.pe, p.time as u64))
        {
            return None;
        }
        mrt.reserve(p.pe, p.time as u64, SlotUse::Compute(i as u32), op.is_mem());
    }
    // Route tightest edges first.
    let mut order: Vec<usize> = (0..mdfg.dfg.num_edges()).collect();
    let slack = |ei: usize| {
        let e = mdfg.dfg.edge(cgra_dfg::EdgeId(ei as u32));
        let pu = placements[e.src.index()];
        let pv = placements[e.dst.index()];
        pv.time as i64 + e.distance as i64 * ii as i64 - pu.time as i64 - 1
    };
    order.sort_by_key(|&ei| slack(ei));
    let mut routes = vec![Vec::new(); mdfg.dfg.num_edges()];
    for ei in order {
        let e = mdfg.dfg.edge(cgra_dfg::EdgeId(ei as u32));
        if mdfg.is_mem_edge(ei) {
            continue;
        }
        let pu = placements[e.src.index()];
        let pv = placements[e.dst.index()];
        let consume = pv.time as i64 + e.distance as i64 * ii as i64;
        let req = RouteRequest {
            from_pe: pu.pe,
            avail: pu.time + 1,
            to_pe: pv.pe,
            deadline: u32::try_from(consume).ok()?,
        };
        // Share landings of already-routed sibling edges (same producer).
        let sites: Vec<ValueSite> = mdfg
            .dfg
            .succ_edges(e.src)
            .filter(|e2| e2.index() != ei && !mdfg.is_mem_edge(e2.index()))
            .flat_map(|e2| routes[e2.index()].iter())
            .map(|h: &crate::mapping::RouteHop| (h.pe, h.time + 1))
            .collect();
        match route_baseline(cgra.mesh(), &mrt, req, &sites)? {
            RoutePlan::Direct => {}
            RoutePlan::Chain(hops) => {
                for h in &hops {
                    if !mrt.pe_free(h.pe, h.time as u64) {
                        return None;
                    }
                    mrt.reserve(h.pe, h.time as u64, SlotUse::Route(ei as u32), false);
                }
                routes[ei] = hops;
            }
        }
    }
    Some(Mapping {
        ii,
        placements: placements.to_vec(),
        routes,
    })
}

/// Map a kernel by simulated annealing (baseline discipline).
pub fn map_anneal(
    dfg: &Dfg,
    cgra: &CgraConfig,
    opts: &MapOptions,
    anneal: &AnnealOptions,
) -> Result<MapResult, MapError> {
    let mdfg = MapDfg::unspilled(dfg);
    let mii = mii_with_mem(&mdfg, cgra);
    let mesh = cgra.mesh();
    let mut rng = StdRng::seed_from_u64(opts.seed ^ 0xA11EA1);

    for ii in mii..=mii + opts.max_ii_slack {
        let Some(asap) = asap_with_mem(&mdfg, ii) else {
            continue;
        };
        for _run in 0..anneal.runs {
            // Random initial placement within each node's 2·II window.
            let mut placements: Vec<Placement> = asap
                .iter()
                .map(|&a| Placement {
                    pe: cgra_arch::PeId(rng.gen_range(0..mesh.num_pes() as u16)),
                    time: a + rng.gen_range(0..2 * ii),
                })
                .collect();
            let mut cost = relaxed_cost(&mdfg, cgra, ii, &placements);
            let mut temp = anneal.t0;
            while temp > anneal.t_min && cost > 0 {
                for _ in 0..anneal.moves_per_temp {
                    if cost == 0 {
                        break;
                    }
                    let v = rng.gen_range(0..placements.len());
                    let old = placements[v];
                    placements[v] = Placement {
                        pe: cgra_arch::PeId(rng.gen_range(0..mesh.num_pes() as u16)),
                        time: asap[v] + rng.gen_range(0..2 * ii),
                    };
                    let new_cost = relaxed_cost(&mdfg, cgra, ii, &placements);
                    let delta = new_cost as f64 - cost as f64;
                    if delta <= 0.0 || rng.gen_bool((-delta / temp).exp().min(1.0)) {
                        cost = new_cost;
                    } else {
                        placements[v] = old;
                    }
                }
                temp *= anneal.cooling;
            }
            if cost == 0 {
                if let Some(mapping) = routing_pass(&mdfg, cgra, ii, &placements) {
                    return Ok(MapResult {
                        mapping,
                        mdfg,
                        mode: MapMode::Baseline,
                    });
                }
            }
        }
    }
    Err(MapError::NoScheduleFound {
        mii,
        max_ii_tried: mii + opts.max_ii_slack,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::validate_mapping;

    #[test]
    fn anneal_maps_mpeg2_and_validates() {
        let cgra = CgraConfig::square(4);
        let kernel = cgra_dfg::kernels::mpeg2();
        let r = map_anneal(
            &kernel,
            &cgra,
            &MapOptions::default(),
            &AnnealOptions::default(),
        )
        .expect("anneal maps mpeg2");
        let v = validate_mapping(&r.mdfg, &cgra, &r.mapping, MapMode::Baseline);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn anneal_respects_mii() {
        let cgra = CgraConfig::square(4);
        let kernel = cgra_dfg::kernels::sor();
        let r = map_anneal(
            &kernel,
            &cgra,
            &MapOptions::default(),
            &AnnealOptions::default(),
        )
        .expect("anneal maps sor");
        assert!(r.ii() >= 4); // sor's RecMII
    }
}
