//! The paging-constrained mapper (§VI-B).
//!
//! Two constraints are layered on the engine:
//!
//! 1. **Data-flow constraint**: dependences may only stay on a page or
//!    advance one page along the ring per cycle ([`MapMode::Constrained`]
//!    routing), so the page-level schedule contains only the canonical
//!    `(n,t−1)` / `(n−1,t−1)` dependences the PageMaster transformation
//!    requires.
//! 2. **Register-usage constraint**: values that cannot be forwarded
//!    cycle-by-cycle are spilled through the global data memory
//!    ([`crate::spill`]). Loop-carried values that do not belong to a
//!    recurrence cycle are pre-spilled (holding them in rotating RFs
//!    across iterations would pin them to a physical page); further
//!    spills are chosen adaptively from routing-failure statistics.

use crate::ems::MapResult;
use crate::engine::{schedule_from_traced, FailureStats};
use crate::error::MapError;
use crate::mapping::MapMode;
use crate::opts::MapOptions;
use crate::spill::MapDfg;
use cgra_arch::CgraConfig;
use cgra_dfg::analysis::sccs;
use cgra_dfg::graph::Dfg;
use cgra_obs::Tracer;
use std::collections::BTreeSet;

/// Pre-spill heuristic: loop-carried edges that are not part of a
/// recurrence cycle (their endpoints lie in different SCCs). Holding such
/// values in an RF for `distance × II` cycles would either pin pages or
/// need chains of that length; the paper's register-usage constraint
/// sends them through memory.
pub fn pre_spill_set(dfg: &Dfg) -> BTreeSet<usize> {
    let comps = sccs(dfg);
    let mut comp_of = vec![usize::MAX; dfg.num_nodes()];
    for (ci, comp) in comps.iter().enumerate() {
        for n in comp {
            comp_of[n.index()] = ci;
        }
    }
    dfg.edges()
        .enumerate()
        .filter(|(_, e)| e.distance >= 1 && comp_of[e.src.index()] != comp_of[e.dst.index()])
        .map(|(i, _)| i)
        .collect()
}

fn pick_spill_candidates(
    mdfg: &MapDfg,
    stats: &FailureStats,
    spilled: &BTreeSet<usize>,
    count: usize,
) -> Vec<usize> {
    let mut candidates: Vec<(u32, usize)> = stats
        .edge_route_failures
        .iter()
        .enumerate()
        .filter(|&(ei, &fails)| fails > 0 && !mdfg.is_mem_edge(ei))
        .filter_map(|(ei, &fails)| mdfg.origin[ei].map(|orig| (fails, orig)))
        .filter(|(_, orig)| !spilled.contains(orig))
        .collect();
    candidates.sort_by_key(|&(fails, orig)| (std::cmp::Reverse(fails), orig));
    candidates.dedup_by_key(|&mut (_, orig)| orig);
    candidates.into_iter().take(count).map(|(_, o)| o).collect()
}

/// Map a kernel under the paper's paging constraints (stable-column
/// discipline, the default used by the Figure 8/9 experiments).
pub fn map_constrained(
    dfg: &Dfg,
    cgra: &CgraConfig,
    opts: &MapOptions,
) -> Result<MapResult, MapError> {
    map_constrained_traced(dfg, cgra, opts, &Tracer::off())
}

/// [`map_constrained`] with the search's decisions emitted to `tracer`.
pub fn map_constrained_traced(
    dfg: &Dfg,
    cgra: &CgraConfig,
    opts: &MapOptions,
    tracer: &Tracer,
) -> Result<MapResult, MapError> {
    map_with_mode(
        dfg,
        cgra,
        opts,
        MapMode::Constrained,
        BTreeSet::new(),
        tracer,
    )
}

/// Map a kernel under the strict 1-step discipline, producing purely
/// canonical page schedules (the input form of the paper's Algorithm 1).
/// Loop-carried values outside recurrence cycles are pre-spilled.
pub fn map_constrained_strict(
    dfg: &Dfg,
    cgra: &CgraConfig,
    opts: &MapOptions,
) -> Result<MapResult, MapError> {
    map_with_mode(
        dfg,
        cgra,
        opts,
        MapMode::ConstrainedStrict,
        pre_spill_set(dfg),
        &Tracer::off(),
    )
}

fn map_with_mode(
    dfg: &Dfg,
    cgra: &CgraConfig,
    opts: &MapOptions,
    mode: MapMode,
    initial_spills: BTreeSet<usize>,
    tracer: &Tracer,
) -> Result<MapResult, MapError> {
    let mut spilled = initial_spills;
    let mut last_err = None;
    for _round in 0..=opts.spill_rounds {
        let mdfg = MapDfg::with_spills(dfg, &spilled);
        let out = schedule_from_traced(&mdfg, cgra, mode, opts, None, tracer);
        match out.mapping {
            Ok(mapping) => {
                return Ok(MapResult {
                    mapping,
                    mdfg,
                    mode,
                })
            }
            Err(e) => {
                let picks = pick_spill_candidates(&mdfg, &out.stats, &spilled, 2);
                if picks.is_empty() {
                    return Err(e);
                }
                spilled.extend(picks);
                last_err = Some(e);
            }
        }
    }
    Err(last_err.unwrap_or(MapError::Unmappable {
        reason: "spill rounds exhausted".into(),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::validate_mapping;

    #[test]
    fn pre_spill_catches_fir_delays() {
        let fir = cgra_dfg::kernels::fir();
        let s = pre_spill_set(&fir);
        // fir has three carried delay taps, none in a cycle.
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn pre_spill_keeps_recurrences() {
        let sor = cgra_dfg::kernels::sor();
        let s = pre_spill_set(&sor);
        assert!(s.is_empty(), "sor's carried edge closes a cycle: {s:?}");
    }

    #[test]
    fn accumulator_self_loop_not_spilled() {
        // compress's only carried edge is the acc self-loop: a recurrence,
        // so it stays out of the pre-spill set.
        let c = cgra_dfg::kernels::compress();
        assert!(pre_spill_set(&c).is_empty());
    }

    #[test]
    fn constrained_maps_mpeg2_on_4x4_quadrants() {
        let cgra = CgraConfig::square(4);
        let kernel = cgra_dfg::kernels::mpeg2();
        let r = map_constrained(&kernel, &cgra, &MapOptions::default()).expect("maps");
        let v = validate_mapping(&r.mdfg, &cgra, &r.mapping, MapMode::Constrained);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn constrained_ii_at_least_baseline_mii() {
        let cgra = CgraConfig::square(6);
        let kernel = cgra_dfg::kernels::laplace();
        let base_mii = crate::ems::kernel_mii(&kernel, &cgra);
        let r = map_constrained(&kernel, &cgra, &MapOptions::default()).expect("maps");
        assert!(r.ii() >= base_mii);
    }
}
