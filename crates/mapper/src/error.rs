//! Mapper errors.

use serde::{Deserialize, Serialize};

/// Why mapping failed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum MapError {
    /// No feasible schedule found up to the II search limit.
    NoScheduleFound {
        /// The minimum II the search started from.
        mii: u32,
        /// The last II attempted.
        max_ii_tried: u32,
    },
    /// The DFG cannot fit this fabric at any II (e.g. more live constants
    /// than PEs on a one-page ring that a recurrence cannot leave).
    Unmappable {
        /// Human-readable reason.
        reason: String,
    },
}

impl std::fmt::Display for MapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MapError::NoScheduleFound { mii, max_ii_tried } => write!(
                f,
                "no feasible schedule found between II={mii} and II={max_ii_tried}"
            ),
            MapError::Unmappable { reason } => write!(f, "unmappable: {reason}"),
        }
    }
}

impl std::error::Error for MapError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = MapError::NoScheduleFound {
            mii: 2,
            max_ii_tried: 18,
        };
        assert!(e.to_string().contains("II=2"));
        assert!(e.to_string().contains("II=18"));
    }
}
