//! The baseline mapper — the unconstrained compiler of §VII-A ("a
//! compiler based on the EMS mapping algorithm") used to establish the
//! baseline II for every kernel.

use crate::engine::{mii_with_mem, schedule_from_traced};
use crate::error::MapError;
use crate::mapping::{MapMode, Mapping};
use crate::opts::MapOptions;
use crate::spill::MapDfg;
use cgra_arch::CgraConfig;
use cgra_dfg::graph::Dfg;
use cgra_obs::Tracer;

/// A finished mapping plus the graph it actually placed (identical to the
/// kernel for the baseline; spill-augmented for the constrained mapper).
#[derive(Debug, Clone)]
pub struct MapResult {
    /// The modulo schedule.
    pub mapping: Mapping,
    /// The placed graph (with any spill ops).
    pub mdfg: MapDfg,
    /// The discipline it was produced (and must be validated) under.
    pub mode: MapMode,
}

impl MapResult {
    /// The achieved initiation interval.
    pub fn ii(&self) -> u32 {
        self.mapping.ii
    }
}

/// Map a kernel with the conventional (unconstrained) discipline.
pub fn map_baseline(
    dfg: &Dfg,
    cgra: &CgraConfig,
    opts: &MapOptions,
) -> Result<MapResult, MapError> {
    map_baseline_traced(dfg, cgra, opts, &Tracer::off())
}

/// [`map_baseline`] with the search's decisions emitted to `tracer`.
pub fn map_baseline_traced(
    dfg: &Dfg,
    cgra: &CgraConfig,
    opts: &MapOptions,
    tracer: &Tracer,
) -> Result<MapResult, MapError> {
    let mdfg = MapDfg::unspilled(dfg);
    let out = schedule_from_traced(&mdfg, cgra, MapMode::Baseline, opts, None, tracer);
    out.mapping.map(|mapping| MapResult {
        mapping,
        mdfg,
        mode: MapMode::Baseline,
    })
}

/// The minimum initiation interval for a kernel on a fabric (ResMII with
/// bus refinement vs RecMII), exposed for reporting.
pub fn kernel_mii(dfg: &Dfg, cgra: &CgraConfig) -> u32 {
    mii_with_mem(&MapDfg::unspilled(dfg), cgra)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::validate_mapping;

    #[test]
    fn baseline_maps_every_kernel_on_every_paper_fabric() {
        let opts = MapOptions::default();
        for cgra in CgraConfig::paper_grid() {
            // One grid entry per page size; mapping is page-agnostic in
            // baseline mode, so test one layout per mesh dim.
            if cgra.layout().shape().size() != 4 {
                continue;
            }
            for kernel in cgra_dfg::kernels::all() {
                let r = map_baseline(&kernel, &cgra, &opts)
                    .unwrap_or_else(|e| panic!("{} on {:?}: {e}", kernel.name, cgra.mesh()));
                let v = validate_mapping(&r.mdfg, &cgra, &r.mapping, MapMode::Baseline);
                assert!(v.is_empty(), "{}: {v:?}", kernel.name);
            }
        }
    }

    #[test]
    fn baseline_ii_close_to_mii() {
        let opts = MapOptions::default();
        let cgra = CgraConfig::square(8);
        for kernel in cgra_dfg::kernels::all() {
            let mii = kernel_mii(&kernel, &cgra);
            let r = map_baseline(&kernel, &cgra, &opts).expect("maps");
            assert!(
                r.ii() <= mii + 2,
                "{}: II {} far above MII {mii}",
                kernel.name,
                r.ii()
            );
        }
    }
}
