//! Operand routing on the time-extended CGRA graph.
//!
//! Routing finds how a value travels from its producer's PE to its
//! consumer's PE through the mesh, cycle by cycle, reserving routing PEs
//! along the way. Search is over states `(pe, t)` = "the value is
//! available at `pe` at cycle `t`":
//!
//! * **Baseline** ([`route_baseline`]): waiting in an RF is free
//!   (`(pe,t) → (pe,t+1)`, no slot), moving costs a routing slot on the
//!   *destination* PE (`(pe,t) → (pe',t+1)` reserves `(pe', t mod II)`).
//!   0-1 BFS minimises hops, then delivery time.
//! * **Ring** ([`route_ring`], the paper's §VI-B data-flow constraint,
//!   stable-column discipline): same as baseline, but every hop and the
//!   final read must stay on the value's page or advance one page along
//!   the ring path — the shrink transform keeps each page's column fixed
//!   within an iteration, so parked values and single-page advances stay
//!   physically reachable after any shrink.
//! * **Strict** ([`route_strict`]): additionally no waiting — each cycle
//!   the value self-hops (a `Route` op on its own PE) or moves, so the
//!   page-level schedule contains only the canonical 1-step dependences
//!   of §VI-C (the input discipline for the paper's drifting Algorithm 1
//!   placement).

use crate::mapping::RouteHop;
use crate::mrt::Mrt;
use cgra_arch::page::PageLayout;
use cgra_arch::topology::{Mesh, PeId};
use std::collections::VecDeque;

/// A routing problem: deliver the value available at `(from_pe, avail)` so
/// the consumer on `to_pe` can read it at `deadline` (from its own RF or
/// across one interconnect link).
#[derive(Debug, Clone, Copy)]
pub struct RouteRequest {
    /// Producer PE.
    pub from_pe: PeId,
    /// First cycle the value exists.
    pub avail: u32,
    /// Consumer PE.
    pub to_pe: PeId,
    /// Cycle the consumer reads.
    pub deadline: u32,
}

/// How the edge is realised.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RoutePlan {
    /// No routing ops needed (same PE or one link, timing already legal).
    Direct,
    /// Routing hops to commit to the MRT.
    Chain(Vec<RouteHop>),
}

impl RoutePlan {
    /// The hops of this plan (empty for `Direct`).
    pub fn hops(&self) -> &[RouteHop] {
        match self {
            RoutePlan::Direct => &[],
            RoutePlan::Chain(h) => h,
        }
    }
}

fn ring_ok(ring: Option<&PageLayout>, from: PeId, to: PeId) -> bool {
    match ring {
        None => true,
        Some(layout) => layout.is_ring_step(layout.page_of(from), layout.page_of(to)),
    }
}

/// A place and time where the routed value is already available — the
/// producer's PE, or a landing of an already-committed route of the same
/// value (fanout sharing: one chain's intermediate stops can feed further
/// consumers without re-routing from the producer).
pub type ValueSite = (PeId, u32);

/// Shared 0-1 BFS with free waiting; `ring` optionally restricts every
/// step (and the final read) to ring-path page motion. `extra_sites` are
/// additional starting states beyond the producer.
fn bfs_route(
    mesh: Mesh,
    mrt: &Mrt,
    req: RouteRequest,
    ring: Option<&PageLayout>,
    hop_budget: u32,
    extra_sites: &[ValueSite],
) -> Option<RoutePlan> {
    if req.deadline < req.avail {
        return None;
    }
    // Direct read from the producer or any existing site.
    let direct_from = |pe: PeId, avail: u32| {
        avail <= req.deadline
            && (pe == req.to_pe || mesh.adjacent(pe, req.to_pe))
            && ring_ok(ring, pe, req.to_pe)
    };
    if direct_from(req.from_pe, req.avail) || extra_sites.iter().any(|&(pe, a)| direct_from(pe, a))
    {
        return Some(RoutePlan::Direct);
    }
    let start = req.avail.min(
        extra_sites
            .iter()
            .map(|&(_, a)| a)
            .min()
            .unwrap_or(req.avail),
    );
    let window = (req.deadline - start) as usize + 1;
    let n = mesh.num_pes();
    let idx = |pe: PeId, t: u32| (t - start) as usize * n + pe.index();
    const UNSEEN: u32 = u32::MAX;
    let mut cost = vec![UNSEEN; n * window];
    let mut parent: Vec<(usize, bool)> = vec![(usize::MAX, false); n * window];
    let mut dq: VecDeque<(PeId, u32)> = VecDeque::new();
    cost[idx(req.from_pe, req.avail)] = 0;
    dq.push_back((req.from_pe, req.avail));
    for &(pe, a) in extra_sites {
        if a <= req.deadline && cost[idx(pe, a)] == UNSEEN {
            cost[idx(pe, a)] = 0;
            dq.push_back((pe, a));
        }
    }

    let mut goal: Option<(PeId, u32)> = None;
    while let Some((pe, t)) = dq.pop_front() {
        let c = cost[idx(pe, t)];
        if (pe == req.to_pe || mesh.adjacent(pe, req.to_pe)) && ring_ok(ring, pe, req.to_pe) {
            goal = Some((pe, t));
            break;
        }
        if t == req.deadline {
            continue;
        }
        // Wait (cost 0) — push front.
        let wi = idx(pe, t + 1);
        if cost[wi] == UNSEEN || cost[wi] > c {
            cost[wi] = c;
            parent[wi] = (idx(pe, t), false);
            dq.push_front((pe, t + 1));
        }
        // Hop (cost 1) — push back.
        if c < hop_budget {
            for nb in mesh.neighbors(pe) {
                if !ring_ok(ring, pe, nb) || !mrt.pe_free(nb, t as u64) {
                    continue;
                }
                let hi = idx(nb, t + 1);
                if cost[hi] == UNSEEN || cost[hi] > c + 1 {
                    cost[hi] = c + 1;
                    parent[hi] = (idx(pe, t), true);
                    dq.push_back((nb, t + 1));
                }
            }
        }
    }
    let (gpe, gt) = goal?;
    let mut hops = Vec::new();
    let mut cur = idx(gpe, gt);
    while parent[cur].0 != usize::MAX {
        let (prev, was_hop) = parent[cur];
        if was_hop {
            let t = start + (cur / n) as u32;
            let pe = PeId((cur % n) as u16);
            // The hop op executes the cycle *before* the value lands.
            hops.push(RouteHop { pe, time: t - 1 });
        }
        cur = prev;
    }
    hops.reverse();
    if hops.is_empty() {
        return Some(RoutePlan::Direct);
    }
    Some(RoutePlan::Chain(hops))
}

/// Route under baseline rules. Returns `None` if no legal realisation
/// exists within the deadline. `sites` are extra places the value is
/// already available (fanout sharing); pass `&[]` when there are none.
pub fn route_baseline(
    mesh: Mesh,
    mrt: &Mrt,
    req: RouteRequest,
    sites: &[ValueSite],
) -> Option<RoutePlan> {
    bfs_route(mesh, mrt, req, None, u32::MAX, sites)
}

/// Route under the paper's ring constraint with the stable-column
/// discipline: waiting allowed, every step ring-monotone.
pub fn route_ring(
    mesh: Mesh,
    layout: &PageLayout,
    mrt: &Mrt,
    req: RouteRequest,
    hop_budget: u32,
    sites: &[ValueSite],
) -> Option<RoutePlan> {
    bfs_route(mesh, mrt, req, Some(layout), hop_budget, sites)
}

/// Route under the strict 1-step discipline: the chain, if any, has
/// exactly `deadline − avail` hops (self-hops included); `None` if that
/// exceeds `chain_budget` or no ring-legal path exists.
pub fn route_strict(
    mesh: Mesh,
    layout: &PageLayout,
    mrt: &Mrt,
    req: RouteRequest,
    chain_budget: u32,
) -> Option<RoutePlan> {
    if req.deadline < req.avail {
        return None;
    }
    let steps = req.deadline - req.avail;
    if steps == 0 {
        let ok = (req.from_pe == req.to_pe || mesh.adjacent(req.from_pe, req.to_pe))
            && ring_ok(Some(layout), req.from_pe, req.to_pe);
        return ok.then_some(RoutePlan::Direct);
    }
    if steps > chain_budget {
        return None;
    }
    // BFS over exactly `steps` transitions; states (pe, step).
    let n = mesh.num_pes();
    let idx = |pe: PeId, step: u32| step as usize * n + pe.index();
    let mut seen = vec![false; n * (steps as usize + 1)];
    let mut parent = vec![usize::MAX; n * (steps as usize + 1)];
    let mut queue: VecDeque<(PeId, u32)> = VecDeque::new();
    seen[idx(req.from_pe, 0)] = true;
    queue.push_back((req.from_pe, 0));
    let mut goal: Option<PeId> = None;
    while let Some((pe, step)) = queue.pop_front() {
        if step == steps {
            if (pe == req.to_pe || mesh.adjacent(pe, req.to_pe))
                && ring_ok(Some(layout), pe, req.to_pe)
            {
                goal = Some(pe);
                break;
            }
            continue;
        }
        let t = req.avail + step; // hop op executes at this cycle
        let try_next = |nb: PeId,
                        queue: &mut VecDeque<(PeId, u32)>,
                        seen: &mut Vec<bool>,
                        parent: &mut Vec<usize>| {
            if !ring_ok(Some(layout), pe, nb) || !mrt.pe_free(nb, t as u64) {
                return;
            }
            let i = idx(nb, step + 1);
            if !seen[i] {
                seen[i] = true;
                parent[i] = idx(pe, step);
                queue.push_back((nb, step + 1));
            }
        };
        try_next(pe, &mut queue, &mut seen, &mut parent); // self-hop
        for nb in mesh.neighbors(pe) {
            try_next(nb, &mut queue, &mut seen, &mut parent);
        }
    }
    let gpe = goal?;
    let mut chain = Vec::with_capacity(steps as usize);
    let mut cur = idx(gpe, steps);
    while parent[cur] != usize::MAX {
        let step = (cur / n) as u32;
        let pe = PeId((cur % n) as u16);
        chain.push(RouteHop {
            pe,
            time: req.avail + step - 1,
        });
        cur = parent[cur];
    }
    chain.reverse();
    debug_assert_eq!(chain.len() as u32, steps);
    Some(RoutePlan::Chain(chain))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgra_arch::CgraConfig;

    fn setup(ii: u32) -> (CgraConfig, Mrt) {
        let c = CgraConfig::square(4);
        let mrt = Mrt::new(c.mesh(), ii, 1);
        (c, mrt)
    }

    #[test]
    fn adjacent_is_direct() {
        let (c, mrt) = setup(4);
        let plan = route_baseline(
            c.mesh(),
            &mrt,
            RouteRequest {
                from_pe: PeId(0),
                avail: 1,
                to_pe: PeId(1),
                deadline: 5,
            },
            &[],
        );
        assert_eq!(plan, Some(RoutePlan::Direct));
    }

    #[test]
    fn two_hop_distance_needs_one_routing_pe() {
        let (c, mrt) = setup(4);
        // PE0 -> PE2: PE1 is adjacent to both; one hop onto PE1 lets the
        // consumer read across the last link.
        let plan = route_baseline(
            c.mesh(),
            &mrt,
            RouteRequest {
                from_pe: PeId(0),
                avail: 1,
                to_pe: PeId(2),
                deadline: 3,
            },
            &[],
        )
        .expect("routable");
        assert_eq!(plan.hops().len(), 1);
        assert_eq!(plan.hops()[0].pe, PeId(1));
    }

    #[test]
    fn deadline_too_tight_fails() {
        let (c, mrt) = setup(4);
        // PE0 to PE15 (corner to corner): needs 5 hops, deadline allows 1.
        let plan = route_baseline(
            c.mesh(),
            &mrt,
            RouteRequest {
                from_pe: PeId(0),
                avail: 1,
                to_pe: PeId(15),
                deadline: 2,
            },
            &[],
        );
        assert!(plan.is_none());
    }

    #[test]
    fn far_corner_routes_given_time() {
        let (c, mrt) = setup(8);
        let plan = route_baseline(
            c.mesh(),
            &mrt,
            RouteRequest {
                from_pe: PeId(0),
                avail: 1,
                to_pe: PeId(15),
                deadline: 8,
            },
            &[],
        )
        .expect("routable");
        // Manhattan distance 6; consumer reads across last link: 5 hops.
        assert_eq!(plan.hops().len(), 5);
    }

    #[test]
    fn baseline_routes_around_occupied_pes() {
        let (c, mut mrt) = setup(2);
        mrt.reserve(PeId(1), 0, crate::mrt::SlotUse::Compute(9), false);
        mrt.reserve(PeId(1), 1, crate::mrt::SlotUse::Compute(10), false);
        let plan = route_baseline(
            c.mesh(),
            &mrt,
            RouteRequest {
                from_pe: PeId(0),
                avail: 1,
                to_pe: PeId(2),
                deadline: 9,
            },
            &[],
        )
        .expect("routable around blockage");
        assert_eq!(plan.hops().len(), 3);
        assert!(plan.hops().iter().all(|h| h.pe != PeId(1)));
    }

    #[test]
    fn ring_route_rejects_backward_page_motion() {
        let (c, mrt) = setup(4);
        // PE2 (page 1) -> PE1 (page 0): backwards on the ring path.
        let plan = route_ring(
            c.mesh(),
            c.layout(),
            &mrt,
            RouteRequest {
                from_pe: PeId(2),
                avail: 3,
                to_pe: PeId(1),
                deadline: 12,
            },
            8,
            &[],
        );
        assert!(plan.is_none());
        // Forward: PE1 (page 0) -> PE2 (page 1) is direct.
        let plan = route_ring(
            c.mesh(),
            c.layout(),
            &mrt,
            RouteRequest {
                from_pe: PeId(1),
                avail: 3,
                to_pe: PeId(2),
                deadline: 3,
            },
            8,
            &[],
        );
        assert_eq!(plan, Some(RoutePlan::Direct));
    }

    #[test]
    fn ring_route_allows_waiting_then_crossing() {
        let (c, mrt) = setup(4);
        // PE0 (page 0) -> PE7 (row1,col3: page 1): distance 3. Value may
        // park at PE0 and hop through page 0/1 PEs.
        let plan = route_ring(
            c.mesh(),
            c.layout(),
            &mrt,
            RouteRequest {
                from_pe: PeId(0),
                avail: 1,
                to_pe: PeId(7),
                deadline: 9,
            },
            8,
            &[],
        )
        .expect("ring-forward route exists");
        // Never leaves pages 0/1.
        for h in plan.hops() {
            let p = c.layout().page_of(h.pe);
            assert!(p.0 <= 1, "hop on {}", h.pe);
        }
    }

    #[test]
    fn strict_zero_step_requires_ring_legality() {
        let (c, mrt) = setup(4);
        let plan = route_strict(
            c.mesh(),
            c.layout(),
            &mrt,
            RouteRequest {
                from_pe: PeId(2),
                avail: 3,
                to_pe: PeId(1),
                deadline: 3,
            },
            8,
        );
        assert!(plan.is_none());
    }

    #[test]
    fn strict_chain_is_contiguous_and_exact_length() {
        let (c, mrt) = setup(8);
        let plan = route_strict(
            c.mesh(),
            c.layout(),
            &mrt,
            RouteRequest {
                from_pe: PeId(0),
                avail: 2,
                to_pe: PeId(0),
                deadline: 5,
            },
            8,
        )
        .expect("self-delivery via self-hops");
        let hops = plan.hops();
        assert_eq!(hops.len(), 3);
        for (i, h) in hops.iter().enumerate() {
            assert_eq!(h.time, 2 + i as u32);
        }
    }

    #[test]
    fn strict_respects_chain_budget() {
        let (c, mrt) = setup(8);
        let plan = route_strict(
            c.mesh(),
            c.layout(),
            &mrt,
            RouteRequest {
                from_pe: PeId(0),
                avail: 0,
                to_pe: PeId(0),
                deadline: 7,
            },
            4,
        );
        assert!(plan.is_none());
    }

    #[test]
    fn strict_cannot_wrap_the_ring() {
        let (c, mrt) = setup(8);
        // Path semantics: page 3 -> page 0 (the wrap link) is rejected
        // even though the quadrant pages are physically adjacent.
        let plan = route_strict(
            c.mesh(),
            c.layout(),
            &mrt,
            RouteRequest {
                from_pe: PeId(8), // row2,col0: page 3
                avail: 0,
                to_pe: PeId(4), // row1,col0: page 0
                deadline: 0,
            },
            8,
        );
        assert!(plan.is_none());
    }

    #[test]
    fn baseline_hop_times_precede_landing() {
        let (c, mrt) = setup(8);
        let plan = route_baseline(
            c.mesh(),
            &mrt,
            RouteRequest {
                from_pe: PeId(0),
                avail: 1,
                to_pe: PeId(10),
                deadline: 8,
            },
            &[],
        )
        .expect("routable");
        let hops = plan.hops();
        for w in hops.windows(2) {
            assert!(w[0].time < w[1].time);
        }
        assert!(hops.first().map(|h| h.time >= 1).unwrap_or(true));
    }
}
