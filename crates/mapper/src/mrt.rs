//! The modulo reservation table (MRT).
//!
//! Under modulo scheduling with initiation interval II, an operation
//! placed at absolute time `t` on PE `p` re-executes every II cycles, so
//! it reserves the slot `(p, t mod II)` *exclusively*. Memory operations
//! additionally reserve a slot on their row's shared data bus.

use cgra_arch::topology::{Mesh, PeId};
use serde::{Deserialize, Serialize};

/// What occupies a PE slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SlotUse {
    /// A compute operation of the DFG (by node index).
    Compute(u32),
    /// A routing hop serving an edge (by edge index).
    Route(u32),
}

/// Modulo reservation table for one fabric at one II.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mrt {
    ii: u32,
    mesh: Mesh,
    bus_capacity: u16,
    /// `num_pes × ii` slots, row-major by PE.
    pe_slots: Vec<Option<SlotUse>>,
    /// `rows × ii` bus occupancy counters.
    bus_used: Vec<u16>,
}

impl Mrt {
    /// Create an empty MRT.
    ///
    /// # Panics
    /// Panics if `ii == 0`.
    pub fn new(mesh: Mesh, ii: u32, bus_capacity: u16) -> Self {
        assert!(ii > 0, "II must be positive");
        Mrt {
            ii,
            mesh,
            bus_capacity,
            pe_slots: vec![None; mesh.num_pes() * ii as usize],
            bus_used: vec![0; mesh.rows() as usize * ii as usize],
        }
    }

    /// The initiation interval this table was built for.
    #[inline]
    pub fn ii(&self) -> u32 {
        self.ii
    }

    #[inline]
    fn slot_index(&self, pe: PeId, time: u64) -> usize {
        pe.index() * self.ii as usize + (time % self.ii as u64) as usize
    }

    #[inline]
    fn bus_index(&self, pe: PeId, time: u64) -> usize {
        let row = self.mesh.pos(pe).r as usize;
        row * self.ii as usize + (time % self.ii as u64) as usize
    }

    /// What occupies `(pe, time mod II)`, if anything.
    pub fn slot(&self, pe: PeId, time: u64) -> Option<SlotUse> {
        self.pe_slots[self.slot_index(pe, time)]
    }

    /// Whether the PE slot is free.
    pub fn pe_free(&self, pe: PeId, time: u64) -> bool {
        self.slot(pe, time).is_none()
    }

    /// Whether a bus slot is available on `pe`'s row at `time`.
    pub fn bus_free(&self, pe: PeId, time: u64) -> bool {
        self.bus_used[self.bus_index(pe, time)] < self.bus_capacity
    }

    /// Reserve a PE slot (and a bus slot when `uses_bus`).
    ///
    /// # Panics
    /// Panics if the slot is already taken or the bus is saturated —
    /// callers must check availability first; double-booking is a logic
    /// error, not a recoverable condition.
    pub fn reserve(&mut self, pe: PeId, time: u64, what: SlotUse, uses_bus: bool) {
        let idx = self.slot_index(pe, time);
        assert!(
            self.pe_slots[idx].is_none(),
            "slot ({pe}, {time} mod {}) double-booked",
            self.ii
        );
        if uses_bus {
            let b = self.bus_index(pe, time);
            assert!(
                self.bus_used[b] < self.bus_capacity,
                "row bus saturated at ({pe}, {time} mod {})",
                self.ii
            );
            self.bus_used[b] += 1;
        }
        self.pe_slots[idx] = Some(what);
    }

    /// Release a previously reserved slot.
    ///
    /// # Panics
    /// Panics if the slot does not currently hold `what`.
    pub fn release(&mut self, pe: PeId, time: u64, what: SlotUse, uses_bus: bool) {
        let idx = self.slot_index(pe, time);
        assert_eq!(
            self.pe_slots[idx],
            Some(what),
            "releasing a slot that holds something else"
        );
        self.pe_slots[idx] = None;
        if uses_bus {
            let b = self.bus_index(pe, time);
            assert!(self.bus_used[b] > 0);
            self.bus_used[b] -= 1;
        }
    }

    /// Number of occupied PE slots.
    pub fn occupied(&self) -> usize {
        self.pe_slots.iter().filter(|s| s.is_some()).count()
    }

    /// Fraction of PE slots occupied — the utilization `U` from §IV.
    pub fn utilization(&self) -> f64 {
        self.occupied() as f64 / self.pe_slots.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mrt() -> Mrt {
        Mrt::new(Mesh::new(4, 4), 2, 1)
    }

    #[test]
    fn fresh_table_is_free() {
        let m = mrt();
        for pe in Mesh::new(4, 4).pes() {
            for t in 0..4u64 {
                assert!(m.pe_free(pe, t));
                assert!(m.bus_free(pe, t));
            }
        }
        assert_eq!(m.occupied(), 0);
    }

    #[test]
    fn reserve_blocks_modulo_aliases() {
        let mut m = mrt();
        m.reserve(PeId(0), 1, SlotUse::Compute(7), false);
        assert!(!m.pe_free(PeId(0), 1));
        assert!(!m.pe_free(PeId(0), 3)); // 3 mod 2 == 1
        assert!(m.pe_free(PeId(0), 2));
        assert_eq!(m.slot(PeId(0), 5), Some(SlotUse::Compute(7)));
    }

    #[test]
    fn bus_counts_per_row() {
        let mut m = mrt();
        // PEs 0 and 1 share row 0.
        m.reserve(PeId(0), 0, SlotUse::Compute(0), true);
        assert!(!m.bus_free(PeId(1), 0)); // same row, same slot
        assert!(m.bus_free(PeId(1), 1));
        assert!(m.bus_free(PeId(4), 0)); // row 1 unaffected
    }

    #[test]
    fn release_restores_availability() {
        let mut m = mrt();
        m.reserve(PeId(3), 0, SlotUse::Route(2), true);
        m.release(PeId(3), 0, SlotUse::Route(2), true);
        assert!(m.pe_free(PeId(3), 0));
        assert!(m.bus_free(PeId(3), 0));
        assert_eq!(m.occupied(), 0);
    }

    #[test]
    fn utilization_counts_slots() {
        let mut m = mrt();
        assert_eq!(m.utilization(), 0.0);
        m.reserve(PeId(0), 0, SlotUse::Compute(0), false);
        // 1 of 16*2 slots.
        assert!((m.utilization() - 1.0 / 32.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "double-booked")]
    fn double_booking_panics() {
        let mut m = mrt();
        m.reserve(PeId(0), 0, SlotUse::Compute(0), false);
        m.reserve(PeId(0), 2, SlotUse::Compute(1), false); // aliases slot 0
    }

    #[test]
    fn capacity_two_bus_allows_two_mem_ops() {
        let mut m = Mrt::new(Mesh::new(4, 4), 1, 2);
        m.reserve(PeId(0), 0, SlotUse::Compute(0), true);
        assert!(m.bus_free(PeId(1), 0));
        m.reserve(PeId(1), 0, SlotUse::Compute(1), true);
        assert!(!m.bus_free(PeId(2), 0));
    }
}
