//! Memory spilling — the paper's register-usage constraint (§VI-B.1).
//!
//! "The compiler must use memory to store temporary variables that a PE
//! may need. This simplifies moving the computation among pages." A
//! spilled dependence `u → v` becomes `u → store ⇒ load → v`, where `⇒`
//! is a *memory edge*: the value travels through the global data memory,
//! so the load may execute on any PE of any page — the dependence no
//! longer constrains placement, only timing (one cycle to store, one for
//! the datum to become visible).

use cgra_dfg::graph::{Dfg, Edge, Node, NodeId, OpKind};
use std::collections::BTreeSet;

/// A DFG prepared for mapping: possibly augmented with spill stores/loads,
/// with memory edges marked.
#[derive(Debug, Clone)]
pub struct MapDfg {
    /// The (possibly augmented) graph to place and route.
    pub dfg: Dfg,
    /// Per-edge flag: `true` for memory edges (store ⇒ load), which need
    /// no interconnect routing.
    pub mem_edge: Vec<bool>,
    /// Node count of the original kernel (spill ops are appended after).
    pub original_nodes: usize,
    /// Indices (into the *original* DFG's edge list) that were spilled.
    pub spilled: BTreeSet<usize>,
    /// Per augmented edge: the original-edge index it came from, or `None`
    /// for edges created by spilling (u→store, store⇒load, load→v).
    pub origin: Vec<Option<usize>>,
}

impl MapDfg {
    /// Wrap a DFG without any spills.
    pub fn unspilled(dfg: &Dfg) -> Self {
        MapDfg {
            mem_edge: vec![false; dfg.num_edges()],
            original_nodes: dfg.num_nodes(),
            spilled: BTreeSet::new(),
            origin: (0..dfg.num_edges()).map(Some).collect(),
            dfg: dfg.clone(),
        }
    }

    /// Rebuild `dfg` with the given original-edge indices spilled through
    /// memory.
    ///
    /// Spilled edges sharing a producer share one store; each spilled edge
    /// gets its own load (consumers may sit on different pages at
    /// different times).
    pub fn with_spills(dfg: &Dfg, spilled: &BTreeSet<usize>) -> Self {
        if spilled.is_empty() {
            return Self::unspilled(dfg);
        }
        let mut nodes: Vec<Node> = dfg.node_ids().map(|n| dfg.node(n).clone()).collect();
        let mut edges: Vec<Edge> = Vec::with_capacity(dfg.num_edges() + spilled.len() * 3);
        let mut mem_edge: Vec<bool> = Vec::with_capacity(edges.capacity());
        let mut origin: Vec<Option<usize>> = Vec::with_capacity(edges.capacity());
        let mut store_of: Vec<Option<NodeId>> = vec![None; dfg.num_nodes()];

        for (i, e) in dfg.edges().enumerate() {
            if !spilled.contains(&i) {
                edges.push(e);
                mem_edge.push(false);
                origin.push(Some(i));
                continue;
            }
            let st = *store_of[e.src.index()].get_or_insert_with(|| {
                nodes.push(Node {
                    op: OpKind::Store,
                    label: Some(format!("spill_st({})", e.src)),
                });
                let st = NodeId(nodes.len() as u32 - 1);
                edges.push(Edge {
                    src: e.src,
                    dst: st,
                    distance: 0,
                });
                mem_edge.push(false);
                origin.push(None);
                st
            });
            nodes.push(Node {
                op: OpKind::Load,
                label: Some(format!("spill_ld({}->{})", e.src, e.dst)),
            });
            let ld = NodeId(nodes.len() as u32 - 1);
            // The memory edge carries the original iteration distance.
            edges.push(Edge {
                src: st,
                dst: ld,
                distance: e.distance,
            });
            mem_edge.push(true);
            origin.push(None);
            edges.push(Edge {
                src: ld,
                dst: e.dst,
                distance: 0,
            });
            mem_edge.push(false);
            origin.push(None);
        }

        let augmented = Dfg::from_parts(dfg.name.clone(), nodes, edges);
        MapDfg {
            mem_edge,
            original_nodes: dfg.num_nodes(),
            spilled: spilled.clone(),
            origin,
            dfg: augmented,
        }
    }

    /// Whether an edge of the augmented graph is memory-carried.
    #[inline]
    pub fn is_mem_edge(&self, edge_index: usize) -> bool {
        self.mem_edge[edge_index]
    }

    /// Whether a node is a spill op (inserted, not part of the kernel).
    #[inline]
    pub fn is_spill_node(&self, n: NodeId) -> bool {
        n.index() >= self.original_nodes
    }

    /// Original-kernel edges of the augmented graph that remain routable
    /// (not spilled, not memory), as augmented-edge indices.
    pub fn routable_edges(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.dfg.num_edges()).filter(|&i| !self.mem_edge[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgra_dfg::{DfgBuilder, OpKind};

    fn fanout2() -> Dfg {
        let mut b = DfgBuilder::new("f");
        let u = b.node(OpKind::Load);
        let v1 = b.apply(OpKind::Add, &[u]); // edge 0
        let v2 = b.apply(OpKind::Mul, &[u]); // edge 1
        b.apply(OpKind::Store, &[v1]); // edge 2
        b.apply(OpKind::Store, &[v2]); // edge 3
        b.build().unwrap()
    }

    #[test]
    fn unspilled_is_passthrough() {
        let g = fanout2();
        let m = MapDfg::unspilled(&g);
        assert_eq!(m.dfg.num_nodes(), g.num_nodes());
        assert!(m.mem_edge.iter().all(|&b| !b));
    }

    #[test]
    fn spilling_one_edge_adds_store_load() {
        let g = fanout2();
        let m = MapDfg::with_spills(&g, &BTreeSet::from([0]));
        assert_eq!(m.dfg.num_nodes(), g.num_nodes() + 2);
        // Original 4 edges: one replaced by 3 (u->st, st=>ld, ld->v1).
        assert_eq!(m.dfg.num_edges(), g.num_edges() + 2);
        assert_eq!(m.mem_edge.iter().filter(|&&b| b).count(), 1);
    }

    #[test]
    fn shared_producer_shares_store() {
        let g = fanout2();
        let m = MapDfg::with_spills(&g, &BTreeSet::from([0, 1]));
        // One store + two loads.
        assert_eq!(m.dfg.num_nodes(), g.num_nodes() + 3);
        assert_eq!(m.mem_edge.iter().filter(|&&b| b).count(), 2);
    }

    #[test]
    fn spill_nodes_are_flagged() {
        let g = fanout2();
        let m = MapDfg::with_spills(&g, &BTreeSet::from([0]));
        for n in m.dfg.node_ids() {
            assert_eq!(m.is_spill_node(n), n.index() >= g.num_nodes());
        }
    }

    #[test]
    fn carried_distance_moves_to_mem_edge() {
        let mut b = DfgBuilder::new("d");
        let u = b.node(OpKind::Load);
        let v = b.node(OpKind::Add);
        b.carried_edge(u, v, 3);
        b.apply(OpKind::Store, &[v]);
        let g = b.build().unwrap();
        let m = MapDfg::with_spills(&g, &BTreeSet::from([0]));
        let mem: Vec<_> = m
            .dfg
            .edges()
            .enumerate()
            .filter(|(i, _)| m.is_mem_edge(*i))
            .map(|(_, e)| e)
            .collect();
        assert_eq!(mem.len(), 1);
        assert_eq!(mem[0].distance, 3);
        // The surrounding store/load links are intra-iteration.
        for (i, e) in m.dfg.edges().enumerate() {
            if !m.is_mem_edge(i) {
                assert_eq!(e.distance, 0);
            }
        }
    }

    #[test]
    fn augmented_graph_validates() {
        let g = fanout2();
        let m = MapDfg::with_spills(&g, &BTreeSet::from([0, 1, 2, 3]));
        assert!(cgra_dfg::validate::validate(&m.dfg).is_ok());
    }
}
