//! Mappings — the mapper's output — and their independent validation.
//!
//! A [`Mapping`] binds every DFG node to a (PE, time) and every routable
//! edge to a chain of routing hops. [`validate_mapping`] re-derives every
//! legality condition from scratch (never trusting the engine that built
//! the mapping); it is the correctness anchor for the whole crate and the
//! oracle for the property tests.
//!
//! # Dataflow semantics
//!
//! All operations have latency 1. A value produced by `u` at `(pe_u, t_u)`
//! becomes *available* at `pe_u` at `t_u + 1`. An edge `u → v` with
//! iteration distance `d` is consumed at `T = t_v + d·II`.
//!
//! * **Direct** (no hops): the consumer reads from its own RF
//!   (`pe_v == pe_u`) or across one interconnect link
//!   (`pe_v` adjacent to `pe_u`).
//! * **Chain**: routing hops `h_1 … h_k`; hop `i` executes a `Route` op at
//!   `(l_i, s_i)` reading the value from the previous location (available
//!   there at `s_i`), republishing it at `l_i` at `s_i + 1`. Hops occupy
//!   MRT slots.
//! * **Memory edge** (`store ⇒ load`, see [`crate::spill`]): no routing;
//!   requires `T ≥ t_store + 2` (one cycle to execute the store, one for
//!   visibility).
//!
//! # Modes
//!
//! [`MapMode::Baseline`] allows values to *wait* in RFs (free gaps between
//! availability and use, bounded only by RF capacity) and routes freely,
//! as conventional mappers do. [`MapMode::Constrained`] adds the paper's
//! §VI-B data-flow constraint under the stable-column shrink discipline:
//! every dataflow step (direct read, routing hop, final read) must stay on
//! its page or advance one page along the ring *path*; parking is still
//! allowed because the shrink transform keeps each page's column fixed.
//! [`MapMode::ConstrainedStrict`] additionally forbids waiting, yielding
//! page schedules with only the canonical `(n,t−1)`/`(n−1,t−1)`
//! dependences of §VI-C — the input form for the paper's drifting
//! Algorithm 1 placement. Dependences no discipline can realise are
//! spilled through memory (§VI-B.1).

use crate::mrt::{Mrt, SlotUse};
use crate::spill::MapDfg;
use cgra_arch::page::PageLayout;
use cgra_arch::pe::FuClass;
use cgra_arch::register::PressureTracker;
use cgra_arch::topology::PeId;
use cgra_arch::CgraConfig;
use serde::{Deserialize, Serialize};

/// Where and when one node executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    /// The PE executing the op.
    pub pe: PeId,
    /// Absolute schedule time (the op repeats every II cycles).
    pub time: u32,
}

/// One routing hop: a `Route` pseudo-op at `(pe, time)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouteHop {
    /// The PE that forwards the value.
    pub pe: PeId,
    /// The cycle it forwards (occupies MRT slot `time mod II`).
    pub time: u32,
}

/// Scheduling discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MapMode {
    /// Conventional mapping: RF parking allowed, routing unconstrained.
    Baseline,
    /// The paper's paging constraints under the stable-column shrink
    /// discipline: RF parking allowed, but every dataflow step must stay
    /// on its page or advance one page along the ring path.
    Constrained,
    /// The strict 1-step discipline: additionally no parking — every
    /// cycle the value hops (possibly onto its own PE). Produces purely
    /// canonical page schedules for the paper's drifting Algorithm 1.
    ConstrainedStrict,
}

impl MapMode {
    /// Whether values may wait in RFs between production and use.
    pub fn allows_waiting(self) -> bool {
        !matches!(self, MapMode::ConstrainedStrict)
    }

    /// Whether dataflow must follow the page ring.
    pub fn ring_constrained(self) -> bool {
        !matches!(self, MapMode::Baseline)
    }
}

/// A complete modulo schedule for one kernel on one fabric.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mapping {
    /// Achieved initiation interval.
    pub ii: u32,
    /// Per-node placement, indexed by `NodeId`.
    pub placements: Vec<Placement>,
    /// Per-edge routing hops (empty for direct and memory edges).
    pub routes: Vec<Vec<RouteHop>>,
}

impl Mapping {
    /// PE-slot utilization of the schedule including routing overhead:
    /// occupied slots / (num_pes × II).
    pub fn utilization(&self, num_pes: usize) -> f64 {
        let used = self.placements.len() + self.routes.iter().map(Vec::len).sum::<usize>();
        used as f64 / (num_pes as f64 * self.ii as f64)
    }

    /// Number of routing hops across all edges.
    pub fn total_route_hops(&self) -> usize {
        self.routes.iter().map(Vec::len).sum()
    }

    /// The schedule length (latest op start + 1).
    pub fn makespan(&self) -> u32 {
        self.placements
            .iter()
            .map(|p| p.time + 1)
            .max()
            .unwrap_or(0)
    }
}

/// A violation found by [`validate_mapping`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// Two reservations collide in the MRT.
    SlotConflict {
        /// The PE where the collision happens.
        pe: PeId,
        /// The modulo slot.
        slot: u32,
    },
    /// A row bus is over capacity at some slot.
    BusOverflow {
        /// The row.
        row: u16,
        /// The modulo slot.
        slot: u32,
    },
    /// An edge's dataflow is illegal (timing, adjacency, contiguity…).
    BadEdge {
        /// Edge index in the mapped graph.
        edge: usize,
        /// Human-readable reason.
        reason: String,
    },
    /// A node sits on a PE lacking the needed functional unit.
    BadCapability {
        /// Node index.
        node: usize,
    },
    /// The constrained ring discipline is broken.
    RingViolation {
        /// Edge index.
        edge: usize,
        /// Human-readable reason.
        reason: String,
    },
    /// Rotating register file pressure exceeds capacity (baseline mode).
    RfOverflow {
        /// The PE whose RF overflows.
        pe: PeId,
        /// Registers required.
        required: u32,
        /// Registers available.
        available: u32,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::SlotConflict { pe, slot } => write!(f, "slot conflict at ({pe}, {slot})"),
            Violation::BusOverflow { row, slot } => {
                write!(f, "row {row} bus over capacity at slot {slot}")
            }
            Violation::BadEdge { edge, reason } => write!(f, "edge #{edge}: {reason}"),
            Violation::BadCapability { node } => write!(f, "node #{node}: missing FU"),
            Violation::RingViolation { edge, reason } => {
                write!(f, "edge #{edge} breaks ring constraint: {reason}")
            }
            Violation::RfOverflow {
                pe,
                required,
                available,
            } => write!(f, "{pe}: RF needs {required} regs, has {available}"),
        }
    }
}

fn ring_step_ok(layout: &PageLayout, from: PeId, to: PeId) -> bool {
    layout.is_ring_step(layout.page_of(from), layout.page_of(to))
}

/// Re-derive every legality condition of `mapping` for `mdfg` on `cgra`
/// under `mode`. Returns all violations found (empty = valid).
pub fn validate_mapping(
    mdfg: &MapDfg,
    cgra: &CgraConfig,
    mapping: &Mapping,
    mode: MapMode,
) -> Vec<Violation> {
    let mut violations = Vec::new();
    let dfg = &mdfg.dfg;
    let mesh = cgra.mesh();
    let layout = cgra.layout();
    let ii = mapping.ii;

    if mapping.placements.len() != dfg.num_nodes() || mapping.routes.len() != dfg.num_edges() {
        violations.push(Violation::BadEdge {
            edge: usize::MAX,
            reason: format!(
                "shape mismatch: {} placements for {} nodes, {} routes for {} edges",
                mapping.placements.len(),
                dfg.num_nodes(),
                mapping.routes.len(),
                dfg.num_edges()
            ),
        });
        return violations;
    }

    // --- Resource reservations: rebuild the MRT from scratch. ---
    let mut mrt = Mrt::new(mesh, ii, cgra.mem().buses_per_row());
    for (i, p) in mapping.placements.iter().enumerate() {
        let op = dfg.node(cgra_dfg::NodeId(i as u32)).op;
        let class = if op.is_mem() {
            FuClass::Mem
        } else if op.is_mul() {
            FuClass::Mul
        } else {
            FuClass::Alu
        };
        if !cgra.capability().supports(class) {
            violations.push(Violation::BadCapability { node: i });
        }
        if !mrt.pe_free(p.pe, p.time as u64) {
            violations.push(Violation::SlotConflict {
                pe: p.pe,
                slot: p.time % ii,
            });
            continue;
        }
        if op.is_mem() && !mrt.bus_free(p.pe, p.time as u64) {
            violations.push(Violation::BusOverflow {
                row: mesh.pos(p.pe).r,
                slot: p.time % ii,
            });
            continue;
        }
        mrt.reserve(p.pe, p.time as u64, SlotUse::Compute(i as u32), op.is_mem());
    }
    for (ei, hops) in mapping.routes.iter().enumerate() {
        for h in hops {
            if !mrt.pe_free(h.pe, h.time as u64) {
                violations.push(Violation::SlotConflict {
                    pe: h.pe,
                    slot: h.time % ii,
                });
                continue;
            }
            mrt.reserve(h.pe, h.time as u64, SlotUse::Route(ei as u32), false);
        }
    }

    // --- Per-edge dataflow legality. ---
    // Track RF holds for baseline pressure accounting:
    // (pe, avail_from, held_until).
    let mut holds: Vec<(PeId, u32, u32)> = Vec::new();

    // Fanout sharing (modes with waiting): a hop or final read may pick
    // the value up from any landing of a sibling edge's route (same
    // producer), not only from this edge's own chain. Collect the sites.
    let sites_of = |src: cgra_dfg::NodeId, this_edge: usize| -> Vec<(PeId, u32)> {
        if !mode.allows_waiting() {
            return Vec::new();
        }
        let mut sites = Vec::new();
        for e2 in dfg.succ_edges(src) {
            if e2.index() == this_edge || mdfg.is_mem_edge(e2.index()) {
                continue;
            }
            for h in &mapping.routes[e2.index()] {
                sites.push((h.pe, h.time + 1));
            }
        }
        sites
    };

    for (ei, e) in dfg.edges().enumerate() {
        let pu = mapping.placements[e.src.index()];
        let pv = mapping.placements[e.dst.index()];
        let avail0 = pu.time + 1;
        let consume = pv.time as u64 + e.distance as u64 * ii as u64;
        let hops = &mapping.routes[ei];

        if mdfg.is_mem_edge(ei) {
            if !hops.is_empty() {
                violations.push(Violation::BadEdge {
                    edge: ei,
                    reason: "memory edge must not be routed".into(),
                });
            }
            // store at t_u executes by t_u+1; datum visible t_u+2.
            if consume < pu.time as u64 + 2 {
                violations.push(Violation::BadEdge {
                    edge: ei,
                    reason: format!(
                        "load at {} before store data visible at {}",
                        consume,
                        pu.time + 2
                    ),
                });
            }
            continue;
        }

        let sites = sites_of(e.src, ei);

        // A reader at (`to`, `read_time`) may take the value from the
        // current chain location or any sharing site. Returns the source
        // used (for hold accounting), or None.
        let pick_source = |loc: PeId,
                           avail: u32,
                           to: PeId,
                           read_time: u64,
                           strict_from_loc_only: bool|
         -> Option<(PeId, u32)> {
            let legal = |pe: PeId, a: u32| {
                (pe == to || mesh.adjacent(pe, to))
                    && read_time >= a as u64
                    && (mode.allows_waiting() || read_time == a as u64)
                    && (!mode.ring_constrained() || ring_step_ok(layout, pe, to))
            };
            if legal(loc, avail) {
                return Some((loc, avail));
            }
            if strict_from_loc_only {
                return None;
            }
            sites.iter().copied().find(|&(pe, a)| legal(pe, a))
        };

        // Walk the chain (possibly empty).
        let mut loc = pu.pe;
        let mut avail = avail0;
        let mut ok = true;
        for (hi, h) in hops.iter().enumerate() {
            match pick_source(loc, avail, h.pe, h.time as u64, !mode.allows_waiting()) {
                Some((spe, sa)) => {
                    if mode.allows_waiting() && h.time > sa {
                        holds.push((spe, sa, h.time));
                    }
                    avail = h.time + 1;
                    loc = h.pe;
                }
                None => {
                    // Classify: ring-only failures get the dedicated kind.
                    let ring_blocked = mode.ring_constrained()
                        && (loc == h.pe || mesh.adjacent(loc, h.pe))
                        && h.time as u64 >= avail as u64
                        && !ring_step_ok(layout, loc, h.pe);
                    violations.push(if ring_blocked {
                        Violation::RingViolation {
                            edge: ei,
                            reason: format!("hop {hi}: {} to {}", loc, h.pe),
                        }
                    } else {
                        Violation::BadEdge {
                            edge: ei,
                            reason: format!(
                                "hop {hi} at ({}, {}) unreachable from {} (avail {avail}) \
                                 or any sharing site",
                                h.pe, h.time, loc
                            ),
                        }
                    });
                    ok = false;
                    break;
                }
            }
        }
        if !ok {
            continue;
        }
        // Final read by the consumer at `consume`.
        match pick_source(loc, avail, pv.pe, consume, !mode.allows_waiting()) {
            Some((spe, sa)) => {
                if mode.allows_waiting() && consume > sa as u64 {
                    holds.push((spe, sa, consume as u32));
                }
            }
            None => {
                let ring_blocked = mode.ring_constrained()
                    && (loc == pv.pe || mesh.adjacent(loc, pv.pe))
                    && consume >= avail as u64
                    && !ring_step_ok(layout, loc, pv.pe);
                violations.push(if ring_blocked {
                    Violation::RingViolation {
                        edge: ei,
                        reason: format!("final read: {} to {}", loc, pv.pe),
                    }
                } else {
                    Violation::BadEdge {
                        edge: ei,
                        reason: format!(
                            "consumer at ({}, {consume}) cannot read the value \
                             (chain at {} from {avail}, {} sharing sites)",
                            pv.pe,
                            loc,
                            sites.len()
                        ),
                    }
                });
            }
        }
    }

    // --- RF pressure (strict mappings never park). ---
    if mode.allows_waiting() {
        let mut per_pe: std::collections::HashMap<PeId, PressureTracker> =
            std::collections::HashMap::new();
        for (pe, from, until) in holds {
            if until > from {
                per_pe
                    .entry(pe)
                    .or_default()
                    .add_range(from as u64, until as u64);
            }
        }
        for (pe, tracker) in per_pe {
            let required = tracker.registers_required(ii);
            if required > cgra.rf().size() as u32 {
                violations.push(Violation::RfOverflow {
                    pe,
                    required,
                    available: cgra.rf().size() as u32,
                });
            }
        }
    }

    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgra_dfg::{DfgBuilder, OpKind};

    fn two_op_kernel() -> MapDfg {
        let mut b = DfgBuilder::new("t");
        let u = b.node(OpKind::Load);
        b.apply(OpKind::Store, &[u]);
        MapDfg::unspilled(&b.build().unwrap())
    }

    fn cgra() -> CgraConfig {
        CgraConfig::square(4)
    }

    fn place(pairs: &[(u16, u32)], ii: u32, nroutes: usize) -> Mapping {
        Mapping {
            ii,
            placements: pairs
                .iter()
                .map(|&(pe, time)| Placement { pe: PeId(pe), time })
                .collect(),
            routes: vec![Vec::new(); nroutes],
        }
    }

    #[test]
    fn adjacent_direct_edge_validates() {
        let m = two_op_kernel();
        // PE0 -> PE1 (adjacent), times 0 -> 1. II=2 keeps the two memory
        // ops on distinct row-bus slots.
        let mapping = place(&[(0, 0), (1, 1)], 2, 1);
        assert!(validate_mapping(&m, &cgra(), &mapping, MapMode::Baseline).is_empty());
        assert!(validate_mapping(&m, &cgra(), &mapping, MapMode::Constrained).is_empty());
    }

    #[test]
    fn non_adjacent_direct_edge_fails() {
        let m = two_op_kernel();
        // PE0 -> PE5 are not adjacent (diagonal).
        let mapping = place(&[(0, 0), (5, 1)], 1, 1);
        let v = validate_mapping(&m, &cgra(), &mapping, MapMode::Baseline);
        assert!(matches!(v[0], Violation::BadEdge { .. }));
    }

    #[test]
    fn consuming_before_available_fails() {
        let m = two_op_kernel();
        // Consumer at t=4 while the value only exists from t=6.
        let mapping = place(&[(0, 5), (1, 4)], 8, 1);
        let v = validate_mapping(&m, &cgra(), &mapping, MapMode::Baseline);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn parking_allowed_except_in_strict_mode() {
        let m = two_op_kernel();
        // Consumer 3 cycles after availability, same page (PE0 -> PE1).
        let mapping = place(&[(0, 0), (1, 4)], 8, 1);
        assert!(validate_mapping(&m, &cgra(), &mapping, MapMode::Baseline).is_empty());
        assert!(validate_mapping(&m, &cgra(), &mapping, MapMode::Constrained).is_empty());
        let v = validate_mapping(&m, &cgra(), &mapping, MapMode::ConstrainedStrict);
        assert!(!v.is_empty());
    }

    #[test]
    fn slot_conflict_detected() {
        let mut b = DfgBuilder::new("t");
        let u = b.node(OpKind::Const);
        let w = b.node(OpKind::Const);
        let s = b.apply(OpKind::Add, &[u, w]);
        let _ = s;
        let m = MapDfg::unspilled(&b.build().unwrap());
        // u and w both on PE0 at congruent times (0 and 2, II=2).
        let mapping = place(&[(0, 0), (0, 2), (1, 3)], 2, 2);
        let v = validate_mapping(&m, &cgra(), &mapping, MapMode::Baseline);
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::SlotConflict { .. })));
    }

    #[test]
    fn bus_overflow_detected() {
        let mut b = DfgBuilder::new("t");
        let l1 = b.node(OpKind::Load);
        let l2 = b.node(OpKind::Load);
        let s = b.apply(OpKind::Add, &[l1, l2]);
        let _ = s;
        let m = MapDfg::unspilled(&b.build().unwrap());
        // Two loads on row 0 at the same slot with 1 bus/row.
        let mapping = place(&[(0, 0), (1, 0), (2, 1)], 1, 2);
        let v = validate_mapping(&m, &cgra(), &mapping, MapMode::Baseline);
        assert!(v.iter().any(|x| matches!(x, Violation::BusOverflow { .. })));
    }

    #[test]
    fn chain_route_validates() {
        let m = two_op_kernel();
        // PE0 -> PE2 via hop on PE1: u at t0 (avail t1), hop(PE1, t1),
        // avail at PE2... hop republishes at PE1 at t2; consumer on PE2
        // reads across link at t2.
        let mapping = Mapping {
            ii: 4,
            placements: vec![
                Placement {
                    pe: PeId(0),
                    time: 0,
                },
                Placement {
                    pe: PeId(2),
                    time: 2,
                },
            ],
            routes: vec![vec![RouteHop {
                pe: PeId(1),
                time: 1,
            }]],
        };
        assert!(validate_mapping(&m, &cgra(), &mapping, MapMode::Baseline).is_empty());
        assert!(validate_mapping(&m, &cgra(), &mapping, MapMode::ConstrainedStrict).is_empty());
    }

    #[test]
    fn gap_in_chain_fails_strict_only() {
        let m = two_op_kernel();
        let mapping = Mapping {
            ii: 8,
            placements: vec![
                Placement {
                    pe: PeId(0),
                    time: 0,
                },
                Placement {
                    pe: PeId(2),
                    time: 4,
                },
            ],
            // Hop waits until t3 (value parked at PE0 cycles 1-3).
            routes: vec![vec![RouteHop {
                pe: PeId(1),
                time: 3,
            }]],
        };
        assert!(validate_mapping(&m, &cgra(), &mapping, MapMode::Baseline).is_empty());
        assert!(validate_mapping(&m, &cgra(), &mapping, MapMode::Constrained).is_empty());
        assert!(!validate_mapping(&m, &cgra(), &mapping, MapMode::ConstrainedStrict).is_empty());
    }

    #[test]
    fn ring_violation_detected() {
        // 4x4 with 2x2 pages: PE0 is page 0; PE12 (row 3, col 0) is page 3.
        // Page 3 -> page 1 is not a ring step.
        let mut b = DfgBuilder::new("t");
        let u = b.node(OpKind::Const);
        b.apply(OpKind::Add, &[u]);
        let m = MapDfg::unspilled(&b.build().unwrap());
        let c = cgra();
        // PE8 (row2, col0) page 3; PE4 (row1, col0) page 0. page3 -> page0
        // IS the ring wrap (allowed). Pick page1 -> page0 instead: PE3
        // (row0,col3) page 1 -> PE2 (row0,col2)... page_of(PE2): row0,col2
        // => origin (0,2) => page 1 too. Use PE2->PE1: PE1 is page 0.
        // page1 -> page0 is backwards: violation.
        let mapping = place(&[(2, 0), (1, 1)], 2, 1);
        let v = validate_mapping(&m, &c, &mapping, MapMode::Constrained);
        assert!(
            v.iter()
                .any(|x| matches!(x, Violation::RingViolation { .. })),
            "{v:?}"
        );
        // Baseline does not care.
        assert!(validate_mapping(&m, &c, &mapping, MapMode::Baseline).is_empty());
    }

    #[test]
    fn ring_wrap_is_rejected_under_path_semantics() {
        // Page 3 (bottom-left quadrant) -> page 0 (top-left) is the wrap
        // link; the mapper's path semantics forbid it even though the
        // quadrant pages are physically adjacent, so that shrunk
        // schedules never rely on the wrap (DESIGN.md section 4.1).
        let m = two_op_kernel();
        let mapping = place(&[(8, 0), (4, 1)], 2, 1);
        let v = validate_mapping(&m, &cgra(), &mapping, MapMode::Constrained);
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::RingViolation { .. })));
    }

    #[test]
    fn mem_edge_needs_two_cycles() {
        let mut b = DfgBuilder::new("t");
        let u = b.node(OpKind::Load);
        let v = b.apply(OpKind::Add, &[u]);
        b.apply(OpKind::Store, &[v]);
        let g = b.build().unwrap();
        let m = MapDfg::with_spills(&g, &std::collections::BTreeSet::from([0]));
        // Nodes: ld(0), add(1), st(2), spill_st(3), spill_ld(4).
        // Edges: add->st, ld->spill_st, spill_st=>spill_ld, spill_ld->add.
        // Place: ld PE0@0; spill_st PE1@1; spill_ld anywhere @3 (>= 1+2);
        // add PE5@4 adjacent to spill_ld PE6... keep simple distances.
        let mapping = Mapping {
            ii: 8,
            placements: vec![
                Placement {
                    pe: PeId(0),
                    time: 0,
                }, // ld
                Placement {
                    pe: PeId(10),
                    time: 5,
                }, // add
                Placement {
                    pe: PeId(11),
                    time: 6,
                }, // st
                Placement {
                    pe: PeId(1),
                    time: 1,
                }, // spill_st
                Placement {
                    pe: PeId(9),
                    time: 4,
                }, // spill_ld (adj to 10? 9 and 10 adjacent yes)
            ],
            routes: vec![Vec::new(); 4],
        };
        assert!(validate_mapping(&m, &cgra(), &mapping, MapMode::Baseline).is_empty());
        // Move the load before visibility: time 2 < 1+2.
        let mut bad = mapping;
        bad.placements[4].time = 2;
        bad.placements[1].time = 3;
        bad.placements[2].time = 4;
        let v = validate_mapping(&m, &cgra(), &bad, MapMode::Baseline);
        assert!(
            v.iter().any(|x| matches!(x, Violation::BadEdge { .. })),
            "{v:?}"
        );
    }

    #[test]
    fn rf_overflow_detected() {
        // Tiny RF (1 reg) and two long parks on the same PE.
        let mut b = DfgBuilder::new("t");
        let u = b.node(OpKind::Const);
        let v1 = b.apply(OpKind::Add, &[u]);
        let v2 = b.apply(OpKind::Add, &[u]);
        let _ = (v1, v2);
        let m = MapDfg::unspilled(&b.build().unwrap());
        let c = cgra().with_rf_size(1);
        let mapping = place(&[(0, 0), (1, 9), (4, 9)], 2, 2);
        let v = validate_mapping(&m, &c, &mapping, MapMode::Baseline);
        assert!(
            v.iter().any(|x| matches!(x, Violation::RfOverflow { .. })),
            "{v:?}"
        );
    }
}
