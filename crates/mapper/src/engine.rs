//! The iterative modulo-scheduling engine.
//!
//! This is the shared machinery behind both the baseline mapper and the
//! constrained mapper: for each candidate II starting at the MII, it
//! performs height-ordered list placement with joint operand routing over
//! the time-extended CGRA graph (the EMS family's structure: place a node,
//! immediately route the edges to its already-placed neighbours, reject
//! the spot if any edge cannot be routed). Randomised restarts with
//! jittered tie-breaking stand in for EMS's backtracking; kernels at CGRA
//! scale (≤ ~50 ops) converge within a handful of restarts.

use crate::error::MapError;
use crate::mapping::{MapMode, Mapping, Placement, RouteHop};
use crate::mrt::{Mrt, SlotUse};
use crate::opts::MapOptions;
use crate::route::{route_baseline, route_ring, route_strict, RoutePlan, RouteRequest};
use crate::spill::MapDfg;
use cgra_arch::CgraConfig;
use cgra_dfg::graph::NodeId;
use cgra_obs::{TraceEvent, Tracer};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Edge latency: memory edges take 2 cycles (store execute + visibility),
/// everything else 1.
fn edge_latency(mdfg: &MapDfg, edge_index: usize) -> i64 {
    if mdfg.is_mem_edge(edge_index) {
        2
    } else {
        1
    }
}

/// ASAP start times at `ii` with memory-edge latencies, or `None` when a
/// recurrence makes `ii` infeasible.
pub fn asap_with_mem(mdfg: &MapDfg, ii: u32) -> Option<Vec<u32>> {
    let dfg = &mdfg.dfg;
    let n = dfg.num_nodes();
    let mut start = vec![0i64; n];
    // Bellman-Ford longest path; n+1 passes detect positive cycles.
    for pass in 0..=n {
        let mut changed = false;
        for (i, e) in dfg.edges().enumerate() {
            let w = edge_latency(mdfg, i) - ii as i64 * e.distance as i64;
            let cand = start[e.src.index()] + w;
            if cand > start[e.dst.index()] {
                start[e.dst.index()] = cand;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        if pass == n {
            return None;
        }
    }
    let min = start.iter().copied().min().unwrap_or(0);
    Some(start.iter().map(|&s| (s - min) as u32).collect())
}

/// The MII for this (possibly spill-augmented) graph on this fabric.
pub fn mii_with_mem(mdfg: &MapDfg, cgra: &CgraConfig) -> u32 {
    let mem_slots = cgra.mesh().rows() as usize * cgra.mem().buses_per_row() as usize;
    let res = cgra_dfg::analysis::res_mii_with_mem(&mdfg.dfg, cgra.num_pes(), mem_slots);
    // RecMII with mem-edge latency: smallest feasible ii by linear scan
    // from the plain-latency RecMII (mem edges only lengthen cycles).
    let mut ii = cgra_dfg::analysis::rec_mii(&mdfg.dfg);
    while asap_with_mem(mdfg, ii).is_none() {
        ii += 1;
    }
    res.max(ii)
}

/// Statistics from a failed placement attempt, used by the constrained
/// mapper to pick spill candidates.
#[derive(Debug, Default, Clone)]
pub struct FailureStats {
    /// Per-edge count of routing failures across all attempts.
    pub edge_route_failures: Vec<u32>,
}

/// SCC ids over the *routable* (non-memory) edges. Under the ring path
/// constraint a recurrence cycle can never advance pages, so all members
/// of a routable SCC must share one page.
fn routable_scc_of(mdfg: &MapDfg) -> Vec<usize> {
    // Build a reduced graph with mem edges dropped and run Tarjan on it.
    let dfg = &mdfg.dfg;
    let nodes: Vec<cgra_dfg::graph::Node> = dfg.node_ids().map(|n| dfg.node(n).clone()).collect();
    let edges: Vec<cgra_dfg::graph::Edge> = dfg
        .edges()
        .enumerate()
        .filter(|(i, _)| !mdfg.is_mem_edge(*i))
        .map(|(_, e)| e)
        .collect();
    let reduced = cgra_dfg::graph::Dfg::from_parts("reduced".into(), nodes, edges);
    let comps = cgra_dfg::analysis::sccs(&reduced);
    let mut comp_of = vec![usize::MAX; dfg.num_nodes()];
    for (ci, comp) in comps.iter().enumerate() {
        for n in comp {
            comp_of[n.index()] = ci;
        }
    }
    comp_of
}

struct Attempt<'a> {
    mdfg: &'a MapDfg,
    cgra: &'a CgraConfig,
    mode: MapMode,
    ii: u32,
    opts: &'a MapOptions,
    mrt: Mrt,
    placed: Vec<Option<Placement>>,
    routes: Vec<Option<Vec<RouteHop>>>,
    stats: FailureStats,
    /// Routable-SCC id per node (ring modes only).
    scc_of: Vec<usize>,
    /// Page already chosen for an SCC, once any member is placed.
    scc_page: Vec<Option<u16>>,
    /// Restart-diversity knob: order all candidates time-major (see
    /// `place_node`).
    time_major: bool,
}

impl<'a> Attempt<'a> {
    fn new(
        mdfg: &'a MapDfg,
        cgra: &'a CgraConfig,
        mode: MapMode,
        ii: u32,
        opts: &'a MapOptions,
    ) -> Self {
        let scc_of = if mode.ring_constrained() {
            routable_scc_of(mdfg)
        } else {
            Vec::new()
        };
        let num_sccs = scc_of.iter().copied().max().map_or(0, |m| m + 1);
        Attempt {
            mrt: Mrt::new(cgra.mesh(), ii, cgra.mem().buses_per_row()),
            placed: vec![None; mdfg.dfg.num_nodes()],
            routes: vec![None; mdfg.dfg.num_edges()],
            stats: FailureStats {
                edge_route_failures: vec![0; mdfg.dfg.num_edges()],
            },
            scc_of,
            scc_page: vec![None; num_sccs],
            time_major: false,
            mdfg,
            cgra,
            mode,
            ii,
            opts,
        }
    }

    /// Page bounds for node `v` under the ring path constraint: at least
    /// the max page of placed (non-mem) predecessors, at most the min page
    /// of placed (non-mem) successors; pinned exactly if an SCC sibling is
    /// already placed.
    fn page_bounds(&self, v: NodeId) -> (u16, u16) {
        let layout = self.cgra.layout();
        let last = layout.num_pages() as u16 - 1;
        if !self.mode.ring_constrained() {
            return (0, last);
        }
        if let Some(p) = self.scc_page[self.scc_of[v.index()]] {
            return (p, p);
        }
        let dfg = &self.mdfg.dfg;
        let mut lo = 0u16;
        let mut hi = last;
        for e in dfg.pred_edges(v) {
            if self.mdfg.is_mem_edge(e.index()) {
                continue;
            }
            let src = dfg.edge(e).src;
            if src == v {
                continue;
            }
            if let Some(pu) = self.placed[src.index()] {
                lo = lo.max(layout.page_of(pu.pe).0);
            } else if let Some(p) = self.scc_page[self.scc_of[src.index()]] {
                // The producer is unplaced but its recurrence is already
                // pinned: it will end up on page `p`.
                lo = lo.max(p);
            }
        }
        for e in dfg.succ_edges(v) {
            if self.mdfg.is_mem_edge(e.index()) {
                continue;
            }
            let dst = dfg.edge(e).dst;
            if dst == v {
                continue;
            }
            if let Some(pw) = self.placed[dst.index()] {
                hi = hi.min(layout.page_of(pw.pe).0);
            } else if let Some(p) = self.scc_page[self.scc_of[dst.index()]] {
                hi = hi.min(p);
            }
        }
        (lo, hi)
    }

    /// Route one edge incident to a tentative placement of `v` at `cand`.
    /// Returns the plan, or `None` (recording the failure).
    fn route_edge(&mut self, edge_index: usize, v: NodeId, cand: Placement) -> Option<RoutePlan> {
        let e = self.mdfg.dfg.edge(cgra_dfg::EdgeId(edge_index as u32));
        let (pu, pv) = if e.src == e.dst {
            (cand, cand) // self-loop (accumulators)
        } else if e.src == v {
            (cand, self.placed[e.dst.index()].expect("dst placed"))
        } else {
            (self.placed[e.src.index()].expect("src placed"), cand)
        };
        let consume = pv.time as i64 + e.distance as i64 * self.ii as i64;
        if self.mdfg.is_mem_edge(edge_index) {
            // Timing only: load reads at `consume`, data visible t_u + 2.
            return if consume >= pu.time as i64 + 2 {
                Some(RoutePlan::Direct)
            } else {
                self.stats.edge_route_failures[edge_index] += 1;
                None
            };
        }
        let avail = pu.time + 1;
        if consume < avail as i64 || consume > u32::MAX as i64 {
            self.stats.edge_route_failures[edge_index] += 1;
            return None;
        }
        let req = RouteRequest {
            from_pe: pu.pe,
            avail,
            to_pe: pv.pe,
            deadline: consume as u32,
        };
        // Fanout sharing: committed routes of sibling edges from the same
        // producer already carry this value; later consumers may pick it
        // up at any of their landings.
        let sites: Vec<crate::route::ValueSite> = if self.mode.allows_waiting() {
            self.mdfg
                .dfg
                .succ_edges(e.src)
                .filter(|e2| e2.index() != edge_index && !self.mdfg.is_mem_edge(e2.index()))
                .filter_map(|e2| self.routes[e2.index()].as_ref())
                .flatten()
                .map(|h| (h.pe, h.time + 1))
                .collect()
        } else {
            Vec::new()
        };
        let plan = match self.mode {
            MapMode::Baseline => route_baseline(self.cgra.mesh(), &self.mrt, req, &sites),
            MapMode::Constrained => route_ring(
                self.cgra.mesh(),
                self.cgra.layout(),
                &self.mrt,
                req,
                self.opts.chain_budget,
                &sites,
            ),
            MapMode::ConstrainedStrict => route_strict(
                self.cgra.mesh(),
                self.cgra.layout(),
                &self.mrt,
                req,
                self.opts.chain_budget,
            ),
        };
        if plan.is_none() {
            self.stats.edge_route_failures[edge_index] += 1;
        }
        plan
    }

    /// Try to commit `v` at `cand`: reserve its slot, route and reserve
    /// every edge to already-placed neighbours. Rolls back on failure.
    fn try_commit(&mut self, v: NodeId, cand: Placement) -> bool {
        let op = self.mdfg.dfg.node(v).op;
        if !self.mrt.pe_free(cand.pe, cand.time as u64) {
            return false;
        }
        if op.is_mem() && !self.mrt.bus_free(cand.pe, cand.time as u64) {
            return false;
        }
        self.mrt.reserve(
            cand.pe,
            cand.time as u64,
            SlotUse::Compute(v.0),
            op.is_mem(),
        );

        let mut committed_edges: Vec<(usize, Vec<RouteHop>)> = Vec::new();
        let rollback = |attempt: &mut Self, committed: &[(usize, Vec<RouteHop>)]| {
            for (ei, hops) in committed {
                for h in hops {
                    attempt
                        .mrt
                        .release(h.pe, h.time as u64, SlotUse::Route(*ei as u32), false);
                }
                attempt.routes[*ei] = None;
            }
            attempt.mrt.release(
                cand.pe,
                cand.time as u64,
                SlotUse::Compute(v.0),
                op.is_mem(),
            );
        };

        // Collect incident edges whose counterpart is already placed.
        let incident: Vec<usize> = self
            .mdfg
            .dfg
            .pred_edges(v)
            .filter(|e| {
                self.placed[self.mdfg.dfg.edge(*e).src.index()].is_some()
                    || self.mdfg.dfg.edge(*e).src == v
            })
            .chain(self.mdfg.dfg.succ_edges(v).filter(|e| {
                let dst = self.mdfg.dfg.edge(*e).dst;
                dst != v && self.placed[dst.index()].is_some()
            }))
            .map(|e| e.index())
            .collect();

        for ei in incident {
            match self.route_edge(ei, v, cand) {
                Some(plan) => {
                    let hops = plan.hops().to_vec();
                    // Reserve hop slots; an intra-chain modulo alias is a
                    // commit failure (rare; the restart will re-roll).
                    let mut ok = true;
                    let mut done = 0;
                    for h in &hops {
                        if !self.mrt.pe_free(h.pe, h.time as u64) {
                            ok = false;
                            break;
                        }
                        self.mrt
                            .reserve(h.pe, h.time as u64, SlotUse::Route(ei as u32), false);
                        done += 1;
                    }
                    if !ok {
                        for h in hops.iter().take(done) {
                            self.mrt
                                .release(h.pe, h.time as u64, SlotUse::Route(ei as u32), false);
                        }
                        self.stats.edge_route_failures[ei] += 1;
                        rollback(self, &committed_edges);
                        return false;
                    }
                    self.routes[ei] = Some(hops.clone());
                    committed_edges.push((ei, hops));
                }
                None => {
                    rollback(self, &committed_edges);
                    return false;
                }
            }
        }
        self.placed[v.index()] = Some(cand);
        true
    }

    /// Place every node in `order`; `Err` carries the node that could
    /// not be placed (the backtrack point).
    fn run(&mut self, order: &[NodeId], asap: &[u32], rng: &mut StdRng) -> Result<(), NodeId> {
        for &v in order {
            if !self.place_node(v, asap, rng) {
                // Opt-in diagnostics for mapper tuning.
                if std::env::var_os("CGRA_MAPPER_DEBUG").is_some() {
                    let (plo, phi) = self.page_bounds(v);
                    eprintln!(
                        "[mapper] ii={} failed at {} ({:?}) asap={} pages=[{},{}]",
                        self.ii,
                        v,
                        self.mdfg.dfg.node(v).op,
                        asap[v.index()],
                        plo,
                        phi
                    );
                    for e in self.mdfg.dfg.pred_edges(v) {
                        let src = self.mdfg.dfg.edge(e).src;
                        if let Some(p) = self.placed[src.index()] {
                            eprintln!(
                                "[mapper]   pred {} ({:?}) at ({}, t{}) page {}",
                                src,
                                self.mdfg.dfg.node(src).op,
                                p.pe,
                                p.time,
                                self.cgra.layout().page_of(p.pe)
                            );
                        }
                    }
                }
                return Err(v);
            }
        }
        Ok(())
    }

    /// How many pages the kernel actually needs: enough PE slots for all
    /// ops, and enough tile rows that memory ops do not saturate the row
    /// buses within one II window.
    fn used_pages_estimate(&self) -> u16 {
        let layout = self.cgra.layout();
        let total = layout.num_pages();
        let shape = layout.shape();
        let ii = self.ii as usize;
        let nodes = self.mdfg.dfg.num_nodes();
        let pages_for_ops = nodes.div_ceil(ii * shape.size());
        let pages_per_tile_row = (self.cgra.mesh().cols() / shape.w) as usize;
        let mem_slots_per_tile_row =
            ii * shape.h as usize * self.cgra.mem().buses_per_row() as usize;
        let mem_ops = self.mdfg.dfg.num_mem_ops();
        let pages_for_mem = mem_ops.div_ceil(mem_slots_per_tile_row.max(1)) * pages_per_tile_row;
        pages_for_ops.max(pages_for_mem).max(1).min(total) as u16
    }

    /// The page a node would ideally sit on: proportional to its ASAP
    /// depth across the pages the kernel needs, so dataflow sweeps the
    /// ring as a wavefront with small per-edge page advances while still
    /// spreading memory ops over enough tile rows.
    fn target_page(&self, v: NodeId, asap: &[u32], used_pages: u16) -> u16 {
        let max_asap = asap.iter().copied().max().unwrap_or(0).max(1);
        ((asap[v.index()] as u64 * (used_pages as u64 - 1)) / max_asap as u64) as u16
    }

    fn place_node(&mut self, v: NodeId, asap: &[u32], rng: &mut StdRng) -> bool {
        let dfg = &self.mdfg.dfg;
        let ii = self.ii as i64;

        // Time window from placed neighbours.
        let mut lo = asap[v.index()] as i64;
        let mut hi = i64::MAX;
        for e in dfg.pred_edges(v) {
            let edge = dfg.edge(e);
            if let Some(pu) = self.placed[edge.src.index()] {
                lo = lo.max(
                    pu.time as i64 + edge_latency(self.mdfg, e.index()) - ii * edge.distance as i64,
                );
            }
        }
        for e in dfg.succ_edges(v) {
            let edge = dfg.edge(e);
            if edge.dst == v {
                continue;
            }
            if let Some(pw) = self.placed[edge.dst.index()] {
                hi = hi.min(
                    pw.time as i64 - edge_latency(self.mdfg, e.index()) + ii * edge.distance as i64,
                );
            }
        }
        lo = lo.max(0);
        if hi < lo {
            return false;
        }
        let hi_window = hi.min(lo + 2 * ii - 1);

        // Candidate PEs: within the legal page range, ordered by page
        // (earliest legal page first — compact forward flow), then by
        // mesh affinity to placed neighbours.
        let (page_lo, page_hi) = self.page_bounds(v);
        if page_hi < page_lo {
            return false;
        }
        let neighbour_pes: Vec<cgra_arch::PeId> = dfg
            .pred_edges(v)
            .map(|e| dfg.edge(e).src)
            .chain(dfg.succ_edges(v).map(|e| dfg.edge(e).dst))
            .filter(|&n| n != v)
            .filter_map(|n| self.placed[n.index()].map(|p| p.pe))
            .collect();
        let mesh = self.cgra.mesh();
        let layout = self.cgra.layout();
        let pes: Vec<(u16, u32, cgra_arch::PeId)> = mesh
            .pes()
            .filter(|&pe| {
                let p = layout.page_of(pe).0;
                (page_lo..=page_hi).contains(&p)
            })
            .map(|pe| {
                let affinity: u32 = neighbour_pes.iter().map(|&np| mesh.distance(pe, np)).sum();
                // Ring modes flow forward as a wavefront: prefer pages
                // near the ASAP-proportional target. Baseline placement is
                // page-agnostic (affinity only).
                let page_key = if self.mode.ring_constrained() {
                    let used = self.used_pages_estimate();
                    let target = self.target_page(v, asap, used).clamp(page_lo, page_hi);
                    layout.page_of(pe).0.abs_diff(target)
                } else {
                    0
                };
                (page_key, affinity + rng.gen_range(0..3), pe)
            })
            .collect();
        // Candidate order. For *source* ops (no placed producers — loads,
        // constants) the best page comes first: time-major ordering would
        // exhaust each row bus's slot 0 across the whole array, scattering
        // co-consumed loads onto far pages. For ops with placed producers
        // the earliest time comes first (tight schedules), with the page
        // preference breaking ties.
        let has_placed_pred = dfg.pred_edges(v).any(|e| {
            let src = dfg.edge(e).src;
            src != v && self.placed[src.index()].is_some() && !self.mdfg.is_mem_edge(e.index())
        }) || self.time_major;
        let mut candidates: Vec<(u64, cgra_arch::PeId, i64)> = Vec::new();
        for t in lo..=hi_window {
            for &(page_key, aff, pe) in &pes {
                let key = if has_placed_pred {
                    ((t - lo) as u64) << 32 | (page_key as u64) << 16 | aff as u64
                } else {
                    (page_key as u64) << 32 | ((t - lo) as u64) << 16 | aff as u64
                };
                candidates.push((key, pe, t));
            }
        }
        candidates.sort_unstable();

        for &(_, pe, t) in &candidates {
            let cand = Placement { pe, time: t as u32 };
            if self.try_commit(v, cand) {
                if self.mode.ring_constrained() {
                    self.scc_page[self.scc_of[v.index()]] = Some(layout.page_of(pe).0);
                }
                return true;
            }
        }
        false
    }
}

/// Outcome of [`schedule`]: a mapping plus the failure statistics of the
/// unsuccessful attempts (for spill selection).
pub struct ScheduleOutcome {
    /// The mapping, if one was found.
    pub mapping: Result<Mapping, MapError>,
    /// Accumulated routing-failure counts per edge.
    pub stats: FailureStats,
}

/// Search for a modulo schedule of `mdfg` on `cgra` under `mode`, between
/// the MII and `mii + opts.max_ii_slack`.
pub fn schedule(
    mdfg: &MapDfg,
    cgra: &CgraConfig,
    mode: MapMode,
    opts: &MapOptions,
) -> ScheduleOutcome {
    schedule_from(mdfg, cgra, mode, opts, None)
}

/// Like [`schedule`] but starting the II search at `start_ii` (used by the
/// constrained mapper to hold II fixed across spill rounds).
pub fn schedule_from(
    mdfg: &MapDfg,
    cgra: &CgraConfig,
    mode: MapMode,
    opts: &MapOptions,
    start_ii: Option<u32>,
) -> ScheduleOutcome {
    schedule_from_traced(mdfg, cgra, mode, opts, start_ii, &Tracer::off())
}

/// Like [`schedule_from`], emitting the search's decisions — begin,
/// backtracks, validator evictions, final placements/routes, end — to
/// `tracer`. With the tracer off this *is* [`schedule_from`]: events are
/// never constructed.
pub fn schedule_from_traced(
    mdfg: &MapDfg,
    cgra: &CgraConfig,
    mode: MapMode,
    opts: &MapOptions,
    start_ii: Option<u32>,
    tracer: &Tracer,
) -> ScheduleOutcome {
    tracer.emit(|| TraceEvent::MapBegin {
        kernel: mdfg.dfg.name.clone(),
        ops: mdfg.dfg.num_nodes() as u32,
        mode: format!("{mode:?}"),
    });
    let mii = mii_with_mem(mdfg, cgra);
    let lo = start_ii.unwrap_or(mii).max(mii);
    let hi = mii + opts.max_ii_slack;
    let mut stats = FailureStats {
        edge_route_failures: vec![0; mdfg.dfg.num_edges()],
    };
    let heights = cgra_dfg::analysis::heights(&mdfg.dfg);

    for ii in lo..=hi {
        let Some(asap) = asap_with_mem(mdfg, ii) else {
            continue;
        };
        // Height-first order (ties by ASAP then id), jittered per restart.
        for restart in 0..opts.restarts {
            let mut rng = StdRng::seed_from_u64(opts.seed ^ (ii as u64) << 32 ^ restart as u64);
            let mut order: Vec<NodeId> = mdfg.dfg.node_ids().collect();
            let jitter: Vec<u32> = order
                .iter()
                .map(|_| if restart == 0 { 0 } else { rng.gen_range(0..3) })
                .collect();
            // ASAP-primary keeps producers ahead of their intra-iteration
            // consumers (a consumer placed first would box its producers
            // into a tiny time window); height breaks ties toward the
            // critical path, jittered across restarts for diversity.
            order.sort_by_key(|n| {
                (
                    asap[n.index()],
                    std::cmp::Reverse(heights[n.index()] + jitter[n.index()]),
                    n.0,
                )
            });
            let mut attempt = Attempt::new(mdfg, cgra, mode, ii, opts);
            // Alternate candidate-ordering strategy across restarts: some
            // kernels pack better page-major (bus-heavy), others
            // time-major (dependence-heavy).
            attempt.time_major = restart % 2 == 1;
            match attempt.run(&order, &asap, &mut rng) {
                Ok(()) => {
                    let mapping = Mapping {
                        ii,
                        placements: attempt
                            .placed
                            .into_iter()
                            .map(|p| p.expect("all nodes placed on success"))
                            .collect(),
                        routes: attempt
                            .routes
                            .into_iter()
                            .map(|r| r.unwrap_or_default())
                            .collect(),
                    };
                    // Acceptance gate: the engine does not track RF pressure
                    // incrementally (waiting values accumulate per PE), so a
                    // "successful" attempt can still overflow a register
                    // file. Re-check everything with the independent
                    // validator; on failure, roll the dice again.
                    let violations = crate::mapping::validate_mapping(mdfg, cgra, &mapping, mode);
                    if violations.is_empty() {
                        if tracer.is_on() {
                            let layout = cgra.layout();
                            for (op, p) in mapping.placements.iter().enumerate() {
                                tracer.emit(|| TraceEvent::Place {
                                    op: op as u32,
                                    pe: p.pe.0 as u32,
                                    page: layout.page_of(p.pe).0,
                                    time: p.time,
                                });
                            }
                            for (edge, hops) in mapping.routes.iter().enumerate() {
                                if !hops.is_empty() {
                                    tracer.emit(|| TraceEvent::Route {
                                        edge: edge as u32,
                                        hops: hops.len() as u32,
                                    });
                                }
                            }
                        }
                        tracer.emit(|| TraceEvent::MapEnd {
                            kernel: mdfg.dfg.name.clone(),
                            ii,
                            success: true,
                        });
                        return ScheduleOutcome {
                            mapping: Ok(mapping),
                            stats,
                        };
                    }
                    tracer.emit(|| TraceEvent::Evict {
                        ii,
                        restart,
                        violations: violations.len() as u32,
                    });
                    if std::env::var_os("CGRA_MAPPER_DEBUG").is_some() {
                        eprintln!(
                            "[mapper] ii={ii} restart {restart}: attempt rejected: {violations:?}"
                        );
                    }
                }
                Err(failed) => {
                    tracer.emit(|| TraceEvent::Backtrack {
                        ii,
                        restart,
                        op: failed.0,
                    });
                }
            }
            for (a, b) in stats
                .edge_route_failures
                .iter_mut()
                .zip(&attempt.stats.edge_route_failures)
            {
                *a += *b;
            }
        }
        if start_ii.is_some() {
            // Spill-round mode: caller controls the II ladder.
            break;
        }
    }
    tracer.emit(|| TraceEvent::MapEnd {
        kernel: mdfg.dfg.name.clone(),
        ii: hi,
        success: false,
    });
    ScheduleOutcome {
        mapping: Err(MapError::NoScheduleFound {
            mii,
            max_ii_tried: hi,
        }),
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::validate_mapping;
    use cgra_dfg::{DfgBuilder, OpKind};

    fn chain3() -> MapDfg {
        let mut b = DfgBuilder::new("chain");
        let x = b.node(OpKind::Load);
        let y = b.apply(OpKind::Add, &[x]);
        b.apply(OpKind::Store, &[y]);
        MapDfg::unspilled(&b.build().unwrap())
    }

    #[test]
    fn asap_with_mem_adds_store_latency() {
        let mut b = DfgBuilder::new("m");
        let u = b.node(OpKind::Load);
        let v = b.apply(OpKind::Add, &[u]);
        b.apply(OpKind::Store, &[v]);
        let g = b.build().unwrap();
        let spilled = MapDfg::with_spills(&g, &std::collections::BTreeSet::from([0]));
        let plain = asap_with_mem(&MapDfg::unspilled(&g), 4).unwrap();
        let aug = asap_with_mem(&spilled, 4).unwrap();
        // In the spilled graph, `v` starts at least 4 cycles after `u`
        // (1 store + 2 mem + 1 load) instead of 1.
        assert_eq!(plain[1] - plain[0], 1);
        assert!(aug[1] >= aug[0] + 4);
    }

    #[test]
    fn schedules_simple_chain_at_ii_one() {
        let mdfg = chain3();
        let cgra = cgra_arch::CgraConfig::square(4);
        let out = schedule(&mdfg, &cgra, MapMode::Baseline, &MapOptions::default());
        let m = out.mapping.expect("chain maps");
        assert_eq!(m.ii, 1);
        assert!(validate_mapping(&mdfg, &cgra, &m, MapMode::Baseline).is_empty());
    }

    #[test]
    fn constrained_schedules_simple_chain() {
        let mdfg = chain3();
        let cgra = cgra_arch::CgraConfig::square(4);
        let out = schedule(&mdfg, &cgra, MapMode::Constrained, &MapOptions::default());
        let m = out.mapping.expect("chain maps under constraints");
        assert!(validate_mapping(&mdfg, &cgra, &m, MapMode::Constrained).is_empty());
    }

    #[test]
    fn respects_rec_mii() {
        let mut b = DfgBuilder::new("rec");
        let a = b.node(OpKind::Add);
        let c = b.apply(OpKind::Add, &[a]);
        let d = b.apply(OpKind::Add, &[c]);
        b.carried_edge(d, a, 1);
        let mdfg = MapDfg::unspilled(&b.build().unwrap());
        let cgra = cgra_arch::CgraConfig::square(4);
        let out = schedule(&mdfg, &cgra, MapMode::Baseline, &MapOptions::default());
        let m = out.mapping.expect("recurrent kernel maps");
        assert!(m.ii >= 3);
        assert!(validate_mapping(&mdfg, &cgra, &m, MapMode::Baseline).is_empty());
    }

    #[test]
    fn too_many_nodes_raise_ii() {
        // 20 independent const nodes on a 4x4: ResMII = 2.
        let mut b = DfgBuilder::new("wide");
        let mut prev = b.node(OpKind::Load);
        for _ in 0..18 {
            prev = b.apply(OpKind::Add, &[prev]);
        }
        b.apply(OpKind::Store, &[prev]);
        let mdfg = MapDfg::unspilled(&b.build().unwrap());
        let cgra = cgra_arch::CgraConfig::square(4);
        let out = schedule(&mdfg, &cgra, MapMode::Baseline, &MapOptions::default());
        let m = out.mapping.expect("deep chain maps");
        assert!(m.ii >= 2);
        assert!(validate_mapping(&mdfg, &cgra, &m, MapMode::Baseline).is_empty());
    }
}
