//! # cgra-mapper — modulo-scheduling CGRA mappers
//!
//! Maps loop-kernel DFGs onto a CGRA: joint scheduling, placement, and
//! operand routing, minimising the initiation interval (II). Three entry
//! points:
//!
//! * [`map_baseline`] — conventional mapping (the paper's unmodified
//!   compiler): RF parking allowed, routing unconstrained.
//! * [`map_constrained`] — the paper's §VI-B compile-time constraints:
//!   ring-topology page dataflow and memory spilling of long-lived
//!   temporaries, producing schedules the PageMaster transformation can
//!   reshape at runtime.
//! * [`map_anneal`] — a DRESC-style simulated-annealing mapper, the slow
//!   second baseline.
//!
//! Every mapping can be re-checked from scratch with
//! [`validate_mapping`]; nothing downstream trusts the search engine.
//!
//! ```
//! use cgra_arch::CgraConfig;
//! use cgra_mapper::{map_baseline, map_constrained, MapOptions};
//!
//! let cgra = CgraConfig::square(4);
//! let kernel = cgra_dfg::kernels::mpeg2();
//! let base = map_baseline(&kernel, &cgra, &MapOptions::default()).unwrap();
//! let paged = map_constrained(&kernel, &cgra, &MapOptions::default()).unwrap();
//! assert!(paged.ii() >= base.ii());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod anneal;
pub mod bitstream;
pub mod constrained;
pub mod ems;
pub mod engine;
pub mod error;
pub mod mapping;
pub mod mrt;
pub mod opts;
pub mod route;
pub mod spill;

pub use anneal::{map_anneal, AnnealOptions};
pub use bitstream::{encode as encode_config, ConfigImage, Instr, OperandSrc};
pub use constrained::{map_constrained, map_constrained_strict, map_constrained_traced};
pub use ems::{kernel_mii, map_baseline, map_baseline_traced, MapResult};
pub use error::MapError;
pub use mapping::{validate_mapping, MapMode, Mapping, Placement, RouteHop, Violation};
pub use opts::MapOptions;
pub use spill::MapDfg;
