//! # cgra-obs — observability for the CGRA workspace
//!
//! A zero-cost-when-off trace/metrics layer shared by `cgra-mapper`,
//! `cgra-core`, `cgra-sim` and `cgra-bench`:
//!
//! * [`event::TraceEvent`] — typed events covering the mapper search
//!   (place / evict / backtrack / route), the PageMaster transform
//!   (begin / end with page geometry), and the multithreaded simulator
//!   (queue / start / shrink / expand / fault / revoke).
//! * [`sink::TraceSink`] — the sink trait, with ring-buffer
//!   ([`sink::RingSink`]), JSONL-writer ([`sink::JsonlSink`]) and
//!   counting ([`metrics::MetricsSink`]) implementations, plus the
//!   [`sink::Tracer`] handle that producers thread through their entry
//!   points. A disabled tracer never constructs an event (the closure
//!   passed to [`sink::Tracer::emit`] is simply not called), so traced
//!   code paths cost one branch when tracing is off.
//! * [`metrics::Metrics`] — monotonic counters and log₂ cycle
//!   histograms in the style of the simulator's `stats` structs.
//! * [`oracle`] — a replay checker that consumes a trace and asserts
//!   invariants end-state diffs cannot see: every revoked page was
//!   previously owned, thread cycle accounting sums to the reported
//!   makespan, and no pages are handed to a thread after their death
//!   event.
//! * [`jsonio`] — the workspace's offline JSON codec (moved here from
//!   `cgra-bench`, which re-exports it), used both for JSONL traces and
//!   the on-disk mapping cache.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod event;
pub mod jsonio;
pub mod metrics;
pub mod oracle;
pub mod sink;

pub use event::TraceEvent;
pub use metrics::{CycleHisto, Metrics, MetricsSink};
pub use oracle::{check_trace, OracleError, OracleReport};
pub use sink::{JsonlSink, RingSink, TeeSink, TraceSink, Tracer};
