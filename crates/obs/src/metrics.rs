//! Lightweight metrics over a trace: monotonic counters plus log₂
//! cycle histograms, in the style of the simulator's `stats` structs.

use crate::event::TraceEvent;
use crate::sink::TraceSink;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;

/// A log₂-bucketed histogram of cycle counts.
///
/// Bucket `k` holds values in `[2^(k-1), 2^k)` (bucket 0 holds zero),
/// which is plenty of resolution for "where did the cycles go" while
/// staying a fixed-size struct.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleHisto {
    buckets: [u64; 65],
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
}

impl Default for CycleHisto {
    fn default() -> Self {
        CycleHisto {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl CycleHisto {
    /// Record one value.
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Occupied buckets as `(lower_bound, count)`, smallest first.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(k, &n)| (if k == 0 { 0 } else { 1u64 << (k - 1) }, n))
            .collect()
    }
}

/// Counters and histograms accumulated from a trace.
///
/// Counters are keyed by [`TraceEvent::kind`]; the histograms time the
/// two intervals that dominate multithreaded behaviour — how long a
/// thread waits in the queue before being granted pages, and how long
/// each kernel segment holds the fabric.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    /// Total events seen.
    pub events: u64,
    /// Per-event-kind monotonic counters.
    pub counts: BTreeMap<&'static str, u64>,
    /// Queue→start wait per thread admission, in cycles.
    pub queue_wait: CycleHisto,
    /// Start→finish duration per kernel segment, in cycles.
    pub segment_cycles: CycleHisto,
    queued_at: BTreeMap<u32, u64>,
    started_at: BTreeMap<u32, u64>,
}

impl Metrics {
    /// Fold one event into the counters and histograms.
    pub fn absorb(&mut self, ev: &TraceEvent) {
        self.events += 1;
        *self.counts.entry(ev.kind()).or_insert(0) += 1;
        match *ev {
            TraceEvent::SimBegin { .. } => {
                // Interval state is per run; a new run resets it.
                self.queued_at.clear();
                self.started_at.clear();
            }
            TraceEvent::ThreadQueue { time, thread, .. } => {
                self.queued_at.insert(thread, time);
            }
            TraceEvent::ThreadStart { time, thread, .. } => {
                if let Some(q) = self.queued_at.remove(&thread) {
                    self.queue_wait.record(time.saturating_sub(q));
                }
                self.started_at.insert(thread, time);
            }
            TraceEvent::ThreadFinish { time, thread, .. } => {
                if let Some(s) = self.started_at.remove(&thread) {
                    self.segment_cycles.record(time.saturating_sub(s));
                }
            }
            _ => {}
        }
    }

    /// Render a deterministic plain-text report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "events: {}", self.events);
        for (kind, n) in &self.counts {
            let _ = writeln!(out, "  {kind:>16}: {n}");
        }
        render_histo(&mut out, "queue_wait", &self.queue_wait);
        render_histo(&mut out, "segment_cycles", &self.segment_cycles);
        out
    }
}

fn render_histo(out: &mut String, name: &str, h: &CycleHisto) {
    let _ = writeln!(
        out,
        "{name}: count {} mean {} max {}",
        h.count,
        h.mean(),
        h.max
    );
    for (lo, n) in h.nonzero_buckets() {
        let _ = writeln!(out, "  >= {lo:>12}: {n}");
    }
}

/// The counting [`TraceSink`]: accumulates [`Metrics`] from every
/// recorded event.
#[derive(Debug, Default)]
pub struct MetricsSink {
    inner: Mutex<Metrics>,
}

impl MetricsSink {
    /// An empty metrics accumulator.
    pub fn new() -> Self {
        MetricsSink::default()
    }

    /// A copy of the metrics accumulated so far.
    pub fn snapshot(&self) -> Metrics {
        self.inner.lock().expect("metrics poisoned").clone()
    }

    /// Render the accumulated metrics report.
    pub fn render(&self) -> String {
        self.inner.lock().expect("metrics poisoned").render()
    }
}

impl TraceSink for MetricsSink {
    fn record(&self, ev: TraceEvent) {
        self.inner.lock().expect("metrics poisoned").absorb(&ev);
    }

    fn record_batch(&self, evs: Vec<TraceEvent>) {
        let mut inner = self.inner.lock().expect("metrics poisoned");
        for ev in &evs {
            inner.absorb(ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histo_buckets_are_log2() {
        let mut h = CycleHisto::default();
        for v in [0, 1, 2, 3, 4, 1024] {
            h.record(v);
        }
        assert_eq!(h.count, 6);
        assert_eq!(h.max, 1024);
        assert_eq!(h.mean(), 1034 / 6);
        assert_eq!(
            h.nonzero_buckets(),
            vec![(0, 1), (1, 1), (2, 2), (4, 1), (1024, 1)]
        );
    }

    #[test]
    fn metrics_counts_and_intervals() {
        let sink = MetricsSink::new();
        sink.record(TraceEvent::SimBegin {
            threads: 1,
            pages: 4,
        });
        sink.record(TraceEvent::ThreadQueue {
            time: 10,
            thread: 0,
            kernel: 0,
        });
        sink.record(TraceEvent::ThreadStart {
            time: 25,
            thread: 0,
            kernel: 0,
            pages: vec![0],
        });
        sink.record(TraceEvent::ThreadFinish {
            time: 125,
            thread: 0,
            freed: 1,
        });
        let m = sink.snapshot();
        assert_eq!(m.events, 4);
        assert_eq!(m.counts["thread_start"], 1);
        assert_eq!(m.queue_wait.sum, 15);
        assert_eq!(m.segment_cycles.sum, 100);
        let report = sink.render();
        assert!(report.contains("thread_queue"), "{report}");
        assert!(
            report.contains("queue_wait: count 1 mean 15 max 15"),
            "{report}"
        );
    }

    #[test]
    fn render_is_deterministic() {
        let sink = MetricsSink::new();
        for t in 0..5 {
            sink.record(TraceEvent::ThreadDone { time: t, thread: 0 });
        }
        assert_eq!(sink.render(), sink.snapshot().render());
    }
}
