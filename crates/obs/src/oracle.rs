//! The trace oracle: a replay checker that consumes an event stream
//! and asserts invariants the end-state diffs cannot see.
//!
//! The simulator's reports say *how long* a run took; the oracle checks
//! that the decisions along the way were legal:
//!
//! * every revoked page was owned by the revoked thread at that moment,
//! * no two threads ever hold the same page,
//! * no page is handed to a thread after its death event (a
//!   `PageRepaired` event lifts the ban: repair returns the page to the
//!   grantable pool, and ownership exclusivity must hold across the
//!   repair),
//! * per-thread cycle accounting sums to the reported makespan (the
//!   last `ThreadDone` must land exactly on `SimEnd.makespan`, and
//!   every thread must check out),
//! * event times within a run never go backwards,
//! * every run that begins either completes (`SimEnd`) or aborts
//!   (`SimAbort`), and
//! * mapper/transform segments are well-formed (an accepted mapping has
//!   placements; ends match begins).
//!
//! [`check_trace`] walks the stream once and returns the first
//! violation, pinpointed by event index.

use crate::event::TraceEvent;
use cgra_arch::FaultKind;
use std::collections::{BTreeMap, BTreeSet};

/// Everything the oracle verified, for reporting and test assertions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OracleReport {
    /// Total events checked.
    pub events: usize,
    /// Simulation runs that completed (`SimEnd`).
    pub runs: usize,
    /// Simulation runs that terminated early (`SimAbort`).
    pub aborted_runs: usize,
    /// Mapper search segments (`MapBegin`..`MapEnd`).
    pub map_segments: usize,
    /// Completed transform segments (`TransformBegin`..`TransformEnd`).
    pub transforms: usize,
}

/// An invariant violation, pinpointed by the 0-based index of the
/// offending event in the checked stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OracleError {
    /// A `Revoke` named a page its thread did not hold.
    RevokeWithoutOwnership {
        /// Offending event index.
        index: usize,
        /// The revoked thread.
        thread: u32,
        /// The page it allegedly lost.
        page: u16,
    },
    /// A page was granted to a thread while another still held it.
    DoubleOwnership {
        /// Offending event index.
        index: usize,
        /// The contested page.
        page: u16,
        /// Who holds it.
        owner: u32,
        /// Who was just granted it.
        claimant: u32,
    },
    /// A page appeared in a grant after its `Kill` fault.
    DeadPageAllocated {
        /// Offending event index.
        index: usize,
        /// The thread that received the dead page.
        thread: u32,
        /// The dead page.
        page: u16,
    },
    /// `SimEnd.makespan` disagrees with the last `ThreadDone` time.
    MakespanMismatch {
        /// Offending event index (the `SimEnd`).
        index: usize,
        /// Makespan the run reported.
        reported: u64,
        /// Makespan accounted from `ThreadDone` events.
        accounted: u64,
    },
    /// A run ended with fewer `ThreadDone` events than threads.
    ThreadsUnaccounted {
        /// Offending event index (the `SimEnd`).
        index: usize,
        /// Threads declared by `SimBegin`.
        expected: u32,
        /// Threads that reached `ThreadDone`.
        done: u32,
    },
    /// An event's time went backwards within a run.
    NonMonotonicTime {
        /// Offending event index.
        index: usize,
        /// Time of the preceding event.
        prev: u64,
        /// This event's (earlier) time.
        time: u64,
    },
    /// A simulation event appeared outside any `SimBegin` segment.
    EventOutsideRun {
        /// Offending event index.
        index: usize,
        /// The event's tag.
        kind: &'static str,
    },
    /// A `SimBegin` opened while the previous run was still open, or
    /// the trace ended mid-run.
    MissingSimEnd {
        /// Index of the unclosed `SimBegin`.
        index: usize,
    },
    /// A mapper event appeared outside any `MapBegin` segment.
    MapEventOutsideSegment {
        /// Offending event index.
        index: usize,
        /// The event's tag.
        kind: &'static str,
    },
    /// A `MapEnd` did not match the open segment's kernel.
    MapEndWithoutBegin {
        /// Offending event index.
        index: usize,
        /// Kernel the `MapEnd` named.
        kernel: String,
    },
    /// A successful `MapEnd` with no `Place` events in its segment.
    SuccessWithoutPlacements {
        /// Offending event index.
        index: usize,
        /// The kernel.
        kernel: String,
    },
    /// A `TransformEnd` with no matching open `TransformBegin`.
    TransformEndWithoutBegin {
        /// Offending event index.
        index: usize,
        /// The kernel.
        kernel: String,
        /// Target page count.
        m: u16,
    },
}

impl std::fmt::Display for OracleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OracleError::RevokeWithoutOwnership {
                index,
                thread,
                page,
            } => write!(
                f,
                "event {index}: revoked page {page} from thread {thread}, which does not hold it"
            ),
            OracleError::DoubleOwnership {
                index,
                page,
                owner,
                claimant,
            } => write!(
                f,
                "event {index}: page {page} granted to thread {claimant} while thread {owner} holds it"
            ),
            OracleError::DeadPageAllocated {
                index,
                thread,
                page,
            } => write!(
                f,
                "event {index}: dead page {page} granted to thread {thread} after its kill fault"
            ),
            OracleError::MakespanMismatch {
                index,
                reported,
                accounted,
            } => write!(
                f,
                "event {index}: reported makespan {reported} but thread completions account for {accounted}"
            ),
            OracleError::ThreadsUnaccounted {
                index,
                expected,
                done,
            } => write!(
                f,
                "event {index}: run declared {expected} threads but only {done} reached ThreadDone"
            ),
            OracleError::NonMonotonicTime { index, prev, time } => write!(
                f,
                "event {index}: time {time} precedes earlier event at {prev}"
            ),
            OracleError::EventOutsideRun { index, kind } => {
                write!(f, "event {index}: {kind} outside any SimBegin segment")
            }
            OracleError::MissingSimEnd { index } => {
                write!(f, "run opened at event {index} never reached SimEnd/SimAbort")
            }
            OracleError::MapEventOutsideSegment { index, kind } => {
                write!(f, "event {index}: {kind} outside any MapBegin segment")
            }
            OracleError::MapEndWithoutBegin { index, kernel } => {
                write!(f, "event {index}: MapEnd for {kernel:?} without a MapBegin")
            }
            OracleError::SuccessWithoutPlacements { index, kernel } => write!(
                f,
                "event {index}: MapEnd for {kernel:?} claims success but placed nothing"
            ),
            OracleError::TransformEndWithoutBegin { index, kernel, m } => write!(
                f,
                "event {index}: TransformEnd for {kernel:?} at m={m} without a TransformBegin"
            ),
        }
    }
}

impl std::error::Error for OracleError {}

/// Per-run replay state.
struct RunState {
    begin_index: usize,
    threads: u32,
    owner: BTreeMap<u16, u32>,
    held: BTreeMap<u32, Vec<u16>>,
    dead: BTreeSet<u16>,
    last_time: u64,
    last_done: u64,
    done_count: u32,
}

impl RunState {
    fn new(begin_index: usize, threads: u32) -> Self {
        RunState {
            begin_index,
            threads,
            owner: BTreeMap::new(),
            held: BTreeMap::new(),
            dead: BTreeSet::new(),
            last_time: 0,
            last_done: 0,
            done_count: 0,
        }
    }

    fn clock(&mut self, index: usize, time: u64) -> Result<(), OracleError> {
        if time < self.last_time {
            return Err(OracleError::NonMonotonicTime {
                index,
                prev: self.last_time,
                time,
            });
        }
        self.last_time = time;
        Ok(())
    }

    fn release(&mut self, thread: u32) {
        for page in self.held.remove(&thread).unwrap_or_default() {
            self.owner.remove(&page);
        }
    }

    /// Replace `thread`'s holding with `pages`, checking liveness and
    /// exclusivity of every granted page.
    fn claim(&mut self, index: usize, thread: u32, pages: &[u16]) -> Result<(), OracleError> {
        self.release(thread);
        for &page in pages {
            if self.dead.contains(&page) {
                return Err(OracleError::DeadPageAllocated {
                    index,
                    thread,
                    page,
                });
            }
            if let Some(&owner) = self.owner.get(&page) {
                return Err(OracleError::DoubleOwnership {
                    index,
                    page,
                    owner,
                    claimant: thread,
                });
            }
            self.owner.insert(page, thread);
        }
        self.held.insert(thread, pages.to_vec());
        Ok(())
    }
}

/// Replay a trace and verify every invariant; returns the first
/// violation, or a summary of everything checked.
pub fn check_trace(events: &[TraceEvent]) -> Result<OracleReport, OracleError> {
    let mut report = OracleReport {
        events: events.len(),
        ..OracleReport::default()
    };
    let mut run: Option<RunState> = None;
    // Open mapper segment: (kernel, placements seen so far).
    let mut map_open: Option<(String, u32)> = None;
    // Open transform begins, keyed by (kernel, m).
    let mut transforms_open: BTreeMap<(String, u16), u32> = BTreeMap::new();

    for (index, ev) in events.iter().enumerate() {
        match ev {
            // ---- mapper segments --------------------------------------
            TraceEvent::MapBegin { kernel, .. } => {
                // Segments never nest; an unfinished one (mapper error
                // path) is simply superseded.
                map_open = Some((kernel.clone(), 0));
            }
            TraceEvent::Backtrack { .. } | TraceEvent::Evict { .. } | TraceEvent::Route { .. } => {
                if map_open.is_none() {
                    return Err(OracleError::MapEventOutsideSegment {
                        index,
                        kind: ev.kind(),
                    });
                }
            }
            TraceEvent::Place { .. } => match map_open.as_mut() {
                Some((_, places)) => *places += 1,
                None => {
                    return Err(OracleError::MapEventOutsideSegment {
                        index,
                        kind: ev.kind(),
                    })
                }
            },
            TraceEvent::MapEnd {
                kernel, success, ..
            } => match map_open.take() {
                Some((open_kernel, places)) if open_kernel == *kernel => {
                    if *success && places == 0 {
                        return Err(OracleError::SuccessWithoutPlacements {
                            index,
                            kernel: kernel.clone(),
                        });
                    }
                    report.map_segments += 1;
                }
                _ => {
                    return Err(OracleError::MapEndWithoutBegin {
                        index,
                        kernel: kernel.clone(),
                    })
                }
            },

            // ---- transform segments -----------------------------------
            TraceEvent::TransformBegin { kernel, m, .. } => {
                *transforms_open.entry((kernel.clone(), *m)).or_insert(0) += 1;
            }
            TraceEvent::TransformEnd { kernel, m, .. } => {
                match transforms_open.get_mut(&(kernel.clone(), *m)) {
                    Some(n) if *n > 0 => {
                        *n -= 1;
                        report.transforms += 1;
                    }
                    _ => {
                        return Err(OracleError::TransformEndWithoutBegin {
                            index,
                            kernel: kernel.clone(),
                            m: *m,
                        })
                    }
                }
            }

            // ---- simulation runs --------------------------------------
            TraceEvent::SimBegin { threads, .. } => {
                if let Some(open) = &run {
                    return Err(OracleError::MissingSimEnd {
                        index: open.begin_index,
                    });
                }
                run = Some(RunState::new(index, *threads));
            }
            TraceEvent::ThreadQueue { time, .. } => {
                let state = open_run(&mut run, index, ev)?;
                state.clock(index, *time)?;
            }
            TraceEvent::ThreadStart {
                time,
                thread,
                pages,
                ..
            } => {
                let state = open_run(&mut run, index, ev)?;
                state.clock(index, *time)?;
                state.claim(index, *thread, pages)?;
            }
            TraceEvent::ThreadShrink {
                time,
                thread,
                pages,
                ..
            }
            | TraceEvent::ThreadExpand {
                time,
                thread,
                pages,
                ..
            }
            | TraceEvent::Reexpanded {
                time,
                thread,
                pages,
                ..
            } => {
                let state = open_run(&mut run, index, ev)?;
                state.clock(index, *time)?;
                state.claim(index, *thread, pages)?;
            }
            TraceEvent::ThreadFinish { time, thread, .. } => {
                let state = open_run(&mut run, index, ev)?;
                state.clock(index, *time)?;
                state.release(*thread);
            }
            TraceEvent::ThreadDone { time, thread } => {
                let state = open_run(&mut run, index, ev)?;
                state.clock(index, *time)?;
                let _ = thread;
                state.done_count += 1;
                state.last_done = state.last_done.max(*time);
            }
            TraceEvent::Fault { time, page, kind } => {
                let state = open_run(&mut run, index, ev)?;
                state.clock(index, *time)?;
                // Transient faults kill the page too; only a later
                // PageRepaired makes it grantable again.
                if matches!(kind, FaultKind::Kill | FaultKind::Transient { .. }) {
                    state.dead.insert(*page);
                }
            }
            TraceEvent::PageRepaired { time, page } => {
                let state = open_run(&mut run, index, ev)?;
                state.clock(index, *time)?;
                state.dead.remove(page);
            }
            TraceEvent::Revoke { time, thread, page } => {
                let state = open_run(&mut run, index, ev)?;
                state.clock(index, *time)?;
                let holds = state
                    .held
                    .get(thread)
                    .is_some_and(|pages| pages.contains(page));
                if !holds {
                    return Err(OracleError::RevokeWithoutOwnership {
                        index,
                        thread: *thread,
                        page: *page,
                    });
                }
                // The victim loses the dead page (and with it, in the
                // current allocator, its whole holding: a revoke only
                // hits single-page owners — but the oracle stays
                // general and removes just the named page).
                if let Some(pages) = state.held.get_mut(thread) {
                    pages.retain(|p| p != page);
                }
                state.owner.remove(page);
            }
            TraceEvent::SimAbort { .. } => {
                // An aborted run vouches for nothing beyond what was
                // already replayed; completeness checks are skipped.
                if run.take().is_none() {
                    return Err(OracleError::EventOutsideRun {
                        index,
                        kind: ev.kind(),
                    });
                }
                report.aborted_runs += 1;
            }
            TraceEvent::SimEnd { makespan, .. } => {
                let state = run.take().ok_or(OracleError::EventOutsideRun {
                    index,
                    kind: ev.kind(),
                })?;
                if state.done_count != state.threads {
                    return Err(OracleError::ThreadsUnaccounted {
                        index,
                        expected: state.threads,
                        done: state.done_count,
                    });
                }
                if state.last_done != *makespan {
                    return Err(OracleError::MakespanMismatch {
                        index,
                        reported: *makespan,
                        accounted: state.last_done,
                    });
                }
                report.runs += 1;
            }
        }
    }

    if let Some(open) = &run {
        return Err(OracleError::MissingSimEnd {
            index: open.begin_index,
        });
    }
    Ok(report)
}

fn open_run<'a>(
    run: &'a mut Option<RunState>,
    index: usize,
    ev: &TraceEvent,
) -> Result<&'a mut RunState, OracleError> {
    run.as_mut().ok_or(OracleError::EventOutsideRun {
        index,
        kind: ev.kind(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A legal two-thread run: a kill shrinks thread 1, thread 1 later
    /// expands onto the freed (live) pages.
    fn valid_run() -> Vec<TraceEvent> {
        vec![
            TraceEvent::SimBegin {
                threads: 2,
                pages: 4,
            },
            TraceEvent::ThreadStart {
                time: 0,
                thread: 0,
                kernel: 0,
                pages: vec![0, 1],
            },
            TraceEvent::ThreadStart {
                time: 0,
                thread: 1,
                kernel: 1,
                pages: vec![2, 3],
            },
            TraceEvent::Fault {
                time: 50,
                page: 3,
                kind: FaultKind::Kill,
            },
            TraceEvent::ThreadShrink {
                time: 50,
                thread: 1,
                from: 2,
                to: 1,
                pages: vec![2],
            },
            TraceEvent::ThreadFinish {
                time: 100,
                thread: 0,
                freed: 2,
            },
            TraceEvent::ThreadDone {
                time: 100,
                thread: 0,
            },
            TraceEvent::ThreadExpand {
                time: 100,
                thread: 1,
                from: 1,
                to: 3,
                pages: vec![0, 1, 2],
            },
            TraceEvent::ThreadFinish {
                time: 200,
                thread: 1,
                freed: 3,
            },
            TraceEvent::ThreadDone {
                time: 200,
                thread: 1,
            },
            TraceEvent::SimEnd {
                makespan: 200,
                iterations: 30,
            },
        ]
    }

    #[test]
    fn clean_run_passes() {
        let report = check_trace(&valid_run()).expect("trace is legal");
        assert_eq!(report.runs, 1);
        assert_eq!(report.events, 11);
    }

    #[test]
    fn revoke_without_ownership_fires() {
        let mut trace = valid_run();
        // Thread 0 holds pages {0,1}; revoking page 3 from it is illegal.
        trace.insert(
            5,
            TraceEvent::Revoke {
                time: 60,
                thread: 0,
                page: 3,
            },
        );
        assert_eq!(
            check_trace(&trace),
            Err(OracleError::RevokeWithoutOwnership {
                index: 5,
                thread: 0,
                page: 3
            })
        );
    }

    #[test]
    fn legal_revoke_passes_and_frees_the_page() {
        let trace = vec![
            TraceEvent::SimBegin {
                threads: 1,
                pages: 2,
            },
            TraceEvent::ThreadStart {
                time: 0,
                thread: 0,
                kernel: 0,
                pages: vec![1],
            },
            TraceEvent::Fault {
                time: 10,
                page: 1,
                kind: FaultKind::Kill,
            },
            TraceEvent::Revoke {
                time: 10,
                thread: 0,
                page: 1,
            },
            TraceEvent::ThreadStart {
                time: 10,
                thread: 0,
                kernel: 0,
                pages: vec![0],
            },
            TraceEvent::ThreadFinish {
                time: 90,
                thread: 0,
                freed: 1,
            },
            TraceEvent::ThreadDone {
                time: 90,
                thread: 0,
            },
            TraceEvent::SimEnd {
                makespan: 90,
                iterations: 10,
            },
        ];
        assert!(check_trace(&trace).is_ok());
    }

    #[test]
    fn makespan_under_count_fires() {
        let mut trace = valid_run();
        let last = trace.len() - 1;
        trace[last] = TraceEvent::SimEnd {
            makespan: 150,
            iterations: 30,
        };
        assert_eq!(
            check_trace(&trace),
            Err(OracleError::MakespanMismatch {
                index: last,
                reported: 150,
                accounted: 200
            })
        );
    }

    #[test]
    fn dead_page_allocation_fires() {
        let mut trace = valid_run();
        // Corrupt the expansion to include page 3, which died at t=50.
        trace[7] = TraceEvent::ThreadExpand {
            time: 100,
            thread: 1,
            from: 1,
            to: 3,
            pages: vec![0, 2, 3],
        };
        assert_eq!(
            check_trace(&trace),
            Err(OracleError::DeadPageAllocated {
                index: 7,
                thread: 1,
                page: 3
            })
        );
    }

    /// A legal transient-fault run: the strike kills page 3 and shrinks
    /// thread 1; `PageRepaired` returns the page and the supervised
    /// re-expansion puts thread 1 back on its original two pages.
    fn transient_run() -> Vec<TraceEvent> {
        vec![
            TraceEvent::SimBegin {
                threads: 2,
                pages: 4,
            },
            TraceEvent::ThreadStart {
                time: 0,
                thread: 0,
                kernel: 0,
                pages: vec![0, 1],
            },
            TraceEvent::ThreadStart {
                time: 0,
                thread: 1,
                kernel: 1,
                pages: vec![2, 3],
            },
            TraceEvent::Fault {
                time: 50,
                page: 3,
                kind: FaultKind::Transient { repair_after: 80 },
            },
            TraceEvent::ThreadShrink {
                time: 50,
                thread: 1,
                from: 2,
                to: 1,
                pages: vec![2],
            },
            TraceEvent::PageRepaired { time: 160, page: 3 },
            TraceEvent::Reexpanded {
                time: 160,
                thread: 1,
                from: 1,
                to: 2,
                pages: vec![2, 3],
            },
            TraceEvent::ThreadFinish {
                time: 200,
                thread: 0,
                freed: 2,
            },
            TraceEvent::ThreadDone {
                time: 200,
                thread: 0,
            },
            TraceEvent::ThreadFinish {
                time: 250,
                thread: 1,
                freed: 2,
            },
            TraceEvent::ThreadDone {
                time: 250,
                thread: 1,
            },
            TraceEvent::SimEnd {
                makespan: 250,
                iterations: 30,
            },
        ]
    }

    #[test]
    fn transient_repair_reexpand_round_trip_passes() {
        let report = check_trace(&transient_run()).expect("repair round trip is legal");
        assert_eq!(report.runs, 1);
        assert_eq!(report.events, 12);
    }

    #[test]
    fn reuse_of_transiently_dead_page_before_repair_fires() {
        let mut trace = transient_run();
        // Re-expand onto page 3 while it is still dead (the PageRepaired
        // at index 5 has not happened yet).
        trace.swap(5, 6);
        assert_eq!(
            check_trace(&trace),
            Err(OracleError::DeadPageAllocated {
                index: 5,
                thread: 1,
                page: 3
            })
        );
    }

    #[test]
    fn reexpansion_must_respect_ownership_exclusivity() {
        let mut trace = transient_run();
        // Corrupt the re-expansion to steal page 0 from thread 0.
        trace[6] = TraceEvent::Reexpanded {
            time: 160,
            thread: 1,
            from: 1,
            to: 2,
            pages: vec![2, 0],
        };
        assert_eq!(
            check_trace(&trace),
            Err(OracleError::DoubleOwnership {
                index: 6,
                page: 0,
                owner: 0,
                claimant: 1
            })
        );
    }

    #[test]
    fn double_ownership_fires() {
        let mut trace = valid_run();
        // Thread 1's start grabs page 1 while thread 0 still holds it.
        trace[2] = TraceEvent::ThreadStart {
            time: 0,
            thread: 1,
            kernel: 1,
            pages: vec![1, 2],
        };
        assert_eq!(
            check_trace(&trace),
            Err(OracleError::DoubleOwnership {
                index: 2,
                page: 1,
                owner: 0,
                claimant: 1
            })
        );
    }

    #[test]
    fn missing_thread_done_fires() {
        let mut trace = valid_run();
        trace.remove(9); // thread 1's ThreadDone
        assert_eq!(
            check_trace(&trace),
            Err(OracleError::ThreadsUnaccounted {
                index: 9,
                expected: 2,
                done: 1
            })
        );
    }

    #[test]
    fn time_going_backwards_fires() {
        let mut trace = valid_run();
        trace[5] = TraceEvent::ThreadFinish {
            time: 40, // before the fault at t=50
            thread: 0,
            freed: 2,
        };
        assert_eq!(
            check_trace(&trace),
            Err(OracleError::NonMonotonicTime {
                index: 5,
                prev: 50,
                time: 40
            })
        );
    }

    #[test]
    fn truncated_run_fires() {
        let mut trace = valid_run();
        trace.pop();
        assert_eq!(
            check_trace(&trace),
            Err(OracleError::MissingSimEnd { index: 0 })
        );
    }

    #[test]
    fn aborted_run_skips_completeness() {
        let trace = vec![
            TraceEvent::SimBegin {
                threads: 2,
                pages: 4,
            },
            TraceEvent::ThreadStart {
                time: 0,
                thread: 0,
                kernel: 0,
                pages: vec![0, 1],
            },
            TraceEvent::SimAbort {
                reason: "all pages dead: starved".into(),
            },
        ];
        let report = check_trace(&trace).expect("abort closes the run");
        assert_eq!(report.aborted_runs, 1);
        assert_eq!(report.runs, 0);
    }

    #[test]
    fn sim_event_outside_run_fires() {
        let trace = vec![TraceEvent::ThreadDone { time: 5, thread: 0 }];
        assert_eq!(
            check_trace(&trace),
            Err(OracleError::EventOutsideRun {
                index: 0,
                kind: "thread_done"
            })
        );
    }

    #[test]
    fn map_segment_checks_fire() {
        assert_eq!(
            check_trace(&[TraceEvent::MapEnd {
                kernel: "fir".into(),
                ii: 4,
                success: true
            }]),
            Err(OracleError::MapEndWithoutBegin {
                index: 0,
                kernel: "fir".into()
            })
        );
        assert_eq!(
            check_trace(&[
                TraceEvent::MapBegin {
                    kernel: "fir".into(),
                    ops: 3,
                    mode: "Baseline".into()
                },
                TraceEvent::MapEnd {
                    kernel: "fir".into(),
                    ii: 4,
                    success: true
                }
            ]),
            Err(OracleError::SuccessWithoutPlacements {
                index: 1,
                kernel: "fir".into()
            })
        );
        // A failed search may legally place nothing.
        let failed = check_trace(&[
            TraceEvent::MapBegin {
                kernel: "fir".into(),
                ops: 3,
                mode: "Baseline".into(),
            },
            TraceEvent::Backtrack {
                ii: 2,
                restart: 0,
                op: 1,
            },
            TraceEvent::MapEnd {
                kernel: "fir".into(),
                ii: 4,
                success: false,
            },
        ]);
        assert_eq!(failed.map(|r| r.map_segments), Ok(1));
    }

    #[test]
    fn transform_end_requires_begin() {
        assert_eq!(
            check_trace(&[TraceEvent::TransformEnd {
                kernel: "fir".into(),
                m: 2,
                period: 2,
                span: 8,
                ii_q_ceil: 8
            }]),
            Err(OracleError::TransformEndWithoutBegin {
                index: 0,
                kernel: "fir".into(),
                m: 2
            })
        );
    }

    #[test]
    fn errors_render_precisely() {
        let err = OracleError::RevokeWithoutOwnership {
            index: 5,
            thread: 0,
            page: 3,
        };
        assert_eq!(
            err.to_string(),
            "event 5: revoked page 3 from thread 0, which does not hold it"
        );
        let err = OracleError::MakespanMismatch {
            index: 10,
            reported: 150,
            accounted: 200,
        };
        assert_eq!(
            err.to_string(),
            "event 10: reported makespan 150 but thread completions account for 200"
        );
    }
}
