//! Typed trace events and their JSONL encoding.
//!
//! Every event renders to a single-line JSON object (see
//! [`TraceEvent::to_jsonl`]) tagged by an `"ev"` field, and parses back
//! with [`TraceEvent::parse_line`]. The encoding is canonical — object
//! keys are sorted by the codec — so identical event streams produce
//! byte-identical trace files.

use crate::jsonio::Json;
use cgra_arch::FaultKind;

/// One observable decision made by the mapper, the PageMaster
/// transform, or the multithreaded simulator.
///
/// Times are simulator cycles; `thread` / `kernel` / `op` / `edge` are
/// dense indices; `page` / `pe` are fabric identifiers.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// The mapper started a schedule search for one kernel.
    MapBegin {
        /// Kernel name.
        kernel: String,
        /// Number of DFG operations being placed.
        ops: u32,
        /// Mapping mode (`Baseline` / `Constrained` / ...).
        mode: String,
    },
    /// A placement attempt failed at `op` and the search backtracked to
    /// a fresh restart (or the next II).
    Backtrack {
        /// The II being attempted.
        ii: u32,
        /// Restart index within that II.
        restart: u32,
        /// The DFG node that could not be placed.
        op: u32,
    },
    /// A complete candidate mapping was evicted by the acceptance
    /// validator.
    Evict {
        /// The II of the rejected mapping.
        ii: u32,
        /// Restart index that produced it.
        restart: u32,
        /// Number of validator violations.
        violations: u32,
    },
    /// One operation's final placement in the accepted mapping.
    Place {
        /// DFG node index.
        op: u32,
        /// Flat PE index.
        pe: u32,
        /// Page containing that PE.
        page: u16,
        /// Schedule time slot.
        time: u32,
    },
    /// One routed edge in the accepted mapping.
    Route {
        /// DFG edge index.
        edge: u32,
        /// Number of routing hops used.
        hops: u32,
    },
    /// The schedule search finished.
    MapEnd {
        /// Kernel name.
        kernel: String,
        /// Achieved II (last attempted II on failure).
        ii: u32,
        /// Whether a mapping was accepted.
        success: bool,
    },
    /// The PageMaster transform started shrinking a paged schedule.
    TransformBegin {
        /// Kernel name.
        kernel: String,
        /// Source page count.
        n: u16,
        /// Target page count.
        m: u16,
        /// Source II.
        ii: u32,
        /// Strategy requested (`Block` / `PageMaster` / `Auto`).
        strategy: String,
    },
    /// The PageMaster transform produced a plan.
    TransformEnd {
        /// Kernel name.
        kernel: String,
        /// Target page count.
        m: u16,
        /// Plan period (cycles per source cycle).
        period: u32,
        /// Plan span (cycles per iteration).
        span: u64,
        /// Effective II, rounded up.
        ii_q_ceil: u32,
    },
    /// A multithreaded simulation run started. Opens a run segment;
    /// every `Thread*` / `Fault` / `Revoke` event belongs to the most
    /// recent `SimBegin`.
    SimBegin {
        /// Number of threads in the workload.
        threads: u32,
        /// Total pages on the fabric.
        pages: u16,
    },
    /// A thread requested pages and was queued (none available).
    ThreadQueue {
        /// Simulation time.
        time: u64,
        /// Thread index.
        thread: u32,
        /// Kernel index the thread wants to run.
        kernel: u32,
    },
    /// A thread was granted pages and started a kernel segment.
    ThreadStart {
        /// Simulation time.
        time: u64,
        /// Thread index.
        thread: u32,
        /// Kernel index.
        kernel: u32,
        /// The exact pages granted.
        pages: Vec<u16>,
    },
    /// A running thread was shrunk to fewer pages.
    ThreadShrink {
        /// Simulation time.
        time: u64,
        /// Thread index.
        thread: u32,
        /// Page count before.
        from: u16,
        /// Page count after.
        to: u16,
        /// The pages it retains.
        pages: Vec<u16>,
    },
    /// A running thread was expanded onto freed pages.
    ThreadExpand {
        /// Simulation time.
        time: u64,
        /// Thread index.
        thread: u32,
        /// Page count before.
        from: u16,
        /// Page count after.
        to: u16,
        /// The pages it now holds.
        pages: Vec<u16>,
    },
    /// A thread finished a kernel segment and released its pages.
    ThreadFinish {
        /// Simulation time.
        time: u64,
        /// Thread index.
        thread: u32,
        /// Number of pages released.
        freed: u16,
    },
    /// A thread completed its entire workload.
    ThreadDone {
        /// Simulation time.
        time: u64,
        /// Thread index.
        thread: u32,
    },
    /// A fault was injected into the fabric.
    Fault {
        /// Simulation time.
        time: u64,
        /// The page hit.
        page: u16,
        /// What the fault does.
        kind: FaultKind,
    },
    /// A page death revoked a thread's only page; the thread was
    /// re-queued.
    Revoke {
        /// Simulation time.
        time: u64,
        /// The thread losing the page.
        thread: u32,
        /// The dead page.
        page: u16,
    },
    /// A transiently-failed page finished repair (and its quarantine
    /// window) and returned to the allocator's free pool.
    PageRepaired {
        /// Simulation time.
        time: u64,
        /// The repaired page.
        page: u16,
    },
    /// The supervision policy re-expanded a shrunk thread onto
    /// recovered pages (the recovery counterpart of `ThreadExpand`).
    Reexpanded {
        /// Simulation time.
        time: u64,
        /// The re-expanded thread.
        thread: u32,
        /// Page count before.
        from: u16,
        /// Page count after.
        to: u16,
        /// The pages it now holds.
        pages: Vec<u16>,
    },
    /// The run terminated with an error instead of completing. Closes
    /// the run segment; oracle completeness checks are skipped.
    SimAbort {
        /// The simulator error, rendered.
        reason: String,
    },
    /// The run completed. Closes the run segment.
    SimEnd {
        /// Reported makespan (cycles).
        makespan: u64,
        /// Total CGRA iterations executed.
        iterations: u64,
    },
}

impl TraceEvent {
    /// The event's tag: the `"ev"` field of its JSONL encoding, also
    /// used as the metrics counter key.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::MapBegin { .. } => "map_begin",
            TraceEvent::Backtrack { .. } => "backtrack",
            TraceEvent::Evict { .. } => "evict",
            TraceEvent::Place { .. } => "place",
            TraceEvent::Route { .. } => "route",
            TraceEvent::MapEnd { .. } => "map_end",
            TraceEvent::TransformBegin { .. } => "transform_begin",
            TraceEvent::TransformEnd { .. } => "transform_end",
            TraceEvent::SimBegin { .. } => "sim_begin",
            TraceEvent::ThreadQueue { .. } => "thread_queue",
            TraceEvent::ThreadStart { .. } => "thread_start",
            TraceEvent::ThreadShrink { .. } => "thread_shrink",
            TraceEvent::ThreadExpand { .. } => "thread_expand",
            TraceEvent::ThreadFinish { .. } => "thread_finish",
            TraceEvent::ThreadDone { .. } => "thread_done",
            TraceEvent::Fault { .. } => "fault",
            TraceEvent::Revoke { .. } => "revoke",
            TraceEvent::PageRepaired { .. } => "page_repaired",
            TraceEvent::Reexpanded { .. } => "reexpanded",
            TraceEvent::SimAbort { .. } => "sim_abort",
            TraceEvent::SimEnd { .. } => "sim_end",
        }
    }

    /// Render as one JSONL line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        self.to_json().compact()
    }

    fn to_json(&self) -> Json {
        let tag = Json::Str(self.kind().into());
        match self {
            TraceEvent::MapBegin { kernel, ops, mode } => Json::obj([
                ("ev", tag),
                ("kernel", Json::Str(kernel.clone())),
                ("ops", int(*ops)),
                ("mode", Json::Str(mode.clone())),
            ]),
            TraceEvent::Backtrack { ii, restart, op } => Json::obj([
                ("ev", tag),
                ("ii", int(*ii)),
                ("restart", int(*restart)),
                ("op", int(*op)),
            ]),
            TraceEvent::Evict {
                ii,
                restart,
                violations,
            } => Json::obj([
                ("ev", tag),
                ("ii", int(*ii)),
                ("restart", int(*restart)),
                ("violations", int(*violations)),
            ]),
            TraceEvent::Place { op, pe, page, time } => Json::obj([
                ("ev", tag),
                ("op", int(*op)),
                ("pe", int(*pe)),
                ("page", int(*page)),
                ("time", int(*time)),
            ]),
            TraceEvent::Route { edge, hops } => {
                Json::obj([("ev", tag), ("edge", int(*edge)), ("hops", int(*hops))])
            }
            TraceEvent::MapEnd {
                kernel,
                ii,
                success,
            } => Json::obj([
                ("ev", tag),
                ("kernel", Json::Str(kernel.clone())),
                ("ii", int(*ii)),
                ("success", Json::Bool(*success)),
            ]),
            TraceEvent::TransformBegin {
                kernel,
                n,
                m,
                ii,
                strategy,
            } => Json::obj([
                ("ev", tag),
                ("kernel", Json::Str(kernel.clone())),
                ("n", int(*n)),
                ("m", int(*m)),
                ("ii", int(*ii)),
                ("strategy", Json::Str(strategy.clone())),
            ]),
            TraceEvent::TransformEnd {
                kernel,
                m,
                period,
                span,
                ii_q_ceil,
            } => Json::obj([
                ("ev", tag),
                ("kernel", Json::Str(kernel.clone())),
                ("m", int(*m)),
                ("period", int(*period)),
                ("span", int(*span)),
                ("ii_q_ceil", int(*ii_q_ceil)),
            ]),
            TraceEvent::SimBegin { threads, pages } => Json::obj([
                ("ev", tag),
                ("threads", int(*threads)),
                ("pages", int(*pages)),
            ]),
            TraceEvent::ThreadQueue {
                time,
                thread,
                kernel,
            } => Json::obj([
                ("ev", tag),
                ("time", int(*time)),
                ("thread", int(*thread)),
                ("kernel", int(*kernel)),
            ]),
            TraceEvent::ThreadStart {
                time,
                thread,
                kernel,
                pages,
            } => Json::obj([
                ("ev", tag),
                ("time", int(*time)),
                ("thread", int(*thread)),
                ("kernel", int(*kernel)),
                ("pages", pages_arr(pages)),
            ]),
            TraceEvent::ThreadShrink {
                time,
                thread,
                from,
                to,
                pages,
            } => Json::obj([
                ("ev", tag),
                ("time", int(*time)),
                ("thread", int(*thread)),
                ("from", int(*from)),
                ("to", int(*to)),
                ("pages", pages_arr(pages)),
            ]),
            TraceEvent::ThreadExpand {
                time,
                thread,
                from,
                to,
                pages,
            } => Json::obj([
                ("ev", tag),
                ("time", int(*time)),
                ("thread", int(*thread)),
                ("from", int(*from)),
                ("to", int(*to)),
                ("pages", pages_arr(pages)),
            ]),
            TraceEvent::ThreadFinish {
                time,
                thread,
                freed,
            } => Json::obj([
                ("ev", tag),
                ("time", int(*time)),
                ("thread", int(*thread)),
                ("freed", int(*freed)),
            ]),
            TraceEvent::ThreadDone { time, thread } => {
                Json::obj([("ev", tag), ("time", int(*time)), ("thread", int(*thread))])
            }
            TraceEvent::Fault { time, page, kind } => {
                let kind_str = |s: &str| Json::Str(s.into());
                match kind {
                    FaultKind::Degrade => Json::obj([
                        ("ev", tag),
                        ("time", int(*time)),
                        ("page", int(*page)),
                        ("kind", kind_str("degrade")),
                    ]),
                    FaultKind::Kill => Json::obj([
                        ("ev", tag),
                        ("time", int(*time)),
                        ("page", int(*page)),
                        ("kind", kind_str("kill")),
                    ]),
                    // Transient faults carry their repair interval in an
                    // extra `mttr` field, present only for this kind.
                    FaultKind::Transient { repair_after } => Json::obj([
                        ("ev", tag),
                        ("time", int(*time)),
                        ("page", int(*page)),
                        ("kind", kind_str("transient")),
                        ("mttr", int(*repair_after)),
                    ]),
                }
            }
            TraceEvent::Revoke { time, thread, page } => Json::obj([
                ("ev", tag),
                ("time", int(*time)),
                ("thread", int(*thread)),
                ("page", int(*page)),
            ]),
            TraceEvent::PageRepaired { time, page } => {
                Json::obj([("ev", tag), ("time", int(*time)), ("page", int(*page))])
            }
            TraceEvent::Reexpanded {
                time,
                thread,
                from,
                to,
                pages,
            } => Json::obj([
                ("ev", tag),
                ("time", int(*time)),
                ("thread", int(*thread)),
                ("from", int(*from)),
                ("to", int(*to)),
                ("pages", pages_arr(pages)),
            ]),
            TraceEvent::SimAbort { reason } => {
                Json::obj([("ev", tag), ("reason", Json::Str(reason.clone()))])
            }
            TraceEvent::SimEnd {
                makespan,
                iterations,
            } => Json::obj([
                ("ev", tag),
                ("makespan", int(*makespan)),
                ("iterations", int(*iterations)),
            ]),
        }
    }

    /// Parse one JSONL line back into an event. Strict: unknown tags,
    /// missing fields and malformed JSON are errors.
    pub fn parse_line(line: &str) -> Result<TraceEvent, DecodeError> {
        let v = Json::parse(line).map_err(|e| DecodeError {
            message: e.to_string(),
        })?;
        let tag = str_field(&v, "ev")?;
        let ev = match tag.as_str() {
            "map_begin" => TraceEvent::MapBegin {
                kernel: str_field(&v, "kernel")?,
                ops: num(&v, "ops")?,
                mode: str_field(&v, "mode")?,
            },
            "backtrack" => TraceEvent::Backtrack {
                ii: num(&v, "ii")?,
                restart: num(&v, "restart")?,
                op: num(&v, "op")?,
            },
            "evict" => TraceEvent::Evict {
                ii: num(&v, "ii")?,
                restart: num(&v, "restart")?,
                violations: num(&v, "violations")?,
            },
            "place" => TraceEvent::Place {
                op: num(&v, "op")?,
                pe: num(&v, "pe")?,
                page: num(&v, "page")?,
                time: num(&v, "time")?,
            },
            "route" => TraceEvent::Route {
                edge: num(&v, "edge")?,
                hops: num(&v, "hops")?,
            },
            "map_end" => TraceEvent::MapEnd {
                kernel: str_field(&v, "kernel")?,
                ii: num(&v, "ii")?,
                success: bool_field(&v, "success")?,
            },
            "transform_begin" => TraceEvent::TransformBegin {
                kernel: str_field(&v, "kernel")?,
                n: num(&v, "n")?,
                m: num(&v, "m")?,
                ii: num(&v, "ii")?,
                strategy: str_field(&v, "strategy")?,
            },
            "transform_end" => TraceEvent::TransformEnd {
                kernel: str_field(&v, "kernel")?,
                m: num(&v, "m")?,
                period: num(&v, "period")?,
                span: num(&v, "span")?,
                ii_q_ceil: num(&v, "ii_q_ceil")?,
            },
            "sim_begin" => TraceEvent::SimBegin {
                threads: num(&v, "threads")?,
                pages: num(&v, "pages")?,
            },
            "thread_queue" => TraceEvent::ThreadQueue {
                time: num(&v, "time")?,
                thread: num(&v, "thread")?,
                kernel: num(&v, "kernel")?,
            },
            "thread_start" => TraceEvent::ThreadStart {
                time: num(&v, "time")?,
                thread: num(&v, "thread")?,
                kernel: num(&v, "kernel")?,
                pages: pages_field(&v)?,
            },
            "thread_shrink" => TraceEvent::ThreadShrink {
                time: num(&v, "time")?,
                thread: num(&v, "thread")?,
                from: num(&v, "from")?,
                to: num(&v, "to")?,
                pages: pages_field(&v)?,
            },
            "thread_expand" => TraceEvent::ThreadExpand {
                time: num(&v, "time")?,
                thread: num(&v, "thread")?,
                from: num(&v, "from")?,
                to: num(&v, "to")?,
                pages: pages_field(&v)?,
            },
            "thread_finish" => TraceEvent::ThreadFinish {
                time: num(&v, "time")?,
                thread: num(&v, "thread")?,
                freed: num(&v, "freed")?,
            },
            "thread_done" => TraceEvent::ThreadDone {
                time: num(&v, "time")?,
                thread: num(&v, "thread")?,
            },
            "fault" => TraceEvent::Fault {
                time: num(&v, "time")?,
                page: num(&v, "page")?,
                kind: match str_field(&v, "kind")?.as_str() {
                    "degrade" => FaultKind::Degrade,
                    "kill" => FaultKind::Kill,
                    "transient" => FaultKind::Transient {
                        repair_after: num(&v, "mttr")?,
                    },
                    other => {
                        return Err(DecodeError {
                            message: format!("unknown fault kind {other:?}"),
                        })
                    }
                },
            },
            "revoke" => TraceEvent::Revoke {
                time: num(&v, "time")?,
                thread: num(&v, "thread")?,
                page: num(&v, "page")?,
            },
            "page_repaired" => TraceEvent::PageRepaired {
                time: num(&v, "time")?,
                page: num(&v, "page")?,
            },
            "reexpanded" => TraceEvent::Reexpanded {
                time: num(&v, "time")?,
                thread: num(&v, "thread")?,
                from: num(&v, "from")?,
                to: num(&v, "to")?,
                pages: pages_field(&v)?,
            },
            "sim_abort" => TraceEvent::SimAbort {
                reason: str_field(&v, "reason")?,
            },
            "sim_end" => TraceEvent::SimEnd {
                makespan: num(&v, "makespan")?,
                iterations: num(&v, "iterations")?,
            },
            other => {
                return Err(DecodeError {
                    message: format!("unknown event tag {other:?}"),
                })
            }
        };
        Ok(ev)
    }

    /// Parse a whole JSONL document (blank lines are skipped).
    pub fn parse_jsonl(text: &str) -> Result<Vec<TraceEvent>, DecodeError> {
        text.lines()
            .enumerate()
            .filter(|(_, l)| !l.trim().is_empty())
            .map(|(i, l)| {
                TraceEvent::parse_line(l).map_err(|e| DecodeError {
                    message: format!("line {}: {}", i + 1, e.message),
                })
            })
            .collect()
    }
}

/// A failure decoding a JSONL trace line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace decode error: {}", self.message)
    }
}

impl std::error::Error for DecodeError {}

fn int<T: TryInto<i64>>(v: T) -> Json {
    // Cycle counts live far below 2^63; saturate rather than panic if
    // one ever does not.
    Json::Int(v.try_into().unwrap_or(i64::MAX))
}

fn pages_arr(pages: &[u16]) -> Json {
    Json::Arr(pages.iter().map(|&p| Json::Int(p as i64)).collect())
}

fn str_field(v: &Json, key: &str) -> Result<String, DecodeError> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| DecodeError {
            message: format!("missing string field {key:?}"),
        })
}

fn bool_field(v: &Json, key: &str) -> Result<bool, DecodeError> {
    match v.get(key) {
        Some(Json::Bool(b)) => Ok(*b),
        _ => Err(DecodeError {
            message: format!("missing bool field {key:?}"),
        }),
    }
}

fn num<T: TryFrom<i64>>(v: &Json, key: &str) -> Result<T, DecodeError> {
    v.get(key)
        .and_then(Json::as_int)
        .and_then(|i| T::try_from(i).ok())
        .ok_or_else(|| DecodeError {
            message: format!("missing or out-of-range integer field {key:?}"),
        })
}

fn pages_field(v: &Json) -> Result<Vec<u16>, DecodeError> {
    v.get("pages")
        .and_then(Json::as_arr)
        .and_then(|arr| {
            arr.iter()
                .map(|p| p.as_int().and_then(|i| u16::try_from(i).ok()))
                .collect::<Option<Vec<u16>>>()
        })
        .ok_or_else(|| DecodeError {
            message: "missing page-list field \"pages\"".into(),
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<TraceEvent> {
        vec![
            TraceEvent::MapBegin {
                kernel: "fir".into(),
                ops: 12,
                mode: "Constrained".into(),
            },
            TraceEvent::Backtrack {
                ii: 3,
                restart: 1,
                op: 7,
            },
            TraceEvent::Evict {
                ii: 3,
                restart: 2,
                violations: 1,
            },
            TraceEvent::Place {
                op: 0,
                pe: 5,
                page: 1,
                time: 2,
            },
            TraceEvent::Route { edge: 4, hops: 2 },
            TraceEvent::MapEnd {
                kernel: "fir".into(),
                ii: 4,
                success: true,
            },
            TraceEvent::TransformBegin {
                kernel: "fir".into(),
                n: 4,
                m: 2,
                ii: 4,
                strategy: "Auto".into(),
            },
            TraceEvent::TransformEnd {
                kernel: "fir".into(),
                m: 2,
                period: 2,
                span: 8,
                ii_q_ceil: 8,
            },
            TraceEvent::SimBegin {
                threads: 2,
                pages: 4,
            },
            TraceEvent::ThreadQueue {
                time: 10,
                thread: 1,
                kernel: 0,
            },
            TraceEvent::ThreadStart {
                time: 0,
                thread: 0,
                kernel: 3,
                pages: vec![0, 1],
            },
            TraceEvent::ThreadShrink {
                time: 20,
                thread: 0,
                from: 2,
                to: 1,
                pages: vec![0],
            },
            TraceEvent::ThreadExpand {
                time: 30,
                thread: 1,
                from: 1,
                to: 2,
                pages: vec![2, 3],
            },
            TraceEvent::ThreadFinish {
                time: 40,
                thread: 0,
                freed: 1,
            },
            TraceEvent::ThreadDone {
                time: 41,
                thread: 0,
            },
            TraceEvent::Fault {
                time: 15,
                page: 2,
                kind: FaultKind::Kill,
            },
            TraceEvent::Fault {
                time: 16,
                page: 3,
                kind: FaultKind::Degrade,
            },
            TraceEvent::Revoke {
                time: 15,
                thread: 1,
                page: 2,
            },
            TraceEvent::Fault {
                time: 17,
                page: 1,
                kind: FaultKind::Transient { repair_after: 600 },
            },
            TraceEvent::PageRepaired { time: 617, page: 1 },
            TraceEvent::Reexpanded {
                time: 620,
                thread: 1,
                from: 1,
                to: 2,
                pages: vec![1, 2],
            },
            TraceEvent::SimAbort {
                reason: "starved".into(),
            },
            TraceEvent::SimEnd {
                makespan: 99,
                iterations: 40,
            },
        ]
    }

    #[test]
    fn every_event_round_trips_through_jsonl() {
        for ev in samples() {
            let line = ev.to_jsonl();
            assert!(!line.contains('\n'), "{line}");
            assert_eq!(TraceEvent::parse_line(&line).unwrap(), ev, "{line}");
        }
    }

    #[test]
    fn whole_document_round_trips() {
        let evs = samples();
        let doc: String = evs.iter().map(|e| e.to_jsonl() + "\n").collect();
        assert_eq!(TraceEvent::parse_jsonl(&doc).unwrap(), evs);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(TraceEvent::parse_line("not json").is_err());
        assert!(TraceEvent::parse_line("{\"ev\":\"no_such_tag\"}").is_err());
        assert!(TraceEvent::parse_line("{\"ev\":\"sim_end\"}").is_err());
        assert!(TraceEvent::parse_line(
            "{\"ev\":\"fault\",\"time\":1,\"page\":0,\"kind\":\"melt\"}"
        )
        .is_err());
        // A transient fault without its repair interval is malformed.
        assert!(TraceEvent::parse_line(
            "{\"ev\":\"fault\",\"time\":1,\"page\":0,\"kind\":\"transient\"}"
        )
        .is_err());
        assert!(TraceEvent::parse_line("{\"ev\":\"page_repaired\",\"time\":1}").is_err());
    }
}
