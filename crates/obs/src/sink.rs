//! Trace sinks and the [`Tracer`] handle producers thread through
//! their entry points.

use crate::event::TraceEvent;
use std::collections::VecDeque;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A consumer of trace events. Implementations must be thread-safe:
/// the parallel sweep engine records from worker threads.
pub trait TraceSink: Send + Sync {
    /// Record one event.
    fn record(&self, ev: TraceEvent);

    /// Record a batch atomically: events from one batch are never
    /// interleaved with events from another (the default implementation
    /// only has that property if `record` is the sole writer).
    fn record_batch(&self, evs: Vec<TraceEvent>) {
        for ev in evs {
            self.record(ev);
        }
    }

    /// Flush any buffered output.
    fn flush(&self) {}
}

/// The handle traced code paths carry: either off (`None`) or a shared
/// sink.
///
/// When off, [`Tracer::emit`] never calls its closure, so event
/// construction (string clones, page-list collection) is skipped
/// entirely — the cost of a disabled tracer is one branch per site.
#[derive(Clone, Default)]
pub struct Tracer(Option<Arc<dyn TraceSink>>);

impl Tracer {
    /// The disabled tracer.
    pub fn off() -> Self {
        Tracer(None)
    }

    /// A tracer feeding `sink`.
    pub fn new(sink: Arc<dyn TraceSink>) -> Self {
        Tracer(Some(sink))
    }

    /// A tracer fanning out to every sink in `sinks`: off when empty,
    /// direct when singleton, a [`TeeSink`] otherwise.
    pub fn tee(mut sinks: Vec<Arc<dyn TraceSink>>) -> Self {
        match sinks.len() {
            0 => Tracer(None),
            1 => Tracer(Some(sinks.pop().expect("len checked"))),
            _ => Tracer(Some(Arc::new(TeeSink(sinks)))),
        }
    }

    /// Whether events are being recorded.
    pub fn is_on(&self) -> bool {
        self.0.is_some()
    }

    /// Record the event built by `f`, or do nothing when off.
    #[inline]
    pub fn emit(&self, f: impl FnOnce() -> TraceEvent) {
        if let Some(sink) = &self.0 {
            sink.record(f());
        }
    }

    /// Flush the underlying sink, if any.
    pub fn flush(&self) {
        if let Some(sink) = &self.0 {
            sink.flush();
        }
    }

    /// Run `f` with a tracer that buffers locally, then forward the
    /// buffered events to this tracer's sink as one atomic batch.
    ///
    /// This is how parallel sweep points share one trace file: each
    /// point's events land contiguously regardless of worker
    /// interleaving, so a multi-job trace is a sequence of complete run
    /// segments. When this tracer is off, `f` just runs with it.
    pub fn batched<R>(&self, f: impl FnOnce(&Tracer) -> R) -> R {
        match &self.0 {
            None => f(self),
            Some(sink) => {
                let ring = Arc::new(RingSink::unbounded());
                let result = f(&Tracer::new(ring.clone()));
                sink.record_batch(ring.drain());
                result
            }
        }
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.is_on() {
            "Tracer(on)"
        } else {
            "Tracer(off)"
        })
    }
}

/// An in-memory ring buffer of events. With a capacity, the oldest
/// events are dropped (and counted) once full; unbounded, it keeps
/// everything — the capture buffer for tests and [`Tracer::batched`].
pub struct RingSink {
    capacity: usize,
    buf: Mutex<VecDeque<TraceEvent>>,
    dropped: AtomicU64,
}

impl RingSink {
    /// A ring keeping at most `capacity` events (0 means unbounded).
    pub fn new(capacity: usize) -> Self {
        RingSink {
            capacity,
            buf: Mutex::new(VecDeque::new()),
            dropped: AtomicU64::new(0),
        }
    }

    /// A ring that never drops.
    pub fn unbounded() -> Self {
        RingSink::new(0)
    }

    /// Take every buffered event, oldest first.
    pub fn drain(&self) -> Vec<TraceEvent> {
        self.buf.lock().expect("ring poisoned").drain(..).collect()
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.buf.lock().expect("ring poisoned").len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

impl TraceSink for RingSink {
    fn record(&self, ev: TraceEvent) {
        let mut buf = self.buf.lock().expect("ring poisoned");
        if self.capacity > 0 && buf.len() == self.capacity {
            buf.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        buf.push_back(ev);
    }

    fn record_batch(&self, evs: Vec<TraceEvent>) {
        let mut buf = self.buf.lock().expect("ring poisoned");
        for ev in evs {
            if self.capacity > 0 && buf.len() == self.capacity {
                buf.pop_front();
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
            buf.push_back(ev);
        }
    }
}

/// Streams events to a file as JSON Lines, one event per line.
pub struct JsonlSink {
    out: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Create (truncating) the trace file at `path`.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(JsonlSink {
            out: Mutex::new(BufWriter::new(File::create(path)?)),
        })
    }
}

impl TraceSink for JsonlSink {
    fn record(&self, ev: TraceEvent) {
        let mut out = self.out.lock().expect("jsonl poisoned");
        // Trace output is best-effort: a full disk should not abort the
        // run whose behaviour is being observed.
        let _ = writeln!(out, "{}", ev.to_jsonl());
    }

    fn record_batch(&self, evs: Vec<TraceEvent>) {
        let mut out = self.out.lock().expect("jsonl poisoned");
        for ev in evs {
            let _ = writeln!(out, "{}", ev.to_jsonl());
        }
    }

    fn flush(&self) {
        let _ = self.out.lock().expect("jsonl poisoned").flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Fans every event out to several sinks (e.g. a JSONL file plus a
/// metrics counter).
pub struct TeeSink(Vec<Arc<dyn TraceSink>>);

impl TeeSink {
    /// A tee over `sinks`.
    pub fn new(sinks: Vec<Arc<dyn TraceSink>>) -> Self {
        TeeSink(sinks)
    }
}

impl TraceSink for TeeSink {
    fn record(&self, ev: TraceEvent) {
        for sink in &self.0 {
            sink.record(ev.clone());
        }
    }

    fn record_batch(&self, evs: Vec<TraceEvent>) {
        for sink in &self.0 {
            sink.record_batch(evs.clone());
        }
    }

    fn flush(&self) {
        for sink in &self.0 {
            sink.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(time: u64) -> TraceEvent {
        TraceEvent::ThreadDone { time, thread: 0 }
    }

    #[test]
    fn off_tracer_never_builds_the_event() {
        let tracer = Tracer::off();
        assert!(!tracer.is_on());
        tracer.emit(|| unreachable!("disabled tracer must not construct events"));
    }

    #[test]
    fn ring_keeps_order_and_drops_oldest() {
        let ring = RingSink::new(2);
        ring.record(ev(1));
        ring.record(ev(2));
        ring.record(ev(3));
        assert_eq!(ring.dropped(), 1);
        assert_eq!(ring.drain(), vec![ev(2), ev(3)]);
        assert!(ring.is_empty());
    }

    #[test]
    fn batched_forwards_once_as_a_unit() {
        let outer = Arc::new(RingSink::unbounded());
        let tracer = Tracer::new(outer.clone());
        let result = tracer.batched(|t| {
            t.emit(|| ev(1));
            assert_eq!(outer.len(), 0, "events must buffer until the batch ends");
            t.emit(|| ev(2));
            "done"
        });
        assert_eq!(result, "done");
        assert_eq!(outer.drain(), vec![ev(1), ev(2)]);
    }

    #[test]
    fn tee_duplicates_to_every_sink() {
        let a = Arc::new(RingSink::unbounded());
        let b = Arc::new(RingSink::unbounded());
        let tracer = Tracer::tee(vec![a.clone(), b.clone()]);
        tracer.emit(|| ev(7));
        assert_eq!(a.drain(), vec![ev(7)]);
        assert_eq!(b.drain(), vec![ev(7)]);
        assert!(!Tracer::tee(vec![]).is_on());
    }
}
