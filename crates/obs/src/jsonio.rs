//! A small, dependency-free JSON codec.
//!
//! The build environment has no registry access, so `serde_json` is not
//! available; the workspace's `serde` is an offline marker shim (see
//! `crates/serde`). This module is the real serialization layer for the
//! workspace: trace events (JSONL, via [`Json::compact`]) and the
//! on-disk mapping cache in `cgra-bench` (which re-exports this module,
//! via [`Json::pretty`]). It provides a [`Json`] value tree, a strict
//! parser, and stable printers whose output is byte-deterministic
//! (`BTreeMap` keys make object order canonical).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Integers (covers every numeric field this crate persists; floats
    /// are intentionally unsupported so cache files never face
    /// round-trip drift).
    Int(i64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. `BTreeMap` so key order — and therefore the printed
    /// bytes — is canonical.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Build an object from key/value pairs.
    pub fn obj<const N: usize>(pairs: [(&str, Json); N]) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// The value at `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// This value as an `i64`, if it is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// This value as a `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as a slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Pretty-print with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Print on a single line with no insignificant whitespace — the
    /// JSONL trace format (one event per line, no trailing newline).
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(v) => {
                out.push('[');
                for (i, item) in v.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(m) => {
                out.push('{');
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent + 1);
        let close = "  ".repeat(indent);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(v) if v.is_empty() => out.push_str("[]"),
            Json::Arr(v) => {
                out.push('[');
                for (i, item) in v.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    out.push_str(&pad);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&close);
                out.push(']');
            }
            Json::Obj(m) if m.is_empty() => out.push_str("{}"),
            Json::Obj(m) => {
                out.push('{');
                for (i, (k, v)) in m.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    out.push_str(&pad);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&close);
                out.push('}');
            }
        }
    }

    /// Parse a JSON document. Strict: trailing garbage, trailing commas,
    /// floats and non-string keys are errors.
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(ParseError::at(pos, "trailing characters"));
        }
        Ok(value)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl ParseError {
    fn at(offset: usize, message: impl Into<String>) -> Self {
        ParseError {
            offset,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), ParseError> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(ParseError::at(*pos, format!("expected '{}'", c as char)))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(ParseError::at(*pos, "unexpected end of input")),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(ParseError::at(*pos, "expected ',' or ']'")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let value = parse_value(b, pos)?;
                map.insert(key, value);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    _ => return Err(ParseError::at(*pos, "expected ',' or '}'")),
                }
            }
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            let start = *pos;
            if b[*pos] == b'-' {
                *pos += 1;
            }
            while *pos < b.len() && b[*pos].is_ascii_digit() {
                *pos += 1;
            }
            if matches!(b.get(*pos), Some(b'.') | Some(b'e') | Some(b'E')) {
                return Err(ParseError::at(*pos, "floats are not supported"));
            }
            std::str::from_utf8(&b[start..*pos])
                .ok()
                .and_then(|s| s.parse().ok())
                .map(Json::Int)
                .ok_or_else(|| ParseError::at(start, "invalid integer"))
        }
        Some(c) => Err(ParseError::at(*pos, format!("unexpected byte 0x{c:02x}"))),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, ParseError> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(ParseError::at(*pos, format!("expected '{lit}'")))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(ParseError::at(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .and_then(char::from_u32)
                            .ok_or_else(|| ParseError::at(*pos, "bad \\u escape"))?;
                        out.push(hex);
                        *pos += 4;
                    }
                    _ => return Err(ParseError::at(*pos, "bad escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences arrive
                // already valid: the input is a &str).
                let rest = std::str::from_utf8(&b[*pos..])
                    .map_err(|_| ParseError::at(*pos, "invalid UTF-8"))?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let v = Json::obj([
            ("name", Json::Str("mpeg2 \"q\"\n".into())),
            ("ii", Json::Int(-3)),
            ("flag", Json::Bool(true)),
            ("none", Json::Null),
            (
                "pairs",
                Json::Arr(vec![
                    Json::Arr(vec![Json::Int(4), Json::Int(2)]),
                    Json::Arr(vec![]),
                ]),
            ),
        ]);
        assert_eq!(Json::parse(&v.pretty()).unwrap(), v);
    }

    #[test]
    fn printing_is_deterministic() {
        let build = || {
            Json::obj([
                ("b", Json::Int(1)),
                ("a", Json::Int(2)),
                ("c", Json::Arr(vec![Json::Str("x".into())])),
            ])
        };
        assert_eq!(build().pretty(), build().pretty());
        // BTreeMap canonicalises insertion order.
        assert!(build().pretty().find("\"a\"").unwrap() < build().pretty().find("\"b\"").unwrap());
    }

    #[test]
    fn compact_round_trip() {
        let v = Json::obj([
            ("ev", Json::Str("thread_start".into())),
            ("pages", Json::Arr(vec![Json::Int(0), Json::Int(1)])),
            ("time", Json::Int(42)),
        ]);
        let line = v.compact();
        assert!(!line.contains('\n'));
        assert!(!line.contains(' '));
        assert_eq!(Json::parse(&line).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("1.5").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{} extra").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn accessors() {
        let v = Json::parse("{\"k\": [1, \"s\"]}").unwrap();
        let arr = v.get("k").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_int(), Some(1));
        assert_eq!(arr[1].as_str(), Some("s"));
        assert!(v.get("missing").is_none());
        assert!(v.as_int().is_none());
    }
}
