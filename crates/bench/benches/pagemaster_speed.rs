//! Claim C1 (§VI-D.3): the PageMaster transformation runs in low-order
//! polynomial time — constant work per page cell — and is therefore
//! usable at runtime, unlike recompilation.
//!
//! Benches the transform across page counts and IIs, the block variant,
//! and — for contrast — a full constrained recompilation of a kernel
//! (what a naive runtime would have to do instead).

use cgra_core::transform::{transform_block, Strategy};
use cgra_core::{transform_pagemaster, PagedSchedule};
use cgra_mapper::{map_constrained, MapOptions};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_pagemaster_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("pagemaster_transform");
    for n in [4u16, 8, 16, 32] {
        let p = PagedSchedule::synthetic_canonical(n, 1, true);
        let m = (n / 2).max(2);
        g.bench_with_input(BenchmarkId::new("drifting_N", n), &p, |b, p| {
            b.iter(|| transform_pagemaster(black_box(p), m).unwrap())
        });
    }
    for ii in [1u32, 2, 4, 8] {
        let p = PagedSchedule::synthetic_canonical(8, ii, true);
        g.bench_with_input(BenchmarkId::new("drifting_II", ii), &p, |b, p| {
            b.iter(|| transform_pagemaster(black_box(p), 4).unwrap())
        });
    }
    g.finish();
}

fn bench_block_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("block_transform");
    for n in [4u16, 8, 16, 32, 64] {
        let p = PagedSchedule::synthetic_canonical(n, 2, false);
        let m = (n / 2).max(1);
        g.bench_with_input(BenchmarkId::new("N", n), &p, |b, p| {
            b.iter(|| transform_block(black_box(p), m).unwrap())
        });
    }
    g.finish();
}

fn bench_transform_vs_recompile(c: &mut Criterion) {
    let mut g = c.benchmark_group("runtime_adaptation");
    g.sample_size(10);
    let cgra = cgra_arch::CgraConfig::square(4);
    let kernel = cgra_dfg::kernels::mpeg2();
    let opts = MapOptions::default();
    let mapped = map_constrained(&kernel, &cgra, &opts).unwrap();
    let paged = PagedSchedule::from_mapping(&mapped, &cgra).unwrap().trimmed();

    g.bench_function("pagemaster_shrink_mpeg2", |b| {
        b.iter(|| {
            cgra_core::transform::transform(black_box(&paged), 2, Strategy::Auto).unwrap()
        })
    });
    g.bench_function("full_recompile_mpeg2", |b| {
        b.iter(|| map_constrained(black_box(&kernel), &cgra, &opts).unwrap())
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_pagemaster_scaling,
    bench_block_scaling,
    bench_transform_vs_recompile
);
criterion_main!(benches);
