//! Claim C1 (§VI-D.3): the PageMaster transformation runs in low-order
//! polynomial time — constant work per page cell — and is therefore
//! usable at runtime, unlike recompilation.
//!
//! Benches the transform across page counts and IIs, the block variant,
//! and — for contrast — a full constrained recompilation of a kernel
//! (what a naive runtime would have to do instead).

use cgra_bench::microbench::Bench;
use cgra_core::transform::{transform_block, Strategy};
use cgra_core::{transform_pagemaster, PagedSchedule};
use cgra_mapper::{map_constrained, MapOptions};
use std::hint::black_box;

fn bench_pagemaster_scaling(bench: &Bench) {
    for n in [4u16, 8, 16, 32] {
        let p = PagedSchedule::synthetic_canonical(n, 1, true);
        let m = (n / 2).max(2);
        bench.run(&format!("pagemaster_transform/drifting_N/{n}"), || {
            transform_pagemaster(black_box(&p), m).unwrap()
        });
    }
    for ii in [1u32, 2, 4, 8] {
        let p = PagedSchedule::synthetic_canonical(8, ii, true);
        bench.run(&format!("pagemaster_transform/drifting_II/{ii}"), || {
            transform_pagemaster(black_box(&p), 4).unwrap()
        });
    }
}

fn bench_block_scaling(bench: &Bench) {
    for n in [4u16, 8, 16, 32, 64] {
        let p = PagedSchedule::synthetic_canonical(n, 2, false);
        let m = (n / 2).max(1);
        bench.run(&format!("block_transform/N/{n}"), || {
            transform_block(black_box(&p), m).unwrap()
        });
    }
}

fn bench_transform_vs_recompile(bench: &Bench) {
    let cgra = cgra_arch::CgraConfig::square(4);
    let kernel = cgra_dfg::kernels::mpeg2();
    let opts = MapOptions::default();
    let mapped = map_constrained(&kernel, &cgra, &opts).unwrap();
    let paged = PagedSchedule::from_mapping(&mapped, &cgra)
        .unwrap()
        .trimmed();

    bench.run("runtime_adaptation/pagemaster_shrink_mpeg2", || {
        cgra_core::transform::transform(black_box(&paged), 2, Strategy::Auto).unwrap()
    });
    bench.run("runtime_adaptation/full_recompile_mpeg2", || {
        map_constrained(black_box(&kernel), &cgra, &opts).unwrap()
    });
}

fn main() {
    let bench = Bench::from_env();
    bench_pagemaster_scaling(&bench);
    bench_block_scaling(&bench);
    bench_transform_vs_recompile(&bench);
}
