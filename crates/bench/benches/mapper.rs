//! Mapper compile-time comparison (§III's motivation: "the running time
//! to generate a schedule for all CGRA compilation techniques is large"):
//! list-scheduling baseline vs constrained vs DRESC-style simulated
//! annealing, on representative kernels.

use cgra_bench::microbench::Bench;
use cgra_mapper::{map_anneal, map_baseline, map_constrained, AnnealOptions, MapOptions};
use std::hint::black_box;

fn main() {
    let bench = Bench::from_env().with_max_iters(10);
    let cgra = cgra_arch::CgraConfig::square(4);
    let opts = MapOptions::default();
    for name in ["mpeg2", "sor", "sobel"] {
        let kernel = cgra_dfg::kernels::by_name(name).unwrap();
        bench.run(&format!("mapper_compile_time/baseline/{name}"), || {
            map_baseline(black_box(&kernel), &cgra, &opts).unwrap()
        });
        bench.run(&format!("mapper_compile_time/constrained/{name}"), || {
            map_constrained(black_box(&kernel), &cgra, &opts).unwrap()
        });
    }
    // Annealing is far slower; one kernel suffices to make the point.
    let kernel = cgra_dfg::kernels::mpeg2();
    bench.run("mapper_compile_time/anneal/mpeg2", || {
        map_anneal(black_box(&kernel), &cgra, &opts, &AnnealOptions::default()).unwrap()
    });
}
