//! Mapper compile-time comparison (§III's motivation: "the running time
//! to generate a schedule for all CGRA compilation techniques is large"):
//! list-scheduling baseline vs constrained vs DRESC-style simulated
//! annealing, on representative kernels.

use cgra_mapper::{map_anneal, map_baseline, map_constrained, AnnealOptions, MapOptions};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_mappers(c: &mut Criterion) {
    let mut g = c.benchmark_group("mapper_compile_time");
    g.sample_size(10);
    let cgra = cgra_arch::CgraConfig::square(4);
    let opts = MapOptions::default();
    for name in ["mpeg2", "sor", "sobel"] {
        let kernel = cgra_dfg::kernels::by_name(name).unwrap();
        g.bench_with_input(BenchmarkId::new("baseline", name), &kernel, |b, k| {
            b.iter(|| map_baseline(black_box(k), &cgra, &opts).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("constrained", name), &kernel, |b, k| {
            b.iter(|| map_constrained(black_box(k), &cgra, &opts).unwrap())
        });
    }
    // Annealing is far slower; one kernel suffices to make the point.
    let kernel = cgra_dfg::kernels::mpeg2();
    g.bench_function("anneal/mpeg2", |b| {
        b.iter(|| {
            map_anneal(
                black_box(&kernel),
                &cgra,
                &opts,
                &AnnealOptions::default(),
            )
            .unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_mappers);
criterion_main!(benches);
