//! Figure 9 — regenerates the multithreading-improvement table for the
//! 6x6 CGRA, then times the simulators.
//!
//! `cargo bench -p cgra-bench --bench fig9_multithreading` prints the
//! Fig. 9(b)-style series before timing one baseline and one
//! multithreaded simulation with the in-repo microbench harness.

use cgra_bench::fig9::{self, Fig9Params};
use cgra_bench::libcache::LibCache;
use cgra_bench::microbench::Bench;
use cgra_sim::{
    generate, simulate_baseline, simulate_multithreaded, CgraNeed, MtConfig, WorkloadParams,
};
use std::hint::black_box;

fn print_figure(cache: &LibCache) {
    let params = Fig9Params {
        seeds: 3,
        ..Default::default()
    };
    let mut points = Vec::new();
    for &s in &[2usize, 4, 9] {
        for need in CgraNeed::ALL {
            for &t in &cgra_bench::THREAD_COUNTS {
                points.push(fig9::run_point(cache, 6, s, need, t, &params).unwrap());
            }
        }
    }
    println!("\n## Figure 9(b) — 6x6 CGRA, improvement over single-threaded baseline\n");
    println!("{}", fig9::render(&points, 6));
}

fn main() {
    let cache = LibCache::new();
    print_figure(&cache);

    let lib = cache.get(6, 4);
    let workload = generate(
        &lib,
        &WorkloadParams {
            threads: 8,
            need: CgraNeed::High,
            work_per_thread: 60_000,
            bursts: 4,
            seed: 3,
        },
    );
    let bench = Bench::from_env();
    bench.run("fig9_simulators/baseline_8threads_6x6", || {
        simulate_baseline(black_box(&lib), black_box(&workload))
    });
    bench.run("fig9_simulators/multithreaded_8threads_6x6", || {
        simulate_multithreaded(black_box(&lib), black_box(&workload), MtConfig::default())
    });
}
