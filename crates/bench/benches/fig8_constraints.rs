//! Figure 8 — regenerates the constraint-cost table, then times the
//! underlying sweep.
//!
//! `cargo bench -p cgra-bench --bench fig8_constraints` prints the same
//! rows the paper's Fig. 8 plots (performance % per kernel per page size)
//! before timing one sub-figure sweep with the in-repo microbench
//! harness.

use cgra_bench::fig8;
use cgra_bench::microbench::Bench;

fn print_figure() {
    let points = fig8::run_all();
    for &(dim, _) in &cgra_bench::GRID {
        println!("\n## Figure 8 — {dim}x{dim} CGRA (100% = identical to baseline)\n");
        println!("{}", fig8::render(&points, dim));
    }
    println!("## Geometric means\n");
    for (dim, size, gm) in fig8::summary(&points) {
        println!("{dim}x{dim}  page {size:>2}: {gm:6.1}%");
    }
    println!();
}

fn main() {
    print_figure();
    let bench = Bench::from_env().with_max_iters(10);
    bench.run("fig8/sweep_4x4_page4", || fig8::run_config(4, 4));
}
