//! Figure 8 — regenerates the constraint-cost table, then times the
//! underlying sweep.
//!
//! `cargo bench -p cgra-bench --bench fig8_constraints` prints the same
//! rows the paper's Fig. 8 plots (performance % per kernel per page size)
//! before running the criterion timing of one sub-figure sweep.

use cgra_bench::fig8;
use criterion::{criterion_group, Criterion};

fn print_figure() {
    let points = fig8::run_all();
    for &(dim, _) in &cgra_bench::GRID {
        println!("\n## Figure 8 — {dim}x{dim} CGRA (100% = identical to baseline)\n");
        println!("{}", fig8::render(&points, dim));
    }
    println!("## Geometric means\n");
    for (dim, size, gm) in fig8::summary(&points) {
        println!("{dim}x{dim}  page {size:>2}: {gm:6.1}%");
    }
    println!();
}

fn bench_fig8(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8");
    g.sample_size(10);
    g.bench_function("sweep_4x4_page4", |b| b.iter(|| fig8::run_config(4, 4)));
    g.finish();
}

criterion_group!(benches, bench_fig8);

fn main() {
    print_figure();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
