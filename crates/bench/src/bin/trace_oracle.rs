//! Replay a JSONL trace and check the invariants end-state diffs can't
//! see: every revoked page was held by its victim, page ownership stays
//! exclusive, nothing is allocated on a dead page, and per-thread cycle
//! accounting is consistent with each run's reported makespan.
//!
//! Usage: `cargo run -p cgra-bench --bin trace_oracle -- TRACE.jsonl`
//!
//! Exits 0 with a summary on a clean trace, 1 with the first violation
//! (event index and precise reason) otherwise, 2 on usage/parse errors.

use cgra_obs::{check_trace, TraceEvent};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [path] = args.as_slice() else {
        eprintln!("usage: trace_oracle TRACE.jsonl");
        std::process::exit(2);
    };
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("{path}: {e}");
        std::process::exit(2);
    });
    let events = TraceEvent::parse_jsonl(&text).unwrap_or_else(|e| {
        eprintln!("{path}: {e}");
        std::process::exit(2);
    });
    match check_trace(&events) {
        Ok(report) => {
            println!(
                "{path}: OK — {} events, {} sim runs ({} aborted), {} map segments, {} transforms",
                report.events,
                report.runs,
                report.aborted_runs,
                report.map_segments,
                report.transforms
            );
        }
        Err(e) => {
            eprintln!("{path}: VIOLATION — {e}");
            std::process::exit(1);
        }
    }
}
