//! `cgra-lint` — static analysis of the whole compilation pipeline.
//!
//! Rebuilds every artifact (baseline + constrained mappings, paged
//! schedule, halving-chain shrink plans, one-dead-page degradation,
//! kernel profile) for every kernel and analyzes each one with
//! `cgra-analyze`. Exits 1 if any artifact carries an error diagnostic.
//!
//! Usage: `cargo run -p cgra-bench --bin cgra-lint --release [-- FLAGS]`
//!
//! Flags:
//!   --dim N    fabric side length (default 4)
//!   --page S   page size in PEs (default 4)
//!   --grid     lint every configuration of the paper grid instead
//!   --json     emit the findings as one JSON document

use cgra_bench::lint;

fn arg_value(args: &[String], flag: &str) -> Option<usize> {
    let i = args.iter().position(|a| a == flag)?;
    let v = args.get(i + 1).unwrap_or_else(|| {
        eprintln!("{flag} requires a value");
        std::process::exit(2);
    });
    v.parse().ok().or_else(|| {
        eprintln!("{flag}: not a number: {v}");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let dim = arg_value(&args, "--dim").unwrap_or(4) as u16;
    let page = arg_value(&args, "--page").unwrap_or(4);
    let grid = args.iter().any(|a| a == "--grid");

    let findings = lint::lint(dim, page, grid);
    let (text, errors) = lint::render(&findings);
    if args.iter().any(|a| a == "--json") {
        println!("{}", lint::render_json(&findings));
        eprint!("{text}");
    } else {
        print!("{text}");
    }
    if errors > 0 {
        std::process::exit(1);
    }
}
