//! Regenerate Figure 8: performance difference caused by the paging
//! constraints, per CGRA size and page size.
//!
//! Usage: `cargo run -p cgra-bench --bin fig8 --release [-- FLAGS]`
//!
//! Flags:
//!   --csv         emit CSV instead of tables
//!   --strict      run the strict-discipline ablation instead
//!   --jobs N, -j  worker threads (default: available cores, capped 16);
//!                 output is byte-identical for every N
//!   --no-cache    recompute every mapping; neither read nor write
//!                 target/mapcache
//!   --trace PATH  append every mapper/transform event to PATH as JSONL
//!                 (cache hits emit nothing; pair with --no-cache for a
//!                 complete trace)
//!   --metrics     print event counters after the sweep
//!   --analyze     after the sweep, statically analyze every pipeline
//!                 artifact on the paper grid with cgra-analyze
//!                 (report on stderr; exit 1 on error diagnostics;
//!                 stdout is byte-identical to a run without the flag)

use cgra_bench::engine::{Engine, EngineConfig};
use cgra_bench::fig8;
use cgra_bench::mapcache::MapCache;
use cgra_bench::obsflags::ObsFlags;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = EngineConfig::from_args(&args);
    let engine = Engine::new(cfg);
    let obs = ObsFlags::from_args(&args);
    let analyze = args.iter().any(|a| a == "--analyze");
    let cache = if cfg.use_cache {
        MapCache::persistent().traced(obs.tracer.clone())
    } else {
        MapCache::disabled().traced(obs.tracer.clone())
    };

    if args.iter().any(|a| a == "--strict") {
        println!("## Ablation — strict 1-step discipline vs stable-column (4x4, page 4)\n");
        println!("kernel    II(stable)  II(strict)");
        for (name, stable, strict) in fig8::strict_ablation_with(&engine, &cache, 4, 4) {
            println!(
                "{name:>8}  {stable:>10}  {}",
                strict
                    .map(|x| x.to_string())
                    .unwrap_or_else(|| "unmappable".into())
            );
        }
        eprintln!("mapcache: {:?}", cache.stats());
        finish(&obs, analyze);
        return;
    }
    let points = fig8::run_all_with(&engine, &cache);
    // Cache statistics go to stderr so stdout stays byte-deterministic.
    eprintln!("mapcache: {:?}", cache.stats());

    if args.iter().any(|a| a == "--csv") {
        let rows: Vec<Vec<String>> = points
            .iter()
            .map(|p| {
                vec![
                    p.dim.to_string(),
                    p.page_size.to_string(),
                    p.kernel.clone(),
                    p.ii_baseline.to_string(),
                    p.ii_constrained.to_string(),
                    format!("{:.1}", p.performance_pct()),
                ]
            })
            .collect();
        print!(
            "{}",
            cgra_bench::table::csv(
                &[
                    "dim",
                    "page_size",
                    "kernel",
                    "ii_baseline",
                    "ii_constrained",
                    "perf_pct"
                ],
                &rows
            )
        );
        finish(&obs, analyze);
        return;
    }

    for &(dim, _) in &cgra_bench::GRID {
        println!("## Figure 8 — {dim}x{dim} CGRA (100% = identical to baseline)\n");
        println!("{}", fig8::render(&points, dim));
    }
    println!("## Geometric-mean performance per configuration\n");
    for (dim, size, gm) in fig8::summary(&points) {
        println!("{dim}x{dim}  page {size:>2}: {gm:6.1}%");
    }
    finish(&obs, analyze);
}

/// `--analyze` runs after the sweep so a clean run's stdout is already
/// complete and byte-identical; diagnostics go to stderr and an error
/// anywhere fails the run.
fn finish(obs: &ObsFlags, analyze: bool) {
    let failed = analyze && cgra_bench::lint::analyze_grid_to_stderr();
    obs.finish();
    if failed {
        std::process::exit(1);
    }
}
