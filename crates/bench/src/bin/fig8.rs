//! Regenerate Figure 8: performance difference caused by the paging
//! constraints, per CGRA size and page size.
//!
//! Usage: `cargo run -p cgra-bench --bin fig8 --release [-- --csv]`

use cgra_bench::fig8;

fn main() {
    let csv = std::env::args().any(|a| a == "--csv");
    if std::env::args().any(|a| a == "--strict") {
        println!("## Ablation — strict 1-step discipline vs stable-column (4x4, page 4)\n");
        println!("kernel    II(stable)  II(strict)");
        for (name, stable, strict) in fig8::strict_ablation(4, 4) {
            println!(
                "{name:>8}  {stable:>10}  {}",
                strict.map(|x| x.to_string()).unwrap_or_else(|| "unmappable".into())
            );
        }
        return;
    }
    let points = fig8::run_all();

    if csv {
        let rows: Vec<Vec<String>> = points
            .iter()
            .map(|p| {
                vec![
                    p.dim.to_string(),
                    p.page_size.to_string(),
                    p.kernel.clone(),
                    p.ii_baseline.to_string(),
                    p.ii_constrained.to_string(),
                    format!("{:.1}", p.performance_pct()),
                ]
            })
            .collect();
        print!(
            "{}",
            cgra_bench::table::csv(
                &["dim", "page_size", "kernel", "ii_baseline", "ii_constrained", "perf_pct"],
                &rows
            )
        );
        return;
    }

    for &(dim, _) in &cgra_bench::GRID {
        println!("## Figure 8 — {dim}x{dim} CGRA (100% = identical to baseline)\n");
        println!("{}", fig8::render(&points, dim));
    }
    println!("## Geometric-mean performance per configuration\n");
    for (dim, size, gm) in fig8::summary(&points) {
        println!("{dim}x{dim}  page {size:>2}: {gm:6.1}%");
    }
}
