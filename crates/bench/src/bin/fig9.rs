//! Regenerate Figure 9: performance improvement from multithreading
//! support, per CGRA size, page size, CGRA need and thread count.
//!
//! Usage:
//!   cargo run -p cgra-bench --bin fig9 --release
//!   cargo run -p cgra-bench --bin fig9 --release -- --csv
//!   cargo run -p cgra-bench --bin fig9 --release -- --ablation-overhead
//!   cargo run -p cgra-bench --bin fig9 --release -- --ablation-policy

use cgra_bench::fig9::{self, Fig9Params};
use cgra_bench::libcache::LibCache;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let cache = LibCache::new();

    if args.iter().any(|a| a == "--ablation-overhead") {
        println!("## Ablation A1 — switch-transformation overhead (8x8, page 4, 8 threads, need 87.5%)\n");
        println!("overhead_cycles, improvement_pct");
        for (overhead, imp) in fig9::ablation_overhead(&cache, 8, 4) {
            println!("{overhead:>8}, {imp:+.1}%");
        }
        return;
    }
    if args.iter().any(|a| a == "--ablation-policy") {
        println!("## Ablation A2 — expansion policy (8x8, page 4, 8 threads, need 87.5%)\n");
        for (name, imp) in fig9::ablation_policy(&cache, 8, 4) {
            println!("{name:>16}: {imp:+.1}%");
        }
        return;
    }

    let points = fig9::run_all(&cache, &Fig9Params::default());

    if args.iter().any(|a| a == "--csv") {
        let rows: Vec<Vec<String>> = points
            .iter()
            .map(|p| {
                vec![
                    p.dim.to_string(),
                    p.page_size.to_string(),
                    p.need.label().to_string(),
                    p.threads.to_string(),
                    format!("{:.2}", p.improvement_pct),
                    format!("{:.1}", p.mean_shrinks),
                ]
            })
            .collect();
        print!(
            "{}",
            cgra_bench::table::csv(
                &["dim", "page_size", "need", "threads", "improvement_pct", "mean_shrinks"],
                &rows
            )
        );
        return;
    }

    for &(dim, _) in &cgra_bench::GRID {
        println!("## Figure 9 — {dim}x{dim} CGRA (improvement over single-threaded baseline)\n");
        println!("{}", fig9::render(&points, dim));
    }
    println!("## Headline (paper: >30% on 4x4, >75% on 6x6, >150% on 8x8)\n");
    for (dim, best) in fig9::headline(&points) {
        println!("{dim}x{dim}: best improvement at 16 threads = {best:+.1}%");
    }
}
