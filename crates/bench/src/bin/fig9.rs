//! Regenerate Figure 9: performance improvement from multithreading
//! support, per CGRA size, page size, CGRA need and thread count.
//!
//! Usage:
//!   cargo run -p cgra-bench --bin fig9 --release [-- FLAGS]
//!
//! Flags:
//!   --csv                 emit CSV instead of tables
//!   --ablation-overhead   run ablation A1 instead
//!   --ablation-policy     run ablation A2 instead
//!   --faults SPEC         fault-injection degradation curve instead of
//!                         the grid: `at=<t>,page=<p>[,degrade]` or
//!                         `mtbf=<mean>,count=<n>[,seed=<s>][,degrade]`;
//!                         add `mttr=<cycles>` to make the faults
//!                         transient (pages repair after that interval)
//!                         and get the degradation-and-recovery curve
//!                         instead; `off` runs the plain fault-free grid
//!   --smoke               reduced seeds/work (fast CI smoke run)
//!   --jobs N, -j N        worker threads (default: available cores,
//!                         capped 16); output is byte-identical for all N
//!   --no-cache            recompute every mapping; neither read nor
//!                         write target/mapcache
//!   --trace PATH          append every mapper/transform/simulator event
//!                         to PATH as JSONL (replayable by trace_oracle)
//!   --metrics             print event counters and cycle histograms
//!   --analyze             after the sweep, statically analyze every
//!                         pipeline artifact on the paper grid with
//!                         cgra-analyze (report on stderr; exit 1 on
//!                         error diagnostics; stdout is byte-identical
//!                         to a run without the flag)
//!                         after the sweep

use cgra_arch::FaultSpec;
use cgra_bench::engine::{Engine, EngineConfig};
use cgra_bench::fig9::{self, Fig9Params};
use cgra_bench::libcache::LibCache;
use cgra_bench::obsflags::ObsFlags;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = EngineConfig::from_args(&args);
    let engine = Engine::new(cfg);
    let obs = ObsFlags::from_args(&args);
    let analyze = args.iter().any(|a| a == "--analyze");
    let cache = LibCache::for_config_traced(cfg, obs.tracer.clone());

    let mut params = Fig9Params::default();
    if args.iter().any(|a| a == "--smoke") {
        params.seeds = 2;
        params.work_per_thread = 20_000;
        params.bursts = 2;
    }

    if args.iter().any(|a| a == "--ablation-overhead") {
        println!("## Ablation A1 — switch-transformation overhead (8x8, page 4, 8 threads, need 87.5%)\n");
        println!("overhead_cycles, improvement_pct");
        for (overhead, imp) in fig9::ablation_overhead(&cache, 8, 4) {
            println!("{overhead:>8}, {imp:+.1}%");
        }
        finish(&obs, analyze);
        return;
    }
    if args.iter().any(|a| a == "--ablation-policy") {
        println!("## Ablation A2 — expansion policy (8x8, page 4, 8 threads, need 87.5%)\n");
        for (name, imp) in fig9::ablation_policy(&cache, 8, 4) {
            println!("{name:>16}: {imp:+.1}%");
        }
        finish(&obs, analyze);
        return;
    }

    // --faults: throughput-vs-fault-rate degradation curve at the
    // highest-contention operating point, instead of the full grid.
    if let Some(i) = args.iter().position(|a| a == "--faults") {
        let raw = args.get(i + 1).unwrap_or_else(|| {
            eprintln!("--faults requires a spec, e.g. --faults mtbf=20000,count=4");
            std::process::exit(2);
        });
        let base = FaultSpec::parse(raw).unwrap_or_else(|e| {
            // Point at the offending clause: the typed error carries its
            // byte span within the spec string.
            let (off, len) = e.span();
            eprintln!("--faults {raw}");
            eprintln!("         {}{} {e}", " ".repeat(off), "^".repeat(len.max(1)));
            std::process::exit(2);
        });
        if base.is_off() {
            // Fall through to the plain grid: it is fault-free by default,
            // so `--faults off` must be byte-identical to no flag at all.
            eprintln!("--faults off: nothing to inject; running the fault-free grid");
        } else if base.mttr().is_some() {
            // Transient faults: the degradation curve gains its repair
            // dimension — fault-free and no-repair reference rows, then
            // descending mttr.
            println!(
                "## Degradation-and-recovery curve — faults `{base}` (8x8, page 4, 8 threads, need 87.5%)\n"
            );
            let curve =
                fig9::recovery_curve_traced(&engine, &cache, 8, 4, &base, &params, &obs.tracer);
            println!("{}", fig9::render_recovery_curve(&curve));
            eprintln!("mapcache: {:?}", cache.map_cache().stats());
            finish(&obs, analyze);
            return;
        } else {
            println!(
                "## Degradation curve — faults `{base}` (8x8, page 4, 8 threads, need 87.5%)\n"
            );
            let curve =
                fig9::degradation_curve_traced(&engine, &cache, 8, 4, base, &params, &obs.tracer);
            println!("{}", fig9::render_curve(&curve));
            eprintln!("mapcache: {:?}", cache.map_cache().stats());
            finish(&obs, analyze);
            return;
        }
    }

    let results = fig9::run_all_with_traced(&engine, &cache, &params, &obs.tracer);
    // Cache statistics go to stderr so stdout stays byte-deterministic.
    eprintln!("mapcache: {:?}", cache.map_cache().stats());
    let (points, errors) = fig9::partition_results(results);
    for (i, e) in &errors {
        eprintln!("point {i} failed: {e}");
    }

    if args.iter().any(|a| a == "--csv") {
        let rows: Vec<Vec<String>> = points
            .iter()
            .map(|p| {
                vec![
                    p.dim.to_string(),
                    p.page_size.to_string(),
                    p.need.label().to_string(),
                    p.threads.to_string(),
                    format!("{:.2}", p.improvement_pct),
                    format!("{:.1}", p.mean_shrinks),
                ]
            })
            .collect();
        print!(
            "{}",
            cgra_bench::table::csv(
                &[
                    "dim",
                    "page_size",
                    "need",
                    "threads",
                    "improvement_pct",
                    "mean_shrinks"
                ],
                &rows
            )
        );
        finish(&obs, analyze);
        if !errors.is_empty() {
            std::process::exit(1);
        }
        return;
    }

    for &(dim, _) in &cgra_bench::GRID {
        println!("## Figure 9 — {dim}x{dim} CGRA (improvement over single-threaded baseline)\n");
        println!("{}", fig9::render(&points, dim));
    }
    println!("## Headline (paper: >30% on 4x4, >75% on 6x6, >150% on 8x8)\n");
    for (dim, best) in fig9::headline(&points) {
        println!("{dim}x{dim}: best improvement at 16 threads = {best:+.1}%");
    }
    finish(&obs, analyze);
    if !errors.is_empty() {
        std::process::exit(1);
    }
}

/// `--analyze` runs after the sweep so a clean run's stdout is already
/// complete and byte-identical; diagnostics go to stderr and an error
/// anywhere fails the run.
fn finish(obs: &ObsFlags, analyze: bool) {
    let failed = analyze && cgra_bench::lint::analyze_grid_to_stderr();
    obs.finish();
    if failed {
        std::process::exit(1);
    }
}
