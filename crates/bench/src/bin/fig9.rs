//! Regenerate Figure 9: performance improvement from multithreading
//! support, per CGRA size, page size, CGRA need and thread count.
//!
//! Usage:
//!   cargo run -p cgra-bench --bin fig9 --release [-- FLAGS]
//!
//! Flags:
//!   --csv                 emit CSV instead of tables
//!   --ablation-overhead   run ablation A1 instead
//!   --ablation-policy     run ablation A2 instead
//!   --jobs N, -j N        worker threads (default: available cores,
//!                         capped 16); output is byte-identical for all N
//!   --no-cache            recompute every mapping; neither read nor
//!                         write target/mapcache

use cgra_bench::engine::{Engine, EngineConfig};
use cgra_bench::fig9::{self, Fig9Params};
use cgra_bench::libcache::LibCache;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = EngineConfig::from_args(&args);
    let engine = Engine::new(cfg);
    let cache = LibCache::for_config(cfg);

    if args.iter().any(|a| a == "--ablation-overhead") {
        println!("## Ablation A1 — switch-transformation overhead (8x8, page 4, 8 threads, need 87.5%)\n");
        println!("overhead_cycles, improvement_pct");
        for (overhead, imp) in fig9::ablation_overhead(&cache, 8, 4) {
            println!("{overhead:>8}, {imp:+.1}%");
        }
        return;
    }
    if args.iter().any(|a| a == "--ablation-policy") {
        println!("## Ablation A2 — expansion policy (8x8, page 4, 8 threads, need 87.5%)\n");
        for (name, imp) in fig9::ablation_policy(&cache, 8, 4) {
            println!("{name:>16}: {imp:+.1}%");
        }
        return;
    }

    let points = fig9::run_all_with(&engine, &cache, &Fig9Params::default());
    // Cache statistics go to stderr so stdout stays byte-deterministic.
    eprintln!("mapcache: {:?}", cache.map_cache().stats());

    if args.iter().any(|a| a == "--csv") {
        let rows: Vec<Vec<String>> = points
            .iter()
            .map(|p| {
                vec![
                    p.dim.to_string(),
                    p.page_size.to_string(),
                    p.need.label().to_string(),
                    p.threads.to_string(),
                    format!("{:.2}", p.improvement_pct),
                    format!("{:.1}", p.mean_shrinks),
                ]
            })
            .collect();
        print!(
            "{}",
            cgra_bench::table::csv(
                &[
                    "dim",
                    "page_size",
                    "need",
                    "threads",
                    "improvement_pct",
                    "mean_shrinks"
                ],
                &rows
            )
        );
        return;
    }

    for &(dim, _) in &cgra_bench::GRID {
        println!("## Figure 9 — {dim}x{dim} CGRA (improvement over single-threaded baseline)\n");
        println!("{}", fig9::render(&points, dim));
    }
    println!("## Headline (paper: >30% on 4x4, >75% on 6x6, >150% on 8x8)\n");
    for (dim, best) in fig9::headline(&points) {
        println!("{dim}x{dim}: best improvement at 16 threads = {best:+.1}%");
    }
}
