//! Figure 9 — system-level throughput improvement from multithreading.
//!
//! For each CGRA size, page size, CGRA need (50/75/87.5 %), and thread
//! count (1–16), simulate the same randomly generated workload on the
//! single-threaded FCFS baseline and on the multithreaded page-multiplexed
//! CGRA, and report the percentage improvement in completion time,
//! averaged over seeds.
//!
//! The sweep runs in two [`Engine`] phases: first the kernel libraries
//! for every fabric in the grid are compiled (in parallel, deduplicated
//! by the mapping cache), then the simulation points run in parallel.
//! Workload seeds derive from point *coordinates* via
//! [`crate::engine::point_seed`], so `--jobs N` output is byte-identical
//! for every `N`.

use crate::engine::{point_seed, Engine};
use crate::libcache::LibCache;
use cgra_arch::FaultSpec;
use cgra_obs::Tracer;
use cgra_sim::{
    generate, improvement_percent, simulate_baseline, simulate_multithreaded_faulty_traced,
    CgraNeed, ExpandPolicy, FaultStats, MtConfig, SimError, WorkloadParams,
};
use serde::{Deserialize, Serialize};

/// One bar of Figure 9 (mean over seeds).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig9Point {
    /// CGRA dimension.
    pub dim: u16,
    /// Page size in PEs.
    pub page_size: usize,
    /// CGRA need operating point.
    pub need: CgraNeed,
    /// Number of threads.
    pub threads: usize,
    /// Mean improvement % over the baseline system.
    pub improvement_pct: f64,
    /// Mean shrink transformations per run.
    pub mean_shrinks: f64,
    /// Mean baseline makespan (cycles).
    pub base_makespan: f64,
    /// Mean multithreaded makespan (cycles).
    pub mt_makespan: f64,
    /// Fault counters summed over the point's seeds (all zero when the
    /// sweep runs fault-free).
    pub faults: FaultStats,
}

/// Sweep parameters.
#[derive(Debug, Clone, Copy)]
pub struct Fig9Params {
    /// Seeds averaged per point.
    pub seeds: u64,
    /// Nominal work per thread in cycles.
    pub work_per_thread: u64,
    /// CGRA bursts per thread.
    pub bursts: usize,
    /// Multithreaded-system knobs.
    pub mt: MtConfig,
    /// Fault schedule injected into every multithreaded run (the
    /// baseline stays fault-free as the fixed reference). MTBF specs are
    /// reseeded per point/seed so timelines are independent but
    /// reproducible.
    pub faults: FaultSpec,
}

impl Default for Fig9Params {
    fn default() -> Self {
        Fig9Params {
            seeds: crate::DEFAULT_SEEDS,
            work_per_thread: 60_000,
            bursts: 4,
            mt: MtConfig::default(),
            faults: FaultSpec::Off,
        }
    }
}

/// Measure one Fig. 9 point.
///
/// # Errors
///
/// Propagates the first [`SimError`] from the multithreaded simulator —
/// e.g. a fault schedule that starves a thread. A poisoned point fills
/// its own result slot; the rest of the sweep completes.
pub fn run_point(
    cache: &LibCache,
    dim: u16,
    page_size: usize,
    need: CgraNeed,
    threads: usize,
    params: &Fig9Params,
) -> Result<Fig9Point, SimError> {
    run_point_traced(cache, dim, page_size, need, threads, params, &Tracer::off())
}

/// [`run_point`] with every multithreaded run of the point emitted to
/// `tracer` (the baseline FCFS runs stay untraced — they are the fixed
/// reference). The point's whole seed loop is forwarded as one batch, so
/// parallel sweep points writing to a shared sink interleave at point
/// granularity, never mid-run.
pub fn run_point_traced(
    cache: &LibCache,
    dim: u16,
    page_size: usize,
    need: CgraNeed,
    threads: usize,
    params: &Fig9Params,
    tracer: &Tracer,
) -> Result<Fig9Point, SimError> {
    let lib = cache.get(dim, page_size);
    let mut improvements = Vec::with_capacity(params.seeds as usize);
    let mut shrinks = 0.0;
    let mut base_total = 0.0;
    let mut mt_total = 0.0;
    let mut faults = FaultStats::default();
    tracer.batched(|tracer| -> Result<(), SimError> {
        for seed in 0..params.seeds {
            // Seeded from the point's coordinates only — never from worker
            // identity or execution order (the engine's determinism
            // contract).
            let wl_seed = point_seed(&[
                dim as u64,
                page_size as u64,
                need as u64,
                threads as u64,
                seed,
            ]);
            let workload = generate(
                &lib,
                &WorkloadParams {
                    threads,
                    need,
                    work_per_thread: params.work_per_thread,
                    bursts: params.bursts,
                    seed: wl_seed,
                },
            );
            let events = params.faults.reseeded(wl_seed).schedule(lib.num_pages);
            let base = simulate_baseline(&lib, &workload);
            let mt =
                simulate_multithreaded_faulty_traced(&lib, &workload, params.mt, &events, tracer)?;
            improvements.push(improvement_percent(base.makespan, mt.makespan));
            shrinks += mt.shrinks as f64;
            base_total += base.makespan as f64;
            mt_total += mt.makespan as f64;
            faults.absorb(&mt.faults);
        }
        Ok(())
    })?;
    let n = params.seeds as f64;
    Ok(Fig9Point {
        dim,
        page_size,
        need,
        threads,
        improvement_pct: improvements.iter().sum::<f64>() / n,
        mean_shrinks: shrinks / n,
        base_makespan: base_total / n,
        mt_makespan: mt_total / n,
        faults,
    })
}

/// Run the full Fig. 9 grid through an explicit engine and cache.
///
/// Each point carries its own `Result`: one poisoned point (a fault
/// schedule that starves a thread, a profile hole) reports its
/// [`SimError`] in its slot while every other point completes.
pub fn run_all_with(
    engine: &Engine,
    cache: &LibCache,
    params: &Fig9Params,
) -> Vec<Result<Fig9Point, SimError>> {
    run_all_with_traced(engine, cache, params, &Tracer::off())
}

/// [`run_all_with`] with every point's multithreaded runs emitted to
/// `tracer` (each point one contiguous batch; see [`run_point_traced`]).
/// Compile events reach the trace only if `cache` itself was built over
/// a traced [`MapCache`](crate::mapcache::MapCache).
pub fn run_all_with_traced(
    engine: &Engine,
    cache: &LibCache,
    params: &Fig9Params,
    tracer: &Tracer,
) -> Vec<Result<Fig9Point, SimError>> {
    // Phase 1: compile every fabric's library. Parallel across configs;
    // the mapping cache deduplicates shared per-kernel profiles, so no
    // compilation happens twice even when two configs race.
    let configs: Vec<(u16, usize)> = crate::GRID
        .iter()
        .flat_map(|&(dim, sizes)| sizes.iter().map(move |&s| (dim, s)))
        .collect();
    engine.run(&configs, |&(dim, s)| {
        cache.get(dim, s);
    });

    // Phase 2: the simulation points, self-scheduled across workers.
    let mut points: Vec<(u16, usize, CgraNeed, usize)> = Vec::new();
    for &(dim, sizes) in &crate::GRID {
        for &s in sizes {
            for need in CgraNeed::ALL {
                for &t in &crate::THREAD_COUNTS {
                    points.push((dim, s, need, t));
                }
            }
        }
    }
    engine.run(&points, |&(dim, s, need, t)| {
        run_point_traced(cache, dim, s, need, t, params, tracer)
    })
}

/// Run the full Fig. 9 grid with default parallelism.
pub fn run_all(cache: &LibCache, params: &Fig9Params) -> Vec<Result<Fig9Point, SimError>> {
    run_all_with(&Engine::default(), cache, params)
}

/// Split sweep results into the completed points and `(index, error)`
/// pairs for the poisoned ones, preserving point order.
pub fn partition_results(
    results: Vec<Result<Fig9Point, SimError>>,
) -> (Vec<Fig9Point>, Vec<(usize, SimError)>) {
    let mut points = Vec::with_capacity(results.len());
    let mut errors = Vec::new();
    for (i, r) in results.into_iter().enumerate() {
        match r {
            Ok(p) => points.push(p),
            Err(e) => errors.push((i, e)),
        }
    }
    (points, errors)
}

/// Render one sub-figure (one CGRA size): rows = thread counts × needs.
pub fn render(points: &[Fig9Point], dim: u16) -> String {
    let sizes: Vec<usize> = {
        let mut v: Vec<usize> = points
            .iter()
            .filter(|p| p.dim == dim)
            .map(|p| p.page_size)
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    let mut headers: Vec<String> = vec!["threads".into(), "need".into()];
    for s in &sizes {
        headers.push(format!("page {s}: improv%"));
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut rows = Vec::new();
    for &t in &crate::THREAD_COUNTS {
        for need in CgraNeed::ALL {
            let mut row = vec![t.to_string(), need.label().to_string()];
            for &s in &sizes {
                match points
                    .iter()
                    .find(|p| p.dim == dim && p.page_size == s && p.need == need && p.threads == t)
                {
                    Some(p) => row.push(format!("{:+.1}", p.improvement_pct)),
                    None => row.push("-".into()),
                }
            }
            rows.push(row);
        }
    }
    crate::table::markdown(&header_refs, &rows)
}

/// The headline averages: mean improvement per CGRA size at the highest
/// contention (16 threads, all needs, best page size), which the abstract
/// summarises as "over 30%, 75%, and 150% on 4x4, 6x6, and 8x8".
pub fn headline(points: &[Fig9Point]) -> Vec<(u16, f64)> {
    [4u16, 6, 8]
        .iter()
        .map(|&dim| {
            let best = points
                .iter()
                .filter(|p| p.dim == dim && p.threads == 16)
                .map(|p| p.improvement_pct)
                .fold(f64::MIN, f64::max);
            (dim, best)
        })
        .collect()
}

/// Ablation A1: improvement vs switch-transformation overhead.
pub fn ablation_overhead(cache: &LibCache, dim: u16, page_size: usize) -> Vec<(u64, f64)> {
    [0u64, 10, 100, 1_000, 10_000]
        .iter()
        .map(|&overhead| {
            let params = Fig9Params {
                mt: MtConfig {
                    switch_overhead: overhead,
                    ..Default::default()
                },
                ..Default::default()
            };
            let p = run_point(cache, dim, page_size, CgraNeed::High, 8, &params)
                .expect("fault-free ablation point");
            (overhead, p.improvement_pct)
        })
        .collect()
}

/// Ablation A2: improvement vs expansion policy.
pub fn ablation_policy(cache: &LibCache, dim: u16, page_size: usize) -> Vec<(String, f64)> {
    [
        ("smallest-first", ExpandPolicy::SmallestFirst),
        ("largest-first", ExpandPolicy::LargestFirst),
        ("no-expansion", ExpandPolicy::None),
    ]
    .iter()
    .map(|(name, policy)| {
        let params = Fig9Params {
            mt: MtConfig {
                expand: *policy,
                ..Default::default()
            },
            ..Default::default()
        };
        let p = run_point(cache, dim, page_size, CgraNeed::High, 8, &params)
            .expect("fault-free ablation point");
        (name.to_string(), p.improvement_pct)
    })
    .collect()
}

/// Fault-rate scale factors of the degradation curve: 0 is the
/// fault-free reference row, then the base spec's rate ×1, ×2, ×4, ×8.
pub const CURVE_SCALES: [u64; 5] = [0, 1, 2, 4, 8];

/// Throughput-vs-fault-rate degradation curve at one operating point.
///
/// Row 0 is the fault-free reference; each following row scales the base
/// MTBF spec's fault rate by [`CURVE_SCALES`] (for `At` specs the rate
/// axis collapses, but the off-vs-on comparison still stands). Poisoned
/// rows (e.g. every page dead) report their error in their slot.
#[allow(clippy::type_complexity)]
pub fn degradation_curve(
    engine: &Engine,
    cache: &LibCache,
    dim: u16,
    page_size: usize,
    base: FaultSpec,
    params: &Fig9Params,
) -> Vec<(u64, FaultSpec, Result<Fig9Point, SimError>)> {
    degradation_curve_traced(engine, cache, dim, page_size, base, params, &Tracer::off())
}

/// [`degradation_curve`] with every row's multithreaded runs emitted to
/// `tracer` (one contiguous batch per row; see [`run_point_traced`]).
#[allow(clippy::type_complexity, clippy::too_many_arguments)]
pub fn degradation_curve_traced(
    engine: &Engine,
    cache: &LibCache,
    dim: u16,
    page_size: usize,
    base: FaultSpec,
    params: &Fig9Params,
    tracer: &Tracer,
) -> Vec<(u64, FaultSpec, Result<Fig9Point, SimError>)> {
    cache.get(dim, page_size); // compile once, outside the sweep
    let rows: Vec<(u64, FaultSpec)> = CURVE_SCALES
        .iter()
        .map(|&scale| {
            let spec = if scale == 0 {
                FaultSpec::Off
            } else {
                base.scaled(scale)
            };
            (scale, spec)
        })
        .collect();
    let results = engine.run(&rows, |&(_, spec)| {
        let row_params = Fig9Params {
            faults: spec,
            ..*params
        };
        run_point_traced(
            cache,
            dim,
            page_size,
            CgraNeed::High,
            8,
            &row_params,
            tracer,
        )
    });
    rows.into_iter()
        .zip(results)
        .map(|((scale, spec), r)| (scale, spec, r))
        .collect()
}

/// Render a degradation curve as a markdown table (errors in-row).
pub fn render_curve(curve: &[(u64, FaultSpec, Result<Fig9Point, SimError>)]) -> String {
    let headers = [
        "rate x",
        "spec",
        "improv%",
        "mt makespan",
        "killed",
        "degraded",
        "remapped",
        "revoked",
        "repairs",
        "reexpand",
        "recovery cyc",
    ];
    let rows: Vec<Vec<String>> = curve
        .iter()
        .map(|(scale, spec, r)| match r {
            Ok(p) => vec![
                scale.to_string(),
                spec.to_string(),
                format!("{:+.1}", p.improvement_pct),
                format!("{:.0}", p.mt_makespan),
                p.faults.pages_killed.to_string(),
                p.faults.pages_degraded.to_string(),
                p.faults.threads_remapped.to_string(),
                p.faults.threads_revoked.to_string(),
                p.faults.repairs.to_string(),
                p.faults.reexpansions.to_string(),
                p.faults.recovery_cycles.to_string(),
            ],
            Err(e) => {
                let mut row = vec![scale.to_string(), spec.to_string(), format!("error: {e}")];
                row.resize(headers.len(), "-".into());
                row
            }
        })
        .collect();
    crate::table::markdown(&headers, &rows)
}

/// MTTR scale factors of the recovery curve: each row multiplies the
/// base spec's repair interval, descending so the table reads as
/// "repairs get faster, throughput returns".
pub const RECOVERY_MTTR_SCALES: [u64; 4] = [8, 4, 2, 1];

/// Throughput-vs-repair-speed *recovery* curve at one operating point —
/// the degradation curve's mttr dimension.
///
/// Row 0 is the fault-free reference and row 1 the same fault schedule
/// with repair disabled (every transient made permanent): the two ends
/// of the recovery spectrum. Each following row repairs the same
/// strikes with the base spec's mttr scaled by [`RECOVERY_MTTR_SCALES`]
/// — as the repair interval shrinks, throughput visibly returns toward
/// the fault-free reference. `base` should carry an `mttr=` clause
/// (rows fall back to a 1000-cycle repair interval when it does not).
#[allow(clippy::type_complexity)]
pub fn recovery_curve(
    engine: &Engine,
    cache: &LibCache,
    dim: u16,
    page_size: usize,
    base: &FaultSpec,
    params: &Fig9Params,
) -> Vec<(String, FaultSpec, Result<Fig9Point, SimError>)> {
    recovery_curve_traced(engine, cache, dim, page_size, base, params, &Tracer::off())
}

/// [`recovery_curve`] with every row's multithreaded runs emitted to
/// `tracer` (one contiguous batch per row; see [`run_point_traced`]).
#[allow(clippy::type_complexity, clippy::too_many_arguments)]
pub fn recovery_curve_traced(
    engine: &Engine,
    cache: &LibCache,
    dim: u16,
    page_size: usize,
    base: &FaultSpec,
    params: &Fig9Params,
    tracer: &Tracer,
) -> Vec<(String, FaultSpec, Result<Fig9Point, SimError>)> {
    cache.get(dim, page_size); // compile once, outside the sweep
    let mttr = base.mttr().unwrap_or(1_000);
    let mut rows: Vec<(String, FaultSpec)> = vec![
        ("fault-free".into(), FaultSpec::Off),
        ("no-repair".into(), base.permanent()),
    ];
    for &scale in &RECOVERY_MTTR_SCALES {
        rows.push((
            format!("mttr x{scale}"),
            base.with_mttr(mttr.saturating_mul(scale)),
        ));
    }
    let results = engine.run(&rows, |(_, spec)| {
        let row_params = Fig9Params {
            faults: *spec,
            ..*params
        };
        run_point_traced(
            cache,
            dim,
            page_size,
            CgraNeed::High,
            8,
            &row_params,
            tracer,
        )
    });
    rows.into_iter()
        .zip(results)
        .map(|((label, spec), r)| (label, spec, r))
        .collect()
}

/// Render a recovery curve as a markdown table (errors in-row).
pub fn render_recovery_curve(curve: &[(String, FaultSpec, Result<Fig9Point, SimError>)]) -> String {
    let headers = [
        "row",
        "spec",
        "improv%",
        "mt makespan",
        "killed",
        "remapped",
        "revoked",
        "repairs",
        "reexpand",
        "recovery cyc",
    ];
    let rows: Vec<Vec<String>> = curve
        .iter()
        .map(|(label, spec, r)| match r {
            Ok(p) => vec![
                label.clone(),
                spec.to_string(),
                format!("{:+.1}", p.improvement_pct),
                format!("{:.0}", p.mt_makespan),
                p.faults.pages_killed.to_string(),
                p.faults.threads_remapped.to_string(),
                p.faults.threads_revoked.to_string(),
                p.faults.repairs.to_string(),
                p.faults.reexpansions.to_string(),
                p.faults.recovery_cycles.to_string(),
            ],
            Err(e) => {
                let mut row = vec![label.clone(), spec.to_string(), format!("error: {e}")];
                row.resize(headers.len(), "-".into());
                row
            }
        })
        .collect();
    crate::table::markdown(&headers, &rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_params() -> Fig9Params {
        Fig9Params {
            seeds: 2,
            work_per_thread: 20_000,
            bursts: 2,
            mt: MtConfig::default(),
            faults: FaultSpec::Off,
        }
    }

    #[test]
    fn single_thread_improvement_is_small() {
        let cache = LibCache::new();
        let p = run_point(&cache, 4, 4, CgraNeed::High, 1, &quick_params()).unwrap();
        // One thread cannot benefit; constrained II may even cost a bit.
        assert!(p.improvement_pct <= 5.0, "{}", p.improvement_pct);
    }

    #[test]
    fn contention_brings_improvement_on_8x8() {
        let cache = LibCache::new();
        let p = run_point(&cache, 8, 4, CgraNeed::High, 16, &quick_params()).unwrap();
        assert!(p.improvement_pct > 50.0, "got {:.1}%", p.improvement_pct);
    }

    #[test]
    fn improvement_grows_with_array_size() {
        let cache = LibCache::new();
        let params = quick_params();
        let p4 = run_point(&cache, 4, 4, CgraNeed::High, 16, &params).unwrap();
        let p8 = run_point(&cache, 8, 4, CgraNeed::High, 16, &params).unwrap();
        assert!(
            p8.improvement_pct > p4.improvement_pct,
            "8x8 {:.1}% <= 4x4 {:.1}%",
            p8.improvement_pct,
            p4.improvement_pct
        );
    }

    #[test]
    fn render_has_all_thread_counts() {
        let cache = LibCache::new();
        let pts = vec![run_point(&cache, 4, 4, CgraNeed::Low, 2, &quick_params()).unwrap()];
        let s = render(&pts, 4);
        // The measured cell is rendered signed; everything else is "-".
        assert!(s.contains("50%"));
        assert!(s.lines().count() > crate::THREAD_COUNTS.len() * CgraNeed::ALL.len());
    }

    #[test]
    fn run_point_is_deterministic() {
        let cache = LibCache::new();
        let a = run_point(&cache, 4, 2, CgraNeed::Medium, 4, &quick_params());
        let b = run_point(&cache, 4, 2, CgraNeed::Medium, 4, &quick_params());
        assert_eq!(a, b);
    }

    #[test]
    fn off_faults_match_the_fault_free_point() {
        let cache = LibCache::new();
        let plain = run_point(&cache, 4, 4, CgraNeed::High, 8, &quick_params()).unwrap();
        let off = run_point(
            &cache,
            4,
            4,
            CgraNeed::High,
            8,
            &Fig9Params {
                faults: FaultSpec::Off,
                ..quick_params()
            },
        )
        .unwrap();
        assert_eq!(plain, off);
        assert!(!plain.faults.any());
    }

    #[test]
    fn faulty_point_reports_counters_and_degrades() {
        let cache = LibCache::new();
        let params = Fig9Params {
            faults: FaultSpec::Mtbf {
                mean: 5_000,
                count: 3,
                seed: 7,
                kind: cgra_arch::FaultKind::Kill,
            },
            ..quick_params()
        };
        let faulty = run_point(&cache, 8, 4, CgraNeed::High, 8, &params).unwrap();
        let clean = run_point(&cache, 8, 4, CgraNeed::High, 8, &quick_params()).unwrap();
        assert!(faulty.faults.any());
        assert!(faulty.faults.pages_killed > 0);
        assert!(
            faulty.mt_makespan >= clean.mt_makespan,
            "killing pages should not speed the system up: {} < {}",
            faulty.mt_makespan,
            clean.mt_makespan
        );
    }

    #[test]
    fn recovery_curve_shows_throughput_returning() {
        let cache = LibCache::new();
        let base = FaultSpec::Mtbf {
            mean: 10_000,
            count: 2,
            seed: 1,
            kind: cgra_arch::FaultKind::Transient { repair_after: 500 },
        };
        let curve = recovery_curve(&Engine::with_jobs(2), &cache, 4, 4, &base, &quick_params());
        assert_eq!(curve.len(), 2 + RECOVERY_MTTR_SCALES.len());
        assert_eq!(curve[0].1, FaultSpec::Off);
        let reference = curve[0].2.as_ref().unwrap();
        assert!(!reference.faults.any());
        let no_repair = curve[1].2.as_ref().unwrap();
        assert_eq!(no_repair.faults.repairs, 0, "repair disabled in row 1");
        assert!(no_repair.faults.pages_killed > 0);
        let fastest = curve.last().unwrap().2.as_ref().unwrap();
        assert!(fastest.faults.repairs > 0, "mttr rows repair pages");
        // The headline: with repair, throughput returns toward the
        // fault-free reference — the recovered system beats no-repair
        // and sits between it and the clean run.
        assert!(
            fastest.mt_makespan <= no_repair.mt_makespan,
            "repair must not be slower than no repair: {} vs {}",
            fastest.mt_makespan,
            no_repair.mt_makespan
        );
        // Close to the fault-free reference (shrink/expand reshuffles
        // allocation order, so a repaired run may even land a hair
        // under it — a scheduling anomaly, not a free lunch).
        assert!(
            fastest.mt_makespan >= reference.mt_makespan * 0.95,
            "repaired run should track the fault-free reference: {} vs {}",
            fastest.mt_makespan,
            reference.mt_makespan
        );
        let rendered = render_recovery_curve(&curve);
        assert!(rendered.contains("fault-free"));
        assert!(rendered.contains("no-repair"));
        assert!(rendered.contains("mttr x1"));
        assert_eq!(rendered.lines().count(), curve.len() + 2);
    }

    #[test]
    fn recovery_curve_rows_are_deterministic() {
        let cache = LibCache::new();
        let base = FaultSpec::Mtbf {
            mean: 8_000,
            count: 2,
            seed: 3,
            kind: cgra_arch::FaultKind::Transient { repair_after: 400 },
        };
        let a = recovery_curve(&Engine::with_jobs(1), &cache, 4, 4, &base, &quick_params());
        let b = recovery_curve(&Engine::with_jobs(4), &cache, 4, 4, &base, &quick_params());
        assert_eq!(render_recovery_curve(&a), render_recovery_curve(&b));
    }

    #[test]
    fn degradation_curve_has_fault_free_reference_row() {
        let cache = LibCache::new();
        let base = FaultSpec::Mtbf {
            mean: 10_000,
            count: 2,
            seed: 1,
            kind: cgra_arch::FaultKind::Kill,
        };
        let curve = degradation_curve(&Engine::with_jobs(2), &cache, 4, 4, base, &quick_params());
        assert_eq!(curve.len(), CURVE_SCALES.len());
        assert_eq!(curve[0].1, FaultSpec::Off);
        let reference = curve[0].2.as_ref().unwrap();
        assert!(!reference.faults.any());
        let rendered = render_curve(&curve);
        assert!(rendered.contains("rate x"));
        // Every row rendered, errors included in-slot.
        assert_eq!(rendered.lines().count(), CURVE_SCALES.len() + 2);
    }
}
