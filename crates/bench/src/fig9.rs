//! Figure 9 — system-level throughput improvement from multithreading.
//!
//! For each CGRA size, page size, CGRA need (50/75/87.5 %), and thread
//! count (1–16), simulate the same randomly generated workload on the
//! single-threaded FCFS baseline and on the multithreaded page-multiplexed
//! CGRA, and report the percentage improvement in completion time,
//! averaged over seeds.
//!
//! The sweep runs in two [`Engine`] phases: first the kernel libraries
//! for every fabric in the grid are compiled (in parallel, deduplicated
//! by the mapping cache), then the simulation points run in parallel.
//! Workload seeds derive from point *coordinates* via
//! [`crate::engine::point_seed`], so `--jobs N` output is byte-identical
//! for every `N`.

use crate::engine::{point_seed, Engine};
use crate::libcache::LibCache;
use cgra_sim::{
    generate, improvement_percent, simulate_baseline, simulate_multithreaded, CgraNeed,
    ExpandPolicy, MtConfig, WorkloadParams,
};
use serde::{Deserialize, Serialize};

/// One bar of Figure 9 (mean over seeds).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig9Point {
    /// CGRA dimension.
    pub dim: u16,
    /// Page size in PEs.
    pub page_size: usize,
    /// CGRA need operating point.
    pub need: CgraNeed,
    /// Number of threads.
    pub threads: usize,
    /// Mean improvement % over the baseline system.
    pub improvement_pct: f64,
    /// Mean shrink transformations per run.
    pub mean_shrinks: f64,
    /// Mean baseline makespan (cycles).
    pub base_makespan: f64,
    /// Mean multithreaded makespan (cycles).
    pub mt_makespan: f64,
}

/// Sweep parameters.
#[derive(Debug, Clone, Copy)]
pub struct Fig9Params {
    /// Seeds averaged per point.
    pub seeds: u64,
    /// Nominal work per thread in cycles.
    pub work_per_thread: u64,
    /// CGRA bursts per thread.
    pub bursts: usize,
    /// Multithreaded-system knobs.
    pub mt: MtConfig,
}

impl Default for Fig9Params {
    fn default() -> Self {
        Fig9Params {
            seeds: crate::DEFAULT_SEEDS,
            work_per_thread: 60_000,
            bursts: 4,
            mt: MtConfig::default(),
        }
    }
}

/// Measure one Fig. 9 point.
pub fn run_point(
    cache: &LibCache,
    dim: u16,
    page_size: usize,
    need: CgraNeed,
    threads: usize,
    params: &Fig9Params,
) -> Fig9Point {
    let lib = cache.get(dim, page_size);
    let mut improvements = Vec::with_capacity(params.seeds as usize);
    let mut shrinks = 0.0;
    let mut base_total = 0.0;
    let mut mt_total = 0.0;
    for seed in 0..params.seeds {
        let workload = generate(
            &lib,
            &WorkloadParams {
                threads,
                need,
                work_per_thread: params.work_per_thread,
                bursts: params.bursts,
                // Seeded from the point's coordinates only — never from
                // worker identity or execution order (the engine's
                // determinism contract).
                seed: point_seed(&[
                    dim as u64,
                    page_size as u64,
                    need as u64,
                    threads as u64,
                    seed,
                ]),
            },
        );
        let base = simulate_baseline(&lib, &workload);
        let mt = simulate_multithreaded(&lib, &workload, params.mt);
        improvements.push(improvement_percent(base.makespan, mt.makespan));
        shrinks += mt.shrinks as f64;
        base_total += base.makespan as f64;
        mt_total += mt.makespan as f64;
    }
    let n = params.seeds as f64;
    Fig9Point {
        dim,
        page_size,
        need,
        threads,
        improvement_pct: improvements.iter().sum::<f64>() / n,
        mean_shrinks: shrinks / n,
        base_makespan: base_total / n,
        mt_makespan: mt_total / n,
    }
}

/// Run the full Fig. 9 grid through an explicit engine and cache.
pub fn run_all_with(engine: &Engine, cache: &LibCache, params: &Fig9Params) -> Vec<Fig9Point> {
    // Phase 1: compile every fabric's library. Parallel across configs;
    // the mapping cache deduplicates shared per-kernel profiles, so no
    // compilation happens twice even when two configs race.
    let configs: Vec<(u16, usize)> = crate::GRID
        .iter()
        .flat_map(|&(dim, sizes)| sizes.iter().map(move |&s| (dim, s)))
        .collect();
    engine.run(&configs, |&(dim, s)| {
        cache.get(dim, s);
    });

    // Phase 2: the simulation points, self-scheduled across workers.
    let mut points: Vec<(u16, usize, CgraNeed, usize)> = Vec::new();
    for &(dim, sizes) in &crate::GRID {
        for &s in sizes {
            for need in CgraNeed::ALL {
                for &t in &crate::THREAD_COUNTS {
                    points.push((dim, s, need, t));
                }
            }
        }
    }
    engine.run(&points, |&(dim, s, need, t)| {
        run_point(cache, dim, s, need, t, params)
    })
}

/// Run the full Fig. 9 grid with default parallelism.
pub fn run_all(cache: &LibCache, params: &Fig9Params) -> Vec<Fig9Point> {
    run_all_with(&Engine::default(), cache, params)
}

/// Render one sub-figure (one CGRA size): rows = thread counts × needs.
pub fn render(points: &[Fig9Point], dim: u16) -> String {
    let sizes: Vec<usize> = {
        let mut v: Vec<usize> = points
            .iter()
            .filter(|p| p.dim == dim)
            .map(|p| p.page_size)
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    let mut headers: Vec<String> = vec!["threads".into(), "need".into()];
    for s in &sizes {
        headers.push(format!("page {s}: improv%"));
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut rows = Vec::new();
    for &t in &crate::THREAD_COUNTS {
        for need in CgraNeed::ALL {
            let mut row = vec![t.to_string(), need.label().to_string()];
            for &s in &sizes {
                match points
                    .iter()
                    .find(|p| p.dim == dim && p.page_size == s && p.need == need && p.threads == t)
                {
                    Some(p) => row.push(format!("{:+.1}", p.improvement_pct)),
                    None => row.push("-".into()),
                }
            }
            rows.push(row);
        }
    }
    crate::table::markdown(&header_refs, &rows)
}

/// The headline averages: mean improvement per CGRA size at the highest
/// contention (16 threads, all needs, best page size), which the abstract
/// summarises as "over 30%, 75%, and 150% on 4x4, 6x6, and 8x8".
pub fn headline(points: &[Fig9Point]) -> Vec<(u16, f64)> {
    [4u16, 6, 8]
        .iter()
        .map(|&dim| {
            let best = points
                .iter()
                .filter(|p| p.dim == dim && p.threads == 16)
                .map(|p| p.improvement_pct)
                .fold(f64::MIN, f64::max);
            (dim, best)
        })
        .collect()
}

/// Ablation A1: improvement vs switch-transformation overhead.
pub fn ablation_overhead(cache: &LibCache, dim: u16, page_size: usize) -> Vec<(u64, f64)> {
    [0u64, 10, 100, 1_000, 10_000]
        .iter()
        .map(|&overhead| {
            let params = Fig9Params {
                mt: MtConfig {
                    switch_overhead: overhead,
                    ..Default::default()
                },
                ..Default::default()
            };
            let p = run_point(cache, dim, page_size, CgraNeed::High, 8, &params);
            (overhead, p.improvement_pct)
        })
        .collect()
}

/// Ablation A2: improvement vs expansion policy.
pub fn ablation_policy(cache: &LibCache, dim: u16, page_size: usize) -> Vec<(String, f64)> {
    [
        ("smallest-first", ExpandPolicy::SmallestFirst),
        ("largest-first", ExpandPolicy::LargestFirst),
        ("no-expansion", ExpandPolicy::None),
    ]
    .iter()
    .map(|(name, policy)| {
        let params = Fig9Params {
            mt: MtConfig {
                expand: *policy,
                ..Default::default()
            },
            ..Default::default()
        };
        let p = run_point(cache, dim, page_size, CgraNeed::High, 8, &params);
        (name.to_string(), p.improvement_pct)
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_params() -> Fig9Params {
        Fig9Params {
            seeds: 2,
            work_per_thread: 20_000,
            bursts: 2,
            mt: MtConfig::default(),
        }
    }

    #[test]
    fn single_thread_improvement_is_small() {
        let cache = LibCache::new();
        let p = run_point(&cache, 4, 4, CgraNeed::High, 1, &quick_params());
        // One thread cannot benefit; constrained II may even cost a bit.
        assert!(p.improvement_pct <= 5.0, "{}", p.improvement_pct);
    }

    #[test]
    fn contention_brings_improvement_on_8x8() {
        let cache = LibCache::new();
        let p = run_point(&cache, 8, 4, CgraNeed::High, 16, &quick_params());
        assert!(p.improvement_pct > 50.0, "got {:.1}%", p.improvement_pct);
    }

    #[test]
    fn improvement_grows_with_array_size() {
        let cache = LibCache::new();
        let params = quick_params();
        let p4 = run_point(&cache, 4, 4, CgraNeed::High, 16, &params);
        let p8 = run_point(&cache, 8, 4, CgraNeed::High, 16, &params);
        assert!(
            p8.improvement_pct > p4.improvement_pct,
            "8x8 {:.1}% <= 4x4 {:.1}%",
            p8.improvement_pct,
            p4.improvement_pct
        );
    }

    #[test]
    fn render_has_all_thread_counts() {
        let cache = LibCache::new();
        let pts = vec![run_point(&cache, 4, 4, CgraNeed::Low, 2, &quick_params())];
        let s = render(&pts, 4);
        // The measured cell is rendered signed; everything else is "-".
        assert!(s.contains("50%"));
        assert!(s.lines().count() > crate::THREAD_COUNTS.len() * CgraNeed::ALL.len());
    }

    #[test]
    fn run_point_is_deterministic() {
        let cache = LibCache::new();
        let a = run_point(&cache, 4, 2, CgraNeed::Medium, 4, &quick_params());
        let b = run_point(&cache, 4, 2, CgraNeed::Medium, 4, &quick_params());
        assert_eq!(a, b);
    }
}
