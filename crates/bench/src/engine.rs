//! The parallel experiment-execution engine.
//!
//! Every sweep in this crate — the Figure 8 mapping grid, the Figure 9
//! simulation grid, the ablations — runs through [`Engine::run`]: a
//! self-scheduling fork-join driver over `std::thread::scope` (no
//! external dependencies; the build environment is offline).
//!
//! ## Determinism contract
//!
//! Parallel and serial runs produce **byte-identical** reports:
//!
//! * results land in a pre-sized slot vector indexed by *point index*,
//!   so output order never depends on completion order;
//! * workers pull the next point index from one shared atomic counter
//!   (work stealing at item granularity — a slow point never stalls the
//!   other workers, and idle workers drain whatever remains);
//! * any randomness inside a point must be seeded via [`point_seed`]
//!   from the point's *coordinates* — never from worker identity, queue
//!   position, or wall-clock;
//! * a panic inside one point propagates after the scope joins, so
//!   failures are not silently dropped.
//!
//! `tests/parallel_determinism.rs` enforces the contract end-to-end by
//! diffing `--jobs 1` against `--jobs 4` runs, cache on and off.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// How many workers to use when the caller does not say: the machine's
/// available parallelism, capped at 16 (the sweep grids rarely benefit
/// beyond that, and the cap keeps shared-runner behaviour polite).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().min(16))
        .unwrap_or(1)
}

/// A deterministic 64-bit seed from a point's coordinates (FNV-1a).
///
/// Every stochastic component of a sweep point derives its RNG seed from
/// this — never from worker ids or execution order — which is what makes
/// `--jobs N` runs byte-identical for every `N`. Distinct coordinate
/// tuples (including different lengths) give well-separated seeds.
pub fn point_seed(coords: &[u64]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    let mut eat = |v: u64| {
        for byte in v.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    eat(coords.len() as u64);
    for &c in coords {
        eat(c);
    }
    h
}

/// Sweep-execution knobs, usually parsed from the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker threads (1 = fully serial; the reference for determinism
    /// diffs).
    pub jobs: usize,
    /// Whether mapping results may be served from the cache
    /// (`--no-cache` clears this; every mapping recomputes from
    /// scratch).
    pub use_cache: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            jobs: default_jobs(),
            use_cache: true,
        }
    }
}

impl EngineConfig {
    /// Parse `--jobs N` / `-j N` and `--no-cache` from CLI arguments,
    /// ignoring everything else (binaries layer their own flags on top).
    ///
    /// # Panics
    /// Panics with a usage message if `--jobs` is missing its value or
    /// the value is not a positive integer.
    pub fn from_args<S: AsRef<str>>(args: &[S]) -> Self {
        let mut cfg = EngineConfig::default();
        let mut it = args.iter().map(|a| a.as_ref());
        while let Some(arg) = it.next() {
            match arg {
                "--jobs" | "-j" => {
                    let value = it
                        .next()
                        .unwrap_or_else(|| panic!("--jobs requires a value, e.g. --jobs 4"));
                    cfg.jobs = value
                        .parse::<usize>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .unwrap_or_else(|| {
                            panic!("--jobs expects a positive integer, got {value:?}")
                        });
                }
                "--no-cache" => cfg.use_cache = false,
                _ => {}
            }
        }
        cfg
    }
}

/// The sweep driver. Cheap to construct; holds no threads between runs.
#[derive(Debug, Clone, Copy, Default)]
pub struct Engine {
    cfg: EngineConfig,
}

impl Engine {
    /// An engine with `cfg`.
    pub fn new(cfg: EngineConfig) -> Self {
        Engine { cfg }
    }

    /// An engine with `jobs` workers and default caching.
    pub fn with_jobs(jobs: usize) -> Self {
        Engine {
            cfg: EngineConfig {
                jobs: jobs.max(1),
                ..EngineConfig::default()
            },
        }
    }

    /// The active configuration.
    pub fn config(&self) -> EngineConfig {
        self.cfg
    }

    /// Evaluate `f` on every point, sharding across the engine's
    /// workers, and return results **in point order** (index `i` of the
    /// output is `f(&points[i])`, whatever the execution interleaving).
    pub fn run<P, R, F>(&self, points: &[P], f: F) -> Vec<R>
    where
        P: Sync,
        R: Send,
        F: Fn(&P) -> R + Sync,
    {
        run_ordered(points, self.cfg.jobs, &f)
    }

    /// [`Engine::run`], but a panic inside one point is caught and
    /// reported as `Err(message)` in that point's slot instead of
    /// aborting the sweep — the last line of defence behind the typed
    /// errors, for code paths that still assert. Results stay in point
    /// order; the panic hook output still reaches stderr.
    pub fn run_caught<P, R, F>(&self, points: &[P], f: F) -> Vec<Result<R, String>>
    where
        P: Sync,
        R: Send,
        F: Fn(&P) -> R + Sync,
    {
        self.run(points, |p| {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(p))).map_err(|payload| {
                payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "panicked with a non-string payload".to_string())
            })
        })
    }
}

/// The fork-join core: `jobs` scoped workers self-schedule over the
/// point list via an atomic cursor and write into index-addressed slots.
fn run_ordered<P, R, F>(points: &[P], jobs: usize, f: &F) -> Vec<R>
where
    P: Sync,
    R: Send,
    F: Fn(&P) -> R + Sync,
{
    if points.is_empty() {
        return Vec::new();
    }
    let jobs = jobs.max(1).min(points.len());
    if jobs == 1 {
        // The serial reference path: no threads, no locks — this is the
        // byte-level ground truth the parallel path must reproduce.
        return points.iter().map(f).collect();
    }

    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = points.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(p) = points.get(i) else { break };
                let r = f(p);
                *slots[i].lock().expect("slot lock poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.into_inner()
                .expect("slot lock poisoned")
                .unwrap_or_else(|| panic!("point {i} produced no result"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_are_in_point_order() {
        let points: Vec<usize> = (0..257).collect();
        for jobs in [1, 2, 4, 16, 999] {
            let out = Engine::with_jobs(jobs).run(&points, |&p| p * 3);
            assert_eq!(
                out,
                points.iter().map(|p| p * 3).collect::<Vec<_>>(),
                "jobs={jobs}"
            );
        }
    }

    #[test]
    fn every_point_runs_exactly_once() {
        let points: Vec<u64> = (0..100).collect();
        let calls = AtomicU64::new(0);
        let out = Engine::with_jobs(8).run(&points, |&p| {
            calls.fetch_add(1, Ordering::Relaxed);
            p
        });
        assert_eq!(calls.load(Ordering::Relaxed), 100);
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let none: Vec<u32> = Vec::new();
        assert!(Engine::with_jobs(4).run(&none, |&p| p).is_empty());
        assert_eq!(Engine::with_jobs(4).run(&[7u32], |&p| p + 1), vec![8]);
    }

    #[test]
    fn parallel_matches_serial_with_seeded_rng() {
        use rand::prelude::*;
        use rand::rngs::StdRng;
        // The intended usage pattern: per-point seeds from coordinates.
        let points: Vec<(u64, u64)> = (0..40).map(|i| (i, i * i)).collect();
        let work = |&(a, b): &(u64, u64)| {
            let mut rng = StdRng::seed_from_u64(point_seed(&[a, b]));
            (0..100).map(|_| rng.gen_range(0..1000u64)).sum::<u64>()
        };
        let serial = Engine::with_jobs(1).run(&points, work);
        let parallel = Engine::with_jobs(7).run(&points, work);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn point_seeds_are_distinct_and_length_sensitive() {
        let mut seen = HashSet::new();
        for a in 0..50u64 {
            for b in 0..50u64 {
                assert!(seen.insert(point_seed(&[a, b])), "collision at ({a},{b})");
            }
        }
        assert_ne!(point_seed(&[0]), point_seed(&[0, 0]));
        assert_ne!(point_seed(&[1, 2]), point_seed(&[2, 1]));
    }

    #[test]
    fn config_parsing() {
        let cfg = EngineConfig::from_args(&["--csv", "--jobs", "3", "--no-cache"]);
        assert_eq!(cfg.jobs, 3);
        assert!(!cfg.use_cache);
        let cfg = EngineConfig::from_args(&["-j", "12"]);
        assert_eq!(cfg.jobs, 12);
        assert!(cfg.use_cache);
        let cfg = EngineConfig::from_args(&[] as &[&str]);
        assert!(cfg.jobs >= 1);
    }

    #[test]
    #[should_panic(expected = "--jobs expects a positive integer")]
    fn bad_jobs_value_panics() {
        EngineConfig::from_args(&["--jobs", "zero"]);
    }

    /// Concurrency proof that works even on a single-core machine:
    /// sleeping points overlap, so 8 x 50 ms at `jobs = 4` finishes in
    /// ~100 ms, not ~400 ms. Timing-based, so ignored by default; run
    /// with `cargo test -- --ignored engine_overlaps` when measuring.
    #[test]
    #[ignore = "timing-based; run explicitly when measuring concurrency"]
    fn engine_overlaps_blocking_points() {
        use std::time::{Duration, Instant};
        let points: Vec<u32> = (0..8).collect();
        let nap = |_: &u32| std::thread::sleep(Duration::from_millis(50));
        let start = Instant::now();
        Engine::with_jobs(1).run(&points, nap);
        let serial = start.elapsed();
        let start = Instant::now();
        Engine::with_jobs(4).run(&points, nap);
        let parallel = start.elapsed();
        assert!(
            parallel < serial / 2,
            "expected >=2x overlap: serial {serial:?}, jobs=4 {parallel:?}"
        );
    }

    #[test]
    fn run_caught_isolates_a_panicking_point() {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // keep test output quiet
        let out = Engine::with_jobs(4).run_caught(&[1u32, 2, 3, 4], |&p| {
            if p == 3 {
                panic!("point {p} exploded");
            }
            p * 10
        });
        std::panic::set_hook(prev);
        assert_eq!(out[0], Ok(10));
        assert_eq!(out[1], Ok(20));
        assert_eq!(out[2], Err("point 3 exploded".to_string()));
        assert_eq!(out[3], Ok(40));
    }

    #[test]
    fn panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            Engine::with_jobs(4).run(&[1u32, 2, 3], |&p| {
                if p == 2 {
                    panic!("boom");
                }
                p
            })
        });
        assert!(result.is_err());
    }
}
