//! Minimal fixed-width / markdown table rendering for the harness bins.

/// Render rows as a markdown table with the given headers.
pub fn markdown(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        let padded: Vec<String> = cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect();
        format!("| {} |\n", padded.join(" | "))
    };
    out.push_str(&render_row(
        &headers.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        &widths,
    ));
    let dashes: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    out.push_str(&format!("|-{}-|\n", dashes.join("-|-")));
    for row in rows {
        out.push_str(&render_row(row, &widths));
    }
    out
}

/// Render rows as CSV.
pub fn csv(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = headers.join(",");
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_shape() {
        let t = markdown(
            &["a", "bb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("| a "));
        assert!(lines[1].starts_with("|-"));
    }

    #[test]
    fn csv_shape() {
        let t = csv(&["x", "y"], &[vec!["1".into(), "2".into()]]);
        assert_eq!(t, "x,y\n1,2\n");
    }
}
